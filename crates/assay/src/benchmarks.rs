//! The paper's benchmark suite.
//!
//! Eight benchmarks (Table II): five real-life bioassays — PCR, IVD,
//! ProteinSplit, Kinase act-1, Kinase act-2 — and three synthetic assays.
//! The authors' exact sequencing graphs are not published; the graphs here
//! are reconstructed from the standard versions of these assays in the
//! biochip-synthesis literature with the `|O|` (operations) and `|D|`
//! (devices) counts of Table II matched exactly, and `|E|` (edges, counted as
//! dependency + reagent-injection + output edges) matched exactly where the
//! arity constraints permit.
//!
//! In addition, [`demo`] reconstructs the running example of Figs. 1–3.

use serde::{Deserialize, Serialize};

use crate::builder::AssayBuilder;
use crate::graph::AssayGraph;
use crate::op::OpKind;
use crate::synthetic::{self, SyntheticSpec};

/// A benchmark instance: an assay plus the chip resources Table II allots it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Benchmark {
    /// Benchmark name as printed in Table II.
    pub name: String,
    /// The sequencing graph.
    pub graph: AssayGraph,
    /// Device library: one entry per device to place on the chip
    /// (`|D|` entries). Expressed as operation kinds; the synthesis flow
    /// maps them to concrete devices.
    pub devices: Vec<OpKind>,
    /// Suggested virtual-grid size `(width, height)` for synthesis.
    pub grid: (u16, u16),
}

impl Benchmark {
    /// `|O|`: number of biochemical operations.
    pub fn op_count(&self) -> usize {
        self.graph.ops().len()
    }

    /// `|D|`: number of devices in the library.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// `|E|`: extended edge count (dependencies + reagent injections +
    /// outputs).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }
}

/// The running example of the paper (Fig. 1(c)): two reagents, seven
/// operations, executed on the five-device chip of Fig. 2(a).
pub fn demo() -> Benchmark {
    let mut b = AssayBuilder::new("demo");
    let r1 = b.reagent("r1");
    let r2 = b.reagent("r2");
    let o1 = b.op("o1", OpKind::Filter, 3, [r1.into()]).expect("demo");
    let o2 = b
        .op("o2", OpKind::Mix, 3, [o1.into(), r2.into()])
        .expect("demo");
    let o3 = b.op("o3", OpKind::Detect, 2, [r1.into()]).expect("demo");
    let o4 = b.op("o4", OpKind::Detect, 2, [o2.into()]).expect("demo");
    let o5 = b.op("o5", OpKind::Heat, 4, [o3.into()]).expect("demo");
    let o6 = b
        .op("o6", OpKind::Mix, 3, [o4.into(), o5.into()])
        .expect("demo");
    let _o7 = b.op("o7", OpKind::Detect, 2, [o6.into()]).expect("demo");
    Benchmark {
        name: "demo".into(),
        graph: b.build().expect("demo graph is valid"),
        devices: vec![
            OpKind::Mix,
            OpKind::Heat,
            OpKind::Detect,
            OpKind::Detect,
            OpKind::Filter,
        ],
        grid: (13, 13),
    }
}

/// PCR: polymerase chain reaction — master-mix preparation, thermocycling,
/// and two detection readouts. `|O|=7`, `|D|=5`, `|E|=15`.
pub fn pcr() -> Benchmark {
    let mut b = AssayBuilder::new("PCR");
    let sample = b.reagent("sample");
    let primer = b.reagent("primer");
    let dntp = b.reagent("dNTP");
    let polymerase = b.reagent("polymerase");
    let buffer = b.reagent("reaction buffer");
    let water = b.reagent("water");
    let probe1 = b.reagent("probe A");
    let probe2 = b.reagent("probe B");
    let o1 = b
        .op(
            "master mix",
            OpKind::Mix,
            4,
            [primer.into(), dntp.into(), polymerase.into()],
        )
        .expect("pcr");
    let o2 = b
        .op(
            "template mix",
            OpKind::Mix,
            4,
            [sample.into(), buffer.into(), water.into()],
        )
        .expect("pcr");
    let o3 = b
        .op("reaction mix", OpKind::Mix, 4, [o1.into(), o2.into()])
        .expect("pcr");
    let o4 = b
        .op("thermocycle", OpKind::Heat, 8, [o3.into()])
        .expect("pcr");
    let o5 = b
        .op("amplicon read", OpKind::Detect, 2, [o4.into()])
        .expect("pcr");
    let o6 = b
        .op(
            "control mix",
            OpKind::Mix,
            3,
            [probe1.into(), probe2.into()],
        )
        .expect("pcr");
    let _o7 = b
        .op("control read", OpKind::Detect, 2, [o6.into()])
        .expect("pcr");
    let _ = o5;
    Benchmark {
        name: "PCR".into(),
        graph: b.build().expect("pcr graph is valid"),
        devices: vec![
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Heat,
            OpKind::Detect,
            OpKind::Detect,
        ],
        grid: (13, 13),
    }
}

/// IVD: in-vitro diagnostics — four independent sample/reagent test chains,
/// each mixed, incubated, and read out. `|O|=12`, `|D|=9`, `|E|=24`.
pub fn ivd() -> Benchmark {
    let mut b = AssayBuilder::new("IVD");
    for i in 1..=4 {
        let sample = b.reagent(&format!("sample {i}"));
        let reagent = b.reagent(&format!("assay reagent {i}"));
        let diluent = b.reagent(&format!("diluent {i}"));
        let m = b
            .op(
                &format!("mix {i}"),
                OpKind::Mix,
                3,
                [sample.into(), reagent.into(), diluent.into()],
            )
            .expect("ivd");
        let h = b
            .op(&format!("incubate {i}"), OpKind::Heat, 5, [m.into()])
            .expect("ivd");
        let _d = b
            .op(&format!("read {i}"), OpKind::Detect, 2, [h.into()])
            .expect("ivd");
    }
    Benchmark {
        name: "IVD".into(),
        graph: b.build().expect("ivd graph is valid"),
        devices: vec![
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Heat,
            OpKind::Heat,
            OpKind::Detect,
            OpKind::Detect,
            OpKind::Filter,
            OpKind::Store,
        ],
        grid: (15, 15),
    }
}

/// ProteinSplit: protein sample preparation across five parallel branches
/// (mix/heat/separate/filter paths with detection readouts).
/// `|O|=14`, `|D|=11`, `|E|=27`.
pub fn protein_split() -> Benchmark {
    let mut b = AssayBuilder::new("ProteinSplit");
    let r: Vec<_> = (1..=13).map(|i| b.reagent(&format!("r{i}"))).collect();
    let m1 = b
        .op("mix 1", OpKind::Mix, 3, [r[0].into(), r[1].into()])
        .expect("ps");
    let m2 = b
        .op(
            "mix 2",
            OpKind::Mix,
            3,
            [m1.into(), r[2].into(), r[12].into()],
        )
        .expect("ps");
    let _d1 = b.op("read 1", OpKind::Detect, 2, [m2.into()]).expect("ps");
    let m3 = b
        .op("mix 3", OpKind::Mix, 3, [r[3].into(), r[4].into()])
        .expect("ps");
    let m4 = b
        .op("mix 4", OpKind::Mix, 3, [m3.into(), r[5].into()])
        .expect("ps");
    let _d2 = b.op("read 2", OpKind::Detect, 2, [m4.into()]).expect("ps");
    let m5 = b
        .op("mix 5", OpKind::Mix, 3, [r[6].into(), r[7].into()])
        .expect("ps");
    let h1 = b.op("denature", OpKind::Heat, 6, [m5.into()]).expect("ps");
    let _d3 = b.op("read 3", OpKind::Detect, 2, [h1.into()]).expect("ps");
    let m6 = b
        .op("mix 6", OpKind::Mix, 3, [r[8].into(), r[9].into()])
        .expect("ps");
    let s1 = b
        .op("separate", OpKind::Separate, 4, [m6.into()])
        .expect("ps");
    let _d4 = b.op("read 4", OpKind::Detect, 2, [s1.into()]).expect("ps");
    let m7 = b
        .op("mix 7", OpKind::Mix, 3, [r[10].into(), r[11].into()])
        .expect("ps");
    let _f1 = b.op("clarify", OpKind::Filter, 3, [m7.into()]).expect("ps");
    Benchmark {
        name: "ProteinSplit".into(),
        graph: b.build().expect("protein-split graph is valid"),
        devices: vec![
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Detect,
            OpKind::Detect,
            OpKind::Heat,
            OpKind::Heat,
            OpKind::Separate,
            OpKind::Filter,
            OpKind::Store,
            OpKind::Store,
        ],
        grid: (17, 17),
    }
}

/// Kinase act-1: kinase-activity titration — a short chain of multi-reagent
/// mixes. `|O|=4`, `|D|=9`, `|E|=16`.
pub fn kinase_act_1() -> Benchmark {
    let mut b = AssayBuilder::new("Kinase act-1");
    let r: Vec<_> = (1..=12).map(|i| b.reagent(&format!("r{i}"))).collect();
    let o1 = b
        .op(
            "mix 1",
            OpKind::Mix,
            4,
            [r[0].into(), r[1].into(), r[2].into(), r[3].into()],
        )
        .expect("ka1");
    let o2 = b
        .op(
            "mix 2",
            OpKind::Mix,
            4,
            [o1.into(), r[4].into(), r[5].into(), r[6].into()],
        )
        .expect("ka1");
    let o3 = b
        .op(
            "mix 3",
            OpKind::Mix,
            4,
            [o2.into(), r[7].into(), r[8].into(), r[9].into()],
        )
        .expect("ka1");
    let _o4 = b
        .op(
            "mix 4",
            OpKind::Mix,
            4,
            [o3.into(), r[10].into(), r[11].into()],
        )
        .expect("ka1");
    Benchmark {
        name: "Kinase act-1".into(),
        graph: b.build().expect("kinase-1 graph is valid"),
        devices: vec![
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Heat,
            OpKind::Detect,
            OpKind::Detect,
            OpKind::Store,
            OpKind::Store,
        ],
        grid: (15, 15),
    }
}

/// Kinase act-2: a nine-reaction kinase panel — nine independent
/// multi-reagent mixes fed by three shared premixes. `|O|=12`, `|D|=9`,
/// `|E|=48`.
pub fn kinase_act_2() -> Benchmark {
    let mut b = AssayBuilder::new("Kinase act-2");
    // Three premixes, each consumed by one panel reaction; the remaining six
    // panel reactions run on raw reagents. Every panel output is read off
    // chip (9 sinks).
    let mut premixes = Vec::new();
    for i in 1..=3 {
        let a = b.reagent(&format!("kinase {i}"));
        let c = b.reagent(&format!("substrate {i}"));
        let d = b.reagent(&format!("ATP {i}"));
        let e = b.reagent(&format!("cofactor {i}"));
        let m = b
            .op(
                &format!("premix {i}"),
                OpKind::Mix,
                3,
                [a.into(), c.into(), d.into(), e.into()],
            )
            .expect("ka2");
        premixes.push(m);
    }
    for (i, pm) in premixes.clone().into_iter().enumerate() {
        let x = b.reagent(&format!("inhibitor {}", i + 1));
        let y = b.reagent(&format!("reporter {}", i + 1));
        let z = b.reagent(&format!("dilution buffer {}", i + 1));
        let _m = b
            .op(
                &format!("panel {}", i + 1),
                OpKind::Mix,
                3,
                [pm.into(), x.into(), y.into(), z.into()],
            )
            .expect("ka2");
    }
    for i in 4..=6 {
        let x = b.reagent(&format!("inhibitor {i}"));
        let y = b.reagent(&format!("reporter {i}"));
        let z = b.reagent(&format!("dilution buffer {i}"));
        let _m = b
            .op(
                &format!("panel {i}"),
                OpKind::Mix,
                3,
                [x.into(), y.into(), z.into()],
            )
            .expect("ka2");
    }
    for i in 7..=9 {
        let x = b.reagent(&format!("inhibitor {i}"));
        let y = b.reagent(&format!("reporter {i}"));
        let _m = b
            .op(&format!("panel {i}"), OpKind::Mix, 3, [x.into(), y.into()])
            .expect("ka2");
    }
    Benchmark {
        name: "Kinase act-2".into(),
        graph: b.build().expect("kinase-2 graph is valid"),
        devices: vec![
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Mix,
            OpKind::Heat,
            OpKind::Detect,
            OpKind::Store,
            OpKind::Store,
        ],
        grid: (15, 15),
    }
}

/// Synthetic1: seeded random assay, `|O|=10`, `|D|=12`, `|E|=15`.
pub fn synthetic1() -> Benchmark {
    synthetic::generate(&SyntheticSpec {
        name: "Synthetic1".into(),
        ops: 10,
        edges: 15,
        devices: 12,
        seed: 0x5EED_0001,
        grid: (17, 17),
    })
}

/// Synthetic2: seeded random assay, `|O|=15`, `|D|=13`, `|E|=24`.
pub fn synthetic2() -> Benchmark {
    synthetic::generate(&SyntheticSpec {
        name: "Synthetic2".into(),
        ops: 15,
        edges: 24,
        devices: 13,
        seed: 0x5EED_0002,
        grid: (17, 17),
    })
}

/// Synthetic3: seeded random assay, `|O|=20`, `|D|=18`, `|E|=28`.
pub fn synthetic3() -> Benchmark {
    synthetic::generate(&SyntheticSpec {
        name: "Synthetic3".into(),
        ops: 20,
        edges: 28,
        devices: 18,
        seed: 0x5EED_0003,
        grid: (21, 21),
    })
}

/// The full Table II suite, in row order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        pcr(),
        ivd(),
        protein_split(),
        kinase_act_1(),
        kinase_act_2(),
        synthetic1(),
        synthetic2(),
        synthetic3(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_op_and_device_counts_match() {
        let expected: [(&str, usize, usize); 8] = [
            ("PCR", 7, 5),
            ("IVD", 12, 9),
            ("ProteinSplit", 14, 11),
            ("Kinase act-1", 4, 9),
            ("Kinase act-2", 12, 9),
            ("Synthetic1", 10, 12),
            ("Synthetic2", 15, 13),
            ("Synthetic3", 20, 18),
        ];
        let suite = suite();
        assert_eq!(suite.len(), expected.len());
        for (bench, (name, ops, devices)) in suite.iter().zip(expected) {
            assert_eq!(bench.name, name);
            assert_eq!(bench.op_count(), ops, "{name} |O|");
            assert_eq!(bench.device_count(), devices, "{name} |D|");
        }
    }

    #[test]
    fn real_benchmarks_match_table2_edge_counts() {
        assert_eq!(pcr().edge_count(), 15);
        assert_eq!(ivd().edge_count(), 24);
        assert_eq!(protein_split().edge_count(), 27);
        assert_eq!(kinase_act_1().edge_count(), 16);
        assert_eq!(kinase_act_2().edge_count(), 48);
    }

    #[test]
    fn demo_matches_fig1() {
        let d = demo();
        assert_eq!(d.op_count(), 7);
        assert_eq!(d.graph.reagents().len(), 2);
        assert_eq!(d.device_count(), 5);
    }

    #[test]
    fn device_libraries_cover_required_kinds() {
        for bench in suite().into_iter().chain([demo()]) {
            for kind in bench.graph.required_kinds() {
                assert!(
                    bench.devices.contains(&kind),
                    "{}: library lacks a {kind} device",
                    bench.name
                );
            }
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite();
        let b = suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph, y.graph, "{} not deterministic", x.name);
        }
    }
}
