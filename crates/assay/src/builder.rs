//! Incremental construction of [`AssayGraph`]s.

use crate::error::AssayError;
use crate::graph::AssayGraph;
use crate::op::{OpId, OpInput, OpKind, Operation, ReagentId};
use crate::Seconds;

/// Builder for [`AssayGraph`]s.
///
/// Operations may only reference reagents and operations that were added
/// earlier, which makes the resulting graph a DAG by construction and makes
/// insertion order a valid topological order.
///
/// # Example
///
/// ```
/// use pdw_assay::{AssayBuilder, OpKind};
///
/// # fn main() -> Result<(), pdw_assay::AssayError> {
/// let mut b = AssayBuilder::new("pcr-lite");
/// let sample = b.reagent("sample");
/// let primer = b.reagent("primer");
/// let mix = b.op("mix", OpKind::Mix, 4, [sample.into(), primer.into()])?;
/// let cycle = b.op("thermocycle", OpKind::Heat, 6, [mix.into()])?;
/// let assay = b.build()?;
/// assert_eq!(assay.sinks(), vec![cycle]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AssayBuilder {
    name: String,
    reagents: Vec<String>,
    ops: Vec<Operation>,
    consumed: Vec<bool>,
}

impl AssayBuilder {
    /// Starts a builder for an assay called `name`.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            reagents: Vec::new(),
            ops: Vec::new(),
            consumed: Vec::new(),
        }
    }

    /// Declares an input reagent and returns its id.
    pub fn reagent(&mut self, label: &str) -> ReagentId {
        let id = ReagentId(self.reagents.len() as u32);
        self.reagents.push(label.to_string());
        id
    }

    /// Appends an operation and returns its id.
    ///
    /// # Errors
    ///
    /// Fails if the number of inputs does not match `kind.arity()`, the
    /// duration is zero, an input references an unknown or not-yet-added
    /// operation or reagent, or an input operation's result was already
    /// consumed by another operation.
    pub fn op<I>(
        &mut self,
        label: &str,
        kind: OpKind,
        duration: Seconds,
        inputs: I,
    ) -> Result<OpId, AssayError>
    where
        I: IntoIterator<Item = OpInput>,
    {
        let inputs: Vec<OpInput> = inputs.into_iter().collect();
        if inputs.len() < kind.min_arity() || inputs.len() > kind.max_arity() {
            return Err(AssayError::WrongArity {
                label: label.to_string(),
                kind,
                got: inputs.len(),
            });
        }
        if duration == 0 {
            return Err(AssayError::ZeroDuration {
                label: label.to_string(),
            });
        }
        for input in &inputs {
            match *input {
                OpInput::Op(o) => {
                    if o.0 as usize >= self.ops.len() {
                        return Err(AssayError::UnknownOp { id: o });
                    }
                    if self.consumed[o.0 as usize] {
                        return Err(AssayError::ResultReused { producer: o });
                    }
                }
                OpInput::Reagent(r) => {
                    if r.0 as usize >= self.reagents.len() {
                        return Err(AssayError::UnknownReagent { id: r });
                    }
                }
            }
        }
        // All checks passed; record consumption.
        for input in &inputs {
            if let OpInput::Op(o) = *input {
                self.consumed[o.0 as usize] = true;
            }
        }
        let id = OpId(self.ops.len() as u32);
        self.ops
            .push(Operation::new(label.to_string(), kind, duration, inputs));
        self.consumed.push(false);
        Ok(id)
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`AssayError::EmptyGraph`] if no operation was added.
    pub fn build(self) -> Result<AssayGraph, AssayError> {
        AssayGraph::from_parts(self.name, self.reagents, self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_forward_references() {
        let mut b = AssayBuilder::new("t");
        let err = b
            .op("d", OpKind::Detect, 1, [OpInput::Op(OpId(0))])
            .unwrap_err();
        assert_eq!(err, AssayError::UnknownOp { id: OpId(0) });
    }

    #[test]
    fn rejects_unknown_reagent() {
        let mut b = AssayBuilder::new("t");
        let err = b
            .op("d", OpKind::Detect, 1, [OpInput::Reagent(ReagentId(5))])
            .unwrap_err();
        assert_eq!(err, AssayError::UnknownReagent { id: ReagentId(5) });
    }

    #[test]
    fn rejects_wrong_arity() {
        let mut b = AssayBuilder::new("t");
        let r = b.reagent("r");
        let err = b.op("m", OpKind::Mix, 1, [r.into()]).unwrap_err();
        assert!(matches!(err, AssayError::WrongArity { got: 1, .. }));
    }

    #[test]
    fn rejects_zero_duration() {
        let mut b = AssayBuilder::new("t");
        let r = b.reagent("r");
        let err = b.op("d", OpKind::Detect, 0, [r.into()]).unwrap_err();
        assert!(matches!(err, AssayError::ZeroDuration { .. }));
    }

    #[test]
    fn empty_build_fails() {
        let b = AssayBuilder::new("t");
        assert_eq!(b.build().unwrap_err(), AssayError::EmptyGraph);
    }

    #[test]
    fn failed_op_does_not_consume_inputs() {
        let mut b = AssayBuilder::new("t");
        let r = b.reagent("r");
        let o1 = b.op("f", OpKind::Filter, 1, [r.into()]).unwrap();
        // Wrong arity: o1 must not be marked consumed by the failed call.
        let _ = b.op("m", OpKind::Mix, 1, [o1.into()]).unwrap_err();
        let _ok = b.op("d", OpKind::Detect, 1, [o1.into()]).unwrap();
    }
}
