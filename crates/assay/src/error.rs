//! Error type for assay-graph construction and validation.

use std::fmt;

use crate::op::{OpId, OpKind, ReagentId};

/// Errors raised while building or validating an [`AssayGraph`].
///
/// [`AssayGraph`]: crate::AssayGraph
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssayError {
    /// An operation received the wrong number of inputs for its kind.
    WrongArity {
        /// Label of the offending operation.
        label: String,
        /// The operation kind.
        kind: OpKind,
        /// Number of inputs supplied.
        got: usize,
    },
    /// An operation references an operation id that does not exist (yet).
    UnknownOp {
        /// The unresolved id.
        id: OpId,
    },
    /// An operation references a reagent id that does not exist.
    UnknownReagent {
        /// The unresolved id.
        id: ReagentId,
    },
    /// An operation has a zero execution time.
    ZeroDuration {
        /// Label of the offending operation.
        label: String,
    },
    /// The graph has no operations.
    EmptyGraph,
    /// The result of an operation is consumed by more than one downstream
    /// operation (a fluid plug is physically consumed when used).
    ResultReused {
        /// The producing operation.
        producer: OpId,
    },
}

impl fmt::Display for AssayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssayError::WrongArity { label, kind, got } => write!(
                f,
                "operation `{label}` of kind {kind} takes {}..={} inputs, got {got}",
                kind.min_arity(),
                kind.max_arity()
            ),
            AssayError::UnknownOp { id } => write!(f, "input references unknown operation {id}"),
            AssayError::UnknownReagent { id } => {
                write!(f, "input references unknown reagent {id}")
            }
            AssayError::ZeroDuration { label } => {
                write!(f, "operation `{label}` has zero execution time")
            }
            AssayError::EmptyGraph => write!(f, "assay graph has no operations"),
            AssayError::ResultReused { producer } => {
                write!(f, "result fluid of {producer} is consumed more than once")
            }
        }
    }
}

impl std::error::Error for AssayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = AssayError::WrongArity {
            label: "mix1".into(),
            kind: OpKind::Mix,
            got: 1,
        };
        let msg = e.to_string();
        assert!(msg.contains("mix1"));
        assert!(msg.contains("takes 2..=4 inputs"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<AssayError>();
    }
}
