//! Fluid types for contamination reasoning.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A chemical fluid type.
///
/// Two fluids of the same type do not contaminate each other (the paper's
/// Type-2 wash exemption). Reagents are assigned distinct types; an operation
/// that transforms its inputs (mix, heat, filter, separate) produces a fresh
/// type, while fluid-preserving operations (detect, store) propagate the type
/// of their input. A dedicated type is reserved for wash buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FluidType(pub u32);

impl FluidType {
    /// The wash-buffer fluid type.
    ///
    /// Buffer is chemically inert with respect to contamination: a cell whose
    /// last residue is buffer is considered clean.
    pub const BUFFER: FluidType = FluidType(u32::MAX);

    /// Returns `true` if this is the wash-buffer type.
    pub fn is_buffer(self) -> bool {
        self == Self::BUFFER
    }
}

impl fmt::Display for FluidType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_buffer() {
            write!(f, "buffer")
        } else {
            write!(f, "f{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_is_distinguished() {
        assert!(FluidType::BUFFER.is_buffer());
        assert!(!FluidType(0).is_buffer());
        assert_eq!(FluidType::BUFFER.to_string(), "buffer");
        assert_eq!(FluidType(2).to_string(), "f2");
    }
}
