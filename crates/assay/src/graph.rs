//! The validated sequencing graph `G(O, E)`.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::error::AssayError;
use crate::fluid::FluidType;
use crate::op::{OpId, OpInput, OpKind, Operation, ReagentId};
use crate::Seconds;

/// A validated sequencing graph.
///
/// Invariants (enforced by [`AssayBuilder`](crate::AssayBuilder)):
///
/// - the graph is a DAG: every operation's inputs reference strictly earlier
///   operations, so insertion order is a topological order;
/// - every operation has between [`OpKind::min_arity`] and
///   [`OpKind::max_arity`] inputs and a nonzero duration;
/// - each operation's result fluid is consumed by at most one downstream
///   operation (a plug is physically moved, not copied) — results not
///   consumed by any operation are the assay's outputs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssayGraph {
    name: String,
    reagents: Vec<String>,
    ops: Vec<Operation>,
}

impl AssayGraph {
    pub(crate) fn from_parts(
        name: String,
        reagents: Vec<String>,
        ops: Vec<Operation>,
    ) -> Result<Self, AssayError> {
        let graph = Self {
            name,
            reagents,
            ops,
        };
        graph.revalidate()?;
        Ok(graph)
    }

    /// Re-checks every structural invariant of the graph.
    ///
    /// Graphs built through [`AssayBuilder`](crate::AssayBuilder) are valid
    /// by construction; call this after deserializing a graph from an
    /// external source (e.g. a JSON assay file), since `serde` bypasses the
    /// builder.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: arity, zero duration, dangling
    /// or forward references, or a result consumed twice.
    pub fn revalidate(&self) -> Result<(), AssayError> {
        if self.ops.is_empty() {
            return Err(AssayError::EmptyGraph);
        }
        let mut consumed = vec![false; self.ops.len()];
        for (i, op) in self.ops.iter().enumerate() {
            if op.inputs().len() < op.kind().min_arity()
                || op.inputs().len() > op.kind().max_arity()
            {
                return Err(AssayError::WrongArity {
                    label: op.label().to_string(),
                    kind: op.kind(),
                    got: op.inputs().len(),
                });
            }
            if op.duration() == 0 {
                return Err(AssayError::ZeroDuration {
                    label: op.label().to_string(),
                });
            }
            for input in op.inputs() {
                match *input {
                    OpInput::Op(o) => {
                        if o.0 as usize >= i {
                            return Err(AssayError::UnknownOp { id: o });
                        }
                        if consumed[o.0 as usize] {
                            return Err(AssayError::ResultReused { producer: o });
                        }
                        consumed[o.0 as usize] = true;
                    }
                    OpInput::Reagent(r) => {
                        if r.0 as usize >= self.reagents.len() {
                            return Err(AssayError::UnknownReagent { id: r });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The assay's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All operations, indexed by [`OpId`].
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Looks up an operation by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.0 as usize]
    }

    /// Labels of all reagents, indexed by [`ReagentId`].
    pub fn reagents(&self) -> &[String] {
        &self.reagents
    }

    /// Iterates over all operation ids in insertion (= topological) order.
    pub fn op_ids(&self) -> impl ExactSizeIterator<Item = OpId> {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// A topological order of the operations.
    ///
    /// Because the builder only lets operations reference earlier operations,
    /// insertion order is already topological.
    pub fn topological_order(&self) -> Vec<OpId> {
        self.op_ids().collect()
    }

    /// The dependency edges `e_{j,i} ∈ E`: the result of `j` feeds `i`.
    pub fn dep_edges(&self) -> Vec<(OpId, OpId)> {
        let mut edges = Vec::new();
        for id in self.op_ids() {
            for parent in self.op(id).parent_ops() {
                edges.push((parent, id));
            }
        }
        edges
    }

    /// The operation (if any) that consumes the result of `id`.
    pub fn consumer_of(&self, id: OpId) -> Option<OpId> {
        self.op_ids()
            .find(|&i| self.op(i).parent_ops().any(|p| p == id))
    }

    /// Operations whose results are assay outputs (not consumed on-chip).
    pub fn sinks(&self) -> Vec<OpId> {
        let mut consumed = vec![false; self.ops.len()];
        for op in &self.ops {
            for p in op.parent_ops() {
                consumed[p.0 as usize] = true;
            }
        }
        self.op_ids()
            .filter(|id| !consumed[id.0 as usize])
            .collect()
    }

    /// Total edge count in the extended sense of Table II: dependency edges
    /// plus reagent-injection edges plus output edges.
    pub fn edge_count(&self) -> usize {
        let deps: usize = self.ops.iter().map(|o| o.parent_ops().count()).sum();
        let reagent_edges: usize = self.ops.iter().map(|o| o.reagent_inputs().count()).sum();
        deps + reagent_edges + self.sinks().len()
    }

    /// The fluid type flowing *into* the graph for reagent `r`.
    pub fn reagent_fluid(&self, r: ReagentId) -> FluidType {
        FluidType(r.0)
    }

    /// The fluid type of the result of operation `id` (`out_i` in the paper).
    ///
    /// Transforming operations produce fresh types; fluid-preserving
    /// operations propagate their input's type.
    pub fn output_fluid(&self, id: OpId) -> FluidType {
        let op = self.op(id);
        if op.kind().preserves_fluid() {
            match op.inputs()[0] {
                OpInput::Reagent(r) => self.reagent_fluid(r),
                OpInput::Op(o) => self.output_fluid(o),
            }
        } else {
            FluidType(self.reagents.len() as u32 + id.0)
        }
    }

    /// The fluid type carried by a given input edge of operation `id`.
    pub fn input_fluid(&self, input: OpInput) -> FluidType {
        match input {
            OpInput::Reagent(r) => self.reagent_fluid(r),
            OpInput::Op(o) => self.output_fluid(o),
        }
    }

    /// Device kinds required to execute this assay (deduplicated).
    pub fn required_kinds(&self) -> Vec<OpKind> {
        let mut kinds: Vec<OpKind> = Vec::new();
        for op in &self.ops {
            if !kinds.contains(&op.kind()) {
                kinds.push(op.kind());
            }
        }
        kinds
    }

    /// Length of the critical path in seconds: a lower bound on the assay
    /// completion time ignoring transport and wash.
    pub fn critical_path_seconds(&self) -> Seconds {
        let mut finish = vec![0u32; self.ops.len()];
        for id in self.op_ids() {
            let op = self.op(id);
            let ready = op
                .parent_ops()
                .map(|p| finish[p.0 as usize])
                .max()
                .unwrap_or(0);
            finish[id.0 as usize] = ready + op.duration();
        }
        finish.into_iter().max().unwrap_or(0)
    }
}

impl fmt::Display for AssayGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "assay `{}`: |O|={}, reagents={}, |E|={}",
            self.name,
            self.ops.len(),
            self.reagents.len(),
            self.edge_count()
        )?;
        for id in self.op_ids() {
            let op = self.op(id);
            let inputs: Vec<String> = op.inputs().iter().map(|i| i.to_string()).collect();
            writeln!(
                f,
                "  {id}: {} `{}` ({} s) <- [{}]",
                op.kind(),
                op.label(),
                op.duration(),
                inputs.join(", ")
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AssayBuilder;

    fn diamondish() -> AssayGraph {
        let mut b = AssayBuilder::new("t");
        let r1 = b.reagent("r1");
        let r2 = b.reagent("r2");
        let o1 = b.op("f", OpKind::Filter, 2, [r1.into()]).unwrap();
        let o2 = b.op("m", OpKind::Mix, 3, [o1.into(), r2.into()]).unwrap();
        let _o3 = b.op("d", OpKind::Detect, 1, [o2.into()]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn dep_edges_and_sinks() {
        let g = diamondish();
        assert_eq!(g.dep_edges(), vec![(OpId(0), OpId(1)), (OpId(1), OpId(2))]);
        assert_eq!(g.sinks(), vec![OpId(2)]);
        assert_eq!(g.consumer_of(OpId(0)), Some(OpId(1)));
        assert_eq!(g.consumer_of(OpId(2)), None);
    }

    #[test]
    fn edge_count_includes_reagents_and_outputs() {
        let g = diamondish();
        // deps: 2, reagent edges: 2 (r1->o1, r2->o2), outputs: 1 (o3->out).
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn fluids_propagate_through_preserving_ops() {
        let g = diamondish();
        let filter_out = g.output_fluid(OpId(0));
        let mix_out = g.output_fluid(OpId(1));
        let detect_out = g.output_fluid(OpId(2));
        assert_ne!(filter_out, g.reagent_fluid(ReagentId(0)));
        assert_ne!(mix_out, filter_out);
        // Detection does not change the fluid.
        assert_eq!(detect_out, mix_out);
    }

    #[test]
    fn critical_path_sums_durations() {
        let g = diamondish();
        assert_eq!(g.critical_path_seconds(), 6);
    }

    #[test]
    fn rejects_result_reuse() {
        let mut b = AssayBuilder::new("t");
        let r1 = b.reagent("r1");
        let o1 = b.op("f", OpKind::Filter, 2, [r1.into()]).unwrap();
        let _ = b.op("d1", OpKind::Detect, 1, [o1.into()]).unwrap();
        let err = b.op("d2", OpKind::Detect, 1, [o1.into()]).unwrap_err();
        assert_eq!(err, AssayError::ResultReused { producer: o1 });
    }

    #[test]
    fn display_lists_ops() {
        let g = diamondish();
        let s = g.to_string();
        assert!(s.contains("o1: filter"));
        assert!(s.contains("|O|=3"));
    }
}
