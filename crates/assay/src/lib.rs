//! Bioassay model and benchmark suite for continuous-flow biochip synthesis.
//!
//! A bioassay protocol is modeled as a *sequencing graph* `G(O, E)`
//! (Fig. 1(c) of the PathDriver-Wash paper): `O` is a set of biochemical
//! operations with execution times, `E` the data dependencies between them.
//! Reagents enter through graph inputs; each operation consumes the fluids on
//! its incoming edges and produces one result fluid.
//!
//! The crate provides:
//!
//! - [`AssayGraph`] — a validated sequencing graph with topological order,
//!   fluid-type derivation, and critical-path queries,
//! - [`AssayBuilder`] — ergonomic graph construction,
//! - [`benchmarks`] — the paper's benchmark suite: the Fig. 1(c) demo assay,
//!   five real-life assays (PCR, IVD, ProteinSplit, Kinase act-1/2), and
//!   three seeded synthetic assays, with the |O|/|D| sizes of Table II,
//! - [`synthetic`] — the deterministic random-DAG generator behind the
//!   synthetic benchmarks.
//!
//! # Example
//!
//! ```
//! use pdw_assay::{AssayBuilder, OpKind};
//!
//! # fn main() -> Result<(), pdw_assay::AssayError> {
//! let mut b = AssayBuilder::new("toy");
//! let r1 = b.reagent("sample");
//! let r2 = b.reagent("buffer");
//! let mix = b.op("mix", OpKind::Mix, 3, [r1.into(), r2.into()])?;
//! let det = b.op("detect", OpKind::Detect, 2, [mix.into()])?;
//! let assay = b.build()?;
//! assert_eq!(assay.ops().len(), 2);
//! assert_eq!(assay.topological_order(), &[mix, det]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod builder;
mod error;
mod fluid;
mod graph;
mod op;
pub mod synthetic;

pub use builder::AssayBuilder;
pub use error::AssayError;
pub use fluid::FluidType;
pub use graph::AssayGraph;
pub use op::{OpId, OpInput, OpKind, Operation, ReagentId};

/// Time quantum of the scheduling model: whole seconds, as in the paper's
/// schedules (Figs. 2–3 tick in 1 s slots).
pub type Seconds = u32;
