//! Biochemical operations and their inputs.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Seconds;

/// Identifier of a biochemical operation within an [`AssayGraph`].
///
/// Ids are dense indices in insertion order.
///
/// [`AssayGraph`]: crate::AssayGraph
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0 + 1)
    }
}

/// Identifier of an input reagent within an [`AssayGraph`].
///
/// [`AssayGraph`]: crate::AssayGraph
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReagentId(pub u32);

impl fmt::Display for ReagentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0 + 1)
    }
}

/// One input of an operation: either a raw reagent or the result fluid of an
/// upstream operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpInput {
    /// A reagent injected from a flow port.
    Reagent(ReagentId),
    /// The result of another operation.
    Op(OpId),
}

impl From<ReagentId> for OpInput {
    fn from(r: ReagentId) -> Self {
        OpInput::Reagent(r)
    }
}

impl From<OpId> for OpInput {
    fn from(o: OpId) -> Self {
        OpInput::Op(o)
    }
}

impl fmt::Display for OpInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpInput::Reagent(r) => write!(f, "{r}"),
            OpInput::Op(o) => write!(f, "{o}"),
        }
    }
}

/// The biochemical kind of an operation, which determines the device kind
/// that can execute it and whether the operation chemically transforms its
/// input fluid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Combine two input fluids into a mixture (2 inputs).
    Mix,
    /// Thermally cycle or incubate a fluid (1 input).
    Heat,
    /// Optically/electrochemically read a fluid without altering it
    /// (1 input).
    Detect,
    /// Remove particulates from a fluid (1 input).
    Filter,
    /// Separate a component out of a fluid (1 input).
    Separate,
    /// Hold a fluid in channel storage without altering it (1 input).
    Store,
}

impl OpKind {
    /// Minimum number of input fluids the operation consumes.
    pub fn min_arity(self) -> usize {
        match self {
            OpKind::Mix => 2,
            _ => 1,
        }
    }

    /// Maximum number of input fluids the operation consumes.
    ///
    /// Mixers can be loaded with up to four plugs sequentially (multi-reagent
    /// mixes are common in e.g. kinase-activity assays); all other devices
    /// process exactly one plug.
    pub fn max_arity(self) -> usize {
        match self {
            OpKind::Mix => 4,
            _ => 1,
        }
    }

    /// Whether the result fluid is chemically the *same type* as the input.
    ///
    /// Detection and storage leave the fluid unchanged; the paper's Type-2
    /// wash exemption ("contaminated resources used to transport the same
    /// type of fluids") hinges on this distinction — e.g. the `o_4` result in
    /// Fig. 2(b) is the same fluid that previously traversed
    /// `s_5 → s_6 → s_7`, so that path needs no wash.
    pub fn preserves_fluid(self) -> bool {
        matches!(self, OpKind::Detect | OpKind::Store)
    }

    /// Short lowercase name, e.g. `"mix"`.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Mix => "mix",
            OpKind::Heat => "heat",
            OpKind::Detect => "detect",
            OpKind::Filter => "filter",
            OpKind::Separate => "separate",
            OpKind::Store => "store",
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A biochemical operation: a node of the sequencing graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Operation {
    label: String,
    kind: OpKind,
    duration: Seconds,
    inputs: Vec<OpInput>,
}

impl Operation {
    pub(crate) fn new(
        label: String,
        kind: OpKind,
        duration: Seconds,
        inputs: Vec<OpInput>,
    ) -> Self {
        Self {
            label,
            kind,
            duration,
            inputs,
        }
    }

    /// Human-readable label, e.g. `"mix primers"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The operation's biochemical kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Execution time `t(o_i)` in seconds (Eq. 1 of the paper).
    pub fn duration(&self) -> Seconds {
        self.duration
    }

    /// The operation's inputs, in positional order.
    pub fn inputs(&self) -> &[OpInput] {
        &self.inputs
    }

    /// Upstream operations this operation depends on.
    pub fn parent_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.inputs.iter().filter_map(|i| match i {
            OpInput::Op(o) => Some(*o),
            OpInput::Reagent(_) => None,
        })
    }

    /// Reagents consumed directly by this operation.
    pub fn reagent_inputs(&self) -> impl Iterator<Item = ReagentId> + '_ {
        self.inputs.iter().filter_map(|i| match i {
            OpInput::Reagent(r) => Some(*r),
            OpInput::Op(_) => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(OpKind::Mix.min_arity(), 2);
        assert_eq!(OpKind::Mix.max_arity(), 4);
        for k in [
            OpKind::Heat,
            OpKind::Detect,
            OpKind::Filter,
            OpKind::Separate,
            OpKind::Store,
        ] {
            assert_eq!(k.min_arity(), 1);
            assert_eq!(k.max_arity(), 1);
        }
    }

    #[test]
    fn fluid_preservation() {
        assert!(OpKind::Detect.preserves_fluid());
        assert!(OpKind::Store.preserves_fluid());
        assert!(!OpKind::Mix.preserves_fluid());
        assert!(!OpKind::Heat.preserves_fluid());
    }

    #[test]
    fn operation_accessors() {
        let op = Operation::new(
            "m".into(),
            OpKind::Mix,
            5,
            vec![OpInput::Reagent(ReagentId(0)), OpInput::Op(OpId(3))],
        );
        assert_eq!(op.duration(), 5);
        assert_eq!(op.parent_ops().collect::<Vec<_>>(), vec![OpId(3)]);
        assert_eq!(op.reagent_inputs().collect::<Vec<_>>(), vec![ReagentId(0)]);
    }

    #[test]
    fn ids_display_one_based() {
        assert_eq!(OpId(0).to_string(), "o1");
        assert_eq!(ReagentId(1).to_string(), "r2");
    }
}
