//! Deterministic generator for synthetic benchmark assays.
//!
//! The paper's three synthetic benchmarks are random sequencing graphs of
//! given sizes (Table II). This module reproduces them with a seeded,
//! fully deterministic generator: the same [`SyntheticSpec`] always yields
//! the same [`Benchmark`], so experiment tables are reproducible run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::benchmarks::Benchmark;
use crate::builder::AssayBuilder;
use crate::op::{OpId, OpInput, OpKind};
use crate::Seconds;

/// Parameters of a synthetic benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyntheticSpec {
    /// Benchmark name.
    pub name: String,
    /// `|O|`: number of operations.
    pub ops: usize,
    /// `|E|`: target extended edge count (dependencies + reagent injections
    /// + outputs). Matched exactly.
    pub edges: usize,
    /// `|D|`: number of devices in the library.
    pub devices: usize,
    /// RNG seed; the generator is deterministic in the full spec.
    pub seed: u64,
    /// Suggested grid size for synthesis.
    pub grid: (u16, u16),
}

const SINGLE_KINDS: [OpKind; 5] = [
    OpKind::Heat,
    OpKind::Detect,
    OpKind::Filter,
    OpKind::Separate,
    OpKind::Store,
];

fn duration_for(kind: OpKind, rng: &mut StdRng) -> Seconds {
    match kind {
        OpKind::Mix => rng.gen_range(2..=5),
        OpKind::Heat => rng.gen_range(4..=8),
        OpKind::Detect => rng.gen_range(2..=3),
        OpKind::Filter => rng.gen_range(2..=4),
        OpKind::Separate => rng.gen_range(3..=5),
        OpKind::Store => rng.gen_range(1..=2),
    }
}

/// Generates a synthetic benchmark matching `spec` exactly
/// (`|O|`, `|D|`, and `|E|`).
///
/// # Panics
///
/// Panics if no graph with the requested sizes exists within the generator's
/// structural family (operation count too small for the edge count, or vice
/// versa). All specs shipped in [`benchmarks`](crate::benchmarks) are
/// feasible.
pub fn generate(spec: &SyntheticSpec) -> Benchmark {
    for attempt in 0..10_000u64 {
        if let Some(b) = try_generate(spec, attempt) {
            debug_assert_eq!(b.graph.edge_count(), spec.edges);
            return b;
        }
    }
    panic!(
        "no synthetic assay with |O|={}, |E|={} found; spec is infeasible",
        spec.ops, spec.edges
    );
}

fn try_generate(spec: &SyntheticSpec, attempt: u64) -> Option<Benchmark> {
    let mut rng = StdRng::seed_from_u64(spec.seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)));
    let o = spec.ops;

    // Pick the number of mix operations and their arities so that a
    // dependency count d with 0 <= d <= O-1 can realize the edge target:
    //   |E| = inputs + sinks = (O + extra) + (O - d)  =>  d = 2O + extra - E.
    let max_mixes = (o / 2).max(1);
    let m = rng.gen_range(1..=max_mixes);
    let arities: Vec<usize> = (0..m).map(|_| rng.gen_range(2..=4)).collect();
    let extra: usize = arities.iter().map(|a| a - 1).sum();
    let d = (2 * o + extra).checked_sub(spec.edges)?;
    if d > o - 1 {
        return None;
    }

    // Lay out the op sequence: mixes at random positions (never first, so a
    // mix can draw on earlier results), singles elsewhere.
    let mut is_mix = vec![false; o];
    {
        let mut placed = 0;
        while placed < m {
            let pos = rng.gen_range(if o > 1 { 1 } else { 0 }..o);
            if !is_mix[pos] {
                is_mix[pos] = true;
                placed += 1;
            }
        }
    }

    let mut b = AssayBuilder::new(&spec.name);
    let mut pool: Vec<OpId> = Vec::new(); // unconsumed results
    let mut deps_left = d;
    let mut mix_idx = 0;
    for i in 0..o {
        let (kind, arity) = if is_mix[i] {
            let a = arities[mix_idx];
            mix_idx += 1;
            (OpKind::Mix, a)
        } else {
            (SINGLE_KINDS[rng.gen_range(0..SINGLE_KINDS.len())], 1)
        };

        // Remaining input slots after this op (upper bound on future deps).
        let future_slots: usize = (i + 1..o)
            .map(|j| {
                if is_mix[j] {
                    // Arity of the j-th mix, found by counting mixes before j.
                    let k = is_mix[..j].iter().filter(|&&x| x).count();
                    arities[k]
                } else {
                    1
                }
            })
            .sum();

        let max_k = arity.min(pool.len()).min(deps_left);
        let min_k = deps_left.saturating_sub(future_slots).min(max_k);
        let k = if max_k == 0 {
            0
        } else {
            rng.gen_range(min_k..=max_k)
        };

        let mut inputs: Vec<OpInput> = Vec::with_capacity(arity);
        for _ in 0..k {
            let idx = rng.gen_range(0..pool.len());
            inputs.push(pool.swap_remove(idx).into());
        }
        while inputs.len() < arity {
            let r = b.reagent(&format!("r{}", i * 4 + inputs.len() + 1));
            inputs.push(r.into());
        }
        deps_left -= k;

        let dur = duration_for(kind, &mut rng);
        let id = b
            .op(&format!("{} {}", kind.name(), i + 1), kind, dur, inputs)
            .ok()?;
        pool.push(id);
    }
    if deps_left != 0 {
        return None;
    }

    let graph = b.build().ok()?;
    if graph.edge_count() != spec.edges {
        return None;
    }

    // Device library: one device per required kind, then duplicates
    // allocated to the kinds with the highest operations-per-device load
    // (as a chip designer would provision; it also keeps the list scheduler
    // away from single-device residency deadlocks).
    let required = graph.required_kinds();
    if required.len() > spec.devices {
        return None;
    }
    let mut devices = required.clone();
    let usage = |k: OpKind| graph.ops().iter().filter(|o| o.kind() == k).count() as f64;
    while devices.len() < spec.devices {
        let next = required
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let load =
                    |k: OpKind| usage(k) / devices.iter().filter(|&&d| d == k).count() as f64;
                load(a).partial_cmp(&load(b)).expect("loads are finite")
            })
            .expect("required kinds are nonempty");
        devices.push(next);
    }

    Some(Benchmark {
        name: spec.name.clone(),
        graph,
        devices,
        grid: spec.grid,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ops: usize, edges: usize, devices: usize, seed: u64) -> SyntheticSpec {
        SyntheticSpec {
            name: "syn".into(),
            ops,
            edges,
            devices,
            seed,
            grid: (15, 15),
        }
    }

    #[test]
    fn generates_exact_sizes() {
        for (o, e, d) in [(10, 15, 12), (15, 24, 13), (20, 28, 18), (8, 14, 6)] {
            let b = generate(&spec(o, e, d, 42));
            assert_eq!(b.op_count(), o);
            assert_eq!(b.edge_count(), e);
            assert_eq!(b.device_count(), d);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&spec(12, 20, 10, 7));
        let b = generate(&spec(12, 20, 10, 7));
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&spec(12, 20, 10, 7));
        let b = generate(&spec(12, 20, 10, 8));
        // Graphs are random; with overwhelming probability they differ.
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn library_covers_required_kinds() {
        let b = generate(&spec(14, 22, 9, 3));
        for k in b.graph.required_kinds() {
            assert!(b.devices.contains(&k));
        }
    }
}
