//! Property tests for the assay model and the synthetic generator.

use proptest::prelude::*;

use pdw_assay::synthetic::{generate, SyntheticSpec};
use pdw_assay::{OpInput, Seconds};

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (4usize..=16, 0usize..=5, 5usize..=12, any::<u64>()).prop_map(|(ops, extra, devices, seed)| {
        SyntheticSpec {
            name: format!("prop-{seed:x}"),
            ops,
            edges: 2 * ops - ops / 2 + extra,
            devices,
            seed,
            grid: (15, 15),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The generator hits the requested sizes exactly and produces graphs
    /// that satisfy every structural invariant.
    #[test]
    fn generated_graphs_are_valid_and_sized(spec in spec_strategy()) {
        let b = generate(&spec);
        prop_assert_eq!(b.op_count(), spec.ops);
        prop_assert_eq!(b.edge_count(), spec.edges);
        prop_assert_eq!(b.device_count(), spec.devices);
        prop_assert!(b.graph.revalidate().is_ok());
        for kind in b.graph.required_kinds() {
            prop_assert!(b.devices.contains(&kind), "library lacks {kind}");
        }
    }

    /// Insertion order is topological: every operation's op-inputs have
    /// strictly smaller indices; each result is consumed at most once.
    #[test]
    fn topology_and_single_consumption(spec in spec_strategy()) {
        let g = generate(&spec).graph;
        let mut consumed = vec![0usize; g.ops().len()];
        for id in g.op_ids() {
            for input in g.op(id).inputs() {
                if let OpInput::Op(p) = input {
                    prop_assert!(p.0 < id.0, "forward reference {p} in {id}");
                    consumed[p.0 as usize] += 1;
                }
            }
        }
        prop_assert!(consumed.iter().all(|&c| c <= 1));
        // Sinks are exactly the unconsumed results.
        let sinks = g.sinks();
        for id in g.op_ids() {
            prop_assert_eq!(
                sinks.contains(&id),
                consumed[id.0 as usize] == 0,
                "sink set mismatch at {}", id
            );
        }
    }

    /// The critical path is bounded by the total work and at least the
    /// longest single operation.
    #[test]
    fn critical_path_bounds(spec in spec_strategy()) {
        let g = generate(&spec).graph;
        let total: Seconds = g.ops().iter().map(|o| o.duration()).sum();
        let longest: Seconds = g.ops().iter().map(|o| o.duration()).max().unwrap_or(0);
        let cp = g.critical_path_seconds();
        prop_assert!(cp <= total);
        prop_assert!(cp >= longest);
    }

    /// Fluid typing: fluid-preserving operations propagate their input's
    /// type, transforming operations mint fresh ones.
    #[test]
    fn fluid_propagation(spec in spec_strategy()) {
        let g = generate(&spec).graph;
        for id in g.op_ids() {
            let op = g.op(id);
            let out = g.output_fluid(id);
            if op.kind().preserves_fluid() {
                prop_assert_eq!(out, g.input_fluid(op.inputs()[0]));
            } else {
                // Fresh type: differs from every input fluid.
                for &input in op.inputs() {
                    prop_assert_ne!(out, g.input_fluid(input));
                }
            }
        }
    }
}
