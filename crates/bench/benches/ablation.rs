//! Ablation benches for the three PDW techniques (DESIGN.md):
//!
//! - necessity analysis off (every reused contaminated cell is washed),
//! - integration (ψ) off (excess removals are never merged into washes),
//! - merging off (one wash per contamination source),
//! - ILP off (greedy sweep-line placement only).
//!
//! Each variant's wall-clock time is benched; the printed summary after the
//! run (stderr) reports the metric deltas on the demo assay.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathdriver_wash::{pdw, PdwConfig};
use pdw_assay::benchmarks;
use pdw_synth::synthesize;

fn variants() -> Vec<(&'static str, PdwConfig)> {
    let base = PdwConfig {
        ilp_budget: Duration::from_millis(500),
        ..PdwConfig::default()
    };
    vec![
        ("full", base.clone()),
        (
            "no-necessity",
            PdwConfig {
                necessity_analysis: false,
                ..base.clone()
            },
        ),
        (
            "no-integration",
            PdwConfig {
                integration: false,
                ..base.clone()
            },
        ),
        (
            "no-merging",
            PdwConfig {
                merging: false,
                ..base.clone()
            },
        ),
        (
            "no-ilp",
            PdwConfig {
                ilp: false,
                ..base.clone()
            },
        ),
    ]
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for bench in [benchmarks::pcr(), benchmarks::synthetic1()] {
        let synthesis = synthesize(&bench).expect("synthesis succeeds");
        for (name, config) in variants() {
            group.bench_with_input(BenchmarkId::new(name, &bench.name), &config, |b, config| {
                b.iter(|| pdw(&bench, &synthesis, config).expect("pdw succeeds"))
            });
        }
    }
    group.finish();

    // Metric deltas (reported once, not timed). IVD shows the techniques'
    // effects most clearly among the real-life benchmarks.
    let bench = benchmarks::ivd();
    let synthesis = synthesize(&bench).expect("synthesis succeeds");
    eprintln!("\nablation metrics on IVD:");
    for (name, config) in variants() {
        let r = pdw(&bench, &synthesis, &config).expect("pdw succeeds");
        eprintln!(
            "  {:<15} N_wash={:<3} L_wash={:>5.0} mm  T_assay={:>4} s  integrated={}",
            name, r.metrics.n_wash, r.metrics.l_wash_mm, r.metrics.t_assay, r.integrated
        );
    }
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
