//! Micro-benchmarks of the MILP substrate: LP relaxations and
//! branch-and-bound on the constraint classes PathDriver-Wash generates
//! (difference constraints, big-M disjunctions, selection rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdw_bench::models::{difference_chain, disjunctive};
use pdw_ilp::{solve, solve_lp, SolveOptions};

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for n in [50usize, 200, 800] {
        let m = difference_chain(n);
        group.bench_with_input(BenchmarkId::new("difference_chain", n), &m, |b, m| {
            b.iter(|| solve_lp(m))
        });
    }
    group.finish();
}

fn bench_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_and_bound");
    group.sample_size(10);
    for k in [3usize, 5, 7] {
        let m = disjunctive(k);
        group.bench_with_input(BenchmarkId::new("disjunctive_jobs", k), &m, |b, m| {
            b.iter(|| solve(m, &SolveOptions::default()).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp, bench_bnb);
criterion_main!(benches);
