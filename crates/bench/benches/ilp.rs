//! Micro-benchmarks of the MILP substrate: LP relaxations and
//! branch-and-bound on the constraint classes PathDriver-Wash generates
//! (difference constraints, big-M disjunctions, selection rows).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pdw_ilp::{solve, solve_lp, Model, Relation, SolveOptions};

/// A chain of difference constraints (retiming skeleton).
fn difference_chain(n: usize) -> Model {
    let mut m = Model::new("chain");
    let vars: Vec<_> = (0..n)
        .map(|i| m.continuous(&format!("s{i}"), 0.0, 1e4, if i + 1 == n { 1.0 } else { 0.0 }))
        .collect();
    for w in vars.windows(2) {
        m.constraint([(w[1], 1.0), (w[0], -1.0)], Relation::Ge, 3.0);
    }
    m
}

/// A disjunctive scheduling core: k unit jobs on one machine (big-M pairs).
fn disjunctive(k: usize) -> Model {
    let mut m = Model::new("disj");
    const M: f64 = 1e3;
    let starts: Vec<_> = (0..k).map(|i| m.continuous(&format!("s{i}"), 0.0, M, 0.0)).collect();
    let end = m.continuous("end", 0.0, M, 1.0);
    for i in 0..k {
        m.constraint([(end, 1.0), (starts[i], -1.0)], Relation::Ge, 1.0);
        for j in i + 1..k {
            let b = m.binary(&format!("o{i}_{j}"), 0.0);
            m.constraint(
                [(starts[j], 1.0), (starts[i], -1.0), (b, -M)],
                Relation::Ge,
                1.0 - M,
            );
            m.constraint(
                [(starts[i], 1.0), (starts[j], -1.0), (b, M)],
                Relation::Ge,
                1.0,
            );
        }
    }
    m
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for n in [50usize, 200, 800] {
        let m = difference_chain(n);
        group.bench_with_input(BenchmarkId::new("difference_chain", n), &m, |b, m| {
            b.iter(|| solve_lp(m))
        });
    }
    group.finish();
}

fn bench_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_and_bound");
    group.sample_size(10);
    for k in [3usize, 5, 7] {
        let m = disjunctive(k);
        group.bench_with_input(BenchmarkId::new("disjunctive_jobs", k), &m, |b, m| {
            b.iter(|| solve(m, &SolveOptions::default()).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp, bench_bnb);
criterion_main!(benches);
