//! Criterion bench behind Table II: times synthesis, DAWO, and PDW on every
//! benchmark of the suite.
//!
//! The ILP budget is capped at one second per run so the bench finishes
//! interactively; the printed table (`--bin table2`) is the artifact that
//! uses the full budget.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathdriver_wash::{dawo, pdw, PdwConfig};
use pdw_assay::benchmarks;
use pdw_synth::synthesize;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    // The printed table (`--bin table2`) covers the full suite; timing four
    // representative sizes keeps `cargo bench` interactive.
    let config = PdwConfig {
        ilp_budget: Duration::from_millis(500),
        ..PdwConfig::default()
    };
    let picks = ["PCR", "IVD", "Kinase act-2", "Synthetic3"];
    for bench in benchmarks::suite()
        .into_iter()
        .filter(|b| picks.contains(&b.name.as_str()))
    {
        let synthesis = synthesize(&bench).expect("synthesis succeeds");
        group.bench_with_input(BenchmarkId::new("dawo", &bench.name), &bench, |b, bench| {
            b.iter(|| dawo(bench, &synthesis).expect("dawo succeeds"))
        });
        group.bench_with_input(BenchmarkId::new("pdw", &bench.name), &bench, |b, bench| {
            b.iter(|| pdw(bench, &synthesis, &config).expect("pdw succeeds"))
        });
    }
    group.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    for bench in benchmarks::suite() {
        group.bench_with_input(
            BenchmarkId::from_parameter(&bench.name),
            &bench,
            |b, bench| b.iter(|| synthesize(bench).expect("synthesis succeeds")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_synthesis);
criterion_main!(benches);
