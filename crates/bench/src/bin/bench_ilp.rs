//! MILP solver baseline: node throughput, warm-start effectiveness, and
//! thread-scaling on synthetic models plus the full Table II pipeline.
//!
//! Usage: `cargo run -p pdw-bench --bin bench_ilp --release [-- --out <path>]`
//!
//! Writes `BENCH_ilp.json` (machine-readable [`pdw_ilp::SolverStats`] per
//! run) and prints a human summary. The committed JSON is the reference
//! baseline for the solver's performance; regenerate it on the same class
//! of machine before comparing numbers.
//!
//! Two throughput views are reported per synthetic model:
//!
//! - `nodes_per_sec` at 1/2/4 threads (thread scaling; objectives must be
//!   identical at every thread count), and
//! - `node_speedup_vs_cold_lp`: the per-node time of the search divided
//!   into the time of one standalone cold LP solve (`solve_lp`) of the same
//!   model — i.e. how much the warm-started, workspace-reusing node path
//!   gains over solving every node from scratch, which is what the
//!   sequential solver did before warm starts.

use std::time::Instant;

use pdw_bench::models::{difference_chain, disjunctive, disjunctive_chain, multi_knapsack};
use pdw_ilp::{solve, solve_lp, LpOutcome, Model, SolveOptions, SolverStats};
use serde::Serialize;

#[derive(Serialize)]
struct Run {
    threads: usize,
    objective: f64,
    optimal: bool,
    stats: SolverStats,
}

#[derive(Serialize)]
struct SyntheticReport {
    model: String,
    rows: usize,
    vars: usize,
    runs: Vec<Run>,
    /// Milliseconds for one standalone cold LP solve of the root model.
    cold_lp_ms: f64,
    /// Milliseconds per branch-and-bound node (single-thread run).
    per_node_ms: f64,
    /// `cold_lp_ms / per_node_ms` — per-node gain of the warm-started path
    /// over from-scratch node LPs.
    node_speedup_vs_cold_lp: f64,
}

#[derive(Serialize)]
struct Table2Report {
    benchmark: String,
    used_ilp: bool,
    stats: Option<SolverStats>,
}

#[derive(Serialize)]
struct Report {
    available_parallelism: usize,
    thread_counts: Vec<usize>,
    synthetic: Vec<SyntheticReport>,
    table2: Vec<Table2Report>,
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn time_cold_lp(m: &Model) -> f64 {
    // Warm the caches once, then take the best of a few runs (least noise).
    let _ = solve_lp(m);
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        let out = solve_lp(m);
        let dt = t.elapsed().as_secs_f64() * 1e3;
        assert!(
            matches!(out, LpOutcome::Optimal(_)),
            "baseline LP must solve"
        );
        best = best.min(dt);
    }
    best
}

fn synthetic(name: &str, m: Model) -> SyntheticReport {
    let mut runs = Vec::new();
    for &threads in &THREAD_COUNTS {
        let opts = SolveOptions {
            threads,
            ..SolveOptions::default()
        };
        let sol = solve(&m, &opts).expect("synthetic model is feasible");
        runs.push(Run {
            threads,
            objective: sol.objective,
            optimal: sol.status == pdw_ilp::SolveStatus::Optimal,
            stats: sol.stats,
        });
    }
    // The search must prove the same optimum at every thread count.
    for r in &runs[1..] {
        assert!(
            (r.objective - runs[0].objective).abs() < 1e-9,
            "{name}: objective at {} threads ({}) differs from 1 thread ({})",
            r.threads,
            r.objective,
            runs[0].objective
        );
    }
    let cold_lp_ms = time_cold_lp(&m);
    let single = &runs[0].stats;
    let per_node_ms = if single.nodes > 0 {
        single.search_time_s * 1e3 / single.nodes as f64
    } else {
        0.0
    };
    SyntheticReport {
        model: name.to_string(),
        rows: m.num_constraints(),
        vars: m.num_vars(),
        runs,
        cold_lp_ms,
        per_node_ms,
        node_speedup_vs_cold_lp: if per_node_ms > 0.0 {
            cold_lp_ms / per_node_ms
        } else {
            0.0
        },
    }
}

fn main() {
    let mut out = "BENCH_ilp.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out = args.next().expect("--out needs a path");
        }
    }

    let synthetic_reports = vec![
        synthetic("difference_chain_400", difference_chain(400)),
        synthetic("disjunctive_5", disjunctive(5)),
        synthetic("disjunctive_6", disjunctive(6)),
        synthetic("disjunctive_chain_4x60", disjunctive_chain(4, 60)),
        synthetic("disjunctive_chain_5x40", disjunctive_chain(5, 40)),
        synthetic("multi_knapsack_18x3", multi_knapsack(18, 3)),
    ];

    println!(
        "{:<22} {:>6} {:>6} | {:>9} {:>9} {:>9} | {:>8} {:>8} {:>7}",
        "model", "rows", "vars", "n/s @1t", "n/s @2t", "n/s @4t", "warm%", "LP ms", "vs cold"
    );
    for r in &synthetic_reports {
        let nps: Vec<f64> = r.runs.iter().map(|x| x.stats.nodes_per_sec).collect();
        let warm_pct = {
            let s = &r.runs[0].stats;
            let total = s.warm_lps + s.cold_lps;
            if total > 0 {
                100.0 * s.warm_lps as f64 / total as f64
            } else {
                0.0
            }
        };
        println!(
            "{:<22} {:>6} {:>6} | {:>9.0} {:>9.0} {:>9.0} | {:>7.1}% {:>8.3} {:>6.1}x",
            r.model,
            r.rows,
            r.vars,
            nps[0],
            nps[1],
            nps[2],
            warm_pct,
            r.cold_lp_ms,
            r.node_speedup_vs_cold_lp
        );
    }

    let config = pdw_bench::experiment_config();
    let table2: Vec<Table2Report> = pdw_bench::run_suite(&config)
        .into_iter()
        .map(|row| Table2Report {
            benchmark: row.name,
            used_ilp: row.used_ilp,
            stats: row.solver_stats,
        })
        .collect();
    for t in &table2 {
        match &t.stats {
            Some(s) => println!(
                "table2[{}]: {} nodes, {:.0} nodes/s, {} pivots, warm/cold {}/{}",
                t.benchmark, s.nodes, s.nodes_per_sec, s.lp_pivots, s.warm_lps, s.cold_lps
            ),
            None => println!("table2[{}]: ILP refinement not adopted", t.benchmark),
        }
    }

    let report = Report {
        available_parallelism: std::thread::available_parallelism().map_or(1, |p| p.get()),
        thread_counts: THREAD_COUNTS.to_vec(),
        synthetic: synthetic_reports,
        table2,
    };
    pdw_bench::models::write_report(&out, &report);
}
