//! Chip-partitioning benchmark: whole-chip planning vs the partitioned
//! pipeline on a `mega` instance (banded grid, [`pdw_gen::mega_instance`]).
//!
//! Usage:
//!
//! ```text
//! bench_partition [--smoke] [--out FILE] [--side N] [--ops N] [--seed N]
//! ```
//!
//! The full run sweeps K ∈ {1, 4, 16} partitions × {1, 8} worker threads on
//! one mega instance (default 129×129, 16 ops, seed 5 — sized so the
//! super-linear whole-chip baseline completes in about a minute on one core;
//! push `--side` up to 1000 and `--ops` into the hundreds on bigger
//! machines), records wall
//! time and objective per point, and writes `BENCH_partition.json` (or
//! `--out FILE`). K = 1 *is* the whole-chip path (`plan_partitioned`
//! delegates to the unpartitioned ladder), so the headline speedup is
//! `wall(K=1) / wall(K=16)` at 8 threads.
//!
//! `--smoke` runs a small instance (65×65, 16 ops) at K ∈ {1, 4} only,
//! asserts the partitioned objective stays within 5% of the whole-chip
//! objective, and still writes the JSON artifact — the CI regression gate.

use std::time::Instant;

use pathdriver_wash::{plan_partitioned, PdwConfig, RungKind, Weights};
use pdw_assay::benchmarks::Benchmark;
use pdw_synth::Synthesis;
use serde::Serialize;

/// One (partitions, threads) measurement.
#[derive(Debug, Serialize)]
struct Point {
    partitions: usize,
    threads: usize,
    wall_s: f64,
    objective: f64,
    n_wash: usize,
    rung: String,
    regions: usize,
    regions_skipped: usize,
    regions_refused: usize,
    seam_groups: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    instance: String,
    side: u16,
    ops: usize,
    points: Vec<Point>,
    /// `wall(K=1) / wall(K=max)` at 8 threads — the headline number.
    speedup_8t: f64,
    /// `wall(K=1) / wall(K=max)`, both single-threaded (cut benefit alone).
    speedup_1t: f64,
    /// Worst `objective(K) / objective(K=1) − 1` over the sweep at 8
    /// threads (how much plan quality the cuts cost).
    objective_gap: f64,
}

fn solve(bench: &Benchmark, s: &Synthesis, partitions: usize, threads: usize) -> Point {
    let config = PdwConfig {
        ilp: false,
        threads,
        ..PdwConfig::default()
    };
    let t0 = Instant::now();
    let outcome = plan_partitioned(bench, s, &config, partitions);
    let wall_s = t0.elapsed().as_secs_f64();
    let r = outcome.served.expect("mega instance serves a plan");
    let point = Point {
        partitions,
        threads,
        wall_s,
        objective: r.objective(&Weights::default()),
        n_wash: r.metrics.n_wash,
        rung: outcome
            .rung
            .map(|k| k.to_string())
            .unwrap_or_else(|| "none".into()),
        regions: r.pipeline.partition_regions,
        regions_skipped: r.pipeline.regions_skipped,
        regions_refused: r.pipeline.regions_refused,
        seam_groups: r.pipeline.seam_groups,
    };
    if partitions >= 2 {
        assert_eq!(
            outcome.rung,
            Some(RungKind::Partitioned),
            "partitioned rung rejected at K={partitions}, {threads} threads"
        );
    }
    point
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {flag} `{v}`")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_partition.json");
    let side = arg_value(&args, "--side").unwrap_or(if smoke { 65 } else { 129 }) as u16;
    let ops = arg_value(&args, "--ops").unwrap_or(16) as usize;
    let seed = arg_value(&args, "--seed").unwrap_or(if smoke { 3 } else { 5 });

    let spec = pdw_gen::mega_spec(side, ops, seed);
    let (bench, s) = pdw_gen::mega_instance(&spec).expect("mega instance synthesizes");
    println!(
        "instance {} ({}x{} cells, {} ops, {} devices)",
        bench.name,
        side,
        side,
        bench.op_count(),
        bench.device_count()
    );

    let ks: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let mut points = Vec::new();
    for &k in ks {
        for threads in [1usize, 8] {
            let p = solve(&bench, &s, k, threads);
            println!(
                "K={:<3} t={} wall {:>8.3}s objective {:>12.1} (N_wash {}, rung {}, \
                 {} regions, {} skipped, {} refused, {} seam groups)",
                p.partitions,
                p.threads,
                p.wall_s,
                p.objective,
                p.n_wash,
                p.rung,
                p.regions,
                p.regions_skipped,
                p.regions_refused,
                p.seam_groups,
            );
            points.push(p);
        }
    }

    let k_max = *ks.last().expect("sweep is non-empty");
    let at = |k: usize, t: usize| {
        points
            .iter()
            .find(|p| p.partitions == k && p.threads == t)
            .expect("swept point")
    };
    let whole_8t = at(1, 8);
    let speedup_8t = whole_8t.wall_s / at(k_max, 8).wall_s;
    let speedup_1t = at(1, 1).wall_s / at(k_max, 1).wall_s;
    let objective_gap = points
        .iter()
        .filter(|p| p.threads == 8)
        .map(|p| p.objective / whole_8t.objective - 1.0)
        .fold(0.0f64, f64::max);
    println!(
        "speedup K={k_max} vs whole-chip: {speedup_8t:.2}x at 8 threads, \
         {speedup_1t:.2}x at 1 thread; worst objective gap {:.2}%",
        objective_gap * 100.0
    );

    if smoke {
        // The CI regression gate: cutting the chip may not cost more than
        // 5% objective on the smoke instance.
        assert!(
            objective_gap <= 0.05,
            "partitioned objective gap {:.4} exceeds 1.05x whole-chip",
            objective_gap
        );
        println!("smoke regression gate ok (gap <= 5%)");
    }

    let report = Report {
        instance: bench.name.clone(),
        side,
        ops,
        points,
        speedup_8t,
        speedup_1t,
        objective_gap,
    };
    pdw_bench::models::write_report(out_path, &report);
}
