//! Chip-partitioning benchmark: whole-chip planning vs the partitioned
//! pipeline on a `mega` instance (banded grid, [`pdw_gen::mega_instance`]).
//!
//! Usage:
//!
//! ```text
//! bench_partition [--smoke] [--subprocess] [--out FILE] [--side N] [--ops N] [--seed N]
//! ```
//!
//! The full run sweeps K ∈ {1, 4, 16} partitions × {1, 8} worker threads on
//! one mega instance (default 129×129, 16 ops, seed 5 — sized so the
//! super-linear whole-chip baseline completes in about a minute on one core;
//! push `--side` up to 1000 and `--ops` into the hundreds on bigger
//! machines), records wall
//! time and objective per point, and writes `BENCH_partition.json` (or
//! `--out FILE`). K = 1 *is* the whole-chip path (`plan_partitioned`
//! delegates to the unpartitioned ladder), so the headline speedup is
//! `wall(K=1) / wall(K=16)` at 8 threads.
//!
//! `--smoke` runs a small instance (65×65, 16 ops) at K ∈ {1, 4} only,
//! asserts the partitioned objective stays within 5% of the whole-chip
//! objective, and still writes the JSON artifact — the CI regression gate.
//!
//! `--subprocess` adds a column: every K ≥ 2 point is re-measured with
//! region front ends running in out-of-process workers (this binary
//! re-executed with `--worker`), and the subprocess schedule is asserted
//! bit-identical to the in-process one.

use std::time::Instant;

use pathdriver_wash::{
    plan_partitioned, plan_partitioned_with, PdwConfig, RegionExecutor, RungKind,
    SubprocessExecutor, Weights,
};
use pdw_assay::benchmarks::Benchmark;
use pdw_synth::Synthesis;
use serde::Serialize;

/// One (partitions, threads) measurement.
#[derive(Debug, Serialize)]
struct Point {
    partitions: usize,
    threads: usize,
    /// Where region front ends ran: `in-process` or `subprocess`.
    executor: String,
    /// Region jobs answered by a worker process (0 in-process).
    subprocess_jobs: usize,
    /// Region jobs replanned in-process after a worker failure.
    subprocess_fallbacks: usize,
    wall_s: f64,
    objective: f64,
    n_wash: usize,
    rung: String,
    regions: usize,
    regions_skipped: usize,
    regions_refused: usize,
    seam_groups: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    instance: String,
    side: u16,
    ops: usize,
    points: Vec<Point>,
    /// `wall(K=1) / wall(K=max)` at 8 threads — the headline number.
    speedup_8t: f64,
    /// `wall(K=1) / wall(K=max)`, both single-threaded (cut benefit alone).
    speedup_1t: f64,
    /// Worst `objective(K) / objective(K=1) − 1` over the sweep at 8
    /// threads (how much plan quality the cuts cost).
    objective_gap: f64,
    /// `wall(subprocess) / wall(in-process) − 1` at (K=max, 8 threads):
    /// what crossing a process boundary costs. `None` without
    /// `--subprocess`.
    subprocess_overhead: Option<f64>,
}

fn print_point(p: &Point) {
    println!(
        "K={:<3} t={} [{}] wall {:>8.3}s objective {:>12.1} (N_wash {}, rung {}, \
         {} regions, {} skipped, {} refused, {} seam groups, {} remote, {} fallback)",
        p.partitions,
        p.threads,
        p.executor,
        p.wall_s,
        p.objective,
        p.n_wash,
        p.rung,
        p.regions,
        p.regions_skipped,
        p.regions_refused,
        p.seam_groups,
        p.subprocess_jobs,
        p.subprocess_fallbacks,
    );
}

fn solve(
    bench: &Benchmark,
    s: &Synthesis,
    partitions: usize,
    threads: usize,
    executor: Option<&SubprocessExecutor>,
) -> (Point, pdw_sched::Schedule) {
    let config = PdwConfig {
        ilp: false,
        threads,
        ..PdwConfig::default()
    };
    let t0 = Instant::now();
    let outcome = match executor {
        Some(exec) => plan_partitioned_with(bench, s, &config, partitions, exec),
        None => plan_partitioned(bench, s, &config, partitions),
    };
    let wall_s = t0.elapsed().as_secs_f64();
    let (subprocess_jobs, subprocess_fallbacks) =
        executor.map_or((0, 0), RegionExecutor::subprocess_counters);
    let r = outcome.served.expect("mega instance serves a plan");
    let schedule = r.schedule.clone();
    let point = Point {
        partitions,
        threads,
        executor: executor.map_or("in-process", RegionExecutor::name).into(),
        subprocess_jobs,
        subprocess_fallbacks,
        wall_s,
        objective: r.objective(&Weights::default()),
        n_wash: r.metrics.n_wash,
        rung: outcome
            .rung
            .map(|k| k.to_string())
            .unwrap_or_else(|| "none".into()),
        regions: r.pipeline.partition_regions,
        regions_skipped: r.pipeline.regions_skipped,
        regions_refused: r.pipeline.regions_refused,
        seam_groups: r.pipeline.seam_groups,
    };
    if partitions >= 2 {
        assert_eq!(
            outcome.rung,
            Some(RungKind::Partitioned),
            "partitioned rung rejected at K={partitions}, {threads} threads"
        );
    }
    (point, schedule)
}

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|_| panic!("bad {flag} `{v}`")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--worker") {
        // Child mode for --subprocess: a framed region-planning loop on
        // stdin/stdout, exactly like `pdw worker`.
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        pathdriver_wash::run_worker(&mut stdin.lock(), &mut stdout.lock())
            .expect("worker protocol");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let subprocess = args.iter().any(|a| a == "--subprocess");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_partition.json");
    let side = arg_value(&args, "--side").unwrap_or(if smoke { 65 } else { 129 }) as u16;
    let ops = arg_value(&args, "--ops").unwrap_or(16) as usize;
    let seed = arg_value(&args, "--seed").unwrap_or(if smoke { 3 } else { 5 });

    let spec = pdw_gen::mega_spec(side, ops, seed);
    let (bench, s) = pdw_gen::mega_instance(&spec).expect("mega instance synthesizes");
    println!(
        "instance {} ({}x{} cells, {} ops, {} devices)",
        bench.name,
        side,
        side,
        bench.op_count(),
        bench.device_count()
    );

    let ks: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };
    let worker_cmd = std::env::current_exe()
        .map(|exe| vec![exe.display().to_string(), "--worker".to_string()])
        .expect("locate own binary");
    let mut points = Vec::new();
    for &k in ks {
        for threads in [1usize, 8] {
            let (p, schedule) = solve(&bench, &s, k, threads, None);
            print_point(&p);
            // The --subprocess column: same point, front ends in worker
            // processes, schedule asserted bit-identical.
            if subprocess && k >= 2 {
                let executor = SubprocessExecutor::new(worker_cmd.clone(), threads);
                let (sp, sp_schedule) = solve(&bench, &s, k, threads, Some(&executor));
                print_point(&sp);
                assert_eq!(
                    sp_schedule, schedule,
                    "K={k} t={threads}: subprocess schedule diverged from in-process"
                );
                assert_eq!(
                    sp.subprocess_fallbacks, 0,
                    "K={k} t={threads}: healthy workers fell back"
                );
                assert!(sp.subprocess_jobs > 0, "K={k} t={threads}: no remote jobs");
                points.push(sp);
            }
            points.push(p);
        }
    }

    let k_max = *ks.last().expect("sweep is non-empty");
    let at = |k: usize, t: usize| {
        points
            .iter()
            .find(|p| p.partitions == k && p.threads == t && p.executor == "in-process")
            .expect("swept point")
    };
    let whole_8t = at(1, 8);
    let speedup_8t = whole_8t.wall_s / at(k_max, 8).wall_s;
    let speedup_1t = at(1, 1).wall_s / at(k_max, 1).wall_s;
    let objective_gap = points
        .iter()
        .filter(|p| p.threads == 8)
        .map(|p| p.objective / whole_8t.objective - 1.0)
        .fold(0.0f64, f64::max);
    // Transport cost of crossing a process boundary per region job, at the
    // widest sweep point (only meaningful with --subprocess).
    let subprocess_overhead = points
        .iter()
        .find(|p| p.partitions == k_max && p.threads == 8 && p.executor != "in-process")
        .map(|p| p.wall_s / at(k_max, 8).wall_s - 1.0);
    println!(
        "speedup K={k_max} vs whole-chip: {speedup_8t:.2}x at 8 threads, \
         {speedup_1t:.2}x at 1 thread; worst objective gap {:.2}%",
        objective_gap * 100.0
    );
    if let Some(overhead) = subprocess_overhead {
        println!(
            "subprocess overhead at K={k_max}, 8 threads: {:+.1}% (bit-identical schedules)",
            overhead * 100.0
        );
    }

    if smoke {
        // The CI regression gate: cutting the chip may not cost more than
        // 5% objective on the smoke instance.
        assert!(
            objective_gap <= 0.05,
            "partitioned objective gap {:.4} exceeds 1.05x whole-chip",
            objective_gap
        );
        println!("smoke regression gate ok (gap <= 5%)");
    }

    let report = Report {
        instance: bench.name.clone(),
        side,
        ops,
        points,
        speedup_8t,
        speedup_1t,
        objective_gap,
        subprocess_overhead,
    };
    pdw_bench::models::write_report(out_path, &report);
}
