//! Front-end pipeline benchmark: measures the wash-path front end
//! (grouping + merging + greedy insertion) per bundled benchmark at 1 and 8
//! worker threads, and compares against the committed pre-refactor baseline
//! (`BENCH_pipeline_baseline.json`).
//!
//! Usage:
//!
//! ```text
//! bench_pipeline [--batch] [--smoke] [--out FILE]
//! ```
//!
//! `--smoke` runs only the demo benchmark once, prints the stage breakdown,
//! and writes nothing — a fast CI sanity check that the harness still runs.
//! The full run writes `BENCH_pipeline.json` (or `--out FILE`).
//!
//! `--batch` instead measures the planner engine's batched solve path:
//! a corpus of instances (bundled suite + seeded synthetic instances) is
//! solved by three planners per instance, once with cold one-shot `pdw`/
//! `dawo` calls and once through `plan_batch` with shared `PlanContext`s at
//! 1 and 8 worker threads. The run asserts the three paths produce
//! bit-identical schedules and metrics, then writes `BENCH_batch.json`
//! (or `--out FILE`) with the amortized and parallel speedups.
//! `--batch --smoke` runs a scaled-down corpus and writes nothing.

use std::collections::HashSet;
use std::time::Instant;

use pathdriver_wash::{
    build_groups, dawo, insert_washes_protected, merge_groups, pdw, plan_batch,
    split_into_spot_clusters, CandidatePolicy, DawoPlanner, GreedyPlanner, PdwConfig, Planner,
    WashResult,
};
use pdw_assay::benchmarks::{self, Benchmark};
use pdw_biochip::routing_counters;
use pdw_contam::{analyze, NecessityOptions};
use pdw_synth::Synthesis;
use serde::{Deserialize, Serialize};

/// One front-end measurement (best of three runs, by front-end time).
#[derive(Debug, Clone, Serialize)]
struct Measurement {
    threads: usize,
    requirements: usize,
    groups: usize,
    necessity_s: f64,
    grouping_s: f64,
    merge_s: f64,
    greedy_s: f64,
    front_end_s: f64,
    route_calls: u64,
    bfs_runs: u64,
    scratch_reuses: u64,
}

#[derive(Debug, Serialize)]
struct Row {
    benchmark: String,
    baseline_front_end_s: Option<f64>,
    serial: Measurement,
    parallel: Measurement,
    /// Committed pre-refactor serial front end / 8-thread front end.
    speedup_vs_baseline: Option<f64>,
    /// 1-thread front end / 8-thread front end (same binary).
    speedup_vs_serial: f64,
}

/// The schema of `BENCH_pipeline_baseline.json` (pre-refactor harness).
#[derive(Debug, Deserialize)]
struct BaselineRow {
    benchmark: String,
    front_end_s: f64,
}

fn measure(bench: &Benchmark, s: &Synthesis, threads: usize, repeats: usize) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..repeats {
        let c0 = routing_counters();
        let t0 = Instant::now();
        let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let necessity_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let groups = build_groups(
            &s.chip,
            &s.schedule,
            &a.requirements,
            CandidatePolicy::Shortest,
            3,
            threads,
        );
        let groups = split_into_spot_clusters(
            &s.chip,
            &s.schedule,
            groups,
            4,
            CandidatePolicy::Shortest,
            3,
            threads,
        );
        let grouping_s = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let groups = merge_groups(&s.chip, &s.schedule, groups, 3);
        let merge_s = t2.elapsed().as_secs_f64();

        let protected: HashSet<pdw_sched::TaskId> = s
            .schedule
            .tasks()
            .filter(|(_, t)| t.kind().is_waste_disposal())
            .map(|(id, _)| id)
            .filter(|id| !a.deletable.contains(id))
            .collect();
        let t3 = Instant::now();
        let out = insert_washes_protected(&s.chip, &s.schedule, &groups, true, &protected);
        let greedy_s = t3.elapsed().as_secs_f64();
        let d = routing_counters() - c0;

        let m = Measurement {
            threads,
            requirements: a.requirements.len(),
            groups: out.groups.len(),
            necessity_s,
            grouping_s,
            merge_s,
            greedy_s,
            front_end_s: grouping_s + merge_s + greedy_s,
            route_calls: d.route_calls,
            bfs_runs: d.bfs_runs,
            scratch_reuses: d.scratch_reuses,
        };
        if best.as_ref().is_none_or(|b| m.front_end_s < b.front_end_s) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

fn print_measurement(name: &str, m: &Measurement) {
    println!(
        "{:<14} t={} req={:<4} groups={:<4} grouping {:.4}s merge {:.4}s greedy {:.4}s \
         front-end {:.4}s (routes {}, bfs {}, reuses {})",
        name,
        m.threads,
        m.requirements,
        m.groups,
        m.grouping_s,
        m.merge_s,
        m.greedy_s,
        m.front_end_s,
        m.route_calls,
        m.bfs_runs,
        m.scratch_reuses,
    );
}

/// The `--batch` report: cold one-shot solves vs `plan_batch` over shared
/// contexts, with the bit-identity verdict.
#[derive(Debug, Serialize)]
struct BatchReport {
    instances: usize,
    planners: Vec<&'static str>,
    repeats: usize,
    /// Serial one-shot `dawo()`/`pdw()` calls, fresh context per call.
    cold_s: f64,
    /// `plan_batch` at 1 thread — isolates context/scratch amortization.
    batch_serial_s: f64,
    /// `plan_batch` at `batch_threads` threads — the headline number.
    batch_parallel_s: f64,
    batch_threads: usize,
    /// `cold_s / batch_serial_s` (shared-context amortization only).
    amortized_speedup: f64,
    /// `cold_s / batch_parallel_s` (amortization + fan-out).
    total_speedup: f64,
    /// Every schedule and metric identical across all three paths.
    bit_identical: bool,
}

/// Builds the batch corpus: bundled benchmarks plus seeded synthetic
/// instances from `pdw-gen` (infeasible seeds are skipped).
fn batch_corpus(smoke: bool) -> Vec<(Benchmark, Synthesis)> {
    let mut owned: Vec<(Benchmark, Synthesis)> = Vec::new();
    let benches: Vec<Benchmark> = if smoke {
        vec![benchmarks::demo()]
    } else {
        benchmarks::suite()
            .into_iter()
            .chain([benchmarks::demo()])
            .collect()
    };
    for b in benches {
        let s = pdw_synth::synthesize(&b).expect("bundled benchmark synthesizes");
        owned.push((b, s));
    }
    let seeds = if smoke { 0..4u64 } else { 0..24u64 };
    for seed in seeds {
        if let Ok((b, s)) = pdw_gen::instance(&pdw_gen::spec_from_seed(seed)) {
            owned.push((b, s));
        }
    }
    owned
}

fn same_plan(a: &WashResult, b: &WashResult) -> bool {
    a.schedule == b.schedule && a.metrics == b.metrics
}

fn batch_mode(smoke: bool, out_path: &str) {
    let owned = batch_corpus(smoke);
    let instances: Vec<(&Benchmark, &Synthesis)> = owned.iter().map(|(b, s)| (b, s)).collect();

    // Three planners per instance: DAWO (reuse-only analysis) plus two
    // greedy configurations differing only in their thread knob — the
    // differential verifier's exact pattern. A shared context computes the
    // full necessity analysis and the front-end groups once; the second
    // greedy solve clones the cached groups instead of re-routing every
    // candidate path. Inner fan-outs are pinned (identically for the cold
    // and batch paths) so the batch driver's per-instance fan-out is the
    // only parallelism being measured.
    let cfg_a = PdwConfig {
        ilp: false,
        threads: 1,
        ..PdwConfig::default()
    };
    let cfg_b = PdwConfig {
        ilp: false,
        threads: 2,
        ..PdwConfig::default()
    };
    let greedy_a = GreedyPlanner::new(cfg_a.clone());
    let greedy_b = GreedyPlanner::new(cfg_b.clone());
    let planners: Vec<&dyn Planner> = vec![&DawoPlanner, &greedy_a, &greedy_b];
    let batch_threads = 8;
    let repeats = if smoke { 1 } else { 3 };

    let run_cold = || -> Vec<Vec<WashResult>> {
        owned
            .iter()
            .map(|(b, s)| {
                vec![
                    dawo(b, s).expect("dawo succeeds"),
                    pdw(b, s, &cfg_a).expect("pdw succeeds"),
                    pdw(b, s, &cfg_b).expect("pdw succeeds"),
                ]
            })
            .collect()
    };

    let mut cold_s = f64::INFINITY;
    let mut cold_results = Vec::new();
    for _ in 0..repeats {
        let t = Instant::now();
        let r = run_cold();
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed < cold_s {
            cold_s = elapsed;
        }
        cold_results = r;
    }

    let timed_batch = |threads: usize| -> (f64, Vec<Vec<WashResult>>) {
        let mut best = f64::INFINITY;
        let mut results = Vec::new();
        for _ in 0..repeats {
            let t = Instant::now();
            let rows = plan_batch(&instances, &planners, threads);
            let elapsed = t.elapsed().as_secs_f64();
            if elapsed < best {
                best = elapsed;
            }
            results = rows
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|r| r.expect("planner succeeds"))
                        .collect()
                })
                .collect();
        }
        (best, results)
    };
    let (batch_serial_s, batch1) = timed_batch(1);
    let (batch_parallel_s, batchn) = timed_batch(batch_threads);

    let bit_identical = cold_results
        .iter()
        .zip(&batch1)
        .zip(&batchn)
        .all(|((cold, b1), bn)| {
            cold.iter()
                .zip(b1)
                .zip(bn)
                .all(|((c, x), y)| same_plan(c, x) && same_plan(c, y))
        });
    assert!(
        bit_identical,
        "batch results diverge from cold one-shot calls"
    );

    let report = BatchReport {
        instances: instances.len(),
        planners: planners.iter().map(|p| p.name()).collect(),
        repeats,
        cold_s,
        batch_serial_s,
        batch_parallel_s,
        batch_threads,
        amortized_speedup: cold_s / batch_serial_s,
        total_speedup: cold_s / batch_parallel_s,
        bit_identical,
    };
    println!(
        "batch: {} instances x {} planners, cold {:.3}s, shared-context {:.3}s \
         ({:.2}x), {}-thread batch {:.3}s ({:.2}x), bit-identical: {}",
        report.instances,
        report.planners.len(),
        report.cold_s,
        report.batch_serial_s,
        report.amortized_speedup,
        report.batch_threads,
        report.batch_parallel_s,
        report.total_speedup,
        report.bit_identical,
    );
    if smoke {
        println!("batch smoke run ok");
        return;
    }
    pdw_bench::models::write_report(out_path, &report);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let batch = args.iter().any(|a| a == "--batch");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if batch {
            "BENCH_batch.json"
        } else {
            "BENCH_pipeline.json"
        });

    if batch {
        batch_mode(smoke, out_path);
        return;
    }

    if smoke {
        let bench = benchmarks::demo();
        let s = pdw_synth::synthesize(&bench).expect("demo synthesizes");
        let m = measure(&bench, &s, 0, 1);
        print_measurement(&bench.name, &m);
        println!("smoke run ok");
        return;
    }

    let baseline: Vec<BaselineRow> = std::fs::read_to_string("BENCH_pipeline_baseline.json")
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_default();

    let mut rows = Vec::new();
    for bench in benchmarks::suite() {
        let s = pdw_synth::synthesize(&bench).expect("benchmark synthesizes");
        let serial = measure(&bench, &s, 1, 3);
        let parallel = measure(&bench, &s, 8, 3);
        let base = baseline
            .iter()
            .find(|b| b.benchmark == bench.name)
            .map(|b| b.front_end_s);
        print_measurement(&bench.name, &serial);
        print_measurement(&bench.name, &parallel);
        let row = Row {
            benchmark: bench.name.clone(),
            baseline_front_end_s: base,
            speedup_vs_baseline: base.map(|b| b / parallel.front_end_s),
            speedup_vs_serial: serial.front_end_s / parallel.front_end_s,
            serial,
            parallel,
        };
        if let Some(sp) = row.speedup_vs_baseline {
            println!(
                "{:<14} {:.2}x vs committed baseline, {:.2}x vs 1-thread",
                row.benchmark, sp, row.speedup_vs_serial
            );
        }
        rows.push(row);
    }

    pdw_bench::models::write_report(out_path, &rows);
}
