//! Front-end pipeline benchmark: measures the wash-path front end
//! (grouping + merging + greedy insertion) per bundled benchmark at 1 and 8
//! worker threads, and compares against the committed pre-refactor baseline
//! (`BENCH_pipeline_baseline.json`).
//!
//! Usage:
//!
//! ```text
//! bench_pipeline [--smoke] [--out FILE]
//! ```
//!
//! `--smoke` runs only the demo benchmark once, prints the stage breakdown,
//! and writes nothing — a fast CI sanity check that the harness still runs.
//! The full run writes `BENCH_pipeline.json` (or `--out FILE`).

use std::collections::HashSet;
use std::time::Instant;

use pathdriver_wash::{
    build_groups, insert_washes_protected, merge_groups, split_into_spot_clusters, CandidatePolicy,
};
use pdw_assay::benchmarks::{self, Benchmark};
use pdw_biochip::routing_counters;
use pdw_contam::{analyze, NecessityOptions};
use pdw_synth::Synthesis;
use serde::{Deserialize, Serialize};

/// One front-end measurement (best of three runs, by front-end time).
#[derive(Debug, Clone, Serialize)]
struct Measurement {
    threads: usize,
    requirements: usize,
    groups: usize,
    necessity_s: f64,
    grouping_s: f64,
    merge_s: f64,
    greedy_s: f64,
    front_end_s: f64,
    route_calls: u64,
    bfs_runs: u64,
    scratch_reuses: u64,
}

#[derive(Debug, Serialize)]
struct Row {
    benchmark: String,
    baseline_front_end_s: Option<f64>,
    serial: Measurement,
    parallel: Measurement,
    /// Committed pre-refactor serial front end / 8-thread front end.
    speedup_vs_baseline: Option<f64>,
    /// 1-thread front end / 8-thread front end (same binary).
    speedup_vs_serial: f64,
}

/// The schema of `BENCH_pipeline_baseline.json` (pre-refactor harness).
#[derive(Debug, Deserialize)]
struct BaselineRow {
    benchmark: String,
    front_end_s: f64,
}

fn measure(bench: &Benchmark, s: &Synthesis, threads: usize, repeats: usize) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..repeats {
        let c0 = routing_counters();
        let t0 = Instant::now();
        let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let necessity_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let groups = build_groups(
            &s.chip,
            &s.schedule,
            &a.requirements,
            CandidatePolicy::Shortest,
            3,
            threads,
        );
        let groups = split_into_spot_clusters(
            &s.chip,
            &s.schedule,
            groups,
            4,
            CandidatePolicy::Shortest,
            3,
            threads,
        );
        let grouping_s = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let groups = merge_groups(&s.chip, &s.schedule, groups, 3);
        let merge_s = t2.elapsed().as_secs_f64();

        let protected: HashSet<pdw_sched::TaskId> = s
            .schedule
            .tasks()
            .filter(|(_, t)| t.kind().is_waste_disposal())
            .map(|(id, _)| id)
            .filter(|id| !a.deletable.contains(id))
            .collect();
        let t3 = Instant::now();
        let out = insert_washes_protected(&s.chip, &s.schedule, &groups, true, &protected);
        let greedy_s = t3.elapsed().as_secs_f64();
        let d = routing_counters() - c0;

        let m = Measurement {
            threads,
            requirements: a.requirements.len(),
            groups: out.groups.len(),
            necessity_s,
            grouping_s,
            merge_s,
            greedy_s,
            front_end_s: grouping_s + merge_s + greedy_s,
            route_calls: d.route_calls,
            bfs_runs: d.bfs_runs,
            scratch_reuses: d.scratch_reuses,
        };
        if best.as_ref().is_none_or(|b| m.front_end_s < b.front_end_s) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

fn print_measurement(name: &str, m: &Measurement) {
    println!(
        "{:<14} t={} req={:<4} groups={:<4} grouping {:.4}s merge {:.4}s greedy {:.4}s \
         front-end {:.4}s (routes {}, bfs {}, reuses {})",
        name,
        m.threads,
        m.requirements,
        m.groups,
        m.grouping_s,
        m.merge_s,
        m.greedy_s,
        m.front_end_s,
        m.route_calls,
        m.bfs_runs,
        m.scratch_reuses,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("BENCH_pipeline.json");

    if smoke {
        let bench = benchmarks::demo();
        let s = pdw_synth::synthesize(&bench).expect("demo synthesizes");
        let m = measure(&bench, &s, 0, 1);
        print_measurement(&bench.name, &m);
        println!("smoke run ok");
        return;
    }

    let baseline: Vec<BaselineRow> = std::fs::read_to_string("BENCH_pipeline_baseline.json")
        .ok()
        .and_then(|text| serde_json::from_str(&text).ok())
        .unwrap_or_default();

    let mut rows = Vec::new();
    for bench in benchmarks::suite() {
        let s = pdw_synth::synthesize(&bench).expect("benchmark synthesizes");
        let serial = measure(&bench, &s, 1, 3);
        let parallel = measure(&bench, &s, 8, 3);
        let base = baseline
            .iter()
            .find(|b| b.benchmark == bench.name)
            .map(|b| b.front_end_s);
        print_measurement(&bench.name, &serial);
        print_measurement(&bench.name, &parallel);
        let row = Row {
            benchmark: bench.name.clone(),
            baseline_front_end_s: base,
            speedup_vs_baseline: base.map(|b| b / parallel.front_end_s),
            speedup_vs_serial: serial.front_end_s / parallel.front_end_s,
            serial,
            parallel,
        };
        if let Some(sp) = row.speedup_vs_baseline {
            println!(
                "{:<14} {:.2}x vs committed baseline, {:.2}x vs 1-thread",
                row.benchmark, sp, row.speedup_vs_serial
            );
        }
        rows.push(row);
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    std::fs::write(out_path, json).expect("write benchmark report");
    println!("wrote {out_path}");
}
