//! Incremental-repair benchmark: `RepairSession::repair` vs a cold
//! `plan_resilient`-style solve of the mutated instance, across the bundled
//! benchmark corpus.
//!
//! Usage:
//!
//! ```text
//! bench_repair [--smoke] [--out FILE] [--miss N] [--hit N]
//! ```
//!
//! Every benchmark is planned once through a [`RepairSession`], then hit
//! with two families of single-fault deltas:
//!
//! - **miss** deltas block spare channel cells far away from the served
//!   plan — the delta's footprint intersects no cached analysis, no cached
//!   candidate path, and no path of the plan, so repair re-verifies the
//!   cached plan and serves it without replanning (the fast path);
//! - **hit** deltas block a cell on one of the plan's own wash paths —
//!   repair must invalidate the crossing caches and replan the suffix warm.
//!
//! Each repair is timed against a cold solve of the *same* mutated
//! instance, rebuilt from the pristine chip so the cold side honestly pays
//! the port-reachability BFS the warm side carries forward. Every repaired
//! plan must be bit-identical to its cold solve.
//!
//! `--smoke` is the CI regression gate: it asserts the median fast-path
//! speedup stays ≥ 10x and writes `BENCH_repair_smoke.json`; the full run
//! writes `BENCH_repair.json`.

use std::collections::HashSet;
use std::time::Instant;

use pathdriver_wash::{
    plan_partitioned, PdwConfig, PlanDelta, PlanOutcome, RepairSession, Weights,
};
use pdw_assay::benchmarks::{self, Benchmark};
use pdw_biochip::{CellKind, Coord, FaultDelta};
use pdw_sched::Schedule;
use pdw_synth::{synthesize, Synthesis};
use serde::Serialize;

/// One timed repair-vs-cold measurement.
#[derive(Debug, Serialize)]
struct Point {
    benchmark: String,
    /// `"miss"` (fast-path candidate) or `"hit"` (forced replan).
    kind: &'static str,
    delta: String,
    repair_s: f64,
    cold_s: f64,
    speedup: f64,
    /// The repair served the cached plan without replanning.
    cache_served: bool,
    /// Repaired plan bit-identical to the cold solve.
    identical: bool,
    prefix_frozen: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    benchmarks: usize,
    points: Vec<Point>,
    /// Median cold/repair speedup over fast-path (cache-served) repairs —
    /// the headline and the `--smoke` gate (≥ 10x).
    fastpath_speedup_median: f64,
    /// Median speedup over repairs that replanned warm.
    replan_speedup_median: f64,
    /// Every repaired plan matched its cold solve bit for bit.
    all_identical: bool,
}

/// Cells the base (wash-free) schedule and device footprints rely on.
fn base_used(s: &Synthesis) -> HashSet<Coord> {
    let mut used: HashSet<Coord> = HashSet::new();
    for (_, t) in s.schedule.tasks() {
        used.extend(t.path().cells().iter().copied());
    }
    for d in s.chip.devices() {
        used.extend(d.footprint().iter().copied());
    }
    used
}

/// Spare channel cells ranked farthest-first from the served plan's paths:
/// blocking one is always base-schedule-safe and very likely to miss every
/// cached candidate path too (the fast-path family).
fn far_spare_cells(s: &Synthesis, plan: &Schedule, n: usize) -> Vec<Coord> {
    let grid = s.chip.grid();
    let faults = s.chip.faults();
    let mut plan_cells: Vec<Coord> = Vec::new();
    for (_, t) in plan.tasks() {
        plan_cells.extend(t.path().cells().iter().copied());
    }
    let used = base_used(s);
    let mut spares: Vec<(i64, Coord)> = grid
        .coords()
        .filter(|&c| {
            matches!(grid.kind(c), CellKind::Channel)
                && !used.contains(&c)
                && !faults.cell_blocked(c)
                && !plan_cells.contains(&c)
        })
        .map(|c| {
            let d = plan_cells
                .iter()
                .map(|p| {
                    (i64::from(p.x) - i64::from(c.x)).abs()
                        + (i64::from(p.y) - i64::from(c.y)).abs()
                })
                .min()
                .unwrap_or(i64::MAX);
            (d, c)
        })
        .collect();
    spares.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    spares.into_iter().take(n).map(|(_, c)| c).collect()
}

/// A channel cell on one of the plan's wash paths that the base schedule
/// does not use: blocking it keeps the instance valid but forces a replan.
fn wash_hit_cell(s: &Synthesis, plan: &Schedule) -> Option<Coord> {
    let grid = s.chip.grid();
    let faults = s.chip.faults();
    let used = base_used(s);
    plan.tasks()
        .filter(|(_, t)| t.kind().is_wash())
        .flat_map(|(_, t)| t.path().cells().iter().copied())
        .find(|&c| {
            matches!(grid.kind(c), CellKind::Channel)
                && !used.contains(&c)
                && !faults.cell_blocked(c)
        })
}

/// Cold-solves the session's current (mutated) instance from scratch: the
/// chip is rebuilt from the pristine one so the lazy port-reachability
/// cache starts cold, exactly as a from-scratch consumer would pay it.
fn cold_solve(
    bench: &Benchmark,
    pristine: &Synthesis,
    mutated: &Synthesis,
    config: &PdwConfig,
) -> (PlanOutcome, f64) {
    let chip = pristine
        .chip
        .with_faults(mutated.chip.faults().clone())
        .expect("session faults are valid");
    let s = Synthesis {
        chip,
        schedule: mutated.schedule.clone(),
        binding: mutated.binding.clone(),
        reagent_ports: mutated.reagent_ports.clone(),
    };
    let t = Instant::now();
    let outcome = plan_partitioned(bench, &s, config, 1);
    (outcome, t.elapsed().as_secs_f64())
}

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad {flag} `{v}`"))
            })
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if smoke {
            "BENCH_repair_smoke.json"
        } else {
            "BENCH_repair.json"
        });
    let miss_n = arg("--miss").unwrap_or(3);
    let hit_n = arg("--hit").unwrap_or(2);

    let config = PdwConfig {
        ilp: false,
        threads: 1,
        ..PdwConfig::default()
    };
    let corpus: Vec<Benchmark> = benchmarks::suite()
        .into_iter()
        .chain([benchmarks::demo()])
        .collect();
    let n_benchmarks = corpus.len();

    let mut points: Vec<Point> = Vec::new();
    for bench in corpus {
        let pristine = synthesize(&bench).expect("bundled benchmark synthesizes");
        let mut session = RepairSession::new(bench.clone(), pristine.clone(), config.clone());
        let first = session.plan();
        let plan = first
            .served
            .as_ref()
            .expect("bundled benchmark serves a plan")
            .schedule
            .clone();

        // Deltas to apply, in order: far-away misses, then on-path hits.
        let mut deltas: Vec<(&'static str, Coord)> = far_spare_cells(&pristine, &plan, miss_n)
            .into_iter()
            .map(|c| ("miss", c))
            .collect();

        let mut step = 0usize;
        while step < deltas.len() + hit_n {
            let (kind, cell) = if step < deltas.len() {
                deltas[step]
            } else {
                // Hits are drawn against the *current* plan, which changed
                // after each replanning repair.
                let current = session
                    .last()
                    .and_then(|o| o.served.as_ref())
                    .expect("session keeps serving")
                    .schedule
                    .clone();
                match wash_hit_cell(session.synthesis(), &current) {
                    Some(c) => ("hit", c),
                    None => break,
                }
            };
            let delta = PlanDelta::Fault(FaultDelta::BlockCell(cell));
            let t = Instant::now();
            let outcome = session.repair(&delta);
            let repair_s = t.elapsed().as_secs_f64();
            let served = outcome
                .served
                .as_ref()
                .unwrap_or_else(|| panic!("{}: repair served nothing ({delta})", bench.name));

            let (cold, cold_s) = cold_solve(&bench, &pristine, session.synthesis(), &config);
            let identical = cold
                .served
                .as_ref()
                .is_some_and(|c| c.schedule == served.schedule && c.metrics == served.metrics)
                && cold.rung == outcome.rung;
            let speedup = cold_s / repair_s.max(1e-9);
            println!(
                "{:<14} {:<4} {:<22} repair {:>9.6}s cold {:>9.6}s ({:>6.1}x) {}{}",
                bench.name,
                kind,
                delta.to_string(),
                repair_s,
                cold_s,
                speedup,
                if identical { "ok" } else { "DIFFERS" },
                if served.pipeline.repair_cache_served {
                    " [cache-served]"
                } else {
                    ""
                },
            );
            points.push(Point {
                benchmark: bench.name.clone(),
                kind,
                delta: delta.to_string(),
                repair_s,
                cold_s,
                speedup,
                cache_served: served.pipeline.repair_cache_served,
                identical,
                prefix_frozen: served.pipeline.repair_prefix_frozen,
            });
            // Objective parity is implied by metrics equality, but keep the
            // weights in the loop so a metrics change cannot silently skew.
            let _ = served.objective(&Weights::default());
            step += 1;
        }
        // Hits consumed the miss list length; nothing left to free.
        drop(deltas.drain(..));
    }

    let fastpath: Vec<f64> = points
        .iter()
        .filter(|p| p.cache_served)
        .map(|p| p.speedup)
        .collect();
    let replan: Vec<f64> = points
        .iter()
        .filter(|p| !p.cache_served)
        .map(|p| p.speedup)
        .collect();
    let all_identical = points.iter().all(|p| p.identical);
    let report = Report {
        benchmarks: n_benchmarks,
        fastpath_speedup_median: median(fastpath.clone()),
        replan_speedup_median: median(replan),
        all_identical,
        points,
    };
    println!(
        "fast path: {} repair(s), median speedup {:.1}x; warm replans median {:.1}x; identical: {}",
        fastpath.len(),
        report.fastpath_speedup_median,
        report.replan_speedup_median,
        report.all_identical,
    );

    if smoke {
        assert!(
            all_identical,
            "a repaired plan diverged from its cold solve"
        );
        assert!(
            !fastpath.is_empty(),
            "no repair took the fast path; miss-family deltas all collided"
        );
        assert!(
            report.fastpath_speedup_median >= 10.0,
            "fast-path median speedup {:.2}x below the 10x gate",
            report.fastpath_speedup_median
        );
        println!("smoke regression gate ok (fast path ≥ 10x, plans identical)");
    }

    pdw_bench::models::write_report(out_path, &report);
}
