//! Plan-server load benchmark: open-loop throughput and latency of
//! [`pdw_serve::PlanServer`] under the seeded
//! [`request_stream`](pdw_gen::request_stream), at two or more load
//! levels.
//!
//! Usage:
//!
//! ```text
//! bench_serve [--smoke] [--out FILE] [--requests N] [--workers N] [--memo-path FILE]
//! ```
//!
//! The instance pool is the bundled corpus (suite + demo). Each load level
//! replays the same seeded stream paced at a different mean inter-arrival
//! gap, then:
//!
//! - every served **solve** is oracle-verified (`pdw_sim::validate` +
//!   `propagate`) and bit-compared to a cold `plan_resilient` of its
//!   instance;
//! - every repair session's terminal plan is re-verified against the
//!   session's mutated chip;
//! - p50/p99 queue-to-completion latency and plans/sec are recorded per
//!   level, plus the memo-hit vs cold-solve service-time medians.
//!
//! `--smoke` is the CI regression gate: it asserts every plan verified,
//! every solve bit-identical to cold, and the memo-hit p50 service time at
//! least 10x faster than a cold solve at every level, then writes
//! `BENCH_serve_smoke.json`; the full run writes `BENCH_serve.json`.
//!
//! Both runs finish with a **warm-restart phase**: a server with a
//! persistent memo store (`--memo-path`, default a scratch file) takes a
//! solve-only stream cold, shuts down, and a *restarted* server on the
//! same file takes the identical stream — every request must then be
//! served from the persisted, certificate-re-verified artifacts with zero
//! fresh solves, bit-identical to the cold run's plans.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pathdriver_wash::{plan_resilient, NetAddr, NetListener};
use pdw_assay::benchmarks;
use pdw_gen::{request_stream, StreamOptions};
use pdw_serve::{
    materialize, run_open_loop, run_socket_load, ChaosSpec, ClientConfig, Instance, LoadReport,
    NetConfig, PlanServer, ServeConfig, ServeRequest, SocketJob, SocketServer, Submission,
};
use pdw_synth::synthesize;
use serde::Serialize;

/// One load level's outcome.
#[derive(Debug, Serialize)]
struct Level {
    label: &'static str,
    mean_gap_us: u64,
    report: LoadReport,
    /// Every served solve passed independent validation + the oracle.
    all_verified: bool,
    /// Every served solve was bit-identical to a cold solve.
    all_identical: bool,
    /// Repair sessions whose terminal plan re-verified on the mutated chip.
    sessions_verified: usize,
}

/// The warm-restart phase: the same solve-only stream against a cold
/// persistent store and against a *restarted* server on that store.
#[derive(Debug, Serialize)]
struct Restart {
    /// Requests in each of the two runs.
    requests: usize,
    /// Fresh solves in the cold run (populates the store).
    cold_solves: u64,
    /// Artifacts persisted by the cold run.
    persisted: u64,
    /// Fresh solves after restart — must be 0.
    warm_solves: u64,
    /// Requests served from persisted artifacts after their verification
    /// certificate re-verified against the live instance.
    warm_persist_hits: u64,
    /// Persisted artifacts rejected at serve time — must be 0.
    warm_persist_rejected: u64,
    /// Every warm plan bit-identical to its cold-run counterpart.
    all_identical: bool,
    cold_p50_ms: f64,
    warm_p50_ms: f64,
}

/// One chaos-proxy fault mode's outcome in the socket phase.
#[derive(Debug, Serialize)]
struct ChaosOutcome {
    spec: String,
    requests: usize,
    served: usize,
    transport_errors: usize,
    serve_errors: usize,
    retries: u64,
}

/// The socket phase: the same traffic through `SocketServer`/`PlanClient`
/// over loopback TCP versus straight into the in-process `PlanServer`,
/// plus the chaos-proxy sweep.
#[derive(Debug, Serialize)]
struct SocketPhase {
    requests: usize,
    clients: usize,
    served: usize,
    retries: u64,
    /// End-to-end latency over the socket (codec + syscalls + transit).
    socket_p50_ms: f64,
    socket_p99_ms: f64,
    /// The same requests submitted in-process (no wire).
    inproc_p50_ms: f64,
    inproc_p99_ms: f64,
    /// What the loopback hop costs at the median, ms.
    loopback_overhead_p50_ms: f64,
    chaos: Vec<ChaosOutcome>,
}

#[derive(Debug, Serialize)]
struct Report {
    pool: usize,
    requests: usize,
    workers: usize,
    levels: Vec<Level>,
    /// Minimum memo-hit speedup across levels — the `--smoke` gate (≥ 10x).
    memo_hit_speedup_min: f64,
    restart: Restart,
    /// Present under `--socket`.
    socket: Option<SocketPhase>,
}

/// Runs the socket phase; a chaos-sweep failure writes `net-chaos-repro.txt`
/// (the failing spec + every typed error line) before panicking, so CI can
/// upload the repro.
fn socket_phase(workers: usize, requests: usize, smoke: bool) -> SocketPhase {
    let cfg = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    // A small pool keeps per-request wire payloads representative without
    // dominating the run with synthesis transfer.
    let bench = benchmarks::demo();
    let base = synthesize(&bench).expect("demo synthesizes");
    let mut pool = vec![(bench.clone(), base.clone())];
    let mut seed = 0u64;
    while pool.len() < 4 {
        seed += 1;
        let variant = pdw_gen::inject_faults(&base, seed);
        let hash = |s: &pdw_synth::Synthesis| Instance::new(bench.clone(), s.clone()).chip_hash();
        if pool.iter().all(|(_, s)| hash(s) != hash(&variant)) {
            pool.push((bench.clone(), variant));
        }
    }
    let jobs: Vec<SocketJob> = (0..requests)
        .map(|i| SocketJob {
            at_us: 0,
            pool_index: (i * 7 + 3) % pool.len(),
            budget: None,
        })
        .collect();
    let clients = 4usize;
    let client_cfg = ClientConfig {
        connect_timeout: Duration::from_millis(500),
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        ..ClientConfig::default()
    };

    // Socket side: a listening server on loopback TCP.
    let plan = Arc::new(PlanServer::start(cfg.clone()));
    let listener =
        NetListener::bind(&NetAddr::parse("127.0.0.1:0").expect("addr")).expect("bind loopback");
    let sock = SocketServer::start(Arc::clone(&plan), listener, NetConfig::default());
    let report = run_socket_load(
        &sock.local_addr(),
        &pool,
        &cfg.planner,
        &jobs,
        clients,
        client_cfg,
        false,
    );
    assert_eq!(
        report.served + report.transport_errors + report.serve_errors,
        report.requests,
        "socket phase: an untyped outcome"
    );
    sock.drain();
    plan.shutdown();

    // In-process side: the identical requests without the wire.
    let plan = PlanServer::start(cfg.clone());
    let instances: Vec<Arc<Instance>> = pool
        .iter()
        .map(|(b, s)| Arc::new(Instance::new(b.clone(), s.clone())))
        .collect();
    let mut inproc_ms: Vec<f64> = Vec::with_capacity(jobs.len());
    for job in &jobs {
        let t = Instant::now();
        let ticket = plan
            .submit(ServeRequest::Solve {
                instance: Arc::clone(&instances[job.pool_index % instances.len()]),
            })
            .expect("admitted");
        ticket.wait().expect("served");
        inproc_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    plan.shutdown();
    let inproc_p50_ms = pdw_serve::harness::percentile(&mut inproc_ms, 0.50);
    let inproc_p99_ms = pdw_serve::harness::percentile(&mut inproc_ms, 0.99);

    // Chaos sweep: every fault mode against the first proxied connection;
    // with retries on, nothing may be lost and nothing may be untyped.
    let chaos_requests = if smoke { 6 } else { 12 };
    let chaos_jobs: Vec<SocketJob> = (0..chaos_requests)
        .map(|i| SocketJob {
            at_us: 0,
            pool_index: i % pool.len(),
            budget: None,
        })
        .collect();
    let mut chaos = Vec::new();
    for spec in ChaosSpec::all_modes(1) {
        let plan = Arc::new(PlanServer::start(cfg.clone()));
        let listener = NetListener::bind(&NetAddr::parse("127.0.0.1:0").expect("addr"))
            .expect("bind loopback");
        let sock = SocketServer::start(Arc::clone(&plan), listener, NetConfig::default());
        let mut proxy = pdw_serve::ChaosProxy::start(sock.local_addr(), Some(spec));
        let r = run_socket_load(
            &proxy.local_addr(),
            &pool,
            &cfg.planner,
            &chaos_jobs,
            2,
            client_cfg,
            false,
        );
        proxy.stop();
        sock.shutdown();
        plan.shutdown();
        let outcome = ChaosOutcome {
            spec: spec.to_string(),
            requests: r.requests,
            served: r.served,
            transport_errors: r.transport_errors,
            serve_errors: r.serve_errors,
            retries: r.retries,
        };
        if r.served != r.requests {
            let repro = format!(
                "chaos sweep failure\nspec: {spec}\nserved {}/{} (transport {}, serve {}, retries {})\nerrors:\n{}\n",
                r.served,
                r.requests,
                r.transport_errors,
                r.serve_errors,
                r.retries,
                r.errors.join("\n"),
            );
            std::fs::write("net-chaos-repro.txt", &repro).expect("write chaos repro");
            panic!("chaos sweep lost requests under {spec}; repro in net-chaos-repro.txt");
        }
        chaos.push(outcome);
    }

    let phase = SocketPhase {
        requests,
        clients,
        served: report.served,
        retries: report.retries,
        socket_p50_ms: report.p50_ms,
        socket_p99_ms: report.p99_ms,
        inproc_p50_ms,
        inproc_p99_ms,
        loopback_overhead_p50_ms: report.p50_ms - inproc_p50_ms,
        chaos,
    };
    println!(
        "socket : {}/{} served over loopback, p50 {:.3}ms p99 {:.3}ms \
         (in-process p50 {:.3}ms p99 {:.3}ms, overhead {:.3}ms), {} retries, chaos sweep {} modes clean",
        phase.served,
        phase.requests,
        phase.socket_p50_ms,
        phase.socket_p99_ms,
        phase.inproc_p50_ms,
        phase.inproc_p99_ms,
        phase.loopback_overhead_p50_ms,
        phase.retries,
        phase.chaos.len(),
    );
    phase
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let with_socket = args.iter().any(|a| a == "--socket");
    let arg = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .map(|v| {
                v.parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad {flag} `{v}`"))
            })
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(if smoke {
            "BENCH_serve_smoke.json"
        } else {
            "BENCH_serve.json"
        });
    let requests = arg("--requests").unwrap_or(if smoke { 150 } else { 500 });
    let workers = arg("--workers").unwrap_or(if smoke { 2 } else { 4 });

    // The pool: every bundled benchmark, synthesized once.
    let pool: Vec<Arc<Instance>> = benchmarks::suite()
        .into_iter()
        .chain([benchmarks::demo()])
        .map(|bench| {
            let synthesis = synthesize(&bench).expect("bundled benchmark synthesizes");
            Arc::new(Instance::new(bench, synthesis))
        })
        .collect();
    let cfg = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    // Cold references, one per pool instance — the bit-identity baseline
    // (and the cold-side cost every memo hit avoids).
    let cold: Vec<_> = pool
        .iter()
        .map(|i| {
            plan_resilient(i.bench(), i.synthesis(), &cfg.planner)
                .served
                .expect("bundled corpus serves")
        })
        .collect();

    let levels_spec: &[(&'static str, u64)] = if smoke {
        &[("light", 1_000), ("heavy", 100)]
    } else {
        &[("light", 2_000), ("medium", 500), ("heavy", 100)]
    };

    let mut levels: Vec<Level> = Vec::new();
    for &(label, mean_gap_us) in levels_spec {
        let events = request_stream(&StreamOptions {
            seed: 7,
            requests,
            pool: pool.len(),
            mean_gap_us,
            reuse: 0.7,
            delta_ratio: 0.1,
        });
        let timed = materialize(&events, &pool, None);
        let server = PlanServer::start(cfg.clone());
        let run = run_open_loop(&server, &timed, true);

        let mut all_verified = true;
        let mut all_identical = true;
        for (i, row) in run.rows.iter().enumerate() {
            let served = match row {
                Submission::Done {
                    response: Ok(s), ..
                } => s,
                Submission::Done {
                    response: Err(e), ..
                } => {
                    panic!("request {i} failed: {e}")
                }
                Submission::Shed(r) => panic!("request {i} shed: {r}"),
            };
            if served.repaired {
                continue;
            }
            let instance = &pool[events[i].pool_index];
            let plan = &served.plan.result;
            if plan.schedule != cold[events[i].pool_index].schedule {
                all_identical = false;
            }
            let chip = &instance.synthesis().chip;
            let graph = &instance.bench().graph;
            if pdw_sim::validate(chip, graph, &plan.schedule).is_err()
                || !pdw_sim::propagate(chip, graph, &plan.schedule).is_clean()
            {
                all_verified = false;
            }
        }
        let mut sessions_verified = 0usize;
        for instance in &pool {
            if let Some((synthesis, Some(last))) = server.repair_state(instance) {
                let graph = &instance.bench().graph;
                assert!(
                    pdw_sim::validate(&synthesis.chip, graph, &last.schedule).is_ok()
                        && pdw_sim::propagate(&synthesis.chip, graph, &last.schedule).is_clean(),
                    "terminal repair plan must verify on the mutated chip"
                );
                sessions_verified += 1;
            }
        }
        let report = run.report;
        println!(
            "{label:<7} gap {mean_gap_us:>5}us: {}/{} served, p50 {:.3}ms p99 {:.3}ms, \
             {:.0} plans/s, memo {}x ({} hits), verified={} identical={}",
            report.served,
            report.requests,
            report.p50_ms,
            report.p99_ms,
            report.plans_per_sec,
            report.memo_hit_speedup.round(),
            report.memo_hits,
            all_verified,
            all_identical,
        );
        levels.push(Level {
            label,
            mean_gap_us,
            report,
            all_verified,
            all_identical,
            sessions_verified,
        });
        server.shutdown();
    }

    let memo_hit_speedup_min = levels
        .iter()
        .map(|l| l.report.memo_hit_speedup)
        .fold(f64::INFINITY, f64::min);

    // ---- Warm-restart phase -------------------------------------------
    // A solve-only stream against a fresh persistent store, then the
    // *identical* stream against a restarted server on the same file.
    let explicit_memo_path = args
        .iter()
        .position(|a| a == "--memo-path")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let memo_path = explicit_memo_path.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("pdw-bench-memo-{}.log", std::process::id()))
            .display()
            .to_string()
    });
    let _ = std::fs::remove_file(&memo_path);
    let restart_requests = requests.min(120);
    let events = request_stream(&StreamOptions {
        seed: 11,
        requests: restart_requests,
        pool: pool.len(),
        mean_gap_us: 300,
        reuse: 0.5,
        delta_ratio: 0.0,
    });
    let timed = materialize(&events, &pool, None);
    let restart_cfg = ServeConfig {
        workers,
        memo_path: Some(std::path::PathBuf::from(&memo_path)),
        ..ServeConfig::default()
    };
    let pass = |label: &str| {
        let server = PlanServer::start(restart_cfg.clone());
        let run = run_open_loop(&server, &timed, true);
        let schedules: Vec<_> = run
            .rows
            .iter()
            .enumerate()
            .map(|(i, row)| match row {
                Submission::Done {
                    response: Ok(s), ..
                } => s.plan.result.schedule.clone(),
                Submission::Done {
                    response: Err(e), ..
                } => panic!("restart {label} request {i} failed: {e}"),
                Submission::Shed(r) => panic!("restart {label} request {i} shed: {r}"),
            })
            .collect();
        let stats = server.stats();
        server.shutdown();
        (schedules, stats, run.report.p50_ms)
    };
    let (cold_plans, cold_stats, cold_p50_ms) = pass("cold");
    let (warm_plans, warm_stats, warm_p50_ms) = pass("warm");
    let all_identical = cold_plans == warm_plans;
    let restart = Restart {
        requests: restart_requests,
        cold_solves: cold_stats.solves,
        persisted: cold_stats.persist_entries,
        warm_solves: warm_stats.solves,
        warm_persist_hits: warm_stats.persist_hits,
        warm_persist_rejected: warm_stats.persist_rejected,
        all_identical,
        cold_p50_ms,
        warm_p50_ms,
    };
    println!(
        "restart: cold {} solves -> {} persisted; warm {} solves, {} persist hits \
         ({} rejected), identical={}, p50 {:.3}ms -> {:.3}ms",
        restart.cold_solves,
        restart.persisted,
        restart.warm_solves,
        restart.warm_persist_hits,
        restart.warm_persist_rejected,
        restart.all_identical,
        restart.cold_p50_ms,
        restart.warm_p50_ms,
    );
    if explicit_memo_path.is_none() {
        let _ = std::fs::remove_file(&memo_path);
    }

    let socket = with_socket.then(|| socket_phase(workers, if smoke { 100 } else { 300 }, smoke));

    let report = Report {
        pool: pool.len(),
        requests,
        workers,
        levels,
        memo_hit_speedup_min,
        restart,
        socket,
    };

    if let (true, Some(s)) = (smoke, report.socket.as_ref()) {
        assert_eq!(
            s.served, s.requests,
            "socket smoke: a loopback request was lost"
        );
        assert!(
            s.chaos.iter().all(|c| c.served == c.requests),
            "socket smoke: the chaos sweep lost requests"
        );
    }

    if smoke {
        assert!(
            report.levels.iter().all(|l| l.all_verified),
            "a served plan failed oracle re-verification"
        );
        assert!(
            report.levels.iter().all(|l| l.all_identical),
            "a served solve diverged from its cold reference"
        );
        assert!(
            report.levels.iter().all(|l| l.report.memo_hits > 0),
            "no memo hits under a reuse-heavy stream"
        );
        assert!(
            memo_hit_speedup_min >= 10.0,
            "memo-hit speedup {memo_hit_speedup_min:.1}x below the 10x gate"
        );
        let restart = &report.restart;
        assert_eq!(restart.warm_solves, 0, "the restarted server re-solved");
        assert!(
            restart.warm_persist_hits > 0,
            "no request was served from the persistent store after restart"
        );
        assert_eq!(
            restart.warm_persist_rejected, 0,
            "a persisted artifact failed certificate re-verification"
        );
        assert!(
            restart.all_identical,
            "a restarted plan diverged from its cold-run counterpart"
        );
        println!(
            "smoke regression gate ok (memo hit ≥ 10x cold, all plans verified, \
             warm restart solve-free)"
        );
    }

    pdw_bench::models::write_report(out_path, &report);
}
