//! Regenerates Fig. 4: average waiting time of biochemical operations,
//! DAWO vs PathDriver-Wash, per benchmark. Both methods run as planners
//! over one shared `PlanContext` per benchmark.
//!
//! Usage: `cargo run -p pdw-bench --bin fig4 --release`

use pdw_bench::{experiment_config, improvement, run_suite};

fn main() {
    let rows = run_suite(&experiment_config());
    println!(
        "{:<13} {:>10} {:>10} {:>8}",
        "Benchmark", "DAWO (s)", "PDW (s)", "Imp%"
    );
    let mut sum = 0.0;
    for r in &rows {
        let imp = improvement(r.dawo.avg_wait, r.pdw.avg_wait);
        sum += imp;
        println!(
            "{:<13} {:>10.2} {:>10.2} {:>7.2}%",
            r.name, r.dawo.avg_wait, r.pdw.avg_wait, imp
        );
    }
    println!(
        "{:<13} {:>10} {:>10} {:>7.2}%",
        "Average",
        "-",
        "-",
        sum / rows.len() as f64
    );
    println!("\nshape target (Fig. 4): PDW bars at or below DAWO bars on every benchmark");
}
