//! Regenerates Fig. 5: total wash time, DAWO vs PathDriver-Wash, per
//! benchmark. Both methods run as planners over one shared `PlanContext`
//! per benchmark.
//!
//! Usage: `cargo run -p pdw-bench --bin fig5 --release`

use pdw_bench::{experiment_config, improvement, run_suite};

fn main() {
    let rows = run_suite(&experiment_config());
    println!(
        "{:<13} {:>10} {:>10} {:>8}",
        "Benchmark", "DAWO (s)", "PDW (s)", "Imp%"
    );
    let mut sum = 0.0;
    for r in &rows {
        let imp = improvement(r.dawo.total_wash_time as f64, r.pdw.total_wash_time as f64);
        sum += imp;
        println!(
            "{:<13} {:>10} {:>10} {:>7.2}%",
            r.name, r.dawo.total_wash_time, r.pdw.total_wash_time, imp
        );
    }
    println!(
        "{:<13} {:>10} {:>10} {:>7.2}%",
        "Average",
        "-",
        "-",
        sum / rows.len() as f64
    );
    println!("\nshape target (Fig. 5): PDW bars at or below DAWO bars on every benchmark");
}
