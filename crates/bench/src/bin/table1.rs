//! Regenerates Table I and Figs. 2(b)/3 for the running example: the demo
//! assay's chip, complete flow paths, the wash-free schedule, and the
//! PDW-optimized schedule with its wash operations.
//!
//! Usage: `cargo run -p pdw-bench --bin table1 --release`

use pathdriver_wash::{PdwConfig, PdwPlanner, PlanContext, Planner};
use pdw_assay::benchmarks;
use pdw_sched::TaskKind;
use pdw_synth::synthesize;

fn main() {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).expect("demo synthesizes");

    println!("== chip layout (Fig. 2(a) analogue) ==");
    println!("{}", s.chip.grid());
    for d in s.chip.devices() {
        println!(
            "  {} at {} .. {}",
            d.label(),
            s.chip.describe(d.inlet_end()),
            s.chip.describe(d.outlet_end())
        );
    }

    println!("\n== complete flow paths (Table I analogue) ==");
    let describe = |p: &pdw_biochip::FlowPath| -> String {
        p.iter()
            .map(|&c| s.chip.describe(c))
            .collect::<Vec<_>>()
            .join(" -> ")
    };
    for (id, t) in s.schedule.tasks() {
        println!(
            "  {:<3} {:<7} {}",
            id.to_string(),
            t.kind().tag(),
            describe(t.path())
        );
    }

    println!("\n== wash-free schedule (Fig. 2(b) analogue) ==");
    println!("{}", s.schedule);

    let mut ctx = PlanContext::new(&bench, &s);
    let r = PdwPlanner::new(PdwConfig::default())
        .plan(&mut ctx)
        .expect("pdw succeeds");
    println!("== optimized schedule with washes (Fig. 3 analogue) ==");
    println!("{}", r.schedule);
    println!("wash paths:");
    for (id, t) in r.schedule.tasks() {
        if let TaskKind::Wash { targets } = t.kind() {
            println!(
                "  {:<3} [{}..{}) covers {} targets: {}",
                id.to_string(),
                t.start(),
                t.end(),
                targets.len(),
                describe(t.path())
            );
        }
    }
    println!(
        "integrated removals (psi=1): {}   N_wash: {}   T_assay: {} s (wash-free: {} s)",
        r.integrated,
        r.metrics.n_wash,
        r.metrics.t_assay,
        s.schedule.makespan()
    );
}
