//! Regenerates Table II: DAWO vs PathDriver-Wash on the full benchmark
//! suite, with per-benchmark and average improvements. Both methods run as
//! planners over one shared `PlanContext` per benchmark (see
//! `pdw_bench::run_benchmark`).
//!
//! Usage: `cargo run -p pdw-bench --bin table2 --release`
//! (`PDW_BUDGET_S=<seconds>` sets the ILP budget; pass `--json <path>` to
//! also dump machine-readable results.)

use pdw_bench::{experiment_config, improvement, run_suite};

fn main() {
    let config = experiment_config();
    let rows = run_suite(&config);

    println!(
        "{:<13} {:>9} | {:>5} {:>5} {:>7} | {:>6} {:>6} {:>7} | {:>5} {:>5} {:>7} | {:>6} {:>6} {:>7}",
        "Benchmark", "|O|/|D|/|E|", "Nw-D", "Nw-P", "Imp%",
        "Lw-D", "Lw-P", "Imp%", "Td-D", "Td-P", "Imp%", "Ta-D", "Ta-P", "Imp%"
    );
    let mut sums = [0.0f64; 4];
    for r in &rows {
        let imp_n = improvement(r.dawo.n_wash as f64, r.pdw.n_wash as f64);
        let imp_l = improvement(r.dawo.l_wash_mm, r.pdw.l_wash_mm);
        let imp_d = improvement(r.dawo_delay() as f64, r.pdw_delay() as f64);
        let imp_t = improvement(r.dawo.t_assay as f64, r.pdw.t_assay as f64);
        sums[0] += imp_n;
        sums[1] += imp_l;
        sums[2] += imp_d;
        sums[3] += imp_t;
        println!(
            "{:<13} {:>3}/{:>2}/{:>3} | {:>5} {:>5} {:>6.2}% | {:>6.0} {:>6.0} {:>6.2}% | {:>5} {:>5} {:>6.2}% | {:>6} {:>6} {:>6.2}%",
            r.name, r.sizes.0, r.sizes.1, r.sizes.2,
            r.dawo.n_wash, r.pdw.n_wash, imp_n,
            r.dawo.l_wash_mm, r.pdw.l_wash_mm, imp_l,
            r.dawo_delay(), r.pdw_delay(), imp_d,
            r.dawo.t_assay, r.pdw.t_assay, imp_t,
        );
    }
    let n = rows.len() as f64;
    println!(
        "{:<13} {:>9} | {:>11} {:>6.2}% | {:>13} {:>6.2}% | {:>11} {:>6.2}% | {:>13} {:>6.2}%",
        "Average",
        "-",
        "",
        sums[0] / n,
        "",
        sums[1] / n,
        "",
        sums[2] / n,
        "",
        sums[3] / n
    );
    println!("\npaper averages: N_wash 17.73%, L_wash 24.56%, T_delay 33.10%, T_assay 9.28%");

    // Optional JSON dump for EXPERIMENTS.md regeneration.
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json needs a path");
            let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
            std::fs::write(&path, json).expect("write json");
            eprintln!("wrote {path}");
        }
    }
}
