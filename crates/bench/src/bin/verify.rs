//! Corpus-scale differential verification of the full wash pipeline.
//!
//! Runs every bundled benchmark plus a corpus of seeded random instances
//! (100 by default) through [`pathdriver_wash::verify`]: DAWO, the greedy
//! pipeline, and the budget-bound ILP each judged by the simulator
//! validator, `verify_clean`, the contamination-propagation oracle, an
//! exact objective recompute, and 1/2/8-thread bit-identity of the greedy
//! schedule. All solvers for an instance run through one shared
//! [`pathdriver_wash::PlanContext`], so the necessity analyses and routing
//! state are computed once per instance.
//!
//! Usage: `cargo run -p pdw-bench --bin verify --release [-- <seeds> [out]]`
//!
//! `seeds` is the random-corpus size (default 100); `out` is the repro file
//! written on failure (default `verify-repro.txt`). Failing seeds are
//! shrunk to the smallest still-failing spec and the file names the exact
//! `pdw verify --seed <s>` command that reproduces each failure. Exits
//! nonzero when anything fails.
//!
//! After the differential pass, the same seed range is replayed as a
//! *faulted* corpus: each instance's chip is damaged by seeded fault
//! injection and the degradation ladder is swept across pipeline deadlines
//! and thread counts ([`pathdriver_wash::verify::chaos_seed`]).

use std::process::ExitCode;
use std::time::Duration;

use pathdriver_wash::verify::{
    chaos_seed, shrink_failure, verify_instance, verify_seed, ChaosOptions, VerifyOptions,
};
use pdw_assay::benchmarks;
use pdw_synth::synthesize;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds: u64 = args
        .first()
        .map(|s| s.parse().expect("seed count must be a number"))
        .unwrap_or(100);
    let out = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "verify-repro.txt".to_string());
    let opts = VerifyOptions {
        ilp_budget: Duration::from_secs(1),
        ..VerifyOptions::default()
    };

    let mut failures: Vec<String> = Vec::new();

    println!("== bundled benchmarks ==");
    for bench in benchmarks::suite().into_iter().chain([benchmarks::demo()]) {
        match synthesize(&bench) {
            Ok(s) => {
                let report = verify_instance(&bench.name, &bench, &s, &opts);
                summarize(&report);
                failures.extend(
                    report
                        .failures()
                        .into_iter()
                        .map(|f| format!("{}: {f}", bench.name)),
                );
            }
            Err(e) => failures.push(format!("{}: synthesis failed: {e}", bench.name)),
        }
    }

    println!("== random corpus ({seeds} seeds) ==");
    let mut skipped = 0u64;
    for seed in 0..seeds {
        match verify_seed(seed, &opts) {
            None => skipped += 1,
            Some(report) => {
                summarize(&report);
                if !report.passed() {
                    for f in report.failures() {
                        failures.push(format!("seed {seed}: {f}"));
                    }
                    let (small, steps) = shrink_failure(seed, &opts);
                    failures.push(format!(
                        "seed {seed}: shrunk after {steps} step(s) to {small:?}; \
                         repro: pdw verify --seed {seed}"
                    ));
                }
            }
        }
    }
    println!("({skipped}/{seeds} seeds skipped as infeasible)");

    // Chaos replay: the corpus again, but on fault-injected chips with the
    // degradation ladder under a deadline/thread sweep. Capped well below
    // the differential corpus — each chaos seed is budgets x threads solves.
    let chaos_seeds = seeds.min(25);
    println!("== faulted corpus ({chaos_seeds} seeds) ==");
    let copts = ChaosOptions::default();
    let mut chaos_skipped = 0u64;
    for seed in 0..chaos_seeds {
        match chaos_seed(seed, &copts) {
            None => chaos_skipped += 1,
            Some(report) => {
                println!("{report}");
                if !report.passed() {
                    for f in &report.failures {
                        failures.push(format!("chaos seed {seed}: {f}"));
                    }
                    failures.push(format!(
                        "chaos seed {seed}: repro: pdw verify --faults --seed {seed}"
                    ));
                }
            }
        }
    }
    println!("({chaos_skipped}/{chaos_seeds} chaos seeds skipped as infeasible)");

    if failures.is_empty() {
        println!("verify: all instances passed");
        ExitCode::SUCCESS
    } else {
        let body = failures.join("\n");
        eprintln!("{body}");
        if let Err(e) = std::fs::write(&out, format!("{body}\n")) {
            eprintln!("cannot write {out}: {e}");
        } else {
            eprintln!("verify: {} failure(s); details in {out}", failures.len());
        }
        ExitCode::FAILURE
    }
}

/// One status line per instance, with the oracle's replay counters from the
/// greedy plan so corpus logs show the oracle actually exercised each run.
fn summarize(report: &pathdriver_wash::verify::InstanceReport) {
    let oracle = report
        .plans
        .iter()
        .find(|p| p.solver == "greedy")
        .map(|p| &p.oracle);
    match oracle {
        Some(o) => println!(
            "{report}  (oracle: {} deposits, {} dissolved, {} checks)",
            o.deposits, o.dissolved, o.checks
        ),
        None => println!("{report}"),
    }
}
