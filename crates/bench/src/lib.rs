//! Benchmark harness regenerating every table and figure of the
//! PathDriver-Wash paper.
//!
//! The binaries in `src/bin` print the artifacts:
//!
//! - `table1` — the demo assay's complete flow-path listing and schedules
//!   (Table I / Figs. 2(b)–3),
//! - `table2` — the DAWO-vs-PDW comparison on all eight benchmarks
//!   (Table II),
//! - `fig4` — average waiting time of biochemical operations per benchmark,
//! - `fig5` — total wash time per benchmark.
//!
//! The Criterion benches in `benches/` time the optimizers themselves and
//! the ablations of the three PDW techniques.

use std::time::Duration;

use pathdriver_wash::{
    DawoPlanner, PdwConfig, PdwPlanner, PlanContext, Planner, SolverStats, WashResult,
};
use pdw_assay::benchmarks::{self, Benchmark};
use pdw_sim::Metrics;
use pdw_synth::{synthesize, Synthesis};
use serde::Serialize;

pub mod models;

/// One benchmark's results under both methods.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Benchmark name (Table II, column 1).
    pub name: String,
    /// `|O| / |D| / |E|` (Table II, column 2).
    pub sizes: (usize, usize, usize),
    /// Metrics of the wash-free synthesized schedule (delay reference).
    pub base: Metrics,
    /// DAWO metrics.
    pub dawo: Metrics,
    /// PDW metrics.
    pub pdw: Metrics,
    /// Excess removals integrated into washes by PDW.
    pub integrated: usize,
    /// Whether PDW's ILP refinement produced the final schedule.
    pub used_ilp: bool,
    /// Detailed ILP solver counters (`None` when the ILP never ran or its
    /// refinement was rejected).
    pub solver_stats: Option<SolverStats>,
}

impl Row {
    /// `T_delay` for DAWO: wash-induced delay over the wash-free schedule.
    pub fn dawo_delay(&self) -> u32 {
        self.dawo.delay_vs(&self.base)
    }

    /// `T_delay` for PDW.
    pub fn pdw_delay(&self) -> u32 {
        self.pdw.delay_vs(&self.base)
    }
}

/// Percentage improvement of `new` over `old` (positive = better).
pub fn improvement(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (old - new) / old * 100.0
    }
}

/// Runs one benchmark through synthesis, DAWO, and PDW.
///
/// # Panics
///
/// Panics if synthesis or either optimizer fails — the harness treats any
/// failure as a reproduction bug.
pub fn run_benchmark(bench: &Benchmark, config: &PdwConfig) -> Row {
    let synthesis: Synthesis = synthesize(bench).expect("synthesis succeeds");
    let base = Metrics::measure(&bench.graph, &synthesis.schedule);
    // Both methods run against one shared PlanContext: the instance's
    // necessity analyses and routing state are computed once.
    let mut ctx = PlanContext::new(bench, &synthesis);
    let d: WashResult = DawoPlanner.plan(&mut ctx).expect("dawo succeeds");
    let p: WashResult = PdwPlanner::new(config.clone())
        .plan(&mut ctx)
        .expect("pdw succeeds");
    Row {
        name: bench.name.clone(),
        sizes: (bench.op_count(), bench.device_count(), bench.edge_count()),
        base,
        dawo: d.metrics,
        pdw: p.metrics,
        integrated: p.integrated,
        used_ilp: p.solver.used_ilp,
        solver_stats: p.solver.stats,
    }
}

/// Runs the whole Table II suite.
pub fn run_suite(config: &PdwConfig) -> Vec<Row> {
    benchmarks::suite()
        .iter()
        .map(|b| run_benchmark(b, config))
        .collect()
}

/// The default experiment configuration: full PDW with a per-benchmark ILP
/// budget (pass seconds via the `PDW_BUDGET_S` environment variable to
/// change it; the paper used 15 minutes).
pub fn experiment_config() -> PdwConfig {
    let secs = std::env::var("PDW_BUDGET_S")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(5);
    PdwConfig {
        ilp_budget: Duration::from_secs(secs),
        ..PdwConfig::default()
    }
}
