//! Synthetic MILP model generators shared by the Criterion benches and the
//! `bench_ilp` baseline binary.
//!
//! Each generator produces the constraint classes PathDriver-Wash emits:
//! difference constraints (retiming skeletons), big-M disjunctions (wash
//! serialization), and dense selection/packing rows (candidate choice).
//! All coefficients are deterministic, so benchmark runs are reproducible.

use pdw_ilp::{Model, Relation};

/// Serializes `report` as pretty JSON to `path` and announces the write —
/// the shared tail of every `bench_*` binary (`BENCH_*.json` artifacts).
///
/// # Panics
///
/// Panics if the report fails to serialize or the file cannot be written;
/// the harness treats either as a benchmarking bug.
pub fn write_report<T: serde::Serialize>(path: &str, report: &T) {
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(path, json).expect("write benchmark report");
    println!("wrote {path}");
}

/// A chain of difference constraints (retiming skeleton).
pub fn difference_chain(n: usize) -> Model {
    let mut m = Model::new("chain");
    let vars: Vec<_> = (0..n)
        .map(|i| {
            m.continuous(
                &format!("s{i}"),
                0.0,
                1e4,
                if i + 1 == n { 1.0 } else { 0.0 },
            )
        })
        .collect();
    for w in vars.windows(2) {
        m.constraint([(w[1], 1.0), (w[0], -1.0)], Relation::Ge, 3.0);
    }
    m
}

/// A disjunctive scheduling core: k unit jobs on one machine (big-M pairs).
pub fn disjunctive(k: usize) -> Model {
    let mut m = Model::new("disj");
    const M: f64 = 1e3;
    let starts: Vec<_> = (0..k)
        .map(|i| m.continuous(&format!("s{i}"), 0.0, M, 0.0))
        .collect();
    let end = m.continuous("end", 0.0, M, 1.0);
    for i in 0..k {
        m.constraint([(end, 1.0), (starts[i], -1.0)], Relation::Ge, 1.0);
        for j in i + 1..k {
            let b = m.binary(&format!("o{i}_{j}"), 0.0);
            m.constraint(
                [(starts[j], 1.0), (starts[i], -1.0), (b, -M)],
                Relation::Ge,
                1.0 - M,
            );
            m.constraint(
                [(starts[i], 1.0), (starts[j], -1.0), (b, M)],
                Relation::Ge,
                1.0,
            );
        }
    }
    m
}

/// Disjunctive jobs each dragging a chain of `span` downstream operations:
/// the shape PathDriver-Wash actually emits — a large continuous timing
/// core (`jobs * span` difference rows) with a handful of serialization
/// binaries. This is the regime where warm starts pay off: a cold node LP
/// runs phase 1 across the whole chain, while a warm child repairs a
/// single bound change with a few dual pivots.
pub fn disjunctive_chain(jobs: usize, span: usize) -> Model {
    let mut m = Model::new("disj_chain");
    const M: f64 = 1e4;
    let mut firsts = Vec::new();
    let mut lasts = Vec::new();
    for j in 0..jobs {
        let chain: Vec<_> = (0..span)
            .map(|i| m.continuous(&format!("s{j}_{i}"), 0.0, M, 0.0))
            .collect();
        for w in chain.windows(2) {
            m.constraint([(w[1], 1.0), (w[0], -1.0)], Relation::Ge, 1.0);
        }
        firsts.push(chain[0]);
        lasts.push(*chain.last().expect("span > 0"));
    }
    let end = m.continuous("end", 0.0, M, 1.0);
    for &last in &lasts {
        m.constraint([(end, 1.0), (last, -1.0)], Relation::Ge, 1.0);
    }
    for i in 0..jobs {
        for j in i + 1..jobs {
            let b = m.binary(&format!("o{i}_{j}"), 0.0);
            m.constraint(
                [(firsts[j], 1.0), (firsts[i], -1.0), (b, -M)],
                Relation::Ge,
                1.0 - M,
            );
            m.constraint(
                [(firsts[i], 1.0), (firsts[j], -1.0), (b, M)],
                Relation::Ge,
                1.0,
            );
        }
    }
    m
}

/// A multi-constraint 0/1 knapsack with deterministic pseudo-random
/// coefficients: `items` binaries packed under `rows` capacity rows at 40%
/// of each row's total weight. Fractional LP optima everywhere — a
/// branching stress test.
pub fn multi_knapsack(items: usize, rows: usize) -> Model {
    let mut m = Model::new("knap");
    let xs: Vec<_> = (0..items)
        .map(|i| m.binary(&format!("x{i}"), -(((i * 7 + 3) % 11) as f64 + 1.0)))
        .collect();
    for r in 0..rows {
        let expr: Vec<_> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, ((i * 5 + r * 3) % 7 + 1) as f64))
            .collect();
        let cap = (expr.iter().map(|(_, c)| *c).sum::<f64>() * 0.4).round();
        m.constraint(expr, Relation::Le, cap);
    }
    m
}
