//! Fluent construction of [`Chip`] architectures.

use crate::chip::{Chip, FlowPortId, Port, WastePortId};
use crate::device::{Device, DeviceId, DeviceKind};
use crate::error::ChipError;
use crate::grid::{CellKind, Coord, Grid};

/// Builder for [`Chip`] architectures.
///
/// Cells are claimed one placement at a time; the builder rejects overlaps,
/// out-of-bounds coordinates, duplicate labels, and off-boundary ports as
/// they happen, and [`build`](Self::build) performs the final whole-chip
/// checks (at least one flow port and one waste port).
///
/// # Example
///
/// ```
/// use pdw_biochip::{ChipBuilder, Coord, DeviceKind};
///
/// # fn main() -> Result<(), pdw_biochip::ChipError> {
/// let chip = ChipBuilder::new(6, 6)
///     .flow_port("in1", Coord::new(0, 2))?
///     .waste_port("out1", Coord::new(5, 2))?
///     .device(DeviceKind::Heater, "heater", Coord::new(2, 2), Coord::new(3, 2))?
///     .channel(Coord::new(1, 2))?
///     .channel(Coord::new(4, 2))?
///     .build()?;
/// assert_eq!(chip.devices().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ChipBuilder {
    grid: Grid,
    devices: Vec<Device>,
    flow_ports: Vec<Port>,
    waste_ports: Vec<Port>,
}

impl ChipBuilder {
    /// Starts a builder for a `width × height` virtual grid.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: u16, height: u16) -> Self {
        Self {
            grid: Grid::new(width, height),
            devices: Vec::new(),
            flow_ports: Vec::new(),
            waste_ports: Vec::new(),
        }
    }

    fn claim(&mut self, c: Coord, kind: CellKind) -> Result<(), ChipError> {
        if !self.grid.contains(c) {
            return Err(ChipError::OutOfBounds {
                coord: c,
                width: self.grid.width(),
                height: self.grid.height(),
            });
        }
        if self.grid.kind(c) != CellKind::Empty {
            return Err(ChipError::CellOccupied { coord: c });
        }
        self.grid.set(c, kind);
        Ok(())
    }

    fn check_label(&self, label: &str) -> Result<(), ChipError> {
        let taken = self
            .flow_ports
            .iter()
            .chain(self.waste_ports.iter())
            .any(|p| p.label == label)
            || self.devices.iter().any(|d| d.label() == label);
        if taken {
            Err(ChipError::DuplicateLabel {
                label: label.to_string(),
            })
        } else {
            Ok(())
        }
    }

    fn on_boundary(&self, c: Coord) -> bool {
        c.x == 0 || c.y == 0 || c.x == self.grid.width() - 1 || c.y == self.grid.height() - 1
    }

    /// Places a flow (inlet) port at `c`.
    ///
    /// # Errors
    ///
    /// Fails if `c` is out of bounds, occupied, or not on the grid boundary,
    /// or if `label` is already used.
    pub fn flow_port(mut self, label: &str, c: Coord) -> Result<Self, ChipError> {
        self.check_label(label)?;
        if !self.grid.contains(c) {
            return Err(ChipError::OutOfBounds {
                coord: c,
                width: self.grid.width(),
                height: self.grid.height(),
            });
        }
        if !self.on_boundary(c) {
            return Err(ChipError::PortNotOnBoundary { coord: c });
        }
        let id = FlowPortId(self.flow_ports.len() as u32);
        self.claim(c, CellKind::FlowPort(id))?;
        self.flow_ports.push(Port {
            label: label.to_string(),
            coord: c,
        });
        Ok(self)
    }

    /// Places a waste (outlet) port at `c`.
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`flow_port`](Self::flow_port).
    pub fn waste_port(mut self, label: &str, c: Coord) -> Result<Self, ChipError> {
        self.check_label(label)?;
        if !self.grid.contains(c) {
            return Err(ChipError::OutOfBounds {
                coord: c,
                width: self.grid.width(),
                height: self.grid.height(),
            });
        }
        if !self.on_boundary(c) {
            return Err(ChipError::PortNotOnBoundary { coord: c });
        }
        let id = WastePortId(self.waste_ports.len() as u32);
        self.claim(c, CellKind::WastePort(id))?;
        self.waste_ports.push(Port {
            label: label.to_string(),
            coord: c,
        });
        Ok(self)
    }

    /// Places a device occupying the straight segment from `a` to `b`
    /// (inclusive); `a` becomes the inlet end and `b` the outlet end.
    ///
    /// # Errors
    ///
    /// Fails if the segment is not axis-aligned, any cell is out of bounds or
    /// occupied, or `label` is already used.
    pub fn device(
        mut self,
        kind: DeviceKind,
        label: &str,
        a: Coord,
        b: Coord,
    ) -> Result<Self, ChipError> {
        self.check_label(label)?;
        let footprint = straight_segment(a, b).ok_or_else(|| ChipError::BadFootprint {
            label: label.to_string(),
        })?;
        let id = DeviceId(self.devices.len() as u32);
        for &c in &footprint {
            self.claim(c, CellKind::Device(id))?;
        }
        self.devices
            .push(Device::new(id, kind, label.to_string(), footprint));
        Ok(self)
    }

    /// Places a device with an explicit footprint (cells in order; first =
    /// inlet end, last = outlet end). The footprint must be a 4-connected
    /// chain.
    ///
    /// # Errors
    ///
    /// Fails if the footprint is empty or not a chain, any cell is out of
    /// bounds or occupied, or `label` is already used.
    pub fn device_with_footprint(
        mut self,
        kind: DeviceKind,
        label: &str,
        footprint: Vec<Coord>,
    ) -> Result<Self, ChipError> {
        self.check_label(label)?;
        if footprint.is_empty() || footprint.windows(2).any(|w| !w[0].is_adjacent(w[1])) {
            return Err(ChipError::BadFootprint {
                label: label.to_string(),
            });
        }
        let id = DeviceId(self.devices.len() as u32);
        for &c in &footprint {
            self.claim(c, CellKind::Device(id))?;
        }
        self.devices
            .push(Device::new(id, kind, label.to_string(), footprint));
        Ok(self)
    }

    /// Etches a channel cell at `c`.
    ///
    /// # Errors
    ///
    /// Fails if `c` is out of bounds or occupied.
    pub fn channel(mut self, c: Coord) -> Result<Self, ChipError> {
        self.claim(c, CellKind::Channel)?;
        Ok(self)
    }

    /// Etches a straight channel segment from `a` to `b` (inclusive).
    ///
    /// # Errors
    ///
    /// Fails if the segment is not axis-aligned or any cell is out of bounds
    /// or occupied.
    pub fn channel_segment(mut self, a: Coord, b: Coord) -> Result<Self, ChipError> {
        let cells = straight_segment(a, b).ok_or(ChipError::BadFootprint {
            label: format!("channel {a}-{b}"),
        })?;
        for c in cells {
            self.claim(c, CellKind::Channel)?;
        }
        Ok(self)
    }

    /// Finalizes the chip.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::MissingPorts`] if the chip lacks a flow port or a
    /// waste port.
    pub fn build(self) -> Result<Chip, ChipError> {
        if self.flow_ports.is_empty() || self.waste_ports.is_empty() {
            return Err(ChipError::MissingPorts);
        }
        Ok(Chip::from_parts(
            self.grid,
            self.devices,
            self.flow_ports,
            self.waste_ports,
        ))
    }
}

/// Cells of the axis-aligned segment from `a` to `b` inclusive, ordered from
/// `a` to `b`. Returns `None` if the segment is diagonal.
fn straight_segment(a: Coord, b: Coord) -> Option<Vec<Coord>> {
    if a.x == b.x {
        let (lo, hi) = (a.y.min(b.y), a.y.max(b.y));
        let mut v: Vec<Coord> = (lo..=hi).map(|y| Coord::new(a.x, y)).collect();
        if a.y > b.y {
            v.reverse();
        }
        Some(v)
    } else if a.y == b.y {
        let (lo, hi) = (a.x.min(b.x), a.x.max(b.x));
        let mut v: Vec<Coord> = (lo..=hi).map(|x| Coord::new(x, a.y)).collect();
        if a.x > b.x {
            v.reverse();
        }
        Some(v)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_segment_orders_from_a_to_b() {
        let seg = straight_segment(Coord::new(3, 1), Coord::new(0, 1)).unwrap();
        assert_eq!(seg[0], Coord::new(3, 1));
        assert_eq!(seg[3], Coord::new(0, 1));
        assert!(straight_segment(Coord::new(0, 0), Coord::new(1, 1)).is_none());
    }

    #[test]
    fn rejects_overlapping_placements() {
        let err = ChipBuilder::new(4, 4)
            .channel(Coord::new(1, 1))
            .unwrap()
            .channel(Coord::new(1, 1))
            .unwrap_err();
        assert_eq!(
            err,
            ChipError::CellOccupied {
                coord: Coord::new(1, 1)
            }
        );
    }

    #[test]
    fn rejects_interior_port() {
        let err = ChipBuilder::new(4, 4)
            .flow_port("in1", Coord::new(1, 1))
            .unwrap_err();
        assert_eq!(
            err,
            ChipError::PortNotOnBoundary {
                coord: Coord::new(1, 1)
            }
        );
    }

    #[test]
    fn rejects_duplicate_labels() {
        let err = ChipBuilder::new(4, 4)
            .flow_port("p", Coord::new(0, 0))
            .unwrap()
            .waste_port("p", Coord::new(3, 3))
            .unwrap_err();
        assert_eq!(err, ChipError::DuplicateLabel { label: "p".into() });
    }

    #[test]
    fn build_requires_both_port_kinds() {
        let err = ChipBuilder::new(4, 4)
            .flow_port("in", Coord::new(0, 0))
            .unwrap()
            .build()
            .unwrap_err();
        assert_eq!(err, ChipError::MissingPorts);
    }

    #[test]
    fn device_ids_are_dense() {
        let chip = ChipBuilder::new(8, 8)
            .flow_port("in", Coord::new(0, 0))
            .unwrap()
            .waste_port("out", Coord::new(7, 7))
            .unwrap()
            .device(DeviceKind::Mixer, "m", Coord::new(2, 2), Coord::new(3, 2))
            .unwrap()
            .device(DeviceKind::Heater, "h", Coord::new(2, 4), Coord::new(3, 4))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(chip.device(DeviceId(0)).label(), "m");
        assert_eq!(chip.device(DeviceId(1)).label(), "h");
    }

    #[test]
    fn footprint_device_requires_chain() {
        let err = ChipBuilder::new(8, 8)
            .device_with_footprint(
                DeviceKind::Storage,
                "st",
                vec![Coord::new(0, 0), Coord::new(2, 0)],
            )
            .unwrap_err();
        assert_eq!(err, ChipError::BadFootprint { label: "st".into() });
    }

    #[test]
    fn out_of_bounds_reported_with_dimensions() {
        let err = ChipBuilder::new(4, 4)
            .channel(Coord::new(9, 0))
            .unwrap_err();
        assert!(matches!(
            err,
            ChipError::OutOfBounds {
                width: 4,
                height: 4,
                ..
            }
        ));
    }
}
