//! Word-packed cell sets for O(words) overlap/subset/membership tests.
//!
//! A [`CellSet`] stores a set of [`Coord`]s as a dense bitmask over the
//! tight bounding box of its members: one bit per cell, 64 cells per word,
//! rows indexed by absolute `y` and word columns by absolute `x / 64`. Two
//! sets built from the same chip's coordinates therefore share an absolute
//! frame, and intersection/subset queries reduce to a handful of `AND`s over
//! the overlapping window — no hashing, no per-query allocation.
//!
//! The representation is canonical: equal cell sets produce bit-identical
//! structures regardless of insertion order, so the derived `PartialEq`/
//! `Hash` agree with set equality.

use crate::grid::Coord;

/// An immutable set of grid cells packed 64-per-word over the set's
/// bounding box.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct CellSet {
    /// Smallest `y` of any member (rows are `y_min ..`).
    y_min: u16,
    /// First occupied 64-bit word column (`x / 64`).
    x_word_min: u16,
    /// Word columns per row.
    words_per_row: u16,
    /// Number of members.
    len: u32,
    /// `rows × words_per_row` words, row-major.
    words: Vec<u64>,
}

impl CellSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the set of `cells` (duplicates are harmless).
    pub fn from_cells(cells: &[Coord]) -> Self {
        let Some(&first) = cells.first() else {
            return Self::default();
        };
        let (mut y_min, mut y_max) = (first.y, first.y);
        let (mut w_min, mut w_max) = (first.x / 64, first.x / 64);
        for &c in cells {
            y_min = y_min.min(c.y);
            y_max = y_max.max(c.y);
            w_min = w_min.min(c.x / 64);
            w_max = w_max.max(c.x / 64);
        }
        let words_per_row = (w_max - w_min + 1) as usize;
        let rows = (y_max - y_min + 1) as usize;
        let mut words = vec![0u64; rows * words_per_row];
        let mut len = 0u32;
        for &c in cells {
            let idx = (c.y - y_min) as usize * words_per_row + (c.x / 64 - w_min) as usize;
            let bit = 1u64 << (c.x % 64);
            if words[idx] & bit == 0 {
                words[idx] |= bit;
                len += 1;
            }
        }
        Self {
            y_min,
            x_word_min: w_min,
            words_per_row: words_per_row as u16,
            len,
            words,
        }
    }

    /// Number of cells in the set.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if the set has no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn rows(&self) -> usize {
        if self.words_per_row == 0 {
            0
        } else {
            self.words.len() / self.words_per_row as usize
        }
    }

    /// Returns `true` if `c` is a member.
    pub fn contains(&self, c: Coord) -> bool {
        if self.is_empty() || c.y < self.y_min || c.x / 64 < self.x_word_min {
            return false;
        }
        let row = (c.y - self.y_min) as usize;
        let wcol = (c.x / 64 - self.x_word_min) as usize;
        if row >= self.rows() || wcol >= self.words_per_row as usize {
            return false;
        }
        self.words[row * self.words_per_row as usize + wcol] & (1u64 << (c.x % 64)) != 0
    }

    /// Returns `true` if the two sets share at least one cell.
    pub fn intersects(&self, other: &CellSet) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        let y_lo = self.y_min.max(other.y_min) as u32;
        let y_hi =
            (self.y_min as u32 + self.rows() as u32).min(other.y_min as u32 + other.rows() as u32);
        let w_lo = self.x_word_min.max(other.x_word_min) as u32;
        let w_hi = (self.x_word_min as u32 + self.words_per_row as u32)
            .min(other.x_word_min as u32 + other.words_per_row as u32);
        if y_lo >= y_hi || w_lo >= w_hi {
            return false;
        }
        for y in y_lo..y_hi {
            let a_base = (y - self.y_min as u32) as usize * self.words_per_row as usize;
            let b_base = (y - other.y_min as u32) as usize * other.words_per_row as usize;
            for w in w_lo..w_hi {
                let a = self.words[a_base + (w - self.x_word_min as u32) as usize];
                let b = other.words[b_base + (w - other.x_word_min as u32) as usize];
                if a & b != 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Returns `true` if every cell of `self` is in `other`.
    pub fn is_subset_of(&self, other: &CellSet) -> bool {
        if self.is_empty() {
            return true;
        }
        if self.len > other.len {
            return false;
        }
        for row in 0..self.rows() {
            let y = self.y_min + row as u16;
            for wcol in 0..self.words_per_row {
                let a = self.words[row * self.words_per_row as usize + wcol as usize];
                if a == 0 {
                    continue;
                }
                let w = self.x_word_min + wcol;
                // Any set bit outside `other`'s bounding box disproves it.
                let b = if y < other.y_min
                    || (y - other.y_min) as usize >= other.rows()
                    || w < other.x_word_min
                    || w - other.x_word_min >= other.words_per_row
                {
                    0
                } else {
                    other.words[(y - other.y_min) as usize * other.words_per_row as usize
                        + (w - other.x_word_min) as usize]
                };
                if a & !b != 0 {
                    return false;
                }
            }
        }
        true
    }

    /// Iterates over the member cells in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.rows()).flat_map(move |row| {
            (0..self.words_per_row as usize).flat_map(move |wcol| {
                let mut word = self.words[row * self.words_per_row as usize + wcol];
                let y = self.y_min + row as u16;
                let x_base = (self.x_word_min as u32 + wcol as u32) * 64;
                std::iter::from_fn(move || {
                    if word == 0 {
                        return None;
                    }
                    let bit = word.trailing_zeros();
                    word &= word - 1;
                    Some(Coord::new((x_base + bit) as u16, y))
                })
            })
        })
    }
}

impl FromIterator<Coord> for CellSet {
    fn from_iter<I: IntoIterator<Item = Coord>>(iter: I) -> Self {
        let cells: Vec<Coord> = iter.into_iter().collect();
        Self::from_cells(&cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn set(cells: &[(u16, u16)]) -> CellSet {
        let coords: Vec<Coord> = cells.iter().map(|&(x, y)| Coord::new(x, y)).collect();
        CellSet::from_cells(&coords)
    }

    #[test]
    fn empty_set_behaves() {
        let e = CellSet::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(!e.contains(Coord::new(0, 0)));
        assert!(!e.intersects(&set(&[(1, 1)])));
        assert!(e.is_subset_of(&set(&[(1, 1)])));
        assert!(e.is_subset_of(&e.clone()));
        assert_eq!(e.iter().count(), 0);
    }

    #[test]
    fn membership_and_duplicates() {
        let s = set(&[(3, 4), (3, 4), (5, 4), (3, 6)]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(Coord::new(3, 4)));
        assert!(s.contains(Coord::new(5, 4)));
        assert!(s.contains(Coord::new(3, 6)));
        assert!(!s.contains(Coord::new(4, 4)));
        assert!(!s.contains(Coord::new(3, 5)));
        assert!(!s.contains(Coord::new(0, 0)));
        assert!(!s.contains(Coord::new(1000, 1000)));
    }

    #[test]
    fn canonical_representation_ignores_order() {
        let a = set(&[(1, 1), (2, 2), (3, 3)]);
        let b = set(&[(3, 3), (1, 1), (2, 2)]);
        assert_eq!(a, b);
    }

    type PairCases = [(&'static [(u16, u16)], &'static [(u16, u16)])];

    #[test]
    fn intersects_matches_naive() {
        let cases: &PairCases = &[
            (&[(0, 0)], &[(0, 0)]),
            (&[(0, 0)], &[(1, 0)]),
            (&[(10, 10), (11, 10)], &[(11, 10), (12, 10)]),
            (&[(0, 0), (63, 0), (64, 0)], &[(64, 0)]),
            (&[(0, 0), (63, 0)], &[(64, 0), (127, 0)]),
            (&[(5, 1), (5, 2)], &[(5, 3), (5, 4)]),
        ];
        for (a_cells, b_cells) in cases {
            let a = set(a_cells);
            let b = set(b_cells);
            let na: HashSet<_> = a_cells.iter().collect();
            let nb: HashSet<_> = b_cells.iter().collect();
            let expect = !na.is_disjoint(&nb);
            assert_eq!(a.intersects(&b), expect, "{a_cells:?} vs {b_cells:?}");
            assert_eq!(b.intersects(&a), expect, "{b_cells:?} vs {a_cells:?}");
        }
    }

    #[test]
    fn subset_matches_naive() {
        let cases: &PairCases = &[
            (&[(1, 1)], &[(1, 1)]),
            (&[(1, 1)], &[(1, 1), (2, 1)]),
            (&[(1, 1), (2, 1)], &[(1, 1)]),
            (&[(64, 3)], &[(64, 3), (0, 3)]),
            (&[(64, 3), (0, 3)], &[(64, 3)]),
            (&[(2, 2)], &[(3, 3)]),
        ];
        for (a_cells, b_cells) in cases {
            let a = set(a_cells);
            let b = set(b_cells);
            let na: HashSet<_> = a_cells.iter().collect();
            let nb: HashSet<_> = b_cells.iter().collect();
            assert_eq!(
                a.is_subset_of(&b),
                na.is_subset(&nb),
                "{a_cells:?} ⊆ {b_cells:?}"
            );
        }
    }

    #[test]
    fn iter_yields_members_row_major() {
        let s = set(&[(5, 2), (1, 2), (3, 1)]);
        let got: Vec<Coord> = s.iter().collect();
        assert_eq!(
            got,
            vec![Coord::new(3, 1), Coord::new(1, 2), Coord::new(5, 2)]
        );
    }

    #[test]
    fn masks_of_63_64_65_cells_span_word_boundaries() {
        // One row of n consecutive cells: 63 fits one word, 64 exactly fills
        // it, 65 forces a second word column. All three must round-trip.
        for n in [63u16, 64, 65] {
            let cells: Vec<(u16, u16)> = (0..n).map(|x| (x, 7)).collect();
            let s = set(&cells);
            assert_eq!(s.len(), n as usize, "n={n}");
            for x in 0..n {
                assert!(s.contains(Coord::new(x, 7)), "n={n} x={x}");
            }
            assert!(!s.contains(Coord::new(n, 7)), "n={n}");
            let iterated: Vec<Coord> = s.iter().collect();
            assert_eq!(iterated.len(), n as usize, "n={n}");
            assert_eq!(CellSet::from_cells(&iterated), s, "n={n}");
            // Subset/intersection across the boundary behave like sets.
            let shorter = set(&cells[..n as usize - 1]);
            assert!(shorter.is_subset_of(&s), "n={n}");
            assert!(!s.is_subset_of(&shorter), "n={n}");
            assert!(s.intersects(&shorter), "n={n}");
            // A single cell just past the mask's end touches nothing.
            let past = set(&[(n, 7)]);
            assert!(!s.intersects(&past), "n={n}");
        }
    }

    #[test]
    fn word_boundary_cells() {
        let s = set(&[(63, 0), (64, 0), (127, 0), (128, 0)]);
        assert_eq!(s.len(), 4);
        for x in [63u16, 64, 127, 128] {
            assert!(s.contains(Coord::new(x, 0)), "x={x}");
        }
        assert!(!s.contains(Coord::new(62, 0)));
        assert!(!s.contains(Coord::new(129, 0)));
        assert!(!s.contains(Coord::new(0, 0)));
    }
}
