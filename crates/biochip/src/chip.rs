//! A validated chip architecture: grid, devices, and ports.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::device::{Device, DeviceId};
use crate::error::ChipError;
use crate::fault::FaultSet;
use crate::grid::{CellKind, Coord, Grid};
use crate::path::FlowPath;
use crate::routing::{PortReach, RouteScratch};

/// Identifier of a flow (inlet) port on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowPortId(pub u32);

impl fmt::Display for FlowPortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in{}", self.0)
    }
}

/// Identifier of a waste (outlet) port on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WastePortId(pub u32);

impl fmt::Display for WastePortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out{}", self.0)
    }
}

/// A labeled port location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Port {
    pub label: String,
    pub coord: Coord,
}

/// A complete, validated chip architecture.
///
/// Constructed through [`ChipBuilder`](crate::ChipBuilder). A chip owns the
/// virtual grid, the placed devices, and the flow/waste ports, and offers
/// routing queries over the channel network.
#[derive(Debug, Clone)]
pub struct Chip {
    grid: Grid,
    devices: Vec<Device>,
    flow_ports: Vec<Port>,
    waste_ports: Vec<Port>,
    labels: HashMap<String, Coord>,
    /// Physical faults the chip currently suffers (empty on a pristine
    /// chip). Part of the chip's identity: routing, path validation, and
    /// equality all consult it.
    faults: FaultSet,
    /// Lazily computed port reachability fields (see [`PortReach`]). Not
    /// part of the chip's identity: excluded from equality and
    /// serialization.
    reach: OnceLock<PortReach>,
}

impl PartialEq for Chip {
    fn eq(&self, other: &Self) -> bool {
        self.grid == other.grid
            && self.devices == other.devices
            && self.flow_ports == other.flow_ports
            && self.waste_ports == other.waste_ports
            && self.labels == other.labels
            && self.faults == other.faults
    }
}

// Manual impls (the derive would serialize the `reach` cache): same wire
// format as the former derive — an object with the persistent fields in
// declaration order. The `faults` field is emitted only when non-empty and
// tolerated as absent, so pristine chips keep the pre-fault wire format in
// both directions.
impl Serialize for Chip {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("grid".to_string(), self.grid.to_value()),
            ("devices".to_string(), self.devices.to_value()),
            ("flow_ports".to_string(), self.flow_ports.to_value()),
            ("waste_ports".to_string(), self.waste_ports.to_value()),
            ("labels".to_string(), self.labels.to_value()),
        ];
        if !self.faults.is_empty() {
            fields.push(("faults".to_string(), self.faults.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for Chip {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for Chip"))?;
        let faults = match obj.iter().find(|(k, _)| k == "faults") {
            Some((_, v)) => FaultSet::from_value(v)?,
            None => FaultSet::default(),
        };
        Ok(Chip {
            grid: serde::field(obj, "grid")?,
            devices: serde::field(obj, "devices")?,
            flow_ports: serde::field(obj, "flow_ports")?,
            waste_ports: serde::field(obj, "waste_ports")?,
            labels: serde::field(obj, "labels")?,
            faults,
            reach: OnceLock::new(),
        })
    }
}

thread_local! {
    /// Per-thread scratch backing the allocation-free `route`/`route_via`
    /// wrappers; rebuilt only when the grid size changes.
    static SCRATCH: RefCell<Option<RouteScratch>> = const { RefCell::new(None) };
}

impl Chip {
    pub(crate) fn from_parts(
        grid: Grid,
        devices: Vec<Device>,
        flow_ports: Vec<Port>,
        waste_ports: Vec<Port>,
    ) -> Self {
        let mut labels = HashMap::new();
        for p in flow_ports.iter().chain(waste_ports.iter()) {
            labels.insert(p.label.clone(), p.coord);
        }
        for d in &devices {
            labels.insert(d.label().to_string(), d.inlet_end());
        }
        Self {
            grid,
            devices,
            flow_ports,
            waste_ports,
            labels,
            faults: FaultSet::default(),
            reach: OnceLock::new(),
        }
    }

    /// A copy of this chip carrying `faults`, replacing any existing fault
    /// set. The routing caches are rebuilt lazily against the faulted
    /// topology.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::BadFault`] when a fault references a
    /// coordinate outside the grid, a port id the chip does not have, or an
    /// edge between non-adjacent cells.
    pub fn with_faults(&self, faults: FaultSet) -> Result<Chip, ChipError> {
        for &c in faults.blocked_cells() {
            if !self.grid.contains(c) {
                return Err(ChipError::BadFault {
                    reason: format!("blocked cell {c} lies outside the grid"),
                });
            }
        }
        for id in faults.disabled_flow_ports() {
            if id.0 as usize >= self.flow_ports.len() {
                return Err(ChipError::BadFault {
                    reason: format!("disabled flow port {id} does not exist"),
                });
            }
        }
        for id in faults.disabled_waste_ports() {
            if id.0 as usize >= self.waste_ports.len() {
                return Err(ChipError::BadFault {
                    reason: format!("disabled waste port {id} does not exist"),
                });
            }
        }
        for &(a, b) in faults.blocked_edges() {
            if !self.grid.contains(a) || !self.grid.contains(b) || !a.is_adjacent(b) {
                return Err(ChipError::BadFault {
                    reason: format!("blocked edge {a}–{b} does not join adjacent grid cells"),
                });
            }
        }
        Ok(Chip {
            grid: self.grid.clone(),
            devices: self.devices.clone(),
            flow_ports: self.flow_ports.clone(),
            waste_ports: self.waste_ports.clone(),
            labels: self.labels.clone(),
            faults,
            reach: OnceLock::new(),
        })
    }

    /// The labeled flow-port entries (for intra-crate views that must
    /// preserve port identity, e.g. [`partition`](crate::partition)).
    pub(crate) fn flow_port_entries(&self) -> &[Port] {
        &self.flow_ports
    }

    /// The labeled waste-port entries (see
    /// [`flow_port_entries`](Self::flow_port_entries)).
    pub(crate) fn waste_port_entries(&self) -> &[Port] {
        &self.waste_ports
    }

    /// The chip's current fault set (empty on a pristine chip).
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// The underlying virtual grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// All placed devices, indexed by [`DeviceId`].
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Looks up a device by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chip.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// Looks up a device by id, returning `None` when `id` does not belong
    /// to this chip — the fallible twin of [`device`](Self::device) for
    /// callers replaying untrusted or malformed schedules.
    pub fn try_device(&self, id: DeviceId) -> Option<&Device> {
        self.devices.get(id.0 as usize)
    }

    /// Coordinates of all flow ports, indexed by [`FlowPortId`].
    pub fn flow_ports(&self) -> impl ExactSizeIterator<Item = Coord> + '_ {
        self.flow_ports.iter().map(|p| p.coord)
    }

    /// Coordinates of all waste ports, indexed by [`WastePortId`].
    pub fn waste_ports(&self) -> impl ExactSizeIterator<Item = Coord> + '_ {
        self.waste_ports.iter().map(|p| p.coord)
    }

    /// Coordinate of the flow port `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chip.
    pub fn flow_port(&self, id: FlowPortId) -> Coord {
        self.flow_ports[id.0 as usize].coord
    }

    /// Coordinate of the flow port `id`, or `None` when the chip has no
    /// such port — the fallible twin of [`flow_port`](Self::flow_port).
    pub fn try_flow_port(&self, id: FlowPortId) -> Option<Coord> {
        self.flow_ports.get(id.0 as usize).map(|p| p.coord)
    }

    /// Coordinate of the waste port `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chip.
    pub fn waste_port(&self, id: WastePortId) -> Coord {
        self.waste_ports[id.0 as usize].coord
    }

    /// Coordinate of the waste port `id`, or `None` when the chip has no
    /// such port — the fallible twin of [`waste_port`](Self::waste_port).
    pub fn try_waste_port(&self, id: WastePortId) -> Option<Coord> {
        self.waste_ports.get(id.0 as usize).map(|p| p.coord)
    }

    /// Resolves a port or device label to its anchor coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownLabel`] if no port or device carries the
    /// label.
    pub fn locate(&self, label: &str) -> Result<Coord, ChipError> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| ChipError::UnknownLabel {
                label: label.to_string(),
            })
    }

    /// Returns a short display label for a coordinate: a port/device label if
    /// one is anchored there, otherwise `s(x,y)` for channels.
    pub fn describe(&self, c: Coord) -> String {
        match self.grid.get(c) {
            Some(CellKind::FlowPort(id)) => self.flow_ports[id.0 as usize].label.clone(),
            Some(CellKind::WastePort(id)) => self.waste_ports[id.0 as usize].label.clone(),
            Some(CellKind::Device(id)) => self.devices[id.0 as usize].label().to_string(),
            _ => format!("s({},{})", c.x, c.y),
        }
    }

    /// Returns `true` if a fluid may traverse `c` on a path whose endpoints
    /// are `src` and `dst`.
    ///
    /// Ports other than the endpoints are impassable: fluid entering another
    /// inlet's tubing or a closed outlet is physically meaningless. Faulted
    /// cells and disabled ports are impassable outright.
    pub(crate) fn passable(&self, c: Coord, src: Coord, dst: Coord) -> bool {
        if self.faults.cell_blocked(c) {
            return false;
        }
        match self.grid.get(c) {
            None | Some(CellKind::Empty) => false,
            Some(CellKind::Channel) | Some(CellKind::Device(_)) => true,
            Some(CellKind::FlowPort(id)) => {
                (c == src || c == dst) && !self.faults.flow_port_disabled(id)
            }
            Some(CellKind::WastePort(id)) => {
                (c == src || c == dst) && !self.faults.waste_port_disabled(id)
            }
        }
    }

    /// Returns `true` if fluid may cross between the adjacent cells `a` and
    /// `b` — i.e. no stuck-closed valve sits on that edge.
    pub(crate) fn edge_passable(&self, a: Coord, b: Coord) -> bool {
        !self.faults.edge_blocked(a, b)
    }

    /// BFS shortest path from `from` to `to` over routable cells, avoiding
    /// `blocked` cells. Returns the full cell sequence including endpoints,
    /// or `None` if unreachable.
    ///
    /// Backed by a per-thread [`RouteScratch`]; hot loops that probe many
    /// endpoint pairs against one blocked set should hold their own scratch
    /// and call [`route_with`](Self::route_with) instead.
    pub fn route(&self, from: Coord, to: Coord, blocked: &[Coord]) -> Option<Vec<Coord>> {
        self.with_scratch(|chip, scratch| {
            scratch.load_blocked(blocked.iter().copied());
            chip.route_with(scratch, from, to)
        })
    }

    /// Routes a simple path `from → via[0] → via[1] → … → to`, visiting the
    /// via cells in order without revisiting any cell.
    ///
    /// Each leg is routed by BFS with all previously used cells blocked; the
    /// construction is greedy, so `None` does not prove that no such simple
    /// path exists — callers enumerate several via-orders.
    pub fn route_via(
        &self,
        from: Coord,
        via: &[Coord],
        to: Coord,
        blocked: &[Coord],
    ) -> Option<Vec<Coord>> {
        self.with_scratch(|chip, scratch| {
            scratch.load_blocked(blocked.iter().copied());
            chip.route_via_with(scratch, from, via, to)
        })
    }

    fn with_scratch<R>(&self, f: impl FnOnce(&Chip, &mut RouteScratch) -> R) -> R {
        SCRATCH.with(|slot| {
            let mut slot = slot.borrow_mut();
            if slot.as_ref().is_none_or(|s| !s.fits(self)) {
                *slot = Some(RouteScratch::for_chip(self));
            }
            f(self, slot.as_mut().expect("scratch just installed"))
        })
    }

    /// Cached unblocked reachability fields from every flow and waste port,
    /// computed on first use (the chip is immutable, so the cache never
    /// goes stale).
    pub fn port_reach(&self) -> &PortReach {
        self.reach.get_or_init(|| PortReach::compute(self))
    }

    /// Pre-populates the lazy reachability cache, e.g. with fields carried
    /// forward from a pre-delta chip via [`PortReach::carry_forward`]. A
    /// no-op if [`port_reach`](Self::port_reach) already ran. The seeded
    /// fields must equal what `PortReach::compute` would produce for this
    /// chip — `carry_forward` guarantees exactly that.
    pub fn seed_reach(&self, reach: PortReach) {
        let _ = self.reach.set(reach);
    }

    /// Validates that `path` is a complete flow path on this chip: it starts
    /// at an enabled flow port, ends at an enabled waste port, every interior
    /// cell is a channel or device cell (no intermediate port, no empty
    /// cell), and no cell or edge of the path is faulted.
    ///
    /// # Errors
    ///
    /// Returns the first [`PathValidationError`] encountered, scanning
    /// source, sink, interior cells, then faults along the path in order.
    pub fn validate_path(&self, path: &FlowPath) -> Result<(), PathValidationError> {
        let cells = path.cells();
        match self.grid.get(path.source()) {
            Some(CellKind::FlowPort(id)) => {
                if self.faults.flow_port_disabled(id) {
                    return Err(PathValidationError::DisabledPort(path.source()));
                }
            }
            _ => return Err(PathValidationError::SourceNotFlowPort(path.source())),
        }
        match self.grid.get(path.sink()) {
            Some(CellKind::WastePort(id)) => {
                if self.faults.waste_port_disabled(id) {
                    return Err(PathValidationError::DisabledPort(path.sink()));
                }
            }
            _ => return Err(PathValidationError::SinkNotWastePort(path.sink())),
        }
        for &c in &cells[1..cells.len() - 1] {
            match self.grid.get(c) {
                Some(CellKind::Channel) | Some(CellKind::Device(_)) => {}
                _ => return Err(PathValidationError::BadInterior(c)),
            }
        }
        if !self.faults.is_empty() {
            for &c in cells {
                if self.faults.cell_blocked(c) {
                    return Err(PathValidationError::FaultedCell(c));
                }
            }
            for w in cells.windows(2) {
                if self.faults.edge_blocked(w[0], w[1]) {
                    return Err(PathValidationError::FaultedEdge(w[0], w[1]));
                }
            }
        }
        Ok(())
    }
}

/// Why a path is not a valid complete flow path on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathValidationError {
    /// The first cell is not a flow port.
    SourceNotFlowPort(Coord),
    /// The last cell is not a waste port.
    SinkNotWastePort(Coord),
    /// An interior cell is empty, off-grid, or a port.
    BadInterior(Coord),
    /// A cell on the path is blocked by a chip fault.
    FaultedCell(Coord),
    /// The path crosses a stuck-closed valve between two adjacent cells.
    FaultedEdge(Coord, Coord),
    /// A path endpoint is a disabled port.
    DisabledPort(Coord),
}

impl fmt::Display for PathValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathValidationError::SourceNotFlowPort(c) => {
                write!(f, "path source {c} is not a flow port")
            }
            PathValidationError::SinkNotWastePort(c) => {
                write!(f, "path sink {c} is not a waste port")
            }
            PathValidationError::BadInterior(c) => {
                write!(f, "interior cell {c} is not a channel or device cell")
            }
            PathValidationError::FaultedCell(c) => {
                write!(f, "path cell {c} is blocked by a chip fault")
            }
            PathValidationError::FaultedEdge(a, b) => {
                write!(f, "path crosses a stuck-closed valve between {a} and {b}")
            }
            PathValidationError::DisabledPort(c) => {
                write!(f, "path endpoint {c} is a disabled port")
            }
        }
    }
}

impl std::error::Error for PathValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use crate::device::DeviceKind;

    /// An 8x8 chip with a horizontal channel from in1 (0,3) to out1 (7,3)
    /// through a 2-cell mixer, plus a dead-end stub at (3,1)-(3,2).
    fn chip() -> Chip {
        ChipBuilder::new(8, 8)
            .flow_port("in1", Coord::new(0, 3))
            .unwrap()
            .waste_port("out1", Coord::new(7, 3))
            .unwrap()
            .device(
                DeviceKind::Mixer,
                "mixer",
                Coord::new(3, 3),
                Coord::new(4, 3),
            )
            .unwrap()
            .channel(Coord::new(1, 3))
            .unwrap()
            .channel(Coord::new(2, 3))
            .unwrap()
            .channel(Coord::new(5, 3))
            .unwrap()
            .channel(Coord::new(6, 3))
            .unwrap()
            .channel(Coord::new(3, 2))
            .unwrap()
            .channel(Coord::new(3, 1))
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn route_finds_shortest_path() {
        let c = chip();
        let p = c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p[0], Coord::new(0, 3));
        assert_eq!(p[7], Coord::new(7, 3));
    }

    #[test]
    fn route_respects_blocked_cells() {
        let c = chip();
        // Blocking the only corridor makes the sink unreachable.
        let blocked = [Coord::new(2, 3)];
        assert!(c
            .route(Coord::new(0, 3), Coord::new(7, 3), &blocked)
            .is_none());
    }

    #[test]
    fn route_does_not_cross_foreign_ports() {
        let c = ChipBuilder::new(5, 1)
            .flow_port("in1", Coord::new(0, 0))
            .unwrap()
            .waste_port("mid", Coord::new(2, 0))
            .unwrap()
            .waste_port("out", Coord::new(4, 0))
            .unwrap()
            .channel(Coord::new(1, 0))
            .unwrap()
            .channel(Coord::new(3, 0))
            .unwrap()
            .build()
            .unwrap();
        // Route to the far port would have to pass through the mid port.
        assert!(c.route(Coord::new(0, 0), Coord::new(4, 0), &[]).is_none());
        // Route to the mid port itself is fine.
        assert!(c.route(Coord::new(0, 0), Coord::new(2, 0), &[]).is_some());
    }

    #[test]
    fn route_via_visits_stops_in_order() {
        let c = chip();
        let p = c
            .route_via(Coord::new(0, 3), &[Coord::new(3, 3)], Coord::new(7, 3), &[])
            .unwrap();
        let path = FlowPath::new(p).expect("route_via returns a simple path");
        assert!(path.contains(Coord::new(3, 3)));
        assert_eq!(path.source(), Coord::new(0, 3));
        assert_eq!(path.sink(), Coord::new(7, 3));
    }

    #[test]
    fn route_via_fails_when_stop_forces_revisit() {
        let c = chip();
        // Going out to the stub tip and back would revisit (3,2)/(3,3).
        let p = c.route_via(Coord::new(0, 3), &[Coord::new(3, 1)], Coord::new(7, 3), &[]);
        assert!(p.is_none());
    }

    #[test]
    fn validate_path_checks_endpoints_and_interior() {
        let c = chip();
        let good =
            FlowPath::new(c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).unwrap()).unwrap();
        assert!(c.validate_path(&good).is_ok());

        let bad_src = FlowPath::new(vec![Coord::new(1, 3), Coord::new(2, 3)]).unwrap();
        assert_eq!(
            c.validate_path(&bad_src),
            Err(PathValidationError::SourceNotFlowPort(Coord::new(1, 3)))
        );
    }

    #[test]
    fn locate_and_describe() {
        let c = chip();
        assert_eq!(c.locate("in1").unwrap(), Coord::new(0, 3));
        assert_eq!(c.locate("mixer").unwrap(), Coord::new(3, 3));
        assert!(c.locate("nope").is_err());
        assert_eq!(c.describe(Coord::new(0, 3)), "in1");
        assert_eq!(c.describe(Coord::new(1, 3)), "s(1,3)");
        assert_eq!(c.describe(Coord::new(4, 3)), "mixer");
    }

    #[test]
    fn same_source_and_sink_routes_to_single_cell() {
        let c = chip();
        let p = c.route(Coord::new(0, 3), Coord::new(0, 3), &[]).unwrap();
        assert_eq!(p, vec![Coord::new(0, 3)]);
    }

    #[test]
    fn faulted_cell_is_routed_around_or_fails() {
        let c = chip();
        let mut faults = crate::FaultSet::new();
        // The corridor is the only route; clogging it severs the chip.
        faults.block_cell(Coord::new(2, 3));
        let f = c.with_faults(faults).unwrap();
        assert!(f.route(Coord::new(0, 3), Coord::new(7, 3), &[]).is_none());
        // The pristine chip still routes — `with_faults` did not mutate it.
        assert!(c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).is_some());
        assert_ne!(f, c);
    }

    #[test]
    fn stuck_valve_blocks_the_edge_but_not_the_cells() {
        let c = chip();
        let mut faults = crate::FaultSet::new();
        faults.block_edge(Coord::new(1, 3), Coord::new(2, 3));
        let f = c.with_faults(faults).unwrap();
        // The edge is the only way across; routing fails…
        assert!(f.route(Coord::new(0, 3), Coord::new(7, 3), &[]).is_none());
        // …but both endpoint cells remain individually reachable.
        assert!(f.route(Coord::new(0, 3), Coord::new(1, 3), &[]).is_some());
        assert!(f.route(Coord::new(2, 3), Coord::new(7, 3), &[]).is_some());
    }

    #[test]
    fn disabled_port_rejects_paths_and_routing() {
        let c = chip();
        let mut faults = crate::FaultSet::new();
        faults.disable_flow_port(FlowPortId(0));
        let f = c.with_faults(faults).unwrap();
        assert!(f.route(Coord::new(0, 3), Coord::new(7, 3), &[]).is_none());
        let good =
            FlowPath::new(c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).unwrap()).unwrap();
        assert_eq!(
            f.validate_path(&good),
            Err(PathValidationError::DisabledPort(Coord::new(0, 3)))
        );
    }

    #[test]
    fn validate_path_reports_faulted_cells_and_edges() {
        let c = chip();
        let good =
            FlowPath::new(c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).unwrap()).unwrap();

        let mut cell_fault = crate::FaultSet::new();
        cell_fault.block_cell(Coord::new(2, 3));
        let f = c.with_faults(cell_fault).unwrap();
        assert_eq!(
            f.validate_path(&good),
            Err(PathValidationError::FaultedCell(Coord::new(2, 3)))
        );

        let mut edge_fault = crate::FaultSet::new();
        edge_fault.block_edge(Coord::new(2, 3), Coord::new(1, 3));
        let f = c.with_faults(edge_fault).unwrap();
        assert_eq!(
            f.validate_path(&good),
            Err(PathValidationError::FaultedEdge(
                Coord::new(1, 3),
                Coord::new(2, 3)
            ))
        );
    }

    #[test]
    fn with_faults_rejects_nonsense() {
        let c = chip();
        let mut oob = crate::FaultSet::new();
        oob.block_cell(Coord::new(99, 99));
        assert!(matches!(
            c.with_faults(oob),
            Err(ChipError::BadFault { .. })
        ));
        let mut bad_port = crate::FaultSet::new();
        bad_port.disable_flow_port(FlowPortId(9));
        assert!(matches!(
            c.with_faults(bad_port),
            Err(ChipError::BadFault { .. })
        ));
        let mut bad_edge = crate::FaultSet::new();
        bad_edge.block_edge(Coord::new(0, 0), Coord::new(2, 0));
        assert!(matches!(
            c.with_faults(bad_edge),
            Err(ChipError::BadFault { .. })
        ));
    }

    #[test]
    fn faulted_chip_serde_roundtrip_keeps_faults() {
        use serde::{Deserialize, Serialize};
        let c = chip();
        // Pristine chips keep the pre-fault wire format: no `faults` key.
        let v = c.to_value();
        if let serde::Value::Object(fields) = &v {
            assert!(fields.iter().all(|(k, _)| k != "faults"));
        } else {
            panic!("chip serializes to an object");
        }
        assert_eq!(Chip::from_value(&v).unwrap(), c);

        let mut faults = crate::FaultSet::new();
        faults
            .block_cell(Coord::new(3, 1))
            .block_edge(Coord::new(1, 3), Coord::new(2, 3))
            .disable_flow_port(FlowPortId(0));
        let f = c.with_faults(faults).unwrap();
        let back = Chip::from_value(&f.to_value()).unwrap();
        assert_eq!(back, f);
        assert!(back.faults().cell_blocked(Coord::new(3, 1)));
    }

    #[test]
    fn try_lookups_mirror_the_panicking_accessors() {
        let c = chip();
        assert_eq!(
            c.try_flow_port(FlowPortId(0)),
            Some(c.flow_port(FlowPortId(0)))
        );
        assert_eq!(
            c.try_waste_port(WastePortId(0)),
            Some(c.waste_port(WastePortId(0)))
        );
        assert_eq!(
            c.try_device(crate::DeviceId(0)).map(|d| d.label()),
            Some(c.device(crate::DeviceId(0)).label())
        );
        assert_eq!(c.try_flow_port(FlowPortId(7)), None);
        assert_eq!(c.try_waste_port(WastePortId(7)), None);
        assert!(c.try_device(crate::DeviceId(42)).is_none());
    }
}
