//! A validated chip architecture: grid, devices, and ports.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use crate::device::{Device, DeviceId};
use crate::error::ChipError;
use crate::grid::{CellKind, Coord, Grid};
use crate::path::FlowPath;
use crate::routing::{PortReach, RouteScratch};

/// Identifier of a flow (inlet) port on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowPortId(pub u32);

impl fmt::Display for FlowPortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in{}", self.0)
    }
}

/// Identifier of a waste (outlet) port on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WastePortId(pub u32);

impl fmt::Display for WastePortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out{}", self.0)
    }
}

/// A labeled port location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct Port {
    pub label: String,
    pub coord: Coord,
}

/// A complete, validated chip architecture.
///
/// Constructed through [`ChipBuilder`](crate::ChipBuilder). A chip owns the
/// virtual grid, the placed devices, and the flow/waste ports, and offers
/// routing queries over the channel network.
#[derive(Debug, Clone)]
pub struct Chip {
    grid: Grid,
    devices: Vec<Device>,
    flow_ports: Vec<Port>,
    waste_ports: Vec<Port>,
    labels: HashMap<String, Coord>,
    /// Lazily computed port reachability fields (see [`PortReach`]). Not
    /// part of the chip's identity: excluded from equality and
    /// serialization.
    reach: OnceLock<PortReach>,
}

impl PartialEq for Chip {
    fn eq(&self, other: &Self) -> bool {
        self.grid == other.grid
            && self.devices == other.devices
            && self.flow_ports == other.flow_ports
            && self.waste_ports == other.waste_ports
            && self.labels == other.labels
    }
}

// Manual impls (the derive would serialize the `reach` cache): same wire
// format as the former derive — an object with the persistent fields in
// declaration order.
impl Serialize for Chip {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("grid".to_string(), self.grid.to_value()),
            ("devices".to_string(), self.devices.to_value()),
            ("flow_ports".to_string(), self.flow_ports.to_value()),
            ("waste_ports".to_string(), self.waste_ports.to_value()),
            ("labels".to_string(), self.labels.to_value()),
        ])
    }
}

impl Deserialize for Chip {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for Chip"))?;
        Ok(Chip {
            grid: serde::field(obj, "grid")?,
            devices: serde::field(obj, "devices")?,
            flow_ports: serde::field(obj, "flow_ports")?,
            waste_ports: serde::field(obj, "waste_ports")?,
            labels: serde::field(obj, "labels")?,
            reach: OnceLock::new(),
        })
    }
}

thread_local! {
    /// Per-thread scratch backing the allocation-free `route`/`route_via`
    /// wrappers; rebuilt only when the grid size changes.
    static SCRATCH: RefCell<Option<RouteScratch>> = const { RefCell::new(None) };
}

impl Chip {
    pub(crate) fn from_parts(
        grid: Grid,
        devices: Vec<Device>,
        flow_ports: Vec<Port>,
        waste_ports: Vec<Port>,
    ) -> Self {
        let mut labels = HashMap::new();
        for p in flow_ports.iter().chain(waste_ports.iter()) {
            labels.insert(p.label.clone(), p.coord);
        }
        for d in &devices {
            labels.insert(d.label().to_string(), d.inlet_end());
        }
        Self {
            grid,
            devices,
            flow_ports,
            waste_ports,
            labels,
            reach: OnceLock::new(),
        }
    }

    /// The underlying virtual grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// All placed devices, indexed by [`DeviceId`].
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Looks up a device by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chip.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// Coordinates of all flow ports, indexed by [`FlowPortId`].
    pub fn flow_ports(&self) -> impl ExactSizeIterator<Item = Coord> + '_ {
        self.flow_ports.iter().map(|p| p.coord)
    }

    /// Coordinates of all waste ports, indexed by [`WastePortId`].
    pub fn waste_ports(&self) -> impl ExactSizeIterator<Item = Coord> + '_ {
        self.waste_ports.iter().map(|p| p.coord)
    }

    /// Coordinate of the flow port `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chip.
    pub fn flow_port(&self, id: FlowPortId) -> Coord {
        self.flow_ports[id.0 as usize].coord
    }

    /// Coordinate of the waste port `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this chip.
    pub fn waste_port(&self, id: WastePortId) -> Coord {
        self.waste_ports[id.0 as usize].coord
    }

    /// Resolves a port or device label to its anchor coordinate.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::UnknownLabel`] if no port or device carries the
    /// label.
    pub fn locate(&self, label: &str) -> Result<Coord, ChipError> {
        self.labels
            .get(label)
            .copied()
            .ok_or_else(|| ChipError::UnknownLabel {
                label: label.to_string(),
            })
    }

    /// Returns a short display label for a coordinate: a port/device label if
    /// one is anchored there, otherwise `s(x,y)` for channels.
    pub fn describe(&self, c: Coord) -> String {
        match self.grid.get(c) {
            Some(CellKind::FlowPort(id)) => self.flow_ports[id.0 as usize].label.clone(),
            Some(CellKind::WastePort(id)) => self.waste_ports[id.0 as usize].label.clone(),
            Some(CellKind::Device(id)) => self.devices[id.0 as usize].label().to_string(),
            _ => format!("s({},{})", c.x, c.y),
        }
    }

    /// Returns `true` if a fluid may traverse `c` on a path whose endpoints
    /// are `src` and `dst`.
    ///
    /// Ports other than the endpoints are impassable: fluid entering another
    /// inlet's tubing or a closed outlet is physically meaningless.
    pub(crate) fn passable(&self, c: Coord, src: Coord, dst: Coord) -> bool {
        match self.grid.get(c) {
            None | Some(CellKind::Empty) => false,
            Some(CellKind::Channel) | Some(CellKind::Device(_)) => true,
            Some(CellKind::FlowPort(_)) | Some(CellKind::WastePort(_)) => c == src || c == dst,
        }
    }

    /// BFS shortest path from `from` to `to` over routable cells, avoiding
    /// `blocked` cells. Returns the full cell sequence including endpoints,
    /// or `None` if unreachable.
    ///
    /// Backed by a per-thread [`RouteScratch`]; hot loops that probe many
    /// endpoint pairs against one blocked set should hold their own scratch
    /// and call [`route_with`](Self::route_with) instead.
    pub fn route(&self, from: Coord, to: Coord, blocked: &[Coord]) -> Option<Vec<Coord>> {
        self.with_scratch(|chip, scratch| {
            scratch.load_blocked(blocked.iter().copied());
            chip.route_with(scratch, from, to)
        })
    }

    /// Routes a simple path `from → via[0] → via[1] → … → to`, visiting the
    /// via cells in order without revisiting any cell.
    ///
    /// Each leg is routed by BFS with all previously used cells blocked; the
    /// construction is greedy, so `None` does not prove that no such simple
    /// path exists — callers enumerate several via-orders.
    pub fn route_via(
        &self,
        from: Coord,
        via: &[Coord],
        to: Coord,
        blocked: &[Coord],
    ) -> Option<Vec<Coord>> {
        self.with_scratch(|chip, scratch| {
            scratch.load_blocked(blocked.iter().copied());
            chip.route_via_with(scratch, from, via, to)
        })
    }

    fn with_scratch<R>(&self, f: impl FnOnce(&Chip, &mut RouteScratch) -> R) -> R {
        SCRATCH.with(|slot| {
            let mut slot = slot.borrow_mut();
            if slot.as_ref().is_none_or(|s| !s.fits(self)) {
                *slot = Some(RouteScratch::for_chip(self));
            }
            f(self, slot.as_mut().expect("scratch just installed"))
        })
    }

    /// Cached unblocked reachability fields from every flow and waste port,
    /// computed on first use (the chip is immutable, so the cache never
    /// goes stale).
    pub fn port_reach(&self) -> &PortReach {
        self.reach.get_or_init(|| PortReach::compute(self))
    }

    /// Validates that `path` is a complete flow path on this chip: it starts
    /// at a flow port, ends at a waste port, and every interior cell is a
    /// channel or device cell (no intermediate port, no empty cell).
    ///
    /// # Errors
    ///
    /// Returns the first [`PathValidationError`] encountered, scanning source,
    /// sink, then interior cells in order.
    pub fn validate_path(&self, path: &FlowPath) -> Result<(), PathValidationError> {
        let cells = path.cells();
        match self.grid.get(path.source()) {
            Some(CellKind::FlowPort(_)) => {}
            _ => return Err(PathValidationError::SourceNotFlowPort(path.source())),
        }
        match self.grid.get(path.sink()) {
            Some(CellKind::WastePort(_)) => {}
            _ => return Err(PathValidationError::SinkNotWastePort(path.sink())),
        }
        for &c in &cells[1..cells.len() - 1] {
            match self.grid.get(c) {
                Some(CellKind::Channel) | Some(CellKind::Device(_)) => {}
                _ => return Err(PathValidationError::BadInterior(c)),
            }
        }
        Ok(())
    }
}

/// Why a path is not a valid complete flow path on a chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathValidationError {
    /// The first cell is not a flow port.
    SourceNotFlowPort(Coord),
    /// The last cell is not a waste port.
    SinkNotWastePort(Coord),
    /// An interior cell is empty, off-grid, or a port.
    BadInterior(Coord),
}

impl fmt::Display for PathValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathValidationError::SourceNotFlowPort(c) => {
                write!(f, "path source {c} is not a flow port")
            }
            PathValidationError::SinkNotWastePort(c) => {
                write!(f, "path sink {c} is not a waste port")
            }
            PathValidationError::BadInterior(c) => {
                write!(f, "interior cell {c} is not a channel or device cell")
            }
        }
    }
}

impl std::error::Error for PathValidationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use crate::device::DeviceKind;

    /// An 8x8 chip with a horizontal channel from in1 (0,3) to out1 (7,3)
    /// through a 2-cell mixer, plus a dead-end stub at (3,1)-(3,2).
    fn chip() -> Chip {
        ChipBuilder::new(8, 8)
            .flow_port("in1", Coord::new(0, 3))
            .unwrap()
            .waste_port("out1", Coord::new(7, 3))
            .unwrap()
            .device(
                DeviceKind::Mixer,
                "mixer",
                Coord::new(3, 3),
                Coord::new(4, 3),
            )
            .unwrap()
            .channel(Coord::new(1, 3))
            .unwrap()
            .channel(Coord::new(2, 3))
            .unwrap()
            .channel(Coord::new(5, 3))
            .unwrap()
            .channel(Coord::new(6, 3))
            .unwrap()
            .channel(Coord::new(3, 2))
            .unwrap()
            .channel(Coord::new(3, 1))
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn route_finds_shortest_path() {
        let c = chip();
        let p = c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p[0], Coord::new(0, 3));
        assert_eq!(p[7], Coord::new(7, 3));
    }

    #[test]
    fn route_respects_blocked_cells() {
        let c = chip();
        // Blocking the only corridor makes the sink unreachable.
        let blocked = [Coord::new(2, 3)];
        assert!(c
            .route(Coord::new(0, 3), Coord::new(7, 3), &blocked)
            .is_none());
    }

    #[test]
    fn route_does_not_cross_foreign_ports() {
        let c = ChipBuilder::new(5, 1)
            .flow_port("in1", Coord::new(0, 0))
            .unwrap()
            .waste_port("mid", Coord::new(2, 0))
            .unwrap()
            .waste_port("out", Coord::new(4, 0))
            .unwrap()
            .channel(Coord::new(1, 0))
            .unwrap()
            .channel(Coord::new(3, 0))
            .unwrap()
            .build()
            .unwrap();
        // Route to the far port would have to pass through the mid port.
        assert!(c.route(Coord::new(0, 0), Coord::new(4, 0), &[]).is_none());
        // Route to the mid port itself is fine.
        assert!(c.route(Coord::new(0, 0), Coord::new(2, 0), &[]).is_some());
    }

    #[test]
    fn route_via_visits_stops_in_order() {
        let c = chip();
        let p = c
            .route_via(Coord::new(0, 3), &[Coord::new(3, 3)], Coord::new(7, 3), &[])
            .unwrap();
        let path = FlowPath::new(p).expect("route_via returns a simple path");
        assert!(path.contains(Coord::new(3, 3)));
        assert_eq!(path.source(), Coord::new(0, 3));
        assert_eq!(path.sink(), Coord::new(7, 3));
    }

    #[test]
    fn route_via_fails_when_stop_forces_revisit() {
        let c = chip();
        // Going out to the stub tip and back would revisit (3,2)/(3,3).
        let p = c.route_via(Coord::new(0, 3), &[Coord::new(3, 1)], Coord::new(7, 3), &[]);
        assert!(p.is_none());
    }

    #[test]
    fn validate_path_checks_endpoints_and_interior() {
        let c = chip();
        let good =
            FlowPath::new(c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).unwrap()).unwrap();
        assert!(c.validate_path(&good).is_ok());

        let bad_src = FlowPath::new(vec![Coord::new(1, 3), Coord::new(2, 3)]).unwrap();
        assert_eq!(
            c.validate_path(&bad_src),
            Err(PathValidationError::SourceNotFlowPort(Coord::new(1, 3)))
        );
    }

    #[test]
    fn locate_and_describe() {
        let c = chip();
        assert_eq!(c.locate("in1").unwrap(), Coord::new(0, 3));
        assert_eq!(c.locate("mixer").unwrap(), Coord::new(3, 3));
        assert!(c.locate("nope").is_err());
        assert_eq!(c.describe(Coord::new(0, 3)), "in1");
        assert_eq!(c.describe(Coord::new(1, 3)), "s(1,3)");
        assert_eq!(c.describe(Coord::new(4, 3)), "mixer");
    }

    #[test]
    fn same_source_and_sink_routes_to_single_cell() {
        let c = chip();
        let p = c.route(Coord::new(0, 3), Coord::new(0, 3), &[]).unwrap();
        assert_eq!(p, vec![Coord::new(0, 3)]);
    }
}
