//! Devices placed on the chip (mixers, heaters, detectors, filters, storage).

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::grid::Coord;

/// Identifier of a device placed on a [`Chip`](crate::Chip).
///
/// Indices are dense: the `n`-th placed device has id `DeviceId(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// The functional kind of an on-chip device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Rotary or serpentine mixer combining two input fluids.
    Mixer,
    /// Heating chamber for thermal cycling/incubation.
    Heater,
    /// Optical or electrochemical detector.
    Detector,
    /// Filtration unit.
    Filter,
    /// Magnetic-bead or affinity separator.
    Separator,
    /// Channel-based storage reservoir.
    Storage,
}

impl DeviceKind {
    /// All device kinds, in a fixed order.
    pub const ALL: [DeviceKind; 6] = [
        DeviceKind::Mixer,
        DeviceKind::Heater,
        DeviceKind::Detector,
        DeviceKind::Filter,
        DeviceKind::Separator,
        DeviceKind::Storage,
    ];

    /// Short lowercase name, e.g. `"mixer"`.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Mixer => "mixer",
            DeviceKind::Heater => "heater",
            DeviceKind::Detector => "detector",
            DeviceKind::Filter => "filter",
            DeviceKind::Separator => "separator",
            DeviceKind::Storage => "storage",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A device placed on the chip.
///
/// Each device occupies a contiguous footprint of grid cells and exposes two
/// *end cells* through which fluid enters and leaves. When a fluid plug is
/// pushed into the device, excess fluid is cached just outside the two end
/// cells and must later be removed (the `p_{j,i,2}` tasks of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    id: DeviceId,
    kind: DeviceKind,
    label: String,
    footprint: Vec<Coord>,
}

impl Device {
    pub(crate) fn new(
        id: DeviceId,
        kind: DeviceKind,
        label: String,
        footprint: Vec<Coord>,
    ) -> Self {
        debug_assert!(!footprint.is_empty());
        Self {
            id,
            kind,
            label,
            footprint,
        }
    }

    /// The device's identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The device's functional kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Human-readable label, e.g. `"detector1"`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Cells occupied by the device, in placement order.
    ///
    /// The first and last cells are the two *end cells* of the device.
    pub fn footprint(&self) -> &[Coord] {
        &self.footprint
    }

    /// The end cell through which fluid conventionally enters.
    pub fn inlet_end(&self) -> Coord {
        self.footprint[0]
    }

    /// The end cell through which fluid conventionally leaves.
    pub fn outlet_end(&self) -> Coord {
        *self.footprint.last().expect("footprint is nonempty")
    }

    /// Returns `true` if `c` is part of the device footprint.
    pub fn occupies(&self, c: Coord) -> bool {
        self.footprint.contains(&c)
    }
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.label, self.kind, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Device {
        Device::new(
            DeviceId(3),
            DeviceKind::Mixer,
            "mixer".into(),
            vec![Coord::new(2, 2), Coord::new(3, 2)],
        )
    }

    #[test]
    fn ends_are_first_and_last_footprint_cells() {
        let d = sample();
        assert_eq!(d.inlet_end(), Coord::new(2, 2));
        assert_eq!(d.outlet_end(), Coord::new(3, 2));
    }

    #[test]
    fn occupies_checks_footprint_membership() {
        let d = sample();
        assert!(d.occupies(Coord::new(2, 2)));
        assert!(!d.occupies(Coord::new(4, 2)));
    }

    #[test]
    fn single_cell_device_has_coincident_ends() {
        let d = Device::new(
            DeviceId(0),
            DeviceKind::Detector,
            "det".into(),
            vec![Coord::new(1, 1)],
        );
        assert_eq!(d.inlet_end(), d.outlet_end());
    }

    #[test]
    fn display_includes_label_and_kind() {
        let d = sample();
        let s = d.to_string();
        assert!(s.contains("mixer"));
        assert!(s.contains("d3"));
    }

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::HashSet<_> =
            DeviceKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), DeviceKind::ALL.len());
    }
}
