//! Error type for chip construction and validation.

use std::fmt;

use crate::grid::Coord;

/// Errors raised while constructing or validating a [`Chip`](crate::Chip).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipError {
    /// A coordinate lies outside the grid.
    OutOfBounds {
        /// The offending coordinate.
        coord: Coord,
        /// Grid width.
        width: u16,
        /// Grid height.
        height: u16,
    },
    /// Two placements claim the same cell.
    CellOccupied {
        /// The contested coordinate.
        coord: Coord,
    },
    /// A device footprint is empty or not 4-connected/contiguous.
    BadFootprint {
        /// Label of the offending device.
        label: String,
    },
    /// A port was placed somewhere other than the grid boundary.
    PortNotOnBoundary {
        /// The offending coordinate.
        coord: Coord,
    },
    /// Two ports or devices share a label.
    DuplicateLabel {
        /// The duplicated label.
        label: String,
    },
    /// The chip has no flow port or no waste port.
    MissingPorts,
    /// A referenced label does not exist on the chip.
    UnknownLabel {
        /// The unresolved label.
        label: String,
    },
    /// A fault set references something the chip does not have (an
    /// out-of-bounds cell, a nonexistent port, a non-adjacent edge).
    BadFault {
        /// What was wrong with the fault set.
        reason: String,
    },
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipError::OutOfBounds {
                coord,
                width,
                height,
            } => write!(
                f,
                "coordinate {coord} lies outside the {width}x{height} grid"
            ),
            ChipError::CellOccupied { coord } => {
                write!(f, "cell {coord} is already occupied")
            }
            ChipError::BadFootprint { label } => {
                write!(
                    f,
                    "device `{label}` has an empty or non-contiguous footprint"
                )
            }
            ChipError::PortNotOnBoundary { coord } => {
                write!(f, "port at {coord} is not on the grid boundary")
            }
            ChipError::DuplicateLabel { label } => {
                write!(f, "label `{label}` is used more than once")
            }
            ChipError::MissingPorts => {
                write!(f, "chip needs at least one flow port and one waste port")
            }
            ChipError::UnknownLabel { label } => {
                write!(f, "no port or device labeled `{label}`")
            }
            ChipError::BadFault { reason } => {
                write!(f, "invalid fault set: {reason}")
            }
        }
    }
}

impl std::error::Error for ChipError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ChipError::OutOfBounds {
            coord: Coord::new(9, 9),
            width: 5,
            height: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("(9, 9)"));
        assert!(msg.contains("5x5"));
        let e = ChipError::DuplicateLabel {
            label: "in1".into(),
        };
        assert!(e.to_string().contains("in1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<ChipError>();
    }
}
