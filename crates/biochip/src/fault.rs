//! Chip-fault model: blocked cells, disabled ports, stuck valves.
//!
//! Real valve-array chips degrade in the field: channels clog, inlet tubing
//! detaches, and control valves stick closed (cf. *Testing Microfluidic
//! Fully Programmable Valve Arrays*). A [`FaultSet`] describes such damage
//! declaratively:
//!
//! - **blocked cells** — clogged channel/device cells no fluid may
//!   traverse,
//! - **disabled flow/waste ports** — inlets or outlets that can no longer
//!   move fluid, even as path endpoints,
//! - **blocked edges** — stuck-closed valves between two adjacent cells:
//!   both cells stay usable, but flow cannot cross between them.
//!
//! A chip carries its fault set ([`Chip::with_faults`]); every routing
//! primitive — the BFS core, the `route`/`route_via` wrappers, the
//! [`PortReach`](crate::PortReach) pruning fields, and
//! [`Chip::validate_path`] — consults it, so planners built on those
//! primitives transparently route *around* faults, and validators reject
//! schedules that drive fluid *through* them. Faults only ever shrink
//! reachability, so the `PortReach` pruning argument (a cell unreachable in
//! the cached fields can never be routed) still holds on a faulted chip.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::chip::{FlowPortId, WastePortId};
use crate::grid::Coord;

/// Canonical (sorted) form of an undirected edge between adjacent cells.
fn edge_key(a: Coord, b: Coord) -> (Coord, Coord) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A set of physical faults on a chip (see the [module docs](self)).
///
/// Internally every component is kept sorted and deduplicated, so
/// membership queries on the routing hot path are binary searches and two
/// fault sets describing the same damage compare equal regardless of
/// insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    /// Clogged cells, sorted row-major.
    blocked_cells: Vec<Coord>,
    /// Disabled inlets, sorted by id.
    disabled_flow: Vec<u32>,
    /// Disabled outlets, sorted by id.
    disabled_waste: Vec<u32>,
    /// Stuck-closed valves as canonical `(min, max)` cell pairs.
    blocked_edges: Vec<(Coord, Coord)>,
}

impl FaultSet {
    /// An empty fault set (a pristine chip).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when no fault is recorded.
    pub fn is_empty(&self) -> bool {
        self.blocked_cells.is_empty()
            && self.disabled_flow.is_empty()
            && self.disabled_waste.is_empty()
            && self.blocked_edges.is_empty()
    }

    /// Number of recorded faults across all categories.
    pub fn len(&self) -> usize {
        self.blocked_cells.len()
            + self.disabled_flow.len()
            + self.disabled_waste.len()
            + self.blocked_edges.len()
    }

    /// Marks `cell` as clogged. Idempotent.
    pub fn block_cell(&mut self, cell: Coord) -> &mut Self {
        if let Err(i) = self.blocked_cells.binary_search(&cell) {
            self.blocked_cells.insert(i, cell);
        }
        self
    }

    /// Marks the flow port `id` as disabled. Idempotent.
    pub fn disable_flow_port(&mut self, id: FlowPortId) -> &mut Self {
        if let Err(i) = self.disabled_flow.binary_search(&id.0) {
            self.disabled_flow.insert(i, id.0);
        }
        self
    }

    /// Marks the waste port `id` as disabled. Idempotent.
    pub fn disable_waste_port(&mut self, id: WastePortId) -> &mut Self {
        if let Err(i) = self.disabled_waste.binary_search(&id.0) {
            self.disabled_waste.insert(i, id.0);
        }
        self
    }

    /// Marks the valve between adjacent cells `a` and `b` as stuck closed.
    /// The edge is undirected; insertion order of the endpoints does not
    /// matter. Idempotent.
    pub fn block_edge(&mut self, a: Coord, b: Coord) -> &mut Self {
        let key = edge_key(a, b);
        if let Err(i) = self.blocked_edges.binary_search(&key) {
            self.blocked_edges.insert(i, key);
        }
        self
    }

    /// Clears a clog at `cell` (a repaired channel). Idempotent; returns
    /// `true` if the cell was actually blocked.
    pub fn unblock_cell(&mut self, cell: Coord) -> bool {
        match self.blocked_cells.binary_search(&cell) {
            Ok(i) => {
                self.blocked_cells.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Re-enables the flow port `id`. Idempotent; returns `true` if the
    /// port was actually disabled.
    pub fn enable_flow_port(&mut self, id: FlowPortId) -> bool {
        match self.disabled_flow.binary_search(&id.0) {
            Ok(i) => {
                self.disabled_flow.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Re-enables the waste port `id`. Idempotent; returns `true` if the
    /// port was actually disabled.
    pub fn enable_waste_port(&mut self, id: WastePortId) -> bool {
        match self.disabled_waste.binary_search(&id.0) {
            Ok(i) => {
                self.disabled_waste.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Releases the stuck valve between `a` and `b` (either endpoint
    /// order). Idempotent; returns `true` if the edge was actually blocked.
    pub fn unblock_edge(&mut self, a: Coord, b: Coord) -> bool {
        match self.blocked_edges.binary_search(&edge_key(a, b)) {
            Ok(i) => {
                self.blocked_edges.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// `true` if `cell` is clogged.
    #[inline]
    pub fn cell_blocked(&self, cell: Coord) -> bool {
        !self.blocked_cells.is_empty() && self.blocked_cells.binary_search(&cell).is_ok()
    }

    /// `true` if the flow port `id` is disabled.
    #[inline]
    pub fn flow_port_disabled(&self, id: FlowPortId) -> bool {
        !self.disabled_flow.is_empty() && self.disabled_flow.binary_search(&id.0).is_ok()
    }

    /// `true` if the waste port `id` is disabled.
    #[inline]
    pub fn waste_port_disabled(&self, id: WastePortId) -> bool {
        !self.disabled_waste.is_empty() && self.disabled_waste.binary_search(&id.0).is_ok()
    }

    /// `true` if the valve between `a` and `b` is stuck closed (in either
    /// direction).
    #[inline]
    pub fn edge_blocked(&self, a: Coord, b: Coord) -> bool {
        !self.blocked_edges.is_empty() && self.blocked_edges.binary_search(&edge_key(a, b)).is_ok()
    }

    /// The clogged cells, sorted row-major.
    pub fn blocked_cells(&self) -> &[Coord] {
        &self.blocked_cells
    }

    /// The stuck-closed valves as canonical cell pairs.
    pub fn blocked_edges(&self) -> &[(Coord, Coord)] {
        &self.blocked_edges
    }

    /// The disabled flow-port ids.
    pub fn disabled_flow_ports(&self) -> impl ExactSizeIterator<Item = FlowPortId> + '_ {
        self.disabled_flow.iter().map(|&i| FlowPortId(i))
    }

    /// The disabled waste-port ids.
    pub fn disabled_waste_ports(&self) -> impl ExactSizeIterator<Item = WastePortId> + '_ {
        self.disabled_waste.iter().map(|&i| WastePortId(i))
    }
}

/// A single fault-set edit: one fault appearing (damage) or disappearing
/// (a field repair).
///
/// Deltas drive incremental replanning: the planner engine maps a delta to
/// the grid cells it can possibly affect ([`FaultDelta::footprint_cells`])
/// and invalidates only the cached state that footprint touches. Deltas
/// that *add* faults only shrink reachability, so caches whose stored
/// artifacts avoid the footprint survive verbatim; deltas that *remove*
/// faults can expand reachability anywhere ([`FaultDelta::expands_reach`])
/// and force a broader flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultDelta {
    /// A channel/device cell clogs.
    BlockCell(Coord),
    /// A clogged cell is cleared.
    UnblockCell(Coord),
    /// The valve between two adjacent cells sticks closed.
    BlockEdge(Coord, Coord),
    /// A stuck valve is released.
    UnblockEdge(Coord, Coord),
    /// An inlet detaches.
    DisableFlowPort(FlowPortId),
    /// An inlet is reconnected.
    EnableFlowPort(FlowPortId),
    /// An outlet detaches.
    DisableWastePort(WastePortId),
    /// An outlet is reconnected.
    EnableWastePort(WastePortId),
}

impl FaultDelta {
    /// Applies the delta to `faults`. Returns `false` when the delta is a
    /// no-op (blocking an already-blocked cell, clearing a fault that was
    /// never recorded, …), in which case `faults` is unchanged.
    pub fn apply(&self, faults: &mut FaultSet) -> bool {
        match *self {
            FaultDelta::BlockCell(c) => {
                if faults.cell_blocked(c) {
                    false
                } else {
                    faults.block_cell(c);
                    true
                }
            }
            FaultDelta::UnblockCell(c) => faults.unblock_cell(c),
            FaultDelta::BlockEdge(a, b) => {
                if faults.edge_blocked(a, b) {
                    false
                } else {
                    faults.block_edge(a, b);
                    true
                }
            }
            FaultDelta::UnblockEdge(a, b) => faults.unblock_edge(a, b),
            FaultDelta::DisableFlowPort(id) => {
                if faults.flow_port_disabled(id) {
                    false
                } else {
                    faults.disable_flow_port(id);
                    true
                }
            }
            FaultDelta::EnableFlowPort(id) => faults.enable_flow_port(id),
            FaultDelta::DisableWastePort(id) => {
                if faults.waste_port_disabled(id) {
                    false
                } else {
                    faults.disable_waste_port(id);
                    true
                }
            }
            FaultDelta::EnableWastePort(id) => faults.enable_waste_port(id),
        }
    }

    /// `true` when the delta removes a fault and can therefore *expand*
    /// reachability. Fault additions only ever shrink it.
    pub fn expands_reach(&self) -> bool {
        matches!(
            self,
            FaultDelta::UnblockCell(_)
                | FaultDelta::UnblockEdge(..)
                | FaultDelta::EnableFlowPort(_)
                | FaultDelta::EnableWastePort(_)
        )
    }

    /// The grid cells the delta directly touches: the blocked/cleared cell,
    /// both endpoints of an edge, or nothing for a port delta (the port
    /// coordinate lives outside the routable grid; callers resolve it via
    /// the chip's port table).
    pub fn cells(&self) -> impl Iterator<Item = Coord> + '_ {
        let (a, b) = match *self {
            FaultDelta::BlockCell(c) | FaultDelta::UnblockCell(c) => (Some(c), None),
            FaultDelta::BlockEdge(a, b) | FaultDelta::UnblockEdge(a, b) => (Some(a), Some(b)),
            _ => (None, None),
        };
        a.into_iter().chain(b)
    }
}

impl fmt::Display for FaultDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultDelta::BlockCell(c) => write!(f, "block cell {c}"),
            FaultDelta::UnblockCell(c) => write!(f, "unblock cell {c}"),
            FaultDelta::BlockEdge(a, b) => write!(f, "block edge {a}-{b}"),
            FaultDelta::UnblockEdge(a, b) => write!(f, "unblock edge {a}-{b}"),
            FaultDelta::DisableFlowPort(id) => write!(f, "disable inlet {}", id.0),
            FaultDelta::EnableFlowPort(id) => write!(f, "enable inlet {}", id.0),
            FaultDelta::DisableWastePort(id) => write!(f, "disable outlet {}", id.0),
            FaultDelta::EnableWastePort(id) => write!(f, "enable outlet {}", id.0),
        }
    }
}

impl fmt::Display for FaultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} blocked cell(s), {} blocked edge(s), {} disabled inlet(s), {} disabled outlet(s)",
            self.blocked_cells.len(),
            self.blocked_edges.len(),
            self.disabled_flow.len(),
            self.disabled_waste.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_matches_nothing() {
        let f = FaultSet::new();
        assert!(f.is_empty());
        assert_eq!(f.len(), 0);
        assert!(!f.cell_blocked(Coord::new(1, 1)));
        assert!(!f.edge_blocked(Coord::new(0, 0), Coord::new(1, 0)));
        assert!(!f.flow_port_disabled(FlowPortId(0)));
        assert!(!f.waste_port_disabled(WastePortId(0)));
    }

    #[test]
    fn membership_is_insertion_order_independent() {
        let mut a = FaultSet::new();
        a.block_cell(Coord::new(3, 1))
            .block_cell(Coord::new(1, 2))
            .block_edge(Coord::new(5, 5), Coord::new(5, 4));
        let mut b = FaultSet::new();
        b.block_edge(Coord::new(5, 4), Coord::new(5, 5))
            .block_cell(Coord::new(1, 2))
            .block_cell(Coord::new(3, 1));
        assert_eq!(a, b);
        assert!(a.cell_blocked(Coord::new(3, 1)));
        assert!(a.edge_blocked(Coord::new(5, 5), Coord::new(5, 4)));
        assert!(a.edge_blocked(Coord::new(5, 4), Coord::new(5, 5)));
    }

    #[test]
    fn inserts_are_idempotent() {
        let mut f = FaultSet::new();
        f.block_cell(Coord::new(1, 1)).block_cell(Coord::new(1, 1));
        f.disable_flow_port(FlowPortId(2))
            .disable_flow_port(FlowPortId(2));
        f.disable_waste_port(WastePortId(1));
        f.block_edge(Coord::new(0, 0), Coord::new(0, 1))
            .block_edge(Coord::new(0, 1), Coord::new(0, 0));
        assert_eq!(f.len(), 4);
        assert!(f.flow_port_disabled(FlowPortId(2)));
        assert!(!f.flow_port_disabled(FlowPortId(0)));
        assert!(f.waste_port_disabled(WastePortId(1)));
    }

    #[test]
    fn removals_undo_inserts_and_report_whether_anything_changed() {
        let mut f = FaultSet::new();
        f.block_cell(Coord::new(1, 1))
            .block_edge(Coord::new(0, 0), Coord::new(0, 1))
            .disable_flow_port(FlowPortId(2))
            .disable_waste_port(WastePortId(1));
        assert!(f.unblock_cell(Coord::new(1, 1)));
        assert!(!f.unblock_cell(Coord::new(1, 1)));
        assert!(f.unblock_edge(Coord::new(0, 1), Coord::new(0, 0)));
        assert!(!f.unblock_edge(Coord::new(0, 0), Coord::new(0, 1)));
        assert!(f.enable_flow_port(FlowPortId(2)));
        assert!(!f.enable_flow_port(FlowPortId(0)));
        assert!(f.enable_waste_port(WastePortId(1)));
        assert!(!f.enable_waste_port(WastePortId(1)));
        assert!(f.is_empty());
        assert_eq!(f, FaultSet::new());
    }

    #[test]
    fn deltas_apply_and_invert() {
        let deltas = [
            FaultDelta::BlockCell(Coord::new(2, 2)),
            FaultDelta::BlockEdge(Coord::new(3, 3), Coord::new(3, 4)),
            FaultDelta::DisableFlowPort(FlowPortId(0)),
            FaultDelta::DisableWastePort(WastePortId(3)),
        ];
        let inverses = [
            FaultDelta::UnblockCell(Coord::new(2, 2)),
            FaultDelta::UnblockEdge(Coord::new(3, 4), Coord::new(3, 3)),
            FaultDelta::EnableFlowPort(FlowPortId(0)),
            FaultDelta::EnableWastePort(WastePortId(3)),
        ];
        let mut f = FaultSet::new();
        for d in &deltas {
            assert!(!d.expands_reach());
            assert!(d.apply(&mut f), "{d} should change an empty set");
            assert!(!d.apply(&mut f), "{d} applied twice must be a no-op");
        }
        assert_eq!(f.len(), 4);
        for d in &inverses {
            assert!(d.expands_reach());
            assert!(d.apply(&mut f), "{d} should clear a recorded fault");
            assert!(!d.apply(&mut f), "{d} applied twice must be a no-op");
        }
        assert!(f.is_empty());
    }

    #[test]
    fn delta_cells_cover_cell_and_edge_variants_only() {
        let c = Coord::new(5, 6);
        let cells: Vec<_> = FaultDelta::BlockCell(c).cells().collect();
        assert_eq!(cells, vec![c]);
        let cells: Vec<_> = FaultDelta::UnblockEdge(Coord::new(1, 0), Coord::new(2, 0))
            .cells()
            .collect();
        assert_eq!(cells, vec![Coord::new(1, 0), Coord::new(2, 0)]);
        assert_eq!(
            FaultDelta::DisableFlowPort(FlowPortId(1)).cells().count(),
            0
        );
    }

    #[test]
    fn serde_roundtrip_preserves_the_set() {
        let mut f = FaultSet::new();
        f.block_cell(Coord::new(2, 3))
            .disable_flow_port(FlowPortId(1))
            .block_edge(Coord::new(4, 4), Coord::new(4, 5));
        let v = f.to_value();
        let back = FaultSet::from_value(&v).unwrap();
        assert_eq!(back, f);
    }
}
