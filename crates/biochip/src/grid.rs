//! The virtual grid `R` and its cells.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::device::DeviceId;
use crate::{FlowPortId, WastePortId};

/// A coordinate on the virtual grid.
///
/// `x` grows to the right, `y` grows downward. Coordinates are compared
/// lexicographically by `(y, x)` so that iteration order matches row-major
/// grid order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from column and row indices.
    pub const fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to `other`, in cells.
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }

    /// Returns `true` if `other` is 4-connected adjacent to `self`.
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }
}

impl PartialOrd for Coord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Coord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.y, self.x).cmp(&(other.y, other.x))
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// What occupies a single grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum CellKind {
    /// Unused chip area; fluids cannot traverse it.
    #[default]
    Empty,
    /// An etched flow channel segment.
    Channel,
    /// Part of the footprint of a placed device.
    Device(DeviceId),
    /// A fluid inlet connected to an external reservoir/pump.
    FlowPort(FlowPortId),
    /// A fluid outlet releasing waste fluids and displaced air.
    WastePort(WastePortId),
}

impl CellKind {
    /// Returns `true` if a fluid plug can traverse this cell.
    pub fn is_routable(self) -> bool {
        !matches!(self, CellKind::Empty)
    }

    /// Returns `true` if residue can be left behind on this cell.
    ///
    /// Ports are connected to external tubing and are not considered
    /// contaminated by on-chip flows.
    pub fn can_hold_residue(self) -> bool {
        matches!(self, CellKind::Channel | CellKind::Device(_))
    }
}

/// The virtual grid `R` of size `W_G × H_G`.
///
/// Devices and channels are placed on the cells of the grid; routing is
/// 4-connected.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    width: u16,
    height: u16,
    cells: Vec<CellKind>,
}

impl Grid {
    /// Creates an all-[`CellKind::Empty`] grid.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be nonzero");
        Self {
            width,
            height,
            cells: vec![CellKind::Empty; width as usize * height as usize],
        }
    }

    /// Grid width (number of columns).
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height (number of rows).
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Returns `true` if `c` lies inside the grid.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    fn index(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c));
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Returns the kind of cell at `c`, or `None` if out of bounds.
    pub fn get(&self, c: Coord) -> Option<CellKind> {
        self.contains(c).then(|| self.cells[self.index(c)])
    }

    /// Returns the kind of cell at `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn kind(&self, c: Coord) -> CellKind {
        self.cells[self.index(c)]
    }

    /// Sets the kind of cell at `c`, returning the previous kind.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn set(&mut self, c: Coord, kind: CellKind) -> CellKind {
        let i = self.index(c);
        std::mem::replace(&mut self.cells[i], kind)
    }

    /// The 4-connected in-bounds neighbors of `c`.
    pub fn neighbors(&self, c: Coord) -> impl Iterator<Item = Coord> + '_ {
        const DELTAS: [(i32, i32); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
        DELTAS.into_iter().filter_map(move |(dx, dy)| {
            let x = c.x as i32 + dx;
            let y = c.y as i32 + dy;
            if x >= 0 && y >= 0 {
                let n = Coord::new(x as u16, y as u16);
                self.contains(n).then_some(n)
            } else {
                None
            }
        })
    }

    /// Iterates over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.height).flat_map(move |y| (0..self.width).map(move |x| Coord::new(x, y)))
    }

    /// Iterates over `(coord, kind)` pairs of all non-empty cells.
    pub fn occupied(&self) -> impl Iterator<Item = (Coord, CellKind)> + '_ {
        self.coords()
            .map(move |c| (c, self.kind(c)))
            .filter(|(_, k)| k.is_routable())
    }

    /// Number of non-empty cells.
    pub fn occupied_count(&self) -> usize {
        self.cells.iter().filter(|k| k.is_routable()).count()
    }
}

impl fmt::Display for Grid {
    /// Renders the grid as ASCII art: `.` empty, `-` channel, `D` device,
    /// `I` flow port, `O` waste port.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for y in 0..self.height {
            for x in 0..self.width {
                let ch = match self.kind(Coord::new(x, y)) {
                    CellKind::Empty => '.',
                    CellKind::Channel => '-',
                    CellKind::Device(_) => 'D',
                    CellKind::FlowPort(_) => 'I',
                    CellKind::WastePort(_) => 'O',
                };
                write!(f, "{ch}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_manhattan_and_adjacency() {
        let a = Coord::new(2, 3);
        let b = Coord::new(4, 0);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert!(a.is_adjacent(Coord::new(2, 4)));
        assert!(a.is_adjacent(Coord::new(1, 3)));
        assert!(!a.is_adjacent(a));
        assert!(!a.is_adjacent(Coord::new(3, 4)));
    }

    #[test]
    fn coord_order_is_row_major() {
        let mut v = vec![Coord::new(1, 1), Coord::new(0, 0), Coord::new(2, 0)];
        v.sort();
        assert_eq!(
            v,
            vec![Coord::new(0, 0), Coord::new(2, 0), Coord::new(1, 1)]
        );
    }

    #[test]
    fn grid_set_get_roundtrip() {
        let mut g = Grid::new(4, 3);
        assert_eq!(g.kind(Coord::new(3, 2)), CellKind::Empty);
        let prev = g.set(Coord::new(3, 2), CellKind::Channel);
        assert_eq!(prev, CellKind::Empty);
        assert_eq!(g.kind(Coord::new(3, 2)), CellKind::Channel);
        assert_eq!(g.get(Coord::new(4, 0)), None);
        assert_eq!(g.get(Coord::new(0, 3)), None);
    }

    #[test]
    fn grid_neighbors_respect_bounds() {
        let g = Grid::new(3, 3);
        let corner: Vec<_> = g.neighbors(Coord::new(0, 0)).collect();
        assert_eq!(corner.len(), 2);
        let center: Vec<_> = g.neighbors(Coord::new(1, 1)).collect();
        assert_eq!(center.len(), 4);
        let edge: Vec<_> = g.neighbors(Coord::new(2, 1)).collect();
        assert_eq!(edge.len(), 3);
    }

    #[test]
    fn grid_coords_cover_all_cells_once() {
        let g = Grid::new(5, 4);
        let coords: Vec<_> = g.coords().collect();
        assert_eq!(coords.len(), 20);
        let unique: std::collections::HashSet<_> = coords.iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn occupied_counts_non_empty_cells() {
        let mut g = Grid::new(3, 3);
        g.set(Coord::new(0, 0), CellKind::Channel);
        g.set(Coord::new(1, 1), CellKind::Channel);
        assert_eq!(g.occupied_count(), 2);
        assert_eq!(g.occupied().count(), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_sized_grid_panics() {
        let _ = Grid::new(0, 5);
    }

    #[test]
    fn display_renders_ascii() {
        let mut g = Grid::new(2, 2);
        g.set(Coord::new(0, 0), CellKind::Channel);
        let s = g.to_string();
        assert_eq!(s, "-.\n..\n");
    }

    #[test]
    fn cell_kind_predicates() {
        assert!(!CellKind::Empty.is_routable());
        assert!(CellKind::Channel.is_routable());
        assert!(CellKind::Channel.can_hold_residue());
        assert!(!CellKind::FlowPort(FlowPortId(0)).can_hold_residue());
        assert!(CellKind::FlowPort(FlowPortId(0)).is_routable());
    }
}
