//! Chip architecture model for continuous-flow lab-on-a-chip (LoC) biochip
//! systems.
//!
//! A continuous-flow biochip is modeled — following the PathDriver line of
//! work — as a *virtual grid* `R` of size `W × H`. Every grid cell is either
//! empty, a channel segment, part of a device (mixer, heater, detector,
//! filter, storage), a flow port (fluid inlet), or a waste port (outlet).
//! Fluids move along *flow paths*: simple port-to-port cell sequences driven
//! by external pressure.
//!
//! This crate provides:
//!
//! - [`Coord`] / [`CellKind`] / [`Grid`] — the virtual grid itself,
//! - [`Device`] / [`DeviceKind`] — placed devices with footprints,
//! - [`Chip`] — a validated chip architecture with ports and devices,
//! - [`ChipBuilder`] — ergonomic construction of chips,
//! - [`FlowPath`] — validated port-to-port paths with physical length,
//! - [`route`](Chip::route) — BFS shortest-path routing over the chip.
//!
//! # Example
//!
//! ```
//! use pdw_biochip::{Chip, ChipBuilder, Coord, DeviceKind};
//!
//! # fn main() -> Result<(), pdw_biochip::ChipError> {
//! let chip: Chip = ChipBuilder::new(8, 8)
//!     .flow_port("in1", Coord::new(0, 3))?
//!     .waste_port("out1", Coord::new(7, 3))?
//!     .device(DeviceKind::Mixer, "mixer", Coord::new(3, 3), Coord::new(4, 3))?
//!     .channel(Coord::new(1, 3))?
//!     .channel(Coord::new(2, 3))?
//!     .channel(Coord::new(5, 3))?
//!     .channel(Coord::new(6, 3))?
//!     .build()?;
//! let path = chip.route(Coord::new(0, 3), Coord::new(7, 3), &[]).expect("routable");
//! assert_eq!(path.first(), Some(&Coord::new(0, 3)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cellset;
mod chip;
mod device;
mod error;
mod fault;
mod grid;
pub mod partition;
mod path;
mod routing;
pub mod text;

pub use builder::ChipBuilder;
pub use cellset::CellSet;
pub use chip::{Chip, FlowPortId, PathValidationError, WastePortId};
pub use device::{Device, DeviceId, DeviceKind};
pub use error::ChipError;
pub use fault::{FaultDelta, FaultSet};
pub use grid::{CellKind, Coord, Grid};
pub use partition::{
    cut_at, partition, partition_with_traffic, span_view, traffic_profile, CutInterface, Partition,
    PartitionError, Region,
};
pub use path::{FlowPath, PathError};
pub use routing::{
    counters as routing_counters, PooledScratch, PortReach, RouteScratch, RoutingCounters,
    ScratchPool,
};

/// Physical pitch of one virtual-grid cell, in millimeters.
///
/// The paper reports wash-path lengths in millimeters (Table II, 60–460 mm
/// over 3–18 wash operations, i.e. roughly 25 mm per path) and uses a flow
/// velocity of 10 mm/s. A 2 mm pitch puts a typical 10–15-cell on-chip path
/// in exactly that band and keeps task durations in whole seconds, matching
/// the second-granular schedules of Figs. 2–3.
pub const CELL_PITCH_MM: f64 = 2.0;

/// Flow velocity of fluids in channels, in millimeters per second.
///
/// Taken from the paper's experimental setup (`v_f = 10 mm/s`, Section IV).
pub const FLOW_VELOCITY_MM_S: f64 = 10.0;

/// Etched channel width, in millimeters (200 µm, typical for PDMS
/// continuous-flow chips).
pub const CHANNEL_WIDTH_MM: f64 = 0.2;

/// Etched channel height, in millimeters (50 µm).
pub const CHANNEL_HEIGHT_MM: f64 = 0.05;
