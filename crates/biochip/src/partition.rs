//! Grid partitioning for mega-chips: vertical cuts along low-traffic
//! columns, producing per-region sub-[`Chip`] views.
//!
//! A partition slices the grid into `K` column bands. Each band becomes a
//! [`Region`] carrying a full-dimension sub-chip view: cells outside the
//! band are blanked to [`CellKind::Empty`] and ports outside the band are
//! disabled through the region's [`FaultSet`], while coordinates, device
//! ids, and port ids are all preserved. A path routed inside a region view
//! is therefore directly valid on the whole chip, and the view's lazily
//! computed [`PortReach`](crate::PortReach) is automatically per-region.
//!
//! Cut columns are chosen greedily: near the ideal balanced positions, the
//! boundary with the lowest *traffic estimate* wins. The estimate combines
//! the physical cut width (open channel crossings) with proximity of device
//! placements (where operations execute) and ports (where flows terminate)
//! — the structural proxies for how much fluid wants to cross a boundary.
//! A cut may never sever a device footprint: explicit cuts through one are
//! rejected with a typed [`PartitionError`], and the greedy search simply
//! skips such boundaries. When fewer viable cuts exist than requested, the
//! partition is clamped and flagged ([`Partition::clamped`]).

use std::fmt;

use crate::cellset::CellSet;
use crate::chip::{Chip, FlowPortId, WastePortId};
use crate::grid::{CellKind, Coord};

/// Minimum width (in columns) of a region. Narrower bands have no interior
/// to route in and only add stitching overhead.
pub const MIN_REGION_WIDTH: u16 = 4;

/// Failure modes of grid partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// A requested cut column would sever a device footprint.
    CutThroughDevice {
        /// The cut column (the cut runs between `column - 1` and `column`).
        column: u16,
        /// Label of the severed device.
        device: String,
    },
    /// A requested cut column is outside the grid interior.
    CutOutOfRange {
        /// The offending column.
        column: u16,
        /// The grid width.
        width: u16,
    },
    /// Zero regions were requested.
    NoRegions,
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::CutThroughDevice { column, device } => write!(
                f,
                "cut at column {column} severs the footprint of device `{device}`"
            ),
            PartitionError::CutOutOfRange { column, width } => write!(
                f,
                "cut column {column} is outside the grid interior (width {width})"
            ),
            PartitionError::NoRegions => write!(f, "a partition needs at least one region"),
        }
    }
}

impl std::error::Error for PartitionError {}

/// One column band of a partition, with its sub-chip view.
#[derive(Debug, Clone)]
pub struct Region {
    /// Position of this region in the partition, left to right.
    pub index: usize,
    /// First column of the band (inclusive).
    pub x_lo: u16,
    /// Last column of the band (inclusive).
    pub x_hi: u16,
    chip: Chip,
    flow_ports: usize,
    waste_ports: usize,
}

impl Region {
    /// The region's sub-chip view: same grid dimensions and ids as the
    /// parent chip, cells outside the band blanked, ports outside the band
    /// disabled via the view's fault set (on top of the parent's faults).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// `true` when `c` lies inside this band.
    pub fn contains(&self, c: Coord) -> bool {
        (self.x_lo..=self.x_hi).contains(&c.x)
    }

    /// Band width in columns.
    pub fn width(&self) -> u16 {
        self.x_hi - self.x_lo + 1
    }

    /// Enabled flow ports inside the band.
    pub fn flow_ports(&self) -> usize {
        self.flow_ports
    }

    /// Enabled waste ports inside the band.
    pub fn waste_ports(&self) -> usize {
        self.waste_ports
    }

    /// `true` when the region can route complete wash paths on its own: it
    /// has at least one enabled flow port *and* one enabled waste port.
    pub fn plannable(&self) -> bool {
        self.flow_ports > 0 && self.waste_ports > 0
    }
}

/// The explicit interface of one cut: the open channel crossings through
/// which fluid can pass between the two adjacent regions. These are the
/// "cut ports" a cross-boundary coordination step reasons over.
#[derive(Debug, Clone)]
pub struct CutInterface {
    /// The cut runs between columns `column - 1` and `column`.
    pub column: u16,
    /// Passable cell pairs `(left, right)` across the cut, top to bottom.
    pub channels: Vec<(Coord, Coord)>,
}

/// A chip sliced into column-band regions along low-traffic cuts.
#[derive(Debug, Clone)]
pub struct Partition {
    regions: Vec<Region>,
    interfaces: Vec<CutInterface>,
    requested: usize,
    clamped: bool,
}

impl Partition {
    /// The regions, left to right.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// The cut interfaces, left to right (one fewer than regions).
    pub fn interfaces(&self) -> &[CutInterface] {
        &self.interfaces
    }

    /// The chosen cut columns, ascending.
    pub fn cut_columns(&self) -> Vec<u16> {
        self.interfaces.iter().map(|i| i.column).collect()
    }

    /// How many regions were requested.
    pub fn requested(&self) -> usize {
        self.requested
    }

    /// `true` when fewer viable cuts existed than requested and the
    /// partition was clamped to fewer regions. Callers should surface this
    /// as a warning.
    pub fn clamped(&self) -> bool {
        self.clamped
    }

    /// Index of the region containing `c`.
    pub fn region_of(&self, c: Coord) -> usize {
        self.regions
            .iter()
            .position(|r| r.contains(c))
            .expect("every grid column belongs to exactly one band")
    }

    /// All cells participating in a cut interface, as a set.
    pub fn interface_cells(&self) -> CellSet {
        self.interfaces
            .iter()
            .flat_map(|i| i.channels.iter().flat_map(|&(a, b)| [a, b]))
            .collect()
    }
}

/// Per-boundary traffic estimate; entry `b - 1` scores the cut between
/// columns `b - 1` and `b`, for `b` in `1..width`.
///
/// The estimate is the physical cut width (open channel crossings) plus
/// proximity terms for device placements and enabled ports: a boundary next
/// to a device or a port will carry the flows that serve them, so cutting
/// there forces cross-region coordination. Pure function of the chip.
pub fn traffic_profile(chip: &Chip) -> Vec<f64> {
    let width = chip.grid().width();
    let mut traffic = vec![0.0f64; width.saturating_sub(1) as usize];
    for (i, t) in traffic.iter_mut().enumerate() {
        let b = (i + 1) as u16;
        *t = crossings(chip, b).len() as f64;
    }
    // Device placements: operations execute on devices, so boundaries near
    // a footprint see the result/excess flows of those operations.
    for d in chip.devices() {
        for &c in d.footprint() {
            for (i, t) in traffic.iter_mut().enumerate() {
                let b = (i + 1) as u16;
                let dx = if c.x < b { b - 1 - c.x } else { c.x - b };
                *t += 3.0 / (1.0 + dx as f64);
            }
        }
    }
    // Port positions: every flow starts at a flow port and ends at a waste
    // port, so boundaries near an enabled port see their traffic.
    let faults = chip.faults();
    let ports = chip
        .flow_ports()
        .enumerate()
        .filter(|&(i, _)| !faults.flow_port_disabled(FlowPortId(i as u32)))
        .map(|(_, c)| c)
        .chain(
            chip.waste_ports()
                .enumerate()
                .filter(|&(i, _)| !faults.waste_port_disabled(WastePortId(i as u32)))
                .map(|(_, c)| c),
        );
    for c in ports {
        for (i, t) in traffic.iter_mut().enumerate() {
            let b = (i + 1) as u16;
            let dx = if c.x < b { b - 1 - c.x } else { c.x - b };
            *t += 2.0 / (1.0 + dx as f64);
        }
    }
    traffic
}

/// The open channel crossings of the cut between columns `b - 1` and `b`:
/// adjacent cell pairs that are routable on both sides, not fault-blocked,
/// and whose joining edge is not stuck closed.
fn crossings(chip: &Chip, b: u16) -> Vec<(Coord, Coord)> {
    let grid = chip.grid();
    let faults = chip.faults();
    let mut out = Vec::new();
    for y in 0..grid.height() {
        let left = Coord::new(b - 1, y);
        let right = Coord::new(b, y);
        if grid.kind(left).is_routable()
            && grid.kind(right).is_routable()
            && !faults.cell_blocked(left)
            && !faults.cell_blocked(right)
            && !faults.edge_blocked(left, right)
        {
            out.push((left, right));
        }
    }
    out
}

/// Checks that a cut at `column` is structurally legal: inside the grid
/// interior and not through any device footprint.
///
/// # Errors
///
/// [`PartitionError::CutOutOfRange`] or
/// [`PartitionError::CutThroughDevice`].
pub fn check_cut(chip: &Chip, column: u16) -> Result<(), PartitionError> {
    let width = chip.grid().width();
    if column == 0 || column >= width {
        return Err(PartitionError::CutOutOfRange { column, width });
    }
    for d in chip.devices() {
        let left = d.footprint().iter().any(|c| c.x < column);
        let right = d.footprint().iter().any(|c| c.x >= column);
        if left && right {
            return Err(PartitionError::CutThroughDevice {
                column,
                device: d.label().to_string(),
            });
        }
    }
    Ok(())
}

/// Builds a partition from explicit cut columns (ascending order not
/// required; duplicates are ignored).
///
/// # Errors
///
/// [`PartitionError`] when a cut is out of range or severs a device
/// footprint.
pub fn cut_at(chip: &Chip, columns: &[u16]) -> Result<Partition, PartitionError> {
    let mut cuts: Vec<u16> = columns.to_vec();
    cuts.sort_unstable();
    cuts.dedup();
    for &c in &cuts {
        check_cut(chip, c)?;
    }
    Ok(assemble(chip, &cuts, cuts.len() + 1, false))
}

/// Cuts the chip into (up to) `k` regions along low-traffic boundaries
/// using the chip's own [`traffic_profile`].
///
/// # Errors
///
/// [`PartitionError::NoRegions`] when `k == 0`.
pub fn partition(chip: &Chip, k: usize) -> Result<Partition, PartitionError> {
    partition_with_traffic(chip, k, &[])
}

/// Like [`partition`], but adds `extra` (indexed like [`traffic_profile`];
/// shorter slices are zero-extended) onto the structural estimate — e.g.
/// observed path crossings of a concrete schedule.
///
/// # Errors
///
/// [`PartitionError::NoRegions`] when `k == 0`.
pub fn partition_with_traffic(
    chip: &Chip,
    k: usize,
    extra: &[f64],
) -> Result<Partition, PartitionError> {
    if k == 0 {
        return Err(PartitionError::NoRegions);
    }
    let width = chip.grid().width();
    let mut traffic = traffic_profile(chip);
    for (t, e) in traffic.iter_mut().zip(extra) {
        *t += e;
    }

    // Greedy min-traffic selection near the balanced ideal positions. Each
    // wanted cut searches a window around `width * i / k`; within the
    // window the viable boundary with the lowest traffic wins (ties to the
    // left). Windows that contain no viable boundary are skipped — that is
    // the clamp.
    let mut cuts: Vec<u16> = Vec::new();
    let span = (width as usize / k.max(1)) as i32;
    for i in 1..k {
        let ideal = (width as usize * i / k) as i32;
        let lo = (ideal - span / 2).max(1);
        let hi = (ideal + span / 2).min(width as i32 - 1);
        let floor = cuts.last().map_or(MIN_REGION_WIDTH as i32, |&c| {
            c as i32 + MIN_REGION_WIDTH as i32
        });
        let ceil = width as i32 - MIN_REGION_WIDTH as i32;
        let mut best: Option<(f64, u16)> = None;
        for b in lo.max(floor)..=hi.min(ceil) {
            let b = b as u16;
            if check_cut(chip, b).is_err() {
                continue;
            }
            let t = traffic[b as usize - 1];
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, b));
            }
        }
        if let Some((_, b)) = best {
            cuts.push(b);
        }
    }
    let clamped = cuts.len() + 1 < k;
    Ok(assemble(chip, &cuts, k, clamped))
}

/// Assembles the partition from validated cut columns.
fn assemble(chip: &Chip, cuts: &[u16], requested: usize, clamped: bool) -> Partition {
    let width = chip.grid().width();
    let mut regions = Vec::with_capacity(cuts.len() + 1);
    let mut x_lo = 0u16;
    for (index, &cut) in cuts.iter().chain([&width]).enumerate() {
        let x_hi = cut - 1;
        regions.push(carve(chip, index, x_lo, x_hi));
        x_lo = cut;
    }
    let interfaces = cuts
        .iter()
        .map(|&column| CutInterface {
            column,
            channels: crossings(chip, column),
        })
        .collect();
    Partition {
        regions,
        interfaces,
        requested,
        clamped,
    }
}

/// Carves a standalone band view covering columns `x_lo..=x_hi` — the same
/// view a [`Region`] of a [`Partition`] gets, but over an arbitrary column
/// span. Partitioned planners use this to plan a cross-cut flow path on the
/// union of the bands it touches rather than the whole chip: the span keeps
/// full grid dimensions and stable cell/port ids, so paths found on it are
/// valid on the parent chip verbatim.
///
/// The returned [`Region`] is not part of any partition; its `index` is 0.
pub fn span_view(chip: &Chip, x_lo: u16, x_hi: u16) -> Region {
    carve(chip, 0, x_lo.min(x_hi), x_lo.max(x_hi))
}

/// Builds the sub-chip view for one band: out-of-band cells blanked (port
/// cells excepted — their ids must stay addressable), out-of-band ports
/// disabled through the fault set on top of the parent chip's faults.
fn carve(chip: &Chip, index: usize, x_lo: u16, x_hi: u16) -> Region {
    let in_band = |x: u16| (x_lo..=x_hi).contains(&x);
    let mut grid = chip.grid().clone();
    for c in chip.grid().coords() {
        if !in_band(c.x) && !matches!(grid.kind(c), CellKind::FlowPort(_) | CellKind::WastePort(_))
        {
            grid.set(c, CellKind::Empty);
        }
    }

    let mut faults = chip.faults().clone();
    let mut flow_ports = 0usize;
    let mut waste_ports = 0usize;
    for (i, c) in chip.flow_ports().enumerate() {
        let id = FlowPortId(i as u32);
        if !in_band(c.x) {
            faults.disable_flow_port(id);
        } else if !chip.faults().flow_port_disabled(id) {
            flow_ports += 1;
        }
    }
    for (i, c) in chip.waste_ports().enumerate() {
        let id = WastePortId(i as u32);
        if !in_band(c.x) {
            faults.disable_waste_port(id);
        } else if !chip.faults().waste_port_disabled(id) {
            waste_ports += 1;
        }
    }

    let view = Chip::from_parts(
        grid,
        chip.devices().to_vec(),
        chip.flow_port_entries().to_vec(),
        chip.waste_port_entries().to_vec(),
    );
    let chip = view
        .with_faults(faults)
        .expect("region faults reference the parent chip's own cells and ports");
    Region {
        index,
        x_lo,
        x_hi,
        chip,
        flow_ports,
        waste_ports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use crate::device::DeviceKind;
    use crate::FaultSet;

    /// A 20×7 corridor chip: full channel fill, one device at (8..=10, 3),
    /// flow ports on the west/top, waste ports on the east/bottom.
    fn chip() -> Chip {
        let claimed = [
            Coord::new(0, 2),
            Coord::new(14, 0),
            Coord::new(19, 4),
            Coord::new(4, 6),
            Coord::new(8, 3),
            Coord::new(9, 3),
            Coord::new(10, 3),
        ];
        let mut b = ChipBuilder::new(20, 7)
            .flow_port("in1", Coord::new(0, 2))
            .unwrap()
            .flow_port("in2", Coord::new(14, 0))
            .unwrap()
            .waste_port("out1", Coord::new(19, 4))
            .unwrap()
            .waste_port("out2", Coord::new(4, 6))
            .unwrap()
            .device(
                DeviceKind::Mixer,
                "mixer1",
                Coord::new(8, 3),
                Coord::new(10, 3),
            )
            .unwrap();
        for y in 0..7 {
            for x in 0..20 {
                let c = Coord::new(x, y);
                if !claimed.contains(&c) {
                    b = b.channel(c).unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn cut_through_device_is_a_typed_error() {
        let chip = chip();
        for column in [9, 10] {
            let err = cut_at(&chip, &[column]).unwrap_err();
            assert!(
                matches!(
                    &err,
                    PartitionError::CutThroughDevice { device, .. } if device == "mixer1"
                ),
                "column {column}: {err}"
            );
        }
        // Just past the footprint is fine.
        assert!(cut_at(&chip, &[11]).is_ok());
    }

    #[test]
    fn out_of_range_cut_is_rejected() {
        let chip = chip();
        assert!(matches!(
            cut_at(&chip, &[0]),
            Err(PartitionError::CutOutOfRange { .. })
        ));
        assert!(matches!(
            cut_at(&chip, &[20]),
            Err(PartitionError::CutOutOfRange { .. })
        ));
    }

    #[test]
    fn partition_clamps_when_k_exceeds_viable_cuts() {
        let chip = chip();
        let p = partition(&chip, 64).unwrap();
        assert!(p.clamped(), "64 regions cannot fit 20 columns");
        assert!(p.regions().len() < 64);
        assert_eq!(p.requested(), 64);
        assert!(!p.regions().is_empty());
    }

    #[test]
    fn traffic_overlay_moves_cuts_off_high_traffic_columns() {
        let chip = chip();
        let base = partition(&chip, 2).unwrap();
        let c0 = base.interfaces()[0].column;

        // An empty overlay is exactly the structural profile.
        let same = partition_with_traffic(&chip, 2, &[]).unwrap();
        assert_eq!(same.interfaces()[0].column, c0);

        // Pile observed crossings onto the structurally-chosen boundary
        // (index b-1 scores the cut between columns b-1 and b; shorter
        // overlays zero-extend). The cut must move to another viable,
        // min-width-respecting column.
        let mut extra = vec![0.0; c0 as usize];
        extra[c0 as usize - 1] = 1e6;
        let moved = partition_with_traffic(&chip, 2, &extra).unwrap();
        let c1 = moved.interfaces()[0].column;
        assert_ne!(c1, c0, "cut stayed on the high-traffic column");
        assert!(check_cut(&chip, c1).is_ok());
        for r in moved.regions() {
            assert!(r.width() >= MIN_REGION_WIDTH);
        }

        // Load the new column too: the pick keeps dodging hot columns.
        let mut extra2 = vec![0.0; c0.max(c1) as usize];
        extra2[c0 as usize - 1] = 1e6;
        extra2[c1 as usize - 1] = 1e6;
        let moved2 = partition_with_traffic(&chip, 2, &extra2).unwrap();
        let c2 = moved2.interfaces()[0].column;
        assert!(c2 != c0 && c2 != c1, "cut landed back on a hot column");

        // A uniform overlay shifts every boundary equally and changes
        // nothing (ties still resolve to the left).
        let uniform = partition_with_traffic(&chip, 2, &[7.5; 19]).unwrap();
        assert_eq!(uniform.interfaces()[0].column, c0);
    }

    #[test]
    fn zero_regions_is_rejected() {
        assert!(matches!(
            partition(&chip(), 0),
            Err(PartitionError::NoRegions)
        ));
    }

    #[test]
    fn single_region_partition_is_the_whole_chip_view() {
        let chip = chip();
        let p = partition(&chip, 1).unwrap();
        assert_eq!(p.regions().len(), 1);
        assert!(!p.clamped());
        assert!(p.interfaces().is_empty());
        let r = &p.regions()[0];
        assert_eq!((r.x_lo, r.x_hi), (0, 19));
        assert_eq!(r.chip().grid(), chip.grid());
        assert_eq!(r.chip().faults(), chip.faults());
    }

    #[test]
    fn regions_tile_the_grid_and_respect_min_width() {
        let chip = chip();
        let p = partition(&chip, 3).unwrap();
        assert_eq!(p.regions().len(), 3, "20 columns fit 3 regions");
        let mut next = 0u16;
        for r in p.regions() {
            assert_eq!(r.x_lo, next, "bands must tile without gaps");
            assert!(r.width() >= MIN_REGION_WIDTH);
            next = r.x_hi + 1;
        }
        assert_eq!(next, 20);
        for c in chip.grid().coords() {
            let i = p.region_of(c);
            assert!(p.regions()[i].contains(c));
        }
    }

    #[test]
    fn region_views_preserve_coordinates_and_disable_outside_ports() {
        let chip = chip();
        let p = cut_at(&chip, &[7, 13]).unwrap();
        let mid = &p.regions()[1];
        // In-band cells identical to the parent grid.
        for c in chip.grid().coords() {
            if mid.contains(c) {
                assert_eq!(mid.chip().grid().kind(c), chip.grid().kind(c), "{c}");
            } else if !matches!(
                chip.grid().kind(c),
                CellKind::FlowPort(_) | CellKind::WastePort(_)
            ) {
                assert_eq!(mid.chip().grid().kind(c), CellKind::Empty, "{c}");
            }
        }
        // The middle band holds in2 (x=14? no: x=14 is right band). It has
        // the device but no ports: out-of-band ports must be disabled.
        let f = mid.chip().faults();
        assert!(f.flow_port_disabled(FlowPortId(0)));
        assert!(f.waste_port_disabled(WastePortId(0)));
        assert!(!mid.plannable());
        // The left band keeps in1/out2 enabled.
        let left = &p.regions()[0];
        assert!(!left.chip().faults().flow_port_disabled(FlowPortId(0)));
        assert!(!left.chip().faults().waste_port_disabled(WastePortId(1)));
        assert!(left.plannable());
    }

    #[test]
    fn region_port_reach_is_confined_to_the_band() {
        let chip = chip();
        let p = cut_at(&chip, &[7]).unwrap();
        let left = &p.regions()[0];
        let reach = left.chip().port_reach();
        assert!(reach.washable(Coord::new(3, 3)));
        assert!(
            !reach.washable(Coord::new(15, 3)),
            "cells beyond the cut must be unreachable in the region view"
        );
    }

    #[test]
    fn interfaces_enumerate_open_crossings() {
        let chip = chip();
        let p = cut_at(&chip, &[7]).unwrap();
        assert_eq!(p.interfaces().len(), 1);
        let iface = &p.interfaces()[0];
        assert_eq!(iface.column, 7);
        // Full-fill chip: every row crosses.
        assert_eq!(iface.channels.len(), 7);
        for &(a, b) in &iface.channels {
            assert_eq!(a.x, 6);
            assert_eq!(b.x, 7);
            assert!(a.is_adjacent(b));
        }
        assert!(p.interface_cells().contains(Coord::new(6, 0)));
    }

    #[test]
    fn parent_faults_carry_into_region_views() {
        let base = chip();
        let mut faults = FaultSet::new();
        faults.block_cell(Coord::new(2, 2));
        let chip = base.with_faults(faults).unwrap();
        let p = cut_at(&chip, &[7]).unwrap();
        assert!(p.regions()[0]
            .chip()
            .faults()
            .cell_blocked(Coord::new(2, 2)));
        assert!(p.regions()[1]
            .chip()
            .faults()
            .cell_blocked(Coord::new(2, 2)));
    }

    #[test]
    fn traffic_prefers_quiet_boundaries() {
        let chip = chip();
        let t = traffic_profile(&chip);
        assert_eq!(t.len(), 19);
        // Boundaries through the device's columns see the device's traffic
        // contribution at full weight; a distant boundary sees less.
        assert!(t[8] > t[3]);
        // The greedy pick avoids the device: its cuts are viable.
        let p = partition(&chip, 2).unwrap();
        for c in p.cut_columns() {
            assert!(check_cut(&chip, c).is_ok());
        }
    }
}
