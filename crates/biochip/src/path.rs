//! Flow paths: simple port-to-port cell sequences.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::grid::Coord;
use crate::CELL_PITCH_MM;

/// Errors raised when constructing a [`FlowPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathError {
    /// The cell sequence is empty.
    Empty,
    /// Two consecutive cells are not 4-connected.
    NotAdjacent {
        /// Index of the first cell of the offending pair.
        index: usize,
    },
    /// The same cell appears twice (paths must be simple).
    RepeatedCell {
        /// The repeated coordinate.
        coord: Coord,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "flow path has no cells"),
            PathError::NotAdjacent { index } => {
                write!(f, "cells {index} and {} are not adjacent", index + 1)
            }
            PathError::RepeatedCell { coord } => {
                write!(f, "cell {coord} appears more than once in the path")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A simple (self-avoiding) 4-connected path of grid cells.
///
/// Complete flow paths on a chip run `[flow port → … → waste port]`: fluid is
/// driven by pressure from an inlet and vents through an outlet (Table I of
/// the paper lists such paths for transports, removals, and washes). The
/// path type itself only enforces the geometric invariants — adjacency and
/// simplicity; whether the endpoints are ports of a specific chip is checked
/// by [`Chip::validate_path`](crate::Chip::validate_path).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowPath {
    cells: Vec<Coord>,
}

impl FlowPath {
    /// Builds a path from a cell sequence.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] if the sequence is empty, a consecutive pair is
    /// not 4-connected, or a cell repeats.
    pub fn new(cells: Vec<Coord>) -> Result<Self, PathError> {
        if cells.is_empty() {
            return Err(PathError::Empty);
        }
        for (i, w) in cells.windows(2).enumerate() {
            if !w[0].is_adjacent(w[1]) {
                return Err(PathError::NotAdjacent { index: i });
            }
        }
        let mut seen = std::collections::HashSet::with_capacity(cells.len());
        for &c in &cells {
            if !seen.insert(c) {
                return Err(PathError::RepeatedCell { coord: c });
            }
        }
        Ok(Self { cells })
    }

    /// The cells of the path, in traversal order.
    pub fn cells(&self) -> &[Coord] {
        &self.cells
    }

    /// Number of cells on the path.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the path has no cells (never true for a
    /// constructed path).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// First cell (the source port for a complete flow path).
    pub fn source(&self) -> Coord {
        self.cells[0]
    }

    /// Last cell (the sink port for a complete flow path).
    pub fn sink(&self) -> Coord {
        *self.cells.last().expect("path is nonempty")
    }

    /// Physical length of the path in millimeters (`len × CELL_PITCH_MM`).
    pub fn length_mm(&self) -> f64 {
        self.cells.len() as f64 * CELL_PITCH_MM
    }

    /// Returns `true` if `c` lies on the path.
    pub fn contains(&self, c: Coord) -> bool {
        self.cells.contains(&c)
    }

    /// Returns `true` if the two paths share at least one cell
    /// (`l_a ∩ l_b ≠ ∅` in the paper's conflict constraints).
    pub fn overlaps(&self, other: &FlowPath) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let set: std::collections::HashSet<_> = large.cells.iter().collect();
        small.cells.iter().any(|c| set.contains(c))
    }

    /// Returns `true` if every cell of `self` lies on `other`
    /// (`l_a ⊆ l_b`, used by the removal-integration rule, Eq. 21).
    pub fn is_subpath_of(&self, other: &FlowPath) -> bool {
        let set: std::collections::HashSet<_> = other.cells.iter().collect();
        self.cells.iter().all(|c| set.contains(c))
    }

    /// Iterates over the cells of the path.
    pub fn iter(&self) -> std::slice::Iter<'_, Coord> {
        self.cells.iter()
    }
}

impl<'a> IntoIterator for &'a FlowPath {
    type Item = &'a Coord;
    type IntoIter = std::slice::Iter<'a, Coord>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

impl fmt::Display for FlowPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.cells {
            if !first {
                write!(f, " -> ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u16) -> Vec<Coord> {
        (0..n).map(|x| Coord::new(x, 0)).collect()
    }

    #[test]
    fn valid_path_roundtrips() {
        let p = FlowPath::new(line(4)).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.source(), Coord::new(0, 0));
        assert_eq!(p.sink(), Coord::new(3, 0));
        assert!((p.length_mm() - 4.0 * CELL_PITCH_MM).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(FlowPath::new(vec![]), Err(PathError::Empty));
    }

    #[test]
    fn rejects_non_adjacent() {
        let err = FlowPath::new(vec![Coord::new(0, 0), Coord::new(2, 0)]).unwrap_err();
        assert_eq!(err, PathError::NotAdjacent { index: 0 });
    }

    #[test]
    fn rejects_repeats() {
        let cells = vec![
            Coord::new(0, 0),
            Coord::new(1, 0),
            Coord::new(1, 1),
            Coord::new(1, 0),
        ];
        let err = FlowPath::new(cells).unwrap_err();
        assert_eq!(
            err,
            PathError::RepeatedCell {
                coord: Coord::new(1, 0)
            }
        );
    }

    #[test]
    fn overlap_and_subpath() {
        let a = FlowPath::new(line(4)).unwrap();
        let b = FlowPath::new(vec![Coord::new(1, 0), Coord::new(2, 0)]).unwrap();
        let c = FlowPath::new(vec![Coord::new(0, 2), Coord::new(1, 2)]).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.is_subpath_of(&a));
        assert!(!a.is_subpath_of(&b));
    }

    #[test]
    fn single_cell_path_is_valid() {
        let p = FlowPath::new(vec![Coord::new(5, 5)]).unwrap();
        assert_eq!(p.source(), p.sink());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn display_uses_arrows() {
        let p = FlowPath::new(line(2)).unwrap();
        assert_eq!(p.to_string(), "(0, 0) -> (1, 0)");
    }
}
