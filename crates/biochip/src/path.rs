//! Flow paths: simple port-to-port cell sequences.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::cellset::CellSet;
use crate::grid::Coord;
use crate::CELL_PITCH_MM;

/// Errors raised when constructing a [`FlowPath`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PathError {
    /// The cell sequence is empty.
    Empty,
    /// Two consecutive cells are not 4-connected.
    NotAdjacent {
        /// Index of the first cell of the offending pair.
        index: usize,
    },
    /// The same cell appears twice (paths must be simple).
    RepeatedCell {
        /// The repeated coordinate.
        coord: Coord,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "flow path has no cells"),
            PathError::NotAdjacent { index } => {
                write!(f, "cells {index} and {} are not adjacent", index + 1)
            }
            PathError::RepeatedCell { coord } => {
                write!(f, "cell {coord} appears more than once in the path")
            }
        }
    }
}

impl std::error::Error for PathError {}

/// A simple (self-avoiding) 4-connected path of grid cells.
///
/// Complete flow paths on a chip run `[flow port → … → waste port]`: fluid is
/// driven by pressure from an inlet and vents through an outlet (Table I of
/// the paper lists such paths for transports, removals, and washes). The
/// path type itself only enforces the geometric invariants — adjacency and
/// simplicity; whether the endpoints are ports of a specific chip is checked
/// by [`Chip::validate_path`](crate::Chip::validate_path).
#[derive(Debug, Clone)]
pub struct FlowPath {
    cells: Vec<Coord>,
    /// Word-packed occupancy mask over the path's bounding box, precomputed
    /// so overlap/subset/membership queries need no per-call set building.
    /// Derived from `cells`: excluded from equality, hashing, and
    /// serialization.
    mask: CellSet,
}

impl PartialEq for FlowPath {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
    }
}

impl Eq for FlowPath {}

impl Hash for FlowPath {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.cells.hash(state);
    }
}

// Manual impls (the derive would serialize the derived `mask`): same wire
// format as the former derive — an object holding only `cells`.
impl Serialize for FlowPath {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("cells".to_string(), self.cells.to_value())])
    }
}

impl Deserialize for FlowPath {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected object for FlowPath"))?;
        let cells: Vec<Coord> = serde::field(obj, "cells")?;
        FlowPath::new(cells).map_err(serde::Error::custom)
    }
}

impl FlowPath {
    /// Builds a path from a cell sequence.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] if the sequence is empty, a consecutive pair is
    /// not 4-connected, or a cell repeats.
    pub fn new(cells: Vec<Coord>) -> Result<Self, PathError> {
        if cells.is_empty() {
            return Err(PathError::Empty);
        }
        for (i, w) in cells.windows(2).enumerate() {
            if !w[0].is_adjacent(w[1]) {
                return Err(PathError::NotAdjacent { index: i });
            }
        }
        let mask = CellSet::from_cells(&cells);
        if mask.len() != cells.len() {
            // Cold path: rediscover the first repeat for the error report.
            let mut seen = std::collections::HashSet::with_capacity(cells.len());
            for &c in &cells {
                if !seen.insert(c) {
                    return Err(PathError::RepeatedCell { coord: c });
                }
            }
            unreachable!("mask/cells length mismatch implies a repeated cell");
        }
        Ok(Self { cells, mask })
    }

    /// The cells of the path, in traversal order.
    pub fn cells(&self) -> &[Coord] {
        &self.cells
    }

    /// Number of cells on the path.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the path has no cells (never true for a
    /// constructed path).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// First cell (the source port for a complete flow path).
    pub fn source(&self) -> Coord {
        self.cells[0]
    }

    /// Last cell (the sink port for a complete flow path).
    pub fn sink(&self) -> Coord {
        *self.cells.last().expect("path is nonempty")
    }

    /// Physical length of the path in millimeters (`len × CELL_PITCH_MM`).
    pub fn length_mm(&self) -> f64 {
        self.cells.len() as f64 * CELL_PITCH_MM
    }

    /// Returns `true` if `c` lies on the path.
    pub fn contains(&self, c: Coord) -> bool {
        self.mask.contains(c)
    }

    /// The path's occupancy mask (the same cells as [`cells`](Self::cells),
    /// as a word-packed [`CellSet`]).
    pub fn mask(&self) -> &CellSet {
        &self.mask
    }

    /// Returns `true` if the two paths share at least one cell
    /// (`l_a ∩ l_b ≠ ∅` in the paper's conflict constraints).
    pub fn overlaps(&self, other: &FlowPath) -> bool {
        self.mask.intersects(&other.mask)
    }

    /// Returns `true` if every cell of `self` lies on `other`
    /// (`l_a ⊆ l_b`, used by the removal-integration rule, Eq. 21).
    pub fn is_subpath_of(&self, other: &FlowPath) -> bool {
        self.mask.is_subset_of(&other.mask)
    }

    /// Iterates over the cells of the path.
    pub fn iter(&self) -> std::slice::Iter<'_, Coord> {
        self.cells.iter()
    }
}

impl<'a> IntoIterator for &'a FlowPath {
    type Item = &'a Coord;
    type IntoIter = std::slice::Iter<'a, Coord>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter()
    }
}

impl fmt::Display for FlowPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.cells {
            if !first {
                write!(f, " -> ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u16) -> Vec<Coord> {
        (0..n).map(|x| Coord::new(x, 0)).collect()
    }

    #[test]
    fn valid_path_roundtrips() {
        let p = FlowPath::new(line(4)).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.source(), Coord::new(0, 0));
        assert_eq!(p.sink(), Coord::new(3, 0));
        assert!((p.length_mm() - 4.0 * CELL_PITCH_MM).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(FlowPath::new(vec![]), Err(PathError::Empty));
    }

    #[test]
    fn rejects_non_adjacent() {
        let err = FlowPath::new(vec![Coord::new(0, 0), Coord::new(2, 0)]).unwrap_err();
        assert_eq!(err, PathError::NotAdjacent { index: 0 });
    }

    #[test]
    fn rejects_repeats() {
        let cells = vec![
            Coord::new(0, 0),
            Coord::new(1, 0),
            Coord::new(1, 1),
            Coord::new(1, 0),
        ];
        let err = FlowPath::new(cells).unwrap_err();
        assert_eq!(
            err,
            PathError::RepeatedCell {
                coord: Coord::new(1, 0)
            }
        );
    }

    #[test]
    fn overlap_and_subpath() {
        let a = FlowPath::new(line(4)).unwrap();
        let b = FlowPath::new(vec![Coord::new(1, 0), Coord::new(2, 0)]).unwrap();
        let c = FlowPath::new(vec![Coord::new(0, 2), Coord::new(1, 2)]).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(b.is_subpath_of(&a));
        assert!(!a.is_subpath_of(&b));
    }

    /// Pairwise oracle check of the bitset-backed `overlaps`/`is_subpath_of`
    /// against the old `HashSet` semantics: single-cell paths, identical
    /// paths, disjoint paths, and subpaths at either end.
    #[test]
    fn overlap_subpath_edge_cases_match_naive() {
        use std::collections::HashSet;
        let paths = [
            FlowPath::new(vec![Coord::new(2, 0)]).unwrap(), // single cell on the line
            FlowPath::new(vec![Coord::new(7, 7)]).unwrap(), // single cell off the line
            FlowPath::new(line(4)).unwrap(),                // (0,0)..(3,0)
            FlowPath::new(line(4)).unwrap(),                // identical copy
            FlowPath::new(vec![Coord::new(0, 0), Coord::new(1, 0)]).unwrap(), // front subpath
            FlowPath::new(vec![Coord::new(2, 0), Coord::new(3, 0)]).unwrap(), // back subpath
            FlowPath::new(vec![Coord::new(0, 5), Coord::new(1, 5)]).unwrap(), // disjoint
            FlowPath::new(vec![Coord::new(3, 0), Coord::new(3, 1)]).unwrap(), // crosses one end
        ];
        for a in &paths {
            for b in &paths {
                let sa: HashSet<_> = a.cells().iter().collect();
                let sb: HashSet<_> = b.cells().iter().collect();
                assert_eq!(a.overlaps(b), !sa.is_disjoint(&sb), "overlaps: {a} vs {b}");
                assert_eq!(b.overlaps(a), !sb.is_disjoint(&sa), "overlaps: {b} vs {a}");
                assert_eq!(a.is_subpath_of(b), sa.is_subset(&sb), "subpath: {a} vs {b}");
            }
        }
        for p in &paths {
            for &c in p.cells() {
                assert!(p.contains(c));
            }
            assert!(!p.contains(Coord::new(9, 9)));
        }
    }

    #[test]
    fn single_cell_path_is_valid() {
        let p = FlowPath::new(vec![Coord::new(5, 5)]).unwrap();
        assert_eq!(p.source(), p.sink());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn display_uses_arrows() {
        let p = FlowPath::new(line(2)).unwrap();
        assert_eq!(p.to_string(), "(0, 0) -> (1, 0)");
    }
}
