//! Dense, allocation-free BFS routing state.
//!
//! The router's hot loops (candidate wash-path enumeration tries many
//! via-orders per wash group) used to rebuild `HashMap`/`HashSet` frontier
//! state on every call. [`RouteScratch`] replaces those with flat
//! `Vec`-indexed arrays keyed by grid cell index, stamped with epochs so a
//! warm scratch is reused without clearing: after the first route on a given
//! grid size, routing allocates nothing but the returned path.
//!
//! [`PortReach`] caches BFS distance fields from every flow and waste port
//! over the unblocked chip, computed once per chip (the chip is immutable
//! after construction, so the cache never goes stale). Because blocking
//! cells only ever shrinks reachability, a cell unreachable in these fields
//! can never be routed, so enumeration prunes hopeless port/via
//! combinations without running the router at all.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::chip::Chip;
use crate::fault::FaultDelta;
use crate::grid::{CellKind, Coord};

/// Monotone counters over all routing activity in the process.
///
/// Incremented with relaxed ordering (they are statistics, not
/// synchronization); read them with [`counters`] before and after a pipeline
/// stage and subtract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutingCounters {
    /// Top-level routing queries (`route` / `route_via` and scratch
    /// variants).
    pub route_calls: u64,
    /// Individual BFS leg searches (a `route_via` runs one per stop).
    pub bfs_runs: u64,
    /// Routing queries served by an already-warm scratch (no allocation).
    pub scratch_reuses: u64,
}

static ROUTE_CALLS: AtomicU64 = AtomicU64::new(0);
static BFS_RUNS: AtomicU64 = AtomicU64::new(0);
static SCRATCH_REUSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide [`RoutingCounters`].
pub fn counters() -> RoutingCounters {
    RoutingCounters {
        route_calls: ROUTE_CALLS.load(Ordering::Relaxed),
        bfs_runs: BFS_RUNS.load(Ordering::Relaxed),
        scratch_reuses: SCRATCH_REUSES.load(Ordering::Relaxed),
    }
}

impl std::ops::Sub for RoutingCounters {
    type Output = RoutingCounters;

    fn sub(self, rhs: RoutingCounters) -> RoutingCounters {
        RoutingCounters {
            route_calls: self.route_calls - rhs.route_calls,
            bfs_runs: self.bfs_runs - rhs.bfs_runs,
            scratch_reuses: self.scratch_reuses - rhs.scratch_reuses,
        }
    }
}

const UNSET: u32 = u32::MAX;

/// Reusable BFS state for one grid size.
///
/// All membership tests (`visited`, `blocked`, `used`, pending stops) are
/// epoch-stamped flat arrays: bumping an epoch invalidates the whole set in
/// O(1), so repeated routes reuse the buffers without clearing or
/// allocating. One scratch serves one thread; parallel enumeration gives
/// each worker its own.
#[derive(Debug, Clone)]
pub struct RouteScratch {
    width: u16,
    height: u16,
    /// BFS visited stamp + predecessor (per BFS leg).
    visit: Vec<u32>,
    prev: Vec<u32>,
    visit_epoch: u32,
    /// Blocked-cell stamp (loaded once, valid across many routes).
    blocked: Vec<u32>,
    blocked_epoch: u32,
    /// Cells consumed by earlier legs of the current `route_via`.
    used: Vec<u32>,
    used_epoch: u32,
    /// Pending-stop stamp and rank for the current `route_via`.
    stop: Vec<u32>,
    stop_rank: Vec<u32>,
    stop_epoch: u32,
    /// FIFO frontier.
    queue: Vec<u32>,
    /// Whether this scratch has served a route before (for the reuse
    /// counter).
    warm: bool,
}

impl RouteScratch {
    /// Creates scratch buffers sized for `chip`'s grid.
    pub fn for_chip(chip: &Chip) -> Self {
        Self::new(chip.grid().width(), chip.grid().height())
    }

    /// Creates scratch buffers for a `width × height` grid.
    pub fn new(width: u16, height: u16) -> Self {
        let n = width as usize * height as usize;
        Self {
            width,
            height,
            visit: vec![0; n],
            prev: vec![0; n],
            visit_epoch: 0,
            blocked: vec![0; n],
            blocked_epoch: 0,
            used: vec![0; n],
            used_epoch: 0,
            stop: vec![0; n],
            stop_rank: vec![0; n],
            stop_epoch: 0,
            queue: Vec::with_capacity(n),
            warm: false,
        }
    }

    /// Returns `true` if this scratch fits `chip`'s grid.
    pub fn fits(&self, chip: &Chip) -> bool {
        self.width == chip.grid().width() && self.height == chip.grid().height()
    }

    #[inline]
    fn idx(&self, c: Coord) -> usize {
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Bumps an epoch counter, resetting the stamp array on wrap-around so a
    /// stale stamp can never alias the new epoch. Epoch 0 is reserved for
    /// "freshly zeroed", so stamps start valid-empty.
    fn bump(epoch: &mut u32, stamps: &mut [u32]) -> u32 {
        *epoch = epoch.wrapping_add(1);
        if *epoch == UNSET {
            stamps.fill(0);
            *epoch = 1;
        }
        *epoch
    }

    /// Replaces the blocked set. The set stays loaded across subsequent
    /// `route_with`/`route_via_with` calls, so a caller probing many port
    /// pairs against one blocked set stamps it exactly once.
    pub fn load_blocked(&mut self, blocked: impl IntoIterator<Item = Coord>) {
        let e = Self::bump(&mut self.blocked_epoch, &mut self.blocked);
        for c in blocked {
            if c.x < self.width && c.y < self.height {
                let i = c.y as usize * self.width as usize + c.x as usize;
                self.blocked[i] = e;
            }
        }
    }

    /// Starts a fresh routing query: invalidates the leg-used set and the
    /// pending-stop set (the blocked set persists).
    fn begin_query(&mut self) {
        Self::bump(&mut self.used_epoch, &mut self.used);
        Self::bump(&mut self.stop_epoch, &mut self.stop);
        ROUTE_CALLS.fetch_add(1, Ordering::Relaxed);
        if self.warm {
            SCRATCH_REUSES.fetch_add(1, Ordering::Relaxed);
        }
        self.warm = true;
    }

    #[inline]
    fn is_blocked(&self, i: usize) -> bool {
        self.blocked[i] == self.blocked_epoch
    }

    #[inline]
    fn is_used(&self, i: usize) -> bool {
        self.used[i] == self.used_epoch
    }

    /// One BFS leg from `cur` to `stop`. A cell is traversable when it is
    /// passable for the `(cur, stop)` endpoint pair, not blocked, not
    /// consumed by an earlier leg (`cur` itself is exempt: it is the head of
    /// the previous leg, which this leg restarts from), and not a stop that
    /// must be visited later (`rank > leg`).
    fn leg(&mut self, chip: &Chip, cur: Coord, stop: Coord, leg: u32) -> bool {
        BFS_RUNS.fetch_add(1, Ordering::Relaxed);
        let start = self.idx(cur);
        let pending = |s: &Self, i: usize| s.stop[i] == s.stop_epoch && s.stop_rank[i] > leg;
        let barred = |s: &Self, i: usize, c: Coord| {
            ((s.is_blocked(i) || s.is_used(i)) && c != cur) || pending(s, i)
        };
        if !chip.passable(cur, cur, stop) || barred(self, start, cur) {
            return false;
        }
        let e = Self::bump(&mut self.visit_epoch, &mut self.visit);
        self.visit[start] = e;
        self.prev[start] = start as u32;
        self.queue.clear();
        self.queue.push(start as u32);
        let mut head = 0usize;
        while head < self.queue.len() {
            let ci = self.queue[head] as usize;
            head += 1;
            let c = Coord::new(
                (ci % self.width as usize) as u16,
                (ci / self.width as usize) as u16,
            );
            for n in chip.grid().neighbors(c) {
                let ni = self.idx(n);
                if self.visit[ni] == e || barred(self, ni, n) {
                    continue;
                }
                if !chip.passable(n, cur, stop) || !chip.edge_passable(c, n) {
                    continue;
                }
                self.visit[ni] = e;
                self.prev[ni] = ci as u32;
                if n == stop {
                    return true;
                }
                self.queue.push(ni as u32);
            }
        }
        false
    }

    /// Appends the found leg path (endpoints included) to `out`.
    fn extract(&self, from: Coord, to: Coord, out: &mut Vec<Coord>) {
        let mark = out.len();
        let start = self.idx(from) as u32;
        let mut i = self.idx(to) as u32;
        loop {
            out.push(Coord::new(
                (i % self.width as u32) as u16,
                (i / self.width as u32) as u16,
            ));
            if i == start {
                break;
            }
            i = self.prev[i as usize];
        }
        out[mark..].reverse();
    }
}

impl Chip {
    /// Like [`route`](Self::route), but against the blocked set loaded into
    /// `scratch` — hot loops load the blocked set once and probe many
    /// endpoint pairs with zero per-call allocation.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different grid.
    pub fn route_with(
        &self,
        scratch: &mut RouteScratch,
        from: Coord,
        to: Coord,
    ) -> Option<Vec<Coord>> {
        assert!(scratch.fits(self), "scratch sized for a different grid");
        scratch.begin_query();
        if !self.passable(from, from, to) || scratch.is_blocked(scratch.idx(from)) {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        if !scratch.leg(self, from, to, 0) {
            return None;
        }
        let mut path = Vec::new();
        scratch.extract(from, to, &mut path);
        Some(path)
    }

    /// Like [`route_via`](Self::route_via), but against the blocked set
    /// loaded into `scratch`.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was sized for a different grid.
    pub fn route_via_with(
        &self,
        scratch: &mut RouteScratch,
        from: Coord,
        via: &[Coord],
        to: Coord,
    ) -> Option<Vec<Coord>> {
        assert!(scratch.fits(self), "scratch sized for a different grid");
        scratch.begin_query();
        let se = scratch.stop_epoch;
        for (k, &s) in via.iter().chain(std::iter::once(&to)).enumerate() {
            if s.x < scratch.width && s.y < scratch.height {
                let i = scratch.idx(s);
                scratch.stop[i] = se;
                // Duplicate stops keep the last (maximum) rank, matching the
                // "blocked while any later visit is pending" rule.
                scratch.stop_rank[i] = k as u32;
            }
        }

        let mut path: Vec<Coord> = Vec::new();
        let mut cur = from;
        for k in 0..=via.len() {
            let stop = if k < via.len() { via[k] } else { to };
            if stop == cur {
                if path.is_empty() {
                    path.push(cur);
                    let i = scratch.idx(cur);
                    scratch.used[i] = scratch.used_epoch;
                }
                continue;
            }
            if !scratch.leg(self, cur, stop, k as u32) {
                return None;
            }
            let mark = path.len();
            scratch.extract(cur, stop, &mut path);
            // Drop the duplicated leg-start cell for non-first legs.
            if mark > 0 {
                path.remove(mark);
            }
            for &c in &path[mark..] {
                let i = scratch.idx(c);
                scratch.used[i] = scratch.used_epoch;
            }
            cur = stop;
        }
        Some(path)
    }
}

/// A checkout/return pool of [`RouteScratch`] buffers.
///
/// Warm scratches are expensive to throw away: every enumeration fan-out
/// that builds fresh per-worker scratches re-pays the allocation and the
/// first-epoch stamping. A pool lets a long-lived caller (a `PlanContext`,
/// a batch driver's worker thread) keep scratches warm across many routing
/// bursts — and across *instances*, as long as the grid size matches:
/// [`checkout`](Self::checkout) hands back a pooled scratch that fits the
/// chip, or allocates a fresh one when none does. The guard returns the
/// scratch on drop, so the pool only ever grows to the caller's peak
/// concurrent demand.
///
/// The pool is `Sync`; concurrent workers check scratches out through a
/// mutex held only for the pop/push, never across a route.
#[derive(Debug, Default)]
pub struct ScratchPool {
    pool: std::sync::Mutex<Vec<RouteScratch>>,
}

impl ScratchPool {
    /// An empty pool; scratches are allocated lazily on first checkout.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool pre-seeded with one scratch sized for `chip`.
    pub fn for_chip(chip: &Chip) -> Self {
        let pool = Self::new();
        pool.put(RouteScratch::for_chip(chip));
        pool
    }

    /// Checks out a scratch fitting `chip`'s grid: a pooled one when
    /// available (keeping its warm epochs), a freshly allocated one
    /// otherwise. The scratch returns to the pool when the guard drops.
    pub fn checkout<'p>(&'p self, chip: &Chip) -> PooledScratch<'p> {
        let mut pool = self.pool.lock().expect("scratch pool poisoned");
        let scratch = pool
            .iter()
            .position(|s| s.fits(chip))
            .map(|i| pool.swap_remove(i))
            .unwrap_or_else(|| RouteScratch::for_chip(chip));
        drop(pool);
        PooledScratch {
            pool: self,
            scratch: Some(scratch),
        }
    }

    /// Returns a scratch to the pool (used by the guard's drop; callers may
    /// also seed the pool with scratches they built themselves).
    pub fn put(&self, scratch: RouteScratch) {
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .push(scratch);
    }

    /// Number of scratches currently checked in.
    pub fn available(&self) -> usize {
        self.pool.lock().expect("scratch pool poisoned").len()
    }
}

/// A [`RouteScratch`] checked out of a [`ScratchPool`]; derefs to the
/// scratch and returns it to the pool on drop.
#[derive(Debug)]
pub struct PooledScratch<'p> {
    pool: &'p ScratchPool,
    scratch: Option<RouteScratch>,
}

impl std::ops::Deref for PooledScratch<'_> {
    type Target = RouteScratch;

    fn deref(&self) -> &RouteScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for PooledScratch<'_> {
    fn deref_mut(&mut self) -> &mut RouteScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.scratch.take() {
            self.pool.put(s);
        }
    }
}

/// Cached unblocked BFS distance fields from every flow and waste port.
///
/// `flow[p][cell]` is the hop distance from flow port `p` to `cell` through
/// channel/device cells only (ports are impassable except as the source);
/// `u32::MAX` means unreachable. `flow_any`/`waste_any` are the minima over
/// all ports. Blocking cells can only shrink reachability, so these fields
/// soundly prune routing queries that cannot possibly succeed.
///
/// A `PortReach` also carries an epoch-stamped generation counter: every
/// [`carry_forward`](Self::carry_forward) bumps `generation` and stamps the
/// per-port fields it actually re-ran BFS for, so callers can observe how
/// much of the cache survived a fault delta. `PartialEq` compares only the
/// distance fields — generation bookkeeping is observability metadata, and
/// a carried-forward reach must compare equal to a cold
/// [`compute`](Self::compute) for the same chip.
#[derive(Debug, Clone)]
pub struct PortReach {
    flow: Vec<Vec<u32>>,
    waste: Vec<Vec<u32>>,
    flow_any: Vec<u32>,
    waste_any: Vec<u32>,
    width: u16,
    /// Bumped on every carry-forward; `GEN_UNSET` is a reserved sentinel.
    generation: u32,
    /// `flow_stamps[p] == generation` iff `flow[p]` was re-run by the
    /// latest carry-forward (all zeros after a cold compute).
    flow_stamps: Vec<u32>,
    waste_stamps: Vec<u32>,
}

impl PartialEq for PortReach {
    fn eq(&self, other: &Self) -> bool {
        self.flow == other.flow
            && self.waste == other.waste
            && self.flow_any == other.flow_any
            && self.waste_any == other.waste_any
            && self.width == other.width
    }
}

/// Reserved generation value; the counter skips it on wraparound, mirroring
/// [`RouteScratch`]'s epoch discipline.
const GEN_UNSET: u32 = u32::MAX;

impl PortReach {
    pub(crate) fn compute(chip: &Chip) -> Self {
        use crate::chip::{FlowPortId, WastePortId};
        let w = chip.grid().width();
        // A disabled port reaches nothing: its field is all-unreachable, so
        // the pruning queries (`flow_reaches`/`washable`) treat it exactly
        // like a port cut off by blocked channels.
        let flow: Vec<Vec<u32>> = chip
            .flow_ports()
            .enumerate()
            .map(|(i, p)| {
                if chip.faults().flow_port_disabled(FlowPortId(i as u32)) {
                    Self::dead_field(chip)
                } else {
                    Self::field(chip, p)
                }
            })
            .collect();
        let waste: Vec<Vec<u32>> = chip
            .waste_ports()
            .enumerate()
            .map(|(i, p)| {
                if chip.faults().waste_port_disabled(WastePortId(i as u32)) {
                    Self::dead_field(chip)
                } else {
                    Self::field(chip, p)
                }
            })
            .collect();
        let n = w as usize * chip.grid().height() as usize;
        let min_over = |fields: &[Vec<u32>]| {
            (0..n)
                .map(|i| fields.iter().map(|f| f[i]).min().unwrap_or(u32::MAX))
                .collect()
        };
        let flow_stamps = vec![0; flow.len()];
        let waste_stamps = vec![0; waste.len()];
        PortReach {
            flow_any: min_over(&flow),
            waste_any: min_over(&waste),
            flow,
            waste,
            width: w,
            generation: 0,
            flow_stamps,
            waste_stamps,
        }
    }

    /// Carries these fields forward across a single fault `delta`, re-running
    /// BFS only for the per-port fields the delta can possibly change.
    /// `chip` is the *mutated* chip (same grid and port table as the chip
    /// these fields were computed for, fault set differing by `delta`).
    ///
    /// The per-field decision rules are exact graph arguments, not
    /// heuristics, so the result is bit-identical to a cold
    /// [`compute`](Self::compute) on `chip`:
    ///
    /// - blocking cell `c` changes a field only if `c` was reachable in it;
    /// - unblocking `c` changes a field only if some grid neighbor of `c`
    ///   (including the source port itself) was reachable;
    /// - blocking edge `(a, b)` matters only if both endpoints were
    ///   reachable (BFS can never cross into an unreachable endpoint);
    /// - unblocking `(a, b)` matters only if either endpoint was reachable;
    /// - port deltas touch exactly that port's own field (port cells are
    ///   impassable to every other source, so no other field can change).
    ///
    /// Fields the rules exclude are carried verbatim; the generation
    /// counter is bumped and recomputed fields are stamped with it.
    pub fn carry_forward(&self, chip: &Chip, delta: &FaultDelta) -> PortReach {
        use crate::chip::{FlowPortId, WastePortId};
        debug_assert_eq!(self.width, chip.grid().width());
        let mut generation = self.generation.wrapping_add(1);
        let mut flow_stamps = self.flow_stamps.clone();
        let mut waste_stamps = self.waste_stamps.clone();
        if generation == GEN_UNSET {
            // Wraparound: restart stamp history so stale stamps can never
            // collide with the new generation (same discipline as
            // `RouteScratch::bump`).
            flow_stamps.fill(0);
            waste_stamps.fill(0);
            generation = 1;
        }
        let cells_touch = |old: &[u32]| -> bool {
            match *delta {
                FaultDelta::BlockCell(c) => self.at(old, c) != u32::MAX,
                FaultDelta::UnblockCell(c) => chip
                    .grid()
                    .neighbors(c)
                    .any(|n| self.at(old, n) != u32::MAX),
                FaultDelta::BlockEdge(a, b) => {
                    self.at(old, a) != u32::MAX && self.at(old, b) != u32::MAX
                }
                FaultDelta::UnblockEdge(a, b) => {
                    self.at(old, a) != u32::MAX || self.at(old, b) != u32::MAX
                }
                _ => false,
            }
        };
        let flow: Vec<Vec<u32>> = chip
            .flow_ports()
            .enumerate()
            .map(|(i, p)| {
                let recompute = match *delta {
                    FaultDelta::DisableFlowPort(id) | FaultDelta::EnableFlowPort(id) => {
                        id.0 == i as u32
                    }
                    FaultDelta::DisableWastePort(_) | FaultDelta::EnableWastePort(_) => false,
                    _ => cells_touch(&self.flow[i]),
                };
                if recompute {
                    flow_stamps[i] = generation;
                    if chip.faults().flow_port_disabled(FlowPortId(i as u32)) {
                        Self::dead_field(chip)
                    } else {
                        Self::field(chip, p)
                    }
                } else {
                    self.flow[i].clone()
                }
            })
            .collect();
        let waste: Vec<Vec<u32>> = chip
            .waste_ports()
            .enumerate()
            .map(|(i, p)| {
                let recompute = match *delta {
                    FaultDelta::DisableWastePort(id) | FaultDelta::EnableWastePort(id) => {
                        id.0 == i as u32
                    }
                    FaultDelta::DisableFlowPort(_) | FaultDelta::EnableFlowPort(_) => false,
                    _ => cells_touch(&self.waste[i]),
                };
                if recompute {
                    waste_stamps[i] = generation;
                    if chip.faults().waste_port_disabled(WastePortId(i as u32)) {
                        Self::dead_field(chip)
                    } else {
                        Self::field(chip, p)
                    }
                } else {
                    self.waste[i].clone()
                }
            })
            .collect();
        let n = self.width as usize * chip.grid().height() as usize;
        let min_over = |fields: &[Vec<u32>]| {
            (0..n)
                .map(|i| fields.iter().map(|f| f[i]).min().unwrap_or(u32::MAX))
                .collect()
        };
        PortReach {
            flow_any: min_over(&flow),
            waste_any: min_over(&waste),
            flow,
            waste,
            width: self.width,
            generation,
            flow_stamps,
            waste_stamps,
        }
    }

    /// The carry-forward generation (0 after a cold compute).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Per-port fields re-run by the latest carry-forward (0 after a cold
    /// compute: everything was computed, nothing *re*-computed).
    pub fn recomputed_fields(&self) -> usize {
        if self.generation == 0 {
            return 0;
        }
        let g = self.generation;
        self.flow_stamps.iter().filter(|&&s| s == g).count()
            + self.waste_stamps.iter().filter(|&&s| s == g).count()
    }

    /// Per-port fields carried verbatim by the latest carry-forward.
    pub fn carried_fields(&self) -> usize {
        self.flow_stamps.len() + self.waste_stamps.len() - self.recomputed_fields()
    }

    #[cfg(test)]
    fn set_generation(&mut self, g: u32) {
        self.generation = g;
    }

    /// An all-unreachable field (used for disabled ports).
    fn dead_field(chip: &Chip) -> Vec<u32> {
        let n = chip.grid().width() as usize * chip.grid().height() as usize;
        vec![u32::MAX; n]
    }

    /// Single-source BFS from `port` over channel/device cells, respecting
    /// the chip's faults (blocked cells and stuck-closed valves).
    fn field(chip: &Chip, port: Coord) -> Vec<u32> {
        let w = chip.grid().width() as usize;
        let h = chip.grid().height() as usize;
        let mut dist = vec![u32::MAX; w * h];
        let mut queue: Vec<Coord> = vec![port];
        dist[port.y as usize * w + port.x as usize] = 0;
        let mut head = 0;
        while head < queue.len() {
            let c = queue[head];
            head += 1;
            let d = dist[c.y as usize * w + c.x as usize];
            for n in chip.grid().neighbors(c) {
                let ni = n.y as usize * w + n.x as usize;
                if dist[ni] != u32::MAX {
                    continue;
                }
                // Ports other than the source are impassable, as are
                // faulted cells and edges.
                match chip.grid().kind(n) {
                    CellKind::Channel | CellKind::Device(_) => {}
                    _ => continue,
                }
                if chip.faults().cell_blocked(n) || !chip.edge_passable(c, n) {
                    continue;
                }
                dist[ni] = d + 1;
                queue.push(n);
            }
        }
        dist
    }

    #[inline]
    fn at(&self, field: &[u32], c: Coord) -> u32 {
        field[c.y as usize * self.width as usize + c.x as usize]
    }

    /// Returns `true` if `cell` is reachable from flow port `p` on the
    /// unblocked chip.
    pub fn flow_reaches(&self, p: usize, cell: Coord) -> bool {
        self.at(&self.flow[p], cell) != u32::MAX
    }

    /// Returns `true` if `cell` can reach waste port `p` on the unblocked
    /// chip.
    pub fn waste_reaches(&self, p: usize, cell: Coord) -> bool {
        self.at(&self.waste[p], cell) != u32::MAX
    }

    /// Returns `true` if `cell` is reachable from at least one flow port
    /// and can reach at least one waste port — the minimum requirement for
    /// any complete wash path through it.
    pub fn washable(&self, cell: Coord) -> bool {
        self.at(&self.flow_any, cell) != u32::MAX && self.at(&self.waste_any, cell) != u32::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ChipBuilder;
    use crate::device::DeviceKind;
    use crate::fault::FaultSet;

    fn chip() -> Chip {
        ChipBuilder::new(8, 8)
            .flow_port("in1", Coord::new(0, 3))
            .unwrap()
            .waste_port("out1", Coord::new(7, 3))
            .unwrap()
            .device(
                DeviceKind::Mixer,
                "mixer",
                Coord::new(3, 3),
                Coord::new(4, 3),
            )
            .unwrap()
            .channel(Coord::new(1, 3))
            .unwrap()
            .channel(Coord::new(2, 3))
            .unwrap()
            .channel(Coord::new(5, 3))
            .unwrap()
            .channel(Coord::new(6, 3))
            .unwrap()
            .channel(Coord::new(3, 2))
            .unwrap()
            .channel(Coord::new(3, 1))
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn scratch_route_matches_wrapper() {
        let c = chip();
        let mut s = RouteScratch::for_chip(&c);
        s.load_blocked([]);
        let a = c
            .route_with(&mut s, Coord::new(0, 3), Coord::new(7, 3))
            .unwrap();
        let b = c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn scratch_is_reusable_across_blocked_sets() {
        let c = chip();
        let mut s = RouteScratch::for_chip(&c);
        s.load_blocked([Coord::new(2, 3)]);
        assert!(c
            .route_with(&mut s, Coord::new(0, 3), Coord::new(7, 3))
            .is_none());
        s.load_blocked([]);
        assert!(c
            .route_with(&mut s, Coord::new(0, 3), Coord::new(7, 3))
            .is_some());
    }

    #[test]
    fn blocked_start_fails_route_but_not_route_via_legs() {
        let c = chip();
        let mut s = RouteScratch::for_chip(&c);
        s.load_blocked([Coord::new(0, 3)]);
        // Plain route from a blocked cell fails (historical semantics)…
        assert!(c
            .route_with(&mut s, Coord::new(0, 3), Coord::new(7, 3))
            .is_none());
        // …but route_via exempts the leg head from the blocked set.
        assert!(c
            .route_via_with(&mut s, Coord::new(0, 3), &[], Coord::new(7, 3))
            .is_some());
    }

    #[test]
    fn port_reach_classifies_cells() {
        let c = chip();
        let r = c.port_reach();
        // Corridor cells are washable; off-network cells are not.
        assert!(r.washable(Coord::new(1, 3)));
        assert!(r.washable(Coord::new(3, 1))); // stub tip: reachable both ways
        assert!(!r.washable(Coord::new(0, 0)));
        assert!(r.flow_reaches(0, Coord::new(6, 3)));
        assert!(r.waste_reaches(0, Coord::new(1, 3)));
    }

    #[test]
    fn single_cell_route_is_identity() {
        let c = chip();
        let mut s = RouteScratch::for_chip(&c);
        s.load_blocked([]);
        let p = Coord::new(0, 3);
        assert_eq!(c.route_with(&mut s, p, p), Some(vec![p]));
        // A via list that already sits on the start collapses the same way.
        assert_eq!(c.route_via_with(&mut s, p, &[p], p), Some(vec![p]));
    }

    #[test]
    fn disconnected_ports_fail_gracefully() {
        // No channel between the ports: every query must return None, never
        // panic, and the scratch must stay reusable afterwards.
        let c = ChipBuilder::new(4, 4)
            .flow_port("in1", Coord::new(0, 1))
            .unwrap()
            .waste_port("out1", Coord::new(3, 1))
            .unwrap()
            .build()
            .unwrap();
        let mut s = RouteScratch::for_chip(&c);
        s.load_blocked([]);
        assert!(c
            .route_with(&mut s, Coord::new(0, 1), Coord::new(3, 1))
            .is_none());
        assert!(c
            .route_via_with(&mut s, Coord::new(0, 1), &[], Coord::new(3, 1))
            .is_none());
        assert_eq!(
            c.route_with(&mut s, Coord::new(0, 1), Coord::new(0, 1)),
            Some(vec![Coord::new(0, 1)])
        );
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let c = chip();
        let mut s = RouteScratch::for_chip(&c);
        s.load_blocked([]);
        let baseline = c
            .route_with(&mut s, Coord::new(0, 3), Coord::new(7, 3))
            .unwrap();
        // Park every epoch one bump away from the UNSET sentinel and fill
        // the stamp arrays with values that would alias the post-wrap epoch
        // (1) if bump() failed to clear them: every cell would then read as
        // visited/blocked/used and routing would break.
        s.visit_epoch = UNSET - 1;
        s.blocked_epoch = UNSET - 1;
        s.used_epoch = UNSET - 1;
        s.stop_epoch = UNSET - 1;
        s.visit.fill(1);
        s.blocked.fill(1);
        s.used.fill(1);
        s.stop.fill(1);
        s.stop_rank.fill(0);
        s.load_blocked([]);
        for _ in 0..3 {
            let p = c
                .route_with(&mut s, Coord::new(0, 3), Coord::new(7, 3))
                .expect("route survives epoch wraparound");
            assert_eq!(p, baseline);
        }
        assert!(s.visit_epoch >= 1 && s.visit_epoch < UNSET);
        assert!(s.blocked_epoch >= 1 && s.blocked_epoch < UNSET);
    }

    #[test]
    fn carry_forward_matches_cold_compute_for_every_delta_kind() {
        use crate::chip::{FlowPortId, WastePortId};
        let base = chip();
        // Chain every delta kind through cumulative fault sets; at each
        // step the carried-forward fields must be bit-identical to a cold
        // compute on the mutated chip.
        let deltas = [
            FaultDelta::BlockCell(Coord::new(2, 3)),
            FaultDelta::BlockEdge(Coord::new(3, 2), Coord::new(3, 1)),
            FaultDelta::DisableFlowPort(FlowPortId(0)),
            FaultDelta::EnableFlowPort(FlowPortId(0)),
            FaultDelta::DisableWastePort(WastePortId(0)),
            FaultDelta::EnableWastePort(WastePortId(0)),
            FaultDelta::UnblockCell(Coord::new(2, 3)),
            FaultDelta::UnblockEdge(Coord::new(3, 1), Coord::new(3, 2)),
        ];
        let mut faults = FaultSet::new();
        let mut cur = base.with_faults(faults.clone()).unwrap();
        let mut reach = cur.port_reach().clone();
        for (step, d) in deltas.iter().enumerate() {
            assert!(d.apply(&mut faults), "step {step}: {d} must change the set");
            let mutated = base.with_faults(faults.clone()).unwrap();
            let carried = reach.carry_forward(&mutated, d);
            assert_eq!(
                carried,
                PortReach::compute(&mutated),
                "step {step} ({d}): carried fields diverge from cold compute"
            );
            assert_eq!(carried.generation(), step as u32 + 1);
            cur = mutated;
            reach = carried;
        }
        // The final chain is fault-free again and matches the pristine chip.
        assert!(cur.faults().is_empty());
        assert_eq!(reach, *base.port_reach());
    }

    #[test]
    fn carry_forward_skips_fields_the_delta_cannot_touch() {
        // A corridor plus an isolated channel island at (6, 6): deltas on
        // the island are invisible to every port field.
        let base = ChipBuilder::new(8, 8)
            .flow_port("in1", Coord::new(0, 3))
            .unwrap()
            .waste_port("out1", Coord::new(7, 3))
            .unwrap()
            .channel(Coord::new(1, 3))
            .unwrap()
            .channel(Coord::new(2, 3))
            .unwrap()
            .channel(Coord::new(3, 3))
            .unwrap()
            .channel(Coord::new(4, 3))
            .unwrap()
            .channel(Coord::new(5, 3))
            .unwrap()
            .channel(Coord::new(6, 3))
            .unwrap()
            .channel(Coord::new(6, 6))
            .unwrap()
            .build()
            .unwrap();
        let reach = base.port_reach().clone();

        let d = FaultDelta::BlockCell(Coord::new(6, 6));
        let mut faults = FaultSet::new();
        d.apply(&mut faults);
        let mutated = base.with_faults(faults).unwrap();
        let carried = reach.carry_forward(&mutated, &d);
        assert_eq!(carried, PortReach::compute(&mutated));
        assert_eq!(carried.recomputed_fields(), 0, "island block is invisible");
        assert_eq!(carried.carried_fields(), 2);

        // A waste-port delta re-runs exactly that port's field.
        use crate::chip::WastePortId;
        let d = FaultDelta::DisableWastePort(WastePortId(0));
        let mut faults = FaultSet::new();
        d.apply(&mut faults);
        let mutated = base.with_faults(faults).unwrap();
        let carried = reach.carry_forward(&mutated, &d);
        assert_eq!(carried, PortReach::compute(&mutated));
        assert_eq!(carried.recomputed_fields(), 1);
        assert_eq!(carried.carried_fields(), 1);

        // Blocking a corridor cell re-runs both fields.
        let d = FaultDelta::BlockCell(Coord::new(4, 3));
        let mut faults = FaultSet::new();
        d.apply(&mut faults);
        let mutated = base.with_faults(faults).unwrap();
        let carried = reach.carry_forward(&mutated, &d);
        assert_eq!(carried, PortReach::compute(&mutated));
        assert_eq!(carried.recomputed_fields(), 2);
    }

    #[test]
    fn reach_generation_wraparound_resets_stamps() {
        let base = chip();
        let mut reach = base.port_reach().clone();
        // Park the generation one bump away from the sentinel and fill the
        // stamps with 1 — the value that aliases the post-wrap generation.
        // If carry_forward failed to clear them, a fully-carried step would
        // falsely report every field as freshly recomputed.
        reach.set_generation(GEN_UNSET - 1);
        reach.flow_stamps.fill(1);
        reach.waste_stamps.fill(1);
        let d = FaultDelta::BlockCell(Coord::new(0, 0)); // empty cell: invisible
        let mut faults = FaultSet::new();
        d.apply(&mut faults);
        let mutated = base.with_faults(faults).unwrap();
        let carried = reach.carry_forward(&mutated, &d);
        assert_eq!(carried.generation(), 1, "counter skips the sentinel");
        assert_eq!(carried.recomputed_fields(), 0, "stale stamps were cleared");
        assert_eq!(carried.carried_fields(), 2);
        assert_eq!(carried, PortReach::compute(&mutated));
        // The next bump proceeds normally from the post-wrap epoch.
        let d = FaultDelta::UnblockCell(Coord::new(0, 0));
        let pristine = base.with_faults(FaultSet::new()).unwrap();
        let next = carried.carry_forward(&pristine, &d);
        assert_eq!(next.generation(), 2);
        assert_eq!(next, PortReach::compute(&pristine));
    }

    #[test]
    fn pool_reuses_fitting_scratches_and_grows_on_demand() {
        let c = chip();
        let pool = ScratchPool::for_chip(&c);
        assert_eq!(pool.available(), 1);
        {
            let mut a = pool.checkout(&c);
            assert_eq!(pool.available(), 0);
            let _ = c.route_with(&mut a, Coord::new(0, 3), Coord::new(7, 3));
            // Concurrent demand allocates a second scratch.
            let _b = pool.checkout(&c);
            assert_eq!(pool.available(), 0);
        }
        // Both guards returned their scratches.
        assert_eq!(pool.available(), 2);
        // A warm checkout routes identically to a cold scratch.
        let mut warm = pool.checkout(&c);
        warm.load_blocked([]);
        let via_pool = c
            .route_with(&mut warm, Coord::new(0, 3), Coord::new(7, 3))
            .unwrap();
        let cold = c.route(Coord::new(0, 3), Coord::new(7, 3), &[]).unwrap();
        assert_eq!(via_pool, cold);
    }

    #[test]
    fn pool_allocates_fresh_scratch_for_a_different_grid() {
        let small = chip();
        let big = ChipBuilder::new(12, 12)
            .flow_port("in1", Coord::new(0, 5))
            .unwrap()
            .waste_port("out1", Coord::new(11, 5))
            .unwrap()
            .build()
            .unwrap();
        let pool = ScratchPool::for_chip(&small);
        {
            let s = pool.checkout(&big);
            assert!(s.fits(&big));
            // The small scratch stayed pooled; the big one was fresh.
            assert_eq!(pool.available(), 1);
        }
        assert_eq!(pool.available(), 2);
        let s = pool.checkout(&small);
        assert!(s.fits(&small));
    }

    #[test]
    fn counters_advance() {
        let c = chip();
        let before = counters();
        let _ = c.route(Coord::new(0, 3), Coord::new(7, 3), &[]);
        let after = counters();
        assert!(after.route_calls > before.route_calls);
        assert!(after.bfs_runs > before.bfs_runs);
    }
}
