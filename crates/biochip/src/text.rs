//! A plain-text chip format: define layouts as ASCII art.
//!
//! One character per grid cell:
//!
//! | char | cell |
//! |------|------|
//! | `.`  | empty (pillar) |
//! | `-`  | channel |
//! | `I`  | flow port |
//! | `O`  | waste port |
//! | `M` `H` `D` `F` `P` `T` | device cell: mixer, heater, detector, filter, separator (`P`), storage (`T`) |
//!
//! A horizontal run of equal device letters forms one device (left cell =
//! inlet end). Ports are labeled `in1, in2, …` / `out1, out2, …` in
//! top-to-bottom, left-to-right order; devices `mixer1, heater1, …` per
//! kind.
//!
//! # Example
//!
//! ```
//! use pdw_biochip::text::parse_chip;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let chip = parse_chip(
//!     "I---MMM---O\n\
//!      -.-.-.-.-.-\n\
//!      -----------",
//! )?;
//! assert_eq!(chip.devices().len(), 1);
//! assert_eq!(chip.devices()[0].label(), "mixer1");
//! # Ok(())
//! # }
//! ```

use std::fmt;

use crate::builder::ChipBuilder;
use crate::chip::Chip;
use crate::device::DeviceKind;
use crate::error::ChipError;
use crate::grid::{CellKind, Coord};

/// Errors raised while parsing an ASCII chip.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseChipError {
    /// The text is empty or has empty lines.
    Empty,
    /// Lines have differing lengths.
    Ragged {
        /// The offending (0-based) line.
        line: usize,
    },
    /// An unknown character.
    BadChar {
        /// The character.
        ch: char,
        /// Its coordinate.
        at: Coord,
    },
    /// The layout violates a chip invariant (ports off boundary, missing
    /// ports, …).
    Chip(ChipError),
}

impl fmt::Display for ParseChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseChipError::Empty => write!(f, "chip text is empty"),
            ParseChipError::Ragged { line } => {
                write!(f, "line {line} has a different length than line 0")
            }
            ParseChipError::BadChar { ch, at } => {
                write!(f, "unknown cell character `{ch}` at {at}")
            }
            ParseChipError::Chip(e) => write!(f, "invalid layout: {e}"),
        }
    }
}

impl std::error::Error for ParseChipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseChipError::Chip(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChipError> for ParseChipError {
    fn from(e: ChipError) -> Self {
        ParseChipError::Chip(e)
    }
}

fn device_kind(ch: char) -> Option<DeviceKind> {
    Some(match ch {
        'M' => DeviceKind::Mixer,
        'H' => DeviceKind::Heater,
        'D' => DeviceKind::Detector,
        'F' => DeviceKind::Filter,
        'P' => DeviceKind::Separator,
        'T' => DeviceKind::Storage,
        _ => return None,
    })
}

fn device_char(kind: DeviceKind) -> char {
    match kind {
        DeviceKind::Mixer => 'M',
        DeviceKind::Heater => 'H',
        DeviceKind::Detector => 'D',
        DeviceKind::Filter => 'F',
        DeviceKind::Separator => 'P',
        DeviceKind::Storage => 'T',
    }
}

/// Parses an ASCII chip description.
///
/// # Errors
///
/// Returns [`ParseChipError`] for malformed text or layouts that violate
/// chip invariants (see [`ChipError`]).
pub fn parse_chip(text: &str) -> Result<Chip, ParseChipError> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return Err(ParseChipError::Empty);
    }
    let rows: Vec<Vec<char>> = lines.iter().map(|l| l.trim().chars().collect()).collect();
    let width = rows[0].len();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != width {
            return Err(ParseChipError::Ragged { line: i });
        }
    }
    let height = rows.len();

    let mut builder = ChipBuilder::new(width as u16, height as u16);
    let mut n_in = 0u32;
    let mut n_out = 0u32;
    let mut kind_counts = std::collections::HashMap::new();
    let mut channels: Vec<Coord> = Vec::new();

    for (y, row) in rows.iter().enumerate() {
        let mut x = 0usize;
        while x < width {
            let c = Coord::new(x as u16, y as u16);
            let ch = row[x];
            match ch {
                '.' => x += 1,
                '-' => {
                    channels.push(c);
                    x += 1;
                }
                'I' => {
                    n_in += 1;
                    builder = builder.flow_port(&format!("in{n_in}"), c)?;
                    x += 1;
                }
                'O' => {
                    n_out += 1;
                    builder = builder.waste_port(&format!("out{n_out}"), c)?;
                    x += 1;
                }
                _ => {
                    let Some(kind) = device_kind(ch) else {
                        return Err(ParseChipError::BadChar { ch, at: c });
                    };
                    let mut end = x;
                    while end + 1 < width && row[end + 1] == ch {
                        end += 1;
                    }
                    let n = kind_counts.entry(kind).or_insert(0u32);
                    *n += 1;
                    builder = builder.device(
                        kind,
                        &format!("{}{}", kind.name(), n),
                        c,
                        Coord::new(end as u16, y as u16),
                    )?;
                    x = end + 1;
                }
            }
        }
    }
    for c in channels {
        builder = builder.channel(c)?;
    }
    Ok(builder.build()?)
}

/// Renders a chip in the same ASCII format [`parse_chip`] reads.
pub fn render_chip(chip: &Chip) -> String {
    let g = chip.grid();
    let mut out = String::new();
    for y in 0..g.height() {
        for x in 0..g.width() {
            let ch = match g.kind(Coord::new(x, y)) {
                CellKind::Empty => '.',
                CellKind::Channel => '-',
                CellKind::FlowPort(_) => 'I',
                CellKind::WastePort(_) => 'O',
                CellKind::Device(id) => device_char(chip.device(id).kind()),
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
I---MMM---O
-.-.-.-.-.-
----HHH---I
-.-.-.-.-.-
O----------";

    #[test]
    fn parses_devices_ports_and_channels() {
        let chip = parse_chip(SAMPLE).unwrap();
        assert_eq!(chip.devices().len(), 2);
        assert_eq!(chip.devices()[0].kind(), DeviceKind::Mixer);
        assert_eq!(chip.devices()[1].kind(), DeviceKind::Heater);
        assert_eq!(chip.flow_ports().len(), 2);
        assert_eq!(chip.waste_ports().len(), 2);
        assert_eq!(chip.devices()[0].inlet_end(), Coord::new(4, 0));
        assert_eq!(chip.devices()[0].outlet_end(), Coord::new(6, 0));
    }

    #[test]
    fn round_trips() {
        let chip = parse_chip(SAMPLE).unwrap();
        let text = render_chip(&chip);
        let again = parse_chip(&text).unwrap();
        assert_eq!(render_chip(&again), text);
        assert_eq!(again.devices().len(), chip.devices().len());
    }

    #[test]
    fn rejects_ragged_lines() {
        let err = parse_chip("I--O\n---").unwrap_err();
        assert_eq!(err, ParseChipError::Ragged { line: 1 });
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = parse_chip("I--?O\n-----").unwrap_err();
        assert!(matches!(
            err,
            ParseChipError::Ragged { .. } | ParseChipError::BadChar { .. }
        ));
    }

    #[test]
    fn rejects_empty_text() {
        assert_eq!(parse_chip("  \n \n").unwrap_err(), ParseChipError::Empty);
    }

    #[test]
    fn layout_errors_surface() {
        // Port in the interior.
        let err = parse_chip("-----\n--I--\n-----").unwrap_err();
        assert!(matches!(
            err,
            ParseChipError::Chip(ChipError::PortNotOnBoundary { .. })
        ));
    }

    #[test]
    fn routes_work_on_parsed_chips() {
        let chip = parse_chip(SAMPLE).unwrap();
        let fp = chip.flow_ports().next().unwrap();
        let wp = chip.waste_ports().next().unwrap();
        assert!(chip.route(fp, wp, &[]).is_some());
    }
}
