//! Property tests for grid routing.

use proptest::prelude::*;

use pdw_biochip::{Chip, ChipBuilder, Coord, DeviceKind, FlowPath};

/// Builds a chip with a corridor mesh (pillars at odd/odd), one device, and
/// a port on each side, mirroring the synthesis layout family.
fn mesh_chip(w: u16, h: u16, dev_anchor: Option<Coord>) -> Chip {
    let mut b = ChipBuilder::new(w, h)
        .flow_port("in", Coord::new(0, 2))
        .expect("port fits")
        .waste_port("out", Coord::new(w - 1, 2))
        .expect("port fits");
    let mut claimed = vec![Coord::new(0, 2), Coord::new(w - 1, 2)];
    if let Some(a) = dev_anchor {
        b = b
            .device(DeviceKind::Mixer, "m", a, Coord::new(a.x + 2, a.y))
            .expect("device fits");
        claimed.extend([a, Coord::new(a.x + 1, a.y), Coord::new(a.x + 2, a.y)]);
    }
    for y in 0..h {
        for x in 0..w {
            if x % 2 == 1 && y % 2 == 1 {
                continue;
            }
            let c = Coord::new(x, y);
            if !claimed.contains(&c) {
                b = b.channel(c).expect("mesh cell free");
            }
        }
    }
    b.build().expect("chip is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routed paths are simple, 4-connected, endpoint-correct, and avoid
    /// blocked cells.
    #[test]
    fn routes_are_simple_and_respect_blocks(
        w in 9u16..=15,
        h in 9u16..=15,
        blocked_seed in proptest::collection::vec((1u16..14, 1u16..14), 0..6),
    ) {
        let chip = mesh_chip(w, h, None);
        let blocked: Vec<Coord> = blocked_seed
            .into_iter()
            .map(|(x, y)| Coord::new(x.min(w - 2), y.min(h - 2)))
            .collect();
        let from = Coord::new(0, 2);
        let to = Coord::new(w - 1, 2);
        if let Some(cells) = chip.route(from, to, &blocked) {
            let path = FlowPath::new(cells).expect("route returns a simple path");
            prop_assert_eq!(path.source(), from);
            prop_assert_eq!(path.sink(), to);
            prop_assert!(chip.validate_path(&path).is_ok());
            for c in &path {
                prop_assert!(!blocked.contains(c), "path crosses blocked cell {c}");
            }
        }
    }

    /// `route_via` visits every waypoint, in order.
    #[test]
    fn route_via_visits_stops_in_order(
        w in 11u16..=15,
        h in 11u16..=15,
        sx in 1u16..5,
        sy in 1u16..5,
    ) {
        let chip = mesh_chip(w, h, None);
        // Two mesh waypoints (even coordinates stay on the mesh).
        let a = Coord::new((2 * sx).min(w - 2) & !1, (2 * sy).min(h - 2) & !1);
        let b = Coord::new((w - 3) & !1, (h - 3) & !1);
        let from = Coord::new(0, 2);
        let to = Coord::new(w - 1, 2);
        if let Some(cells) = chip.route_via(from, &[a, b], to, &[]) {
            let path = FlowPath::new(cells).expect("simple path");
            let pa = path.cells().iter().position(|&c| c == a);
            let pb = path.cells().iter().position(|&c| c == b);
            prop_assert!(pa.is_some() && pb.is_some(), "waypoints missed");
            prop_assert!(pa.expect("checked") <= pb.expect("checked"), "order violated");
        }
    }

    /// A shortest route never beats Manhattan distance, and on an
    /// unobstructed mesh it never exceeds it by more than the detour the
    /// pillars force (bounded by twice the Manhattan distance plus a ring).
    #[test]
    fn route_length_is_sane(w in 9u16..=15, h in 9u16..=15) {
        let chip = mesh_chip(w, h, None);
        let from = Coord::new(0, 2);
        let to = Coord::new(w - 1, 2);
        let cells = chip.route(from, to, &[]).expect("mesh is connected");
        let manhattan = from.manhattan(to) as usize;
        prop_assert!(cells.len() > manhattan);
        prop_assert!(cells.len() <= 2 * manhattan + 8, "absurd detour: {}", cells.len());
    }
}
