//! Command parsing and execution for the `pdw` binary.

use std::fmt;
use std::time::Duration;

use pathdriver_wash::{
    plan_partitioned, plan_partitioned_with, verify, DawoPlanner, NetAddr, NetListener, PdwConfig,
    PdwPlanner, PlanContext, Planner, RegionExecutor, SocketExecutor, SubprocessExecutor,
    SCHEMA_VERSION,
};
use pdw_assay::benchmarks::{self, Benchmark};
use pdw_sim::Metrics;
use pdw_synth::{synthesize, Synthesis};

/// Usage text printed on errors and `pdw help`.
pub const USAGE: &str = "\
usage:
  pdw list                         list built-in benchmarks
  pdw show <benchmark>             print chip layout and ASCII schedule
  pdw run  <benchmark> [options]   run DAWO vs PathDriver-Wash
  pdw run  --assay <file> [opts]   run a custom assay (JSON Benchmark)
  pdw repair <benchmark> [options] plan once, then apply seeded chip-fault
                                   deltas and repair incrementally, diffing
                                   each repair against a cold solve
  pdw serve [options]              start an in-process plan server and replay
                                   a seeded open-loop request stream at it,
                                   reporting latency and cache behavior
  pdw serve --listen <addr>        expose the plan server on a socket (addr:
                                   host:port or unix:PATH) speaking the framed
                                   wire protocol; runs until drained
  pdw serve --drain <addr>         ask a listening server to drain gracefully
                                   (stop accepting, finish in-flight work)
  pdw verify [options]             differentially verify every solver
  pdw worker                       run as a region/solve worker: read framed
                                   codec requests on stdin, write framed
                                   plan artifacts on stdout (spawned by the
                                   subprocess region executor; not intended
                                   for interactive use)
  pdw worker --listen <addr>       serve the same framed worker protocol over
                                   a socket, one connection per executor lane
                                   (dialed by `pdw run --socket-workers`)
  pdw export <benchmark> <file>    write a benchmark as JSON (edit & re-run)

options for `run`:
  --budget <seconds>   ILP wall-clock budget per run (default 5)
  --pipeline-budget <ms>
                       wall-clock deadline for the whole pipeline; expired
                       checkpoints degrade later stages instead of aborting
                       (default: unlimited)
  --threads <n>        worker threads for candidate enumeration and the ILP
                       solver (default 0 = all cores)
  --partitions <k>     cut the chip into k regions along low-traffic columns,
                       plan them in parallel, and stitch at the seams
                       (default 1 = whole-chip planning; clamped to the
                       number of viable cuts)
  --subprocess <n>     with --partitions: plan region front ends in n
                       out-of-process `pdw worker` children instead of
                       in-process threads (0 = all cores); plans are
                       bit-identical, and a killed or corrupted worker
                       degrades to in-process replanning of its jobs
  --socket-workers <a,b,..>
                       with --partitions: plan region front ends on remote
                       `pdw worker --listen` peers (one lane per address);
                       same bit-identity and in-process-fallback contract
                       as --subprocess, with reconnect-with-backoff
  --connect <addr>     client mode: send the solve to a `pdw serve --listen`
                       endpoint instead of planning locally; the served
                       artifact is certificate-verified before printing.
                       Uses the server's default planner config; retries
                       retryable transport faults with backoff
  --no-ilp             greedy placement only
  --validate           re-check results with the simulator validator and the
                       contamination-propagation oracle (default in debug
                       builds; --no-validate to disable)
  --json <file>        write metrics of both methods as JSON
  --svg <dir>          write chip.svg, base.svg, dawo.svg, pdw.svg Gantt charts
  --valves             also print control-layer (valve) statistics
  --stats              also print device utilization and parallelism
  --heatmap <file>     write an SVG contamination heatmap of the base schedule

options for `repair`:
  --steps <n>          seeded fault deltas to apply and repair (default 3)
  --seed <s>           delta-sampling seed (default 0)
  --delay <seconds>    also delay the first scheduled op by this much as a
                       final delta (default: off)
  --threads <n>, --partitions <k>, --pipeline-budget <ms>  as for `run`
                       (the repair ladder always runs without the ILP)

options for `serve`:
  --requests <n>       stream length (default 200)
  --pool <k>           distinct instances: the demo chip plus k-1 seeded
                       fault-injected variants (default 4)
  --workers <n>        server worker threads (default 2)
  --seed <s>           stream seed (default 0)
  --gap-us <us>        mean inter-arrival gap, microseconds (default 500;
                       arrivals are paced open-loop against wall time)
  --reuse <pct>        percent of requests re-targeting a touched instance
                       (default 70)
  --deltas <pct>       percent of re-targeting requests that are repair
                       deltas (default 15)
  --deadline-ms <ms>   per-request deadline budget (default: none)
  --shed-budget <c>    admission cost budget (default: unlimited)
  --memo-path <file>   persistent memo store: an append-only log of certified
                       plan artifacts, compacted on open; entries survive
                       restarts and are served only after their verification
                       certificate re-verifies against the request
  --json <file>        write the load report as JSON
  (--listen mode accepts --workers, --shed-budget, --memo-path, and
   --idle-ms <ms>, the per-connection idle eviction timeout)

options for `verify`:
  --smoke              fast CI profile: bundled suite + 25 seeds, greedy only
                       (with --faults: 8 chaos seeds)
  --faults             chaos mode: replay the degradation ladder on seeded
                       fault-injected chips under a sweep of deadlines and
                       thread counts; every served plan must be oracle-clean
                       on the faulted chip and bit-identical across threads
  --seeds <n>          number of seeded random instances (default 10)
  --seed <s>           verify one seed only; shrinks the instance on failure
  --partitions <list>  with --faults: comma-separated partition counts to
                       sweep (default 1; counts > 1 drive the partitioned
                       planner under the same chaos contract)
  --no-ilp             skip the budget-bound ILP pipeline
  --budget <seconds>   ILP wall-clock budget per instance (default 2)
  --repro <file>       failure report target (default verify-repro.txt)";

/// A CLI-level error with a user-facing message.
#[derive(Debug)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

fn builtin(name: &str) -> Option<Benchmark> {
    let all: Vec<Benchmark> = benchmarks::suite()
        .into_iter()
        .chain([benchmarks::demo()])
        .collect();
    all.into_iter().find(|b| b.name.eq_ignore_ascii_case(name))
}

/// Parses and executes a command line.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on unknown commands,
/// missing arguments, I/O failures, or pipeline failures.
pub fn dispatch(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("show") => cmd_show(args.get(1).map(String::as_str)),
        Some("run") => cmd_run(&args[1..]),
        Some("repair") => cmd_repair(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("worker") => cmd_worker(&args[1..]),
        Some("export") => cmd_export(&args[1..]),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => err(format!("unknown command `{other}`")),
    }
}

fn cmd_list() -> Result<(), CliError> {
    println!(
        "{:<14} {:>4} {:>4} {:>4}  grid",
        "name", "|O|", "|D|", "|E|"
    );
    for b in benchmarks::suite().into_iter().chain([benchmarks::demo()]) {
        println!(
            "{:<14} {:>4} {:>4} {:>4}  {}x{}",
            b.name,
            b.op_count(),
            b.device_count(),
            b.edge_count(),
            b.grid.0,
            b.grid.1
        );
    }
    Ok(())
}

fn cmd_show(name: Option<&str>) -> Result<(), CliError> {
    let name = name.ok_or(CliError("`show` needs a benchmark name".into()))?;
    let bench = builtin(name).ok_or_else(|| CliError(format!("no benchmark `{name}`")))?;
    let s = synthesize(&bench).map_err(|e| CliError(format!("synthesis failed: {e}")))?;
    println!("{}", bench.graph);
    println!("{}", s.chip.grid());
    for d in s.chip.devices() {
        println!("  {}", d);
    }
    println!("\nwash-free schedule ({} s):", s.schedule.makespan());
    print!("{}", pdw_viz::ascii::gantt(&s.schedule, 80));
    Ok(())
}

struct RunOptions {
    bench: Benchmark,
    budget: u64,
    pipeline_budget: Option<Duration>,
    threads: usize,
    partitions: usize,
    subprocess: Option<usize>,
    socket_workers: Option<String>,
    connect: Option<String>,
    ilp: bool,
    validate: bool,
    json: Option<String>,
    svg: Option<String>,
    valves: bool,
    stats: bool,
    heatmap: Option<String>,
}

fn parse_run(args: &[String]) -> Result<RunOptions, CliError> {
    let mut bench: Option<Benchmark> = None;
    let mut budget = 5;
    let mut pipeline_budget = None;
    let mut threads = 0usize;
    let mut partitions = 1usize;
    let mut subprocess: Option<usize> = None;
    let mut socket_workers: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut ilp = true;
    // Release runs are timing-sensitive; debug runs get the safety net.
    let mut validate = cfg!(debug_assertions);
    let mut json = None;
    let mut svg = None;
    let mut valves = false;
    let mut stats = false;
    let mut heatmap = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--assay" => {
                let path = it.next().ok_or(CliError("--assay needs a file".into()))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError(format!("cannot read {path}: {e}")))?;
                let b: Benchmark = serde_json::from_str(&text)
                    .map_err(|e| CliError(format!("invalid assay JSON: {e}")))?;
                // serde bypasses the builder's checks; re-validate.
                b.graph
                    .revalidate()
                    .map_err(|e| CliError(format!("invalid assay graph: {e}")))?;
                bench = Some(b);
            }
            "--budget" => {
                let v = it.next().ok_or(CliError("--budget needs seconds".into()))?;
                budget = v
                    .parse()
                    .map_err(|_| CliError(format!("bad budget `{v}`")))?;
            }
            "--pipeline-budget" => {
                let v = it
                    .next()
                    .ok_or(CliError("--pipeline-budget needs milliseconds".into()))?;
                pipeline_budget =
                    Some(Duration::from_millis(v.parse().map_err(|_| {
                        CliError(format!("bad pipeline budget `{v}`"))
                    })?));
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or(CliError("--threads needs a count".into()))?;
                threads = v
                    .parse()
                    .map_err(|_| CliError(format!("bad thread count `{v}`")))?;
            }
            "--partitions" => {
                let v = it
                    .next()
                    .ok_or(CliError("--partitions needs a count".into()))?;
                partitions = v
                    .parse()
                    .map_err(|_| CliError(format!("bad partition count `{v}`")))?;
                if partitions == 0 {
                    return err("--partitions needs at least 1");
                }
            }
            "--subprocess" => {
                let v = it
                    .next()
                    .ok_or(CliError("--subprocess needs a worker count".into()))?;
                subprocess = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad worker count `{v}`")))?,
                );
            }
            "--socket-workers" => {
                socket_workers = Some(
                    it.next()
                        .ok_or(CliError(
                            "--socket-workers needs a comma-separated address list".into(),
                        ))?
                        .clone(),
                )
            }
            "--connect" => {
                connect = Some(
                    it.next()
                        .ok_or(CliError("--connect needs an address".into()))?
                        .clone(),
                )
            }
            "--no-ilp" => ilp = false,
            "--validate" => validate = true,
            "--no-validate" => validate = false,
            "--json" => {
                json = Some(
                    it.next()
                        .ok_or(CliError("--json needs a file".into()))?
                        .clone(),
                )
            }
            "--svg" => {
                svg = Some(
                    it.next()
                        .ok_or(CliError("--svg needs a directory".into()))?
                        .clone(),
                )
            }
            "--valves" => valves = true,
            "--stats" => stats = true,
            "--heatmap" => {
                heatmap = Some(
                    it.next()
                        .ok_or(CliError("--heatmap needs a file".into()))?
                        .clone(),
                )
            }
            name if bench.is_none() && !name.starts_with('-') => {
                bench =
                    Some(builtin(name).ok_or_else(|| CliError(format!("no benchmark `{name}`")))?);
            }
            other => return err(format!("unknown option `{other}`")),
        }
    }
    let bench = bench.ok_or(CliError("`run` needs a benchmark name or --assay".into()))?;
    Ok(RunOptions {
        bench,
        budget,
        pipeline_budget,
        threads,
        partitions,
        subprocess,
        socket_workers,
        connect,
        ilp,
        validate,
        json,
        svg,
        valves,
        stats,
        heatmap,
    })
}

/// Prints every ladder attempt with its wall time — served rungs and typed
/// rejections alike.
fn print_ladder(outcome: &pathdriver_wash::PlanOutcome) {
    for a in &outcome.attempts {
        match &a.rejection {
            None if outcome.rung == Some(a.rung) => {
                println!("ladder: {} served in {:.3}s", a.rung, a.wall_s);
            }
            None => println!("ladder: {} in {:.3}s", a.rung, a.wall_s),
            Some(r) => println!("ladder: {} rejected in {:.3}s: {r}", a.rung, a.wall_s),
        }
    }
}

/// Prints the incremental-repair counters when the result came from a
/// [`RepairSession`](pathdriver_wash::RepairSession) repair.
fn print_repair_stats(ps: &pathdriver_wash::PipelineStats) {
    if ps.repairs == 0 {
        return;
    }
    println!(
        "repair #{}: analyses {} invalidated / {} kept, front ends {} invalidated / {} kept, \
         reach fields {} recomputed / {} carried",
        ps.repairs,
        ps.repair_invalidated_analyses,
        ps.repair_kept_analyses,
        ps.repair_invalidated_front_ends,
        ps.repair_kept_front_ends,
        ps.repair_reach_recomputed,
        ps.repair_reach_carried,
    );
    println!(
        "repair #{}: {} prefix task(s) certified frozen{}",
        ps.repairs,
        ps.repair_prefix_frozen,
        if ps.repair_cache_served {
            "; cached plan re-served (no replan)"
        } else {
            ""
        }
    );
}

struct RepairOptions {
    bench: Benchmark,
    steps: u64,
    seed: u64,
    delay: Option<u32>,
    threads: usize,
    partitions: usize,
    pipeline_budget: Option<Duration>,
}

fn parse_repair(args: &[String]) -> Result<RepairOptions, CliError> {
    let mut bench: Option<Benchmark> = None;
    let mut steps = 3u64;
    let mut seed = 0u64;
    let mut delay = None;
    let mut threads = 0usize;
    let mut partitions = 1usize;
    let mut pipeline_budget = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--steps" => {
                let v = it.next().ok_or(CliError("--steps needs a count".into()))?;
                steps = v
                    .parse()
                    .map_err(|_| CliError(format!("bad step count `{v}`")))?;
            }
            "--seed" => {
                let v = it.next().ok_or(CliError("--seed needs a value".into()))?;
                seed = v.parse().map_err(|_| CliError(format!("bad seed `{v}`")))?;
            }
            "--delay" => {
                let v = it.next().ok_or(CliError("--delay needs seconds".into()))?;
                delay = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("bad delay `{v}`")))?,
                );
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or(CliError("--threads needs a count".into()))?;
                threads = v
                    .parse()
                    .map_err(|_| CliError(format!("bad thread count `{v}`")))?;
            }
            "--partitions" => {
                let v = it
                    .next()
                    .ok_or(CliError("--partitions needs a count".into()))?;
                partitions = v
                    .parse()
                    .map_err(|_| CliError(format!("bad partition count `{v}`")))?;
                if partitions == 0 {
                    return err("--partitions needs at least 1");
                }
            }
            "--pipeline-budget" => {
                let v = it
                    .next()
                    .ok_or(CliError("--pipeline-budget needs milliseconds".into()))?;
                pipeline_budget =
                    Some(Duration::from_millis(v.parse().map_err(|_| {
                        CliError(format!("bad pipeline budget `{v}`"))
                    })?));
            }
            name if bench.is_none() && !name.starts_with('-') => {
                bench =
                    Some(builtin(name).ok_or_else(|| CliError(format!("no benchmark `{name}`")))?);
            }
            other => return err(format!("unknown option `{other}`")),
        }
    }
    let bench = bench.ok_or(CliError("`repair` needs a benchmark name".into()))?;
    Ok(RepairOptions {
        bench,
        steps,
        seed,
        delay,
        threads,
        partitions,
        pipeline_budget,
    })
}

/// `pdw repair`: plan a benchmark once, then apply seeded chip-fault deltas
/// one by one, repairing incrementally and diffing every repaired plan
/// against a cold solve of the mutated instance. The repair ladder runs
/// without the ILP so cold and warm solves are deterministic and the diff
/// is meaningful bit for bit.
fn cmd_repair(args: &[String]) -> Result<(), CliError> {
    use pathdriver_wash::{PlanDelta, RepairSession};
    use std::time::Instant;

    let opts = parse_repair(args)?;
    let bench = opts.bench;
    let s: Synthesis =
        synthesize(&bench).map_err(|e| CliError(format!("synthesis failed: {e}")))?;
    let config = PdwConfig {
        ilp: false,
        threads: opts.threads,
        pipeline_budget: opts.pipeline_budget,
        ..PdwConfig::default()
    };
    let mut session = RepairSession::new(bench.clone(), s, config).with_partitions(opts.partitions);

    let t = Instant::now();
    let first = session.plan();
    let cold_s = t.elapsed().as_secs_f64();
    print_ladder(&first);
    let Some(initial) = &first.served else {
        return err("initial plan served nothing");
    };
    println!(
        "{}: initial plan in {:.3}s ({} washes, makespan {}s)",
        bench.name,
        cold_s,
        initial.metrics.n_wash,
        initial.schedule.makespan()
    );

    // Deltas are drawn against the *evolving* chip, so a long run mixes
    // damage with healing of earlier damage.
    let total = opts.steps + u64::from(opts.delay.is_some());
    let mut applied = 0u64;
    for step in 0..total {
        let delta = if step < opts.steps {
            match pdw_gen::fault_delta(session.synthesis(), opts.seed ^ step) {
                Some(fd) => PlanDelta::Fault(fd),
                None => {
                    println!("step {step}: chip offers nothing left to mutate; stopping");
                    break;
                }
            }
        } else {
            let Some(op) = session.synthesis().schedule.ops().first() else {
                break;
            };
            PlanDelta::DelayOp {
                op: op.op,
                delay: opts.delay.expect("delay step only exists with --delay"),
            }
        };
        let delta = &delta;
        let t = Instant::now();
        let outcome = session.repair(delta);
        let repair_s = t.elapsed().as_secs_f64();
        print_ladder(&outcome);
        let Some(repaired) = &outcome.served else {
            return err(format!("step {step} ({delta}): repair served nothing"));
        };

        let t = Instant::now();
        let cold = session.cold_reference();
        let cold_s = t.elapsed().as_secs_f64();
        let matches = match &cold.served {
            Some(c) => c.schedule == repaired.schedule && c.metrics == repaired.metrics,
            None => false,
        };
        println!(
            "step {step}: {delta} — repaired in {:.4}s vs cold {:.4}s ({:.1}x), plan {}",
            repair_s,
            cold_s,
            cold_s / repair_s.max(1e-9),
            if matches {
                "bit-identical to cold solve"
            } else {
                "DIFFERS from cold solve"
            }
        );
        print_repair_stats(&repaired.pipeline);
        if !matches {
            return err(format!(
                "step {step} ({delta}): repaired plan differs from a cold solve"
            ));
        }
        applied += 1;
    }
    println!("repair: {applied} delta(s) applied, all repaired plans matched cold solves");
    Ok(())
}

/// Region/solve worker mode: a framed request/response loop, spawned by
/// [`pathdriver_wash::SubprocessExecutor`] (stdin/stdout) or dialed by
/// [`SocketExecutor`] (`--listen`). The protocol is identical — only the
/// byte stream differs. Over stdin the loop runs until EOF; over a socket
/// each accepted connection gets its own loop until the peer hangs up.
fn cmd_worker(args: &[String]) -> Result<(), CliError> {
    let mut listen: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => {
                listen = Some(
                    it.next()
                        .ok_or(CliError("--listen needs an address".into()))?
                        .clone(),
                )
            }
            other => return err(format!("unknown option `{other}`")),
        }
    }
    let Some(listen) = listen else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return pathdriver_wash::run_worker(&mut stdin.lock(), &mut stdout.lock())
            .map_err(|e| CliError(format!("worker protocol error: {e}")));
    };
    let addr = NetAddr::parse(&listen).map_err(CliError)?;
    let listener = NetListener::bind(&addr).map_err(|e| CliError(e.to_string()))?;
    // Stderr, not stdout: stdout stays a clean protocol channel by habit.
    eprintln!("pdw worker: listening on {}", listener.local_addr());
    loop {
        let stream = listener
            .accept()
            .map_err(|e| CliError(format!("accept failed: {e}")))?;
        std::thread::spawn(move || {
            let mut reader = stream;
            let Ok(mut writer) = reader.try_clone() else {
                return;
            };
            // A torn connection ends this loop; the listener keeps going —
            // the dialing executor reconnects under its respawn policy.
            if let Err(e) = pathdriver_wash::run_worker(&mut reader, &mut writer) {
                eprintln!("pdw worker: connection ended: {e}");
            }
        });
    }
}

/// `pdw serve --listen`: put a [`pdw_serve::PlanServer`] on a socket and
/// serve framed solve requests until a client sends the admin `Drain`
/// frame, then finish in-flight work and exit cleanly.
fn cmd_serve_listen(args: &[String]) -> Result<(), CliError> {
    use pdw_serve::{NetConfig, PlanServer, ServeConfig, SocketServer};
    use std::sync::Arc;

    let mut listen: Option<String> = None;
    let mut workers = 2usize;
    let mut shed_budget = u64::MAX;
    let mut memo_path: Option<std::path::PathBuf> = None;
    let mut idle_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => {
                listen = Some(
                    it.next()
                        .ok_or(CliError("--listen needs an address".into()))?
                        .clone(),
                )
            }
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError("--workers needs a number".into()))?
            }
            "--shed-budget" => {
                shed_budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or(CliError("--shed-budget needs a number".into()))?
            }
            "--memo-path" => {
                memo_path = Some(
                    it.next()
                        .map(std::path::PathBuf::from)
                        .ok_or(CliError("--memo-path needs a file".into()))?,
                )
            }
            "--idle-ms" => {
                idle_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or(CliError("--idle-ms needs milliseconds".into()))?,
                )
            }
            other => return err(format!("unknown option `{other}`")),
        }
    }
    let listen = listen.ok_or(CliError("--listen needs an address".into()))?;
    let addr = NetAddr::parse(&listen).map_err(CliError)?;
    let listener = NetListener::bind(&addr).map_err(|e| CliError(e.to_string()))?;

    let server = Arc::new(PlanServer::start(ServeConfig {
        workers: workers.max(1),
        queue_cost_budget: shed_budget,
        memo_path,
        ..ServeConfig::default()
    }));
    let mut net_cfg = NetConfig::default();
    if let Some(ms) = idle_ms {
        net_cfg.idle_timeout = Duration::from_millis(ms.max(1));
    }
    let sock = SocketServer::start(Arc::clone(&server), listener, net_cfg);
    println!(
        "pdw serve: listening on {} (codec v{}, {} planner worker(s)) — \
         stop with `pdw serve --drain {}`",
        sock.local_addr(),
        SCHEMA_VERSION,
        workers.max(1),
        sock.local_addr()
    );
    // The accept loop owns the work; this thread just waits for the drain
    // frame to land and the last in-flight solve to finish.
    while !(sock.is_draining() && sock.in_flight() == 0) {
        std::thread::sleep(Duration::from_millis(50));
    }
    sock.drain();
    let ns = sock.stats();
    println!(
        "pdw serve: drained — {} connection(s) accepted, {} solve(s), {} ping(s), \
         {} bad request(s), {} idle-evicted, {} refused during drain",
        ns.accepted, ns.solves, ns.pings, ns.bad_requests, ns.idle_evicted, ns.drain_refused
    );
    let stats = server.stats();
    println!(
        "pdw serve: planner did {} solve(s), {} memo hit(s), {} repair(s)",
        stats.solves, stats.memo_hits, stats.repairs
    );
    server.shutdown();
    Ok(())
}

/// `pdw serve --drain ADDR`: ask a listening server to drain and exit.
fn cmd_serve_drain(args: &[String]) -> Result<(), CliError> {
    use pdw_serve::{ClientConfig, PlanClient};
    let addr = args
        .iter()
        .position(|a| a == "--drain")
        .and_then(|i| args.get(i + 1))
        .ok_or(CliError("--drain needs an address".into()))?;
    let addr = NetAddr::parse(addr).map_err(CliError)?;
    let mut client = PlanClient::new(addr, ClientConfig::default());
    let in_flight = client
        .drain()
        .map_err(|e| CliError(format!("drain failed: {e}")))?;
    println!("drain acknowledged; {in_flight} request(s) still in flight");
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use pdw_serve::{materialize, run_open_loop, Instance, PlanServer, ServeConfig};
    use std::sync::Arc;

    if args.iter().any(|a| a == "--listen") {
        return cmd_serve_listen(args);
    }
    if args.iter().any(|a| a == "--drain") {
        return cmd_serve_drain(args);
    }

    let mut requests = 200usize;
    let mut pool_size = 4usize;
    let mut workers = 2usize;
    let mut seed = 0u64;
    let mut gap_us = 500u64;
    let mut reuse_pct = 70u64;
    let mut deltas_pct = 15u64;
    let mut deadline_ms: Option<u64> = None;
    let mut shed_budget = u64::MAX;
    let mut memo_path: Option<std::path::PathBuf> = None;
    let mut json: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, CliError> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| CliError(format!("{name} needs a number")))
        };
        match arg.as_str() {
            "--requests" => requests = num("--requests")? as usize,
            "--pool" => pool_size = (num("--pool")? as usize).max(1),
            "--workers" => workers = (num("--workers")? as usize).max(1),
            "--seed" => seed = num("--seed")?,
            "--gap-us" => gap_us = num("--gap-us")?.max(1),
            "--reuse" => reuse_pct = num("--reuse")?.min(100),
            "--deltas" => deltas_pct = num("--deltas")?.min(100),
            "--deadline-ms" => deadline_ms = Some(num("--deadline-ms")?),
            "--shed-budget" => shed_budget = num("--shed-budget")?,
            "--memo-path" => {
                memo_path = Some(
                    it.next()
                        .map(std::path::PathBuf::from)
                        .ok_or(CliError("--memo-path needs a file".into()))?,
                )
            }
            "--json" => {
                json = Some(
                    it.next()
                        .cloned()
                        .ok_or(CliError("--json needs a file".into()))?,
                )
            }
            other => return err(format!("unknown option `{other}`")),
        }
    }

    // The pool: the demo instance plus seeded fault-injected variants, so
    // the stream exercises distinct chip hashes through the context LRU.
    let bench = benchmarks::demo();
    let base = synthesize(&bench).map_err(|e| CliError(format!("synthesis failed: {e}")))?;
    let mut pool = vec![Arc::new(Instance::new(bench.clone(), base.clone()))];
    let mut fault_seed = seed;
    while pool.len() < pool_size {
        fault_seed += 1;
        let variant = pdw_gen::inject_faults(&base, fault_seed);
        let instance = Instance::new(bench.clone(), variant);
        if pool
            .iter()
            .all(|p: &Arc<Instance>| p.chip_hash() != instance.chip_hash())
        {
            pool.push(Arc::new(instance));
        }
    }

    let events = pdw_gen::request_stream(&pdw_gen::StreamOptions {
        seed,
        requests,
        pool: pool.len(),
        mean_gap_us: gap_us,
        reuse: reuse_pct as f64 / 100.0,
        delta_ratio: deltas_pct as f64 / 100.0,
    });
    let timed = materialize(&events, &pool, deadline_ms.map(Duration::from_millis));

    println!(
        "serve: {} requests over {} instance(s), {} worker(s), mean gap {}us",
        requests,
        pool.len(),
        workers,
        gap_us
    );
    let server = PlanServer::start(ServeConfig {
        workers,
        queue_cost_budget: shed_budget,
        memo_path,
        ..ServeConfig::default()
    });
    let run = run_open_loop(&server, &timed, true);
    server.shutdown();

    let r = &run.report;
    println!(
        "  served {}/{} ({} shed, {} errors) in {:.3}s — {:.0} plans/s",
        r.served, r.requests, r.shed, r.errors, r.wall_s, r.plans_per_sec
    );
    println!("  latency p50 {:.3}ms  p99 {:.3}ms", r.p50_ms, r.p99_ms);
    println!(
        "  memo hits {} ({:.3}ms p50) vs cold solves ({:.3}ms p50): {:.1}x",
        r.memo_hits, r.hit_service_p50_ms, r.cold_service_p50_ms, r.memo_hit_speedup
    );
    let stats = server.stats();
    println!(
        "  caches: {} solves, {} repairs, LRU {} warm / {} pool / {} miss / {} evicted",
        stats.solves,
        stats.repairs,
        stats.lru_warm_hits,
        stats.lru_pool_hits,
        stats.lru_misses,
        stats.lru_evictions
    );
    if stats.persist_entries > 0 || stats.persist_hits > 0 || stats.persist_rejected > 0 {
        println!(
            "  persistent memo: {} entries, {} hits, {} rejected",
            stats.persist_entries, stats.persist_hits, stats.persist_rejected
        );
    }
    if let Some(path) = json {
        std::fs::write(
            &path,
            serde_json::to_string_pretty(r).expect("serializable"),
        )
        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        println!("  report written to {path}");
    }
    Ok(())
}

/// `pdw run --connect`: ship the instance to a `pdw serve --listen` server
/// and print the served, certificate-verified plan. The request carries the
/// server's own planner configuration (clients of a listening server always
/// plan under [`pdw_serve::ServeConfig::default`] — the server rejects any
/// other fingerprint as a typed `BadRequest`).
fn cmd_run_connect(opts: &RunOptions, addr: &str) -> Result<(), CliError> {
    use pdw_serve::{ClientConfig, PlanClient};
    let bench = &opts.bench;
    let s: Synthesis = synthesize(bench).map_err(|e| CliError(format!("synthesis failed: {e}")))?;
    let addr = NetAddr::parse(addr).map_err(CliError)?;
    let mut client = PlanClient::new(addr, ClientConfig::default());
    let config = pdw_serve::ServeConfig::default().planner;
    let remote = client
        .solve(bench, &s, &config, opts.pipeline_budget)
        .map_err(|e| CliError(format!("remote solve failed: {e}")))?;
    let result = &remote.artifact.result;
    println!(
        "remote plan for {} via {}: rung {}, {} wash(es), makespan {} s",
        bench.name,
        client
            .rtt()
            .map(|r| format!("socket (rtt {:.2}ms)", r.as_secs_f64() * 1e3))
            .unwrap_or_else(|| "socket".into()),
        remote.artifact.rung,
        result.metrics.n_wash,
        result.metrics.t_assay
    );
    println!(
        "  memo hit: {}, degraded: {}, retries: {} — certificate verified",
        remote.memo_hit, remote.degraded, remote.retries
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let opts = parse_run(args)?;
    if let Some(addr) = opts.connect.clone() {
        return cmd_run_connect(&opts, &addr);
    }
    let bench = &opts.bench;
    let s: Synthesis = synthesize(bench).map_err(|e| CliError(format!("synthesis failed: {e}")))?;
    let base = Metrics::measure(&bench.graph, &s.schedule);
    let config = PdwConfig {
        ilp: opts.ilp,
        ilp_budget: Duration::from_secs(opts.budget),
        pipeline_budget: opts.pipeline_budget,
        threads: opts.threads,
        ..PdwConfig::default()
    };
    // Both solvers share one PlanContext, so the necessity analysis and
    // routing state are computed once for the instance.
    let mut ctx = PlanContext::new(bench, &s);
    let d = DawoPlanner
        .plan(&mut ctx)
        .map_err(|e| CliError(format!("dawo failed: {e}")))?;
    let p = if opts.partitions > 1 {
        let outcome = if let Some(list) = &opts.socket_workers {
            let addrs = list
                .split(',')
                .map(NetAddr::parse)
                .collect::<Result<Vec<_>, _>>()
                .map_err(CliError)?;
            let executor = SocketExecutor::new(addrs);
            let outcome = plan_partitioned_with(bench, &s, &config, opts.partitions, &executor);
            let (jobs, fallbacks) = executor.subprocess_counters();
            println!("socket workers: {jobs} region job(s) remote, {fallbacks} fallback(s)");
            for event in executor.events() {
                println!("  {event:?}");
            }
            outcome
        } else if let Some(workers) = opts.subprocess {
            let exe = std::env::current_exe()
                .map_err(|e| CliError(format!("cannot locate pdw binary: {e}")))?;
            let executor =
                SubprocessExecutor::new(vec![exe.display().to_string(), "worker".into()], workers);
            let outcome = plan_partitioned_with(bench, &s, &config, opts.partitions, &executor);
            let (jobs, fallbacks) = executor.subprocess_counters();
            println!("subprocess: {jobs} region job(s) remote, {fallbacks} fallback(s)");
            for event in executor.events() {
                println!("  {event:?}");
            }
            outcome
        } else {
            plan_partitioned(bench, &s, &config, opts.partitions)
        };
        // Every rung reports its wall time, the Partitioned one included.
        print_ladder(&outcome);
        let rungs: Vec<String> = outcome
            .attempts
            .iter()
            .map(|a| format!("{} {:.3}s", a.rung, a.wall_s))
            .collect();
        outcome.served.ok_or_else(|| {
            CliError(format!(
                "partitioned planner served no plan (rungs tried: {})",
                rungs.join(", ")
            ))
        })?
    } else {
        PdwPlanner::new(config)
            .plan(&mut ctx)
            .map_err(|e| CliError(format!("pdw failed: {e}")))?
    };

    if opts.validate {
        for (name, sched) in [("dawo", &d.schedule), ("pdw", &p.schedule)] {
            pdw_sim::validate(&s.chip, &bench.graph, sched)
                .map_err(|e| CliError(format!("{name}: invalid schedule: {e}")))?;
            let report = pdw_sim::propagate(&s.chip, &bench.graph, sched);
            if !report.is_clean() {
                return err(format!(
                    "{name}: contamination oracle found {} violation(s); first: {}",
                    report.violations.len(),
                    report.violations[0]
                ));
            }
        }
        println!("validate: both schedules physically valid and oracle-clean");
    }

    println!(
        "benchmark {} (|O|={}, |D|={}, |E|={})",
        bench.name,
        bench.op_count(),
        bench.device_count(),
        bench.edge_count()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "metric", "base", "DAWO", "PDW"
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "N_wash", 0, d.metrics.n_wash, p.metrics.n_wash
    );
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>10.0}",
        "L_wash (mm)", 0.0, d.metrics.l_wash_mm, p.metrics.l_wash_mm
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "T_assay (s)", base.t_assay, d.metrics.t_assay, p.metrics.t_assay
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "T_delay (s)",
        0,
        d.metrics.delay_vs(&base),
        p.metrics.delay_vs(&base)
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "total wash time (s)", 0, d.metrics.total_wash_time, p.metrics.total_wash_time
    );
    println!(
        "{:<22} {:>10.2} {:>10.2} {:>10.2}",
        "avg op wait (s)", base.avg_wait, d.metrics.avg_wait, p.metrics.avg_wait
    );
    println!(
        "PDW: {} removals integrated, ILP used: {}",
        p.integrated, p.solver.used_ilp
    );
    let ps = &p.pipeline;
    println!(
        "pipeline: necessity {:.3}s, grouping {:.3}s, merge {:.3}s, greedy {:.3}s, \
         ilp {:.3}s (total {:.3}s, {} threads)",
        ps.necessity_s, ps.grouping_s, ps.merge_s, ps.greedy_s, ps.ilp_s, ps.total_s, ps.threads
    );
    println!(
        "pipeline: {} groups, {} candidate paths, {} route calls ({} BFS legs, {} scratch reuses)",
        ps.groups, ps.candidates, ps.route_calls, ps.bfs_runs, ps.scratch_reuses
    );
    if ps.partition_regions > 0 {
        println!(
            "pipeline: partitioned into {} region(s) ({} skipped, {} refused), {} seam group(s)",
            ps.partition_regions, ps.regions_skipped, ps.regions_refused, ps.seam_groups
        );
    }
    print_repair_stats(ps);
    let events = ps.degradation_events();
    if !events.is_empty() {
        println!("pipeline: degraded — {}", events.join("; "));
    }
    if let Some(st) = &p.solver.stats {
        println!(
            "solver: {} nodes in {:.2}s ({:.0} nodes/s, {} threads), {} pivots, \
             warm/cold LPs {}/{} ({} fallbacks)",
            st.nodes,
            st.search_time_s,
            st.nodes_per_sec,
            st.threads,
            st.lp_pivots,
            st.warm_lps,
            st.cold_lps,
            st.warm_start_fallbacks
        );
        if let Some(t) = st.time_to_first_incumbent_s {
            println!(
                "solver: first incumbent after {:.3}s, {} improvements, presolve removed {} rows / tightened {} bounds in {:.3}s",
                t,
                st.incumbent_timeline.len(),
                st.presolve.rows_removed,
                st.presolve.bounds_tightened,
                st.presolve_time_s
            );
        }
    }

    if let Some(path) = &opts.heatmap {
        let analysis = pdw_contam::analyze(
            &s.chip,
            &bench.graph,
            &s.schedule,
            pdw_contam::NecessityOptions::full(),
        );
        let svg =
            pdw_viz::heatmap::contamination(&s.chip, analysis.events.iter().map(|e| (e.cell, 1)));
        std::fs::write(path, svg).map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        println!("wrote {path}");
    }

    if opts.stats {
        for (name, sched) in [
            ("base", &s.schedule),
            ("DAWO", &d.schedule),
            ("PDW", &p.schedule),
        ] {
            let st = pdw_sim::ScheduleStats::collect(&s.chip, sched);
            let busiest = st
                .devices
                .iter()
                .max_by(|a, b| a.utilization.partial_cmp(&b.utilization).expect("finite"))
                .expect("chips have devices");
            println!(
                "stats[{name}]: peak {} tasks, avg {:.2} tasks, busiest device {} at {:.0}%",
                st.peak_parallel_tasks,
                st.avg_parallel_tasks,
                s.chip.device(busiest.device).label(),
                busiest.utilization * 100.0
            );
        }
    }

    if opts.valves {
        for (name, sched) in [
            ("base", &s.schedule),
            ("DAWO", &d.schedule),
            ("PDW", &p.schedule),
        ] {
            let program = pdw_control::compile(&s.chip, sched);
            let stats = pdw_control::ControlStats::measure(&program);
            println!(
                "valves[{name}]: {} switches, peak {} open, {} events",
                stats.switches, stats.peak_open, stats.events
            );
        }
    }

    if let Some(path) = &opts.json {
        #[derive(serde::Serialize)]
        struct Out<'a> {
            benchmark: &'a str,
            base: &'a Metrics,
            dawo: &'a Metrics,
            pdw: &'a Metrics,
            integrated: usize,
        }
        let out = Out {
            benchmark: &bench.name,
            base: &base,
            dawo: &d.metrics,
            pdw: &p.metrics,
            integrated: p.integrated,
        };
        std::fs::write(
            path,
            serde_json::to_string_pretty(&out).expect("serializable"),
        )
        .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        println!("wrote {path}");
    }

    if let Some(dir) = &opts.svg {
        std::fs::create_dir_all(dir).map_err(|e| CliError(format!("cannot create {dir}: {e}")))?;
        let writes = [
            ("chip.svg", pdw_viz::svg::chip(&s.chip, None)),
            ("base.svg", pdw_viz::svg::gantt(&s.chip, &s.schedule)),
            ("dawo.svg", pdw_viz::svg::gantt(&s.chip, &d.schedule)),
            ("pdw.svg", pdw_viz::svg::gantt(&s.chip, &p.schedule)),
        ];
        for (name, content) in writes {
            let path = format!("{dir}/{name}");
            std::fs::write(&path, content)
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

struct VerifyCliOptions {
    seeds: u64,
    seeds_explicit: bool,
    single_seed: Option<u64>,
    smoke: bool,
    faults: bool,
    partitions: Vec<usize>,
    opts: verify::VerifyOptions,
    repro: String,
}

fn parse_verify(args: &[String]) -> Result<VerifyCliOptions, CliError> {
    let mut seeds = 10u64;
    let mut seeds_explicit = false;
    let mut single_seed = None;
    let mut smoke = false;
    let mut faults = false;
    let mut partitions = vec![1usize];
    let mut opts = verify::VerifyOptions::default();
    let mut repro = "verify-repro.txt".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                smoke = true;
                seeds = 25;
                opts.ilp = false;
            }
            "--faults" => faults = true,
            "--partitions" => {
                let v = it
                    .next()
                    .ok_or(CliError("--partitions needs a comma-separated list".into()))?;
                partitions = v
                    .split(',')
                    .map(|p| {
                        p.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&k| k >= 1)
                            .ok_or_else(|| CliError(format!("bad partition count `{p}`")))
                    })
                    .collect::<Result<Vec<usize>, CliError>>()?;
                if partitions.is_empty() {
                    return err("--partitions needs at least one count");
                }
            }
            "--seeds" => {
                let v = it.next().ok_or(CliError("--seeds needs a count".into()))?;
                seeds = v
                    .parse()
                    .map_err(|_| CliError(format!("bad seed count `{v}`")))?;
                seeds_explicit = true;
            }
            "--seed" => {
                let v = it.next().ok_or(CliError("--seed needs a value".into()))?;
                single_seed = Some(v.parse().map_err(|_| CliError(format!("bad seed `{v}`")))?);
            }
            "--no-ilp" => opts.ilp = false,
            "--budget" => {
                let v = it.next().ok_or(CliError("--budget needs seconds".into()))?;
                opts.ilp_budget = Duration::from_secs(
                    v.parse()
                        .map_err(|_| CliError(format!("bad budget `{v}`")))?,
                );
            }
            "--repro" => {
                repro = it
                    .next()
                    .ok_or(CliError("--repro needs a file".into()))?
                    .clone();
            }
            other => return err(format!("unknown option `{other}`")),
        }
    }
    Ok(VerifyCliOptions {
        seeds,
        seeds_explicit,
        single_seed,
        smoke,
        faults,
        partitions,
        opts,
        repro,
    })
}

/// Chaos mode (`verify --faults`): replay the degradation ladder on seeded
/// fault-injected chips across a sweep of pipeline deadlines and thread
/// counts. A seed fails if any solve panics, serves a plan that is not
/// oracle-clean on the faulted chip, rejects a rung without a typed reason,
/// or differs bit-for-bit across thread counts.
fn cmd_chaos(cli: &VerifyCliOptions) -> Result<(), CliError> {
    let copts = verify::ChaosOptions {
        partitions: cli.partitions.clone(),
        ..verify::ChaosOptions::default()
    };

    if let Some(seed) = cli.single_seed {
        return match verify::chaos_seed(seed, &copts) {
            None => {
                println!("chaos seed {seed}: skipped (infeasible instance)");
                Ok(())
            }
            Some(report) if report.passed() => {
                println!("{report}");
                Ok(())
            }
            Some(report) => {
                println!("{report}");
                for f in &report.failures {
                    println!("  {f}");
                }
                err(format!("chaos seed {seed} failed"))
            }
        };
    }

    // The chaos sweep is budgets x threads per seed, so the smoke profile
    // trims the corpus rather than the sweep.
    let n = if cli.seeds_explicit {
        cli.seeds
    } else if cli.smoke {
        8
    } else {
        cli.seeds
    };
    let mut failures: Vec<String> = Vec::new();
    let mut skipped = 0u64;
    for seed in 0..n {
        match verify::chaos_seed(seed, &copts) {
            None => skipped += 1,
            Some(report) => {
                println!("{report}");
                if !report.passed() {
                    for f in &report.failures {
                        failures.push(format!("chaos seed {seed}: {f}"));
                    }
                    failures.push(format!(
                        "chaos seed {seed}: repro: pdw verify --faults --seed {seed}"
                    ));
                }
            }
        }
    }
    if skipped > 0 {
        println!("({skipped}/{n} chaos seeds skipped as infeasible)");
    }

    if failures.is_empty() {
        println!("verify --faults: all chaos instances passed");
        Ok(())
    } else {
        let body = failures.join("\n");
        std::fs::write(&cli.repro, format!("{body}\n"))
            .map_err(|e| CliError(format!("cannot write {}: {e}", cli.repro)))?;
        eprintln!("{body}");
        err(format!(
            "verify --faults: {} failure(s); details in {}",
            failures.len(),
            cli.repro
        ))
    }
}

/// Differential verification: every solver on every bundled benchmark plus a
/// corpus of seeded random instances, each judged by the simulator validator,
/// the first-error cleanliness check, the contamination-propagation oracle,
/// an exact objective recompute, and 1/2/8-thread bit-identity.
fn cmd_verify(args: &[String]) -> Result<(), CliError> {
    let cli = parse_verify(args)?;
    if cli.faults {
        return cmd_chaos(&cli);
    }
    let mut failures: Vec<String> = Vec::new();

    // Single-seed repro mode: verify, and shrink on failure.
    if let Some(seed) = cli.single_seed {
        return match verify::verify_seed(seed, &cli.opts) {
            None => {
                println!("seed {seed}: skipped (infeasible instance)");
                Ok(())
            }
            Some(report) if report.passed() => {
                println!("{report}");
                Ok(())
            }
            Some(report) => {
                println!("{report}");
                for f in report.failures() {
                    println!("  {f}");
                }
                let (small, steps) = verify::shrink_failure(seed, &cli.opts);
                println!("shrunk after {steps} step(s) to: {small:?}");
                err(format!("seed {seed} failed verification"))
            }
        };
    }

    for bench in benchmarks::suite().into_iter().chain([benchmarks::demo()]) {
        let s = match synthesize(&bench) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("{}: synthesis failed: {e}", bench.name));
                continue;
            }
        };
        let report = verify::verify_instance(&bench.name, &bench, &s, &cli.opts);
        println!("{report}");
        failures.extend(
            report
                .failures()
                .into_iter()
                .map(|f| format!("{}: {f}", bench.name)),
        );
    }

    let mut skipped = 0u64;
    for seed in 0..cli.seeds {
        match verify::verify_seed(seed, &cli.opts) {
            None => skipped += 1,
            Some(report) => {
                println!("{report}");
                if !report.passed() {
                    for f in report.failures() {
                        failures.push(format!("seed {seed}: {f}"));
                    }
                    let (small, steps) = verify::shrink_failure(seed, &cli.opts);
                    failures.push(format!(
                        "seed {seed}: shrunk after {steps} step(s) to {small:?}; \
                         repro: pdw verify --seed {seed}"
                    ));
                }
            }
        }
    }
    if skipped > 0 {
        println!("({skipped}/{} seeds skipped as infeasible)", cli.seeds);
    }

    if failures.is_empty() {
        println!("verify: all instances passed");
        Ok(())
    } else {
        let body = failures.join("\n");
        std::fs::write(&cli.repro, format!("{body}\n"))
            .map_err(|e| CliError(format!("cannot write {}: {e}", cli.repro)))?;
        eprintln!("{body}");
        err(format!(
            "verify: {} failure(s); details in {}",
            failures.len(),
            cli.repro
        ))
    }
}

fn cmd_export(args: &[String]) -> Result<(), CliError> {
    let name = args
        .first()
        .ok_or(CliError("`export` needs a benchmark".into()))?;
    let path = args
        .get(1)
        .ok_or(CliError("`export` needs a target file".into()))?;
    let bench = builtin(name).ok_or_else(|| CliError(format!("no benchmark `{name}`")))?;
    std::fs::write(
        path,
        serde_json::to_string_pretty(&bench).expect("serializable"),
    )
    .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
    println!("wrote {path}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup_is_case_insensitive() {
        assert!(builtin("pcr").is_some());
        assert!(builtin("PCR").is_some());
        assert!(builtin("Demo").is_some());
        assert!(builtin("nope").is_none());
    }

    #[test]
    fn run_parsing_rejects_unknown_options() {
        let args = vec!["PCR".to_string(), "--frobnicate".to_string()];
        assert!(parse_run(&args).is_err());
    }

    #[test]
    fn run_parsing_accepts_full_option_set() {
        let args: Vec<String> = [
            "PCR",
            "--budget",
            "2",
            "--threads",
            "3",
            "--no-ilp",
            "--valves",
            "--stats",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_run(&args).unwrap();
        assert_eq!(o.budget, 2);
        assert_eq!(o.threads, 3);
        assert!(!o.ilp);
        assert!(o.valves);
        assert!(o.stats);
        assert_eq!(o.bench.name, "PCR");
    }

    #[test]
    fn run_parsing_socket_options() {
        let args: Vec<String> = [
            "PCR",
            "--partitions",
            "4",
            "--socket-workers",
            "127.0.0.1:7901,unix:/tmp/w.sock",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_run(&args).unwrap();
        assert_eq!(
            o.socket_workers.as_deref(),
            Some("127.0.0.1:7901,unix:/tmp/w.sock")
        );
        assert!(o.connect.is_none());

        let args: Vec<String> = ["PCR", "--connect", "127.0.0.1:7900"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_run(&args).unwrap();
        assert_eq!(o.connect.as_deref(), Some("127.0.0.1:7900"));

        // Both flags need their operand.
        assert!(parse_run(&["PCR".into(), "--connect".into()]).is_err());
        assert!(parse_run(&["PCR".into(), "--socket-workers".into()]).is_err());
    }

    #[test]
    fn verify_parsing_smoke_profile() {
        let args = vec!["--smoke".to_string()];
        let o = parse_verify(&args).unwrap();
        assert_eq!(o.seeds, 25);
        assert!(!o.opts.ilp);
        assert!(o.single_seed.is_none());
    }

    #[test]
    fn verify_parsing_seed_and_budget() {
        let args: Vec<String> = ["--seed", "42", "--budget", "7", "--repro", "r.txt"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_verify(&args).unwrap();
        assert_eq!(o.single_seed, Some(42));
        assert_eq!(o.opts.ilp_budget, Duration::from_secs(7));
        assert_eq!(o.repro, "r.txt");
    }

    #[test]
    fn verify_parsing_faults_mode() {
        let o = parse_verify(&["--faults".to_string(), "--smoke".to_string()]).unwrap();
        assert!(o.faults);
        assert!(o.smoke);
        assert!(!o.seeds_explicit);
        let o = parse_verify(&[
            "--faults".to_string(),
            "--seeds".to_string(),
            "3".to_string(),
        ])
        .unwrap();
        assert!(o.faults);
        assert!(o.seeds_explicit);
        assert_eq!(o.seeds, 3);
    }

    #[test]
    fn verify_parsing_partitions_sweep() {
        let o = parse_verify(&[
            "--faults".to_string(),
            "--partitions".to_string(),
            "1,2,4".to_string(),
        ])
        .unwrap();
        assert_eq!(o.partitions, vec![1, 2, 4]);
        let o = parse_verify(&["--faults".to_string()]).unwrap();
        assert_eq!(o.partitions, vec![1]);
        assert!(parse_verify(&[
            "--faults".to_string(),
            "--partitions".to_string(),
            "1,0".to_string()
        ])
        .is_err());
        assert!(parse_verify(&[
            "--faults".to_string(),
            "--partitions".to_string(),
            "two".to_string()
        ])
        .is_err());
    }

    #[test]
    fn run_parsing_partitions() {
        let args: Vec<String> = ["PCR", "--partitions", "4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_run(&args).unwrap();
        assert_eq!(o.partitions, 4);
        let o = parse_run(&["PCR".to_string()]).unwrap();
        assert_eq!(o.partitions, 1);
        assert!(parse_run(&[
            "PCR".to_string(),
            "--partitions".to_string(),
            "0".to_string()
        ])
        .is_err());
    }

    #[test]
    fn run_parsing_pipeline_budget() {
        let args: Vec<String> = ["PCR", "--pipeline-budget", "250"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse_run(&args).unwrap();
        assert_eq!(o.pipeline_budget, Some(Duration::from_millis(250)));
        let o = parse_run(&["PCR".to_string()]).unwrap();
        assert_eq!(o.pipeline_budget, None);
    }

    #[test]
    fn run_parsing_validate_toggle() {
        let on = parse_run(&["PCR".to_string(), "--validate".to_string()]).unwrap();
        assert!(on.validate);
        let off = parse_run(&["PCR".to_string(), "--no-validate".to_string()]).unwrap();
        assert!(!off.validate);
    }

    #[test]
    fn repair_parsing_defaults_and_full_option_set() {
        let o = parse_repair(&["PCR".to_string()]).unwrap();
        assert_eq!(o.bench.name, "PCR");
        assert_eq!(o.steps, 3);
        assert_eq!(o.seed, 0);
        assert_eq!(o.delay, None);
        assert_eq!(o.partitions, 1);
        let args: Vec<String> = [
            "demo",
            "--steps",
            "5",
            "--seed",
            "9",
            "--delay",
            "4",
            "--threads",
            "2",
            "--partitions",
            "3",
            "--pipeline-budget",
            "100",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_repair(&args).unwrap();
        assert_eq!(o.steps, 5);
        assert_eq!(o.seed, 9);
        assert_eq!(o.delay, Some(4));
        assert_eq!(o.threads, 2);
        assert_eq!(o.partitions, 3);
        assert_eq!(o.pipeline_budget, Some(Duration::from_millis(100)));
        assert!(parse_repair(&["demo".to_string(), "--wat".to_string()]).is_err());
        assert!(parse_repair(&[]).is_err());
    }

    #[test]
    fn dispatch_reports_unknown_commands() {
        let e = dispatch(&["wibble".to_string()]).unwrap_err();
        assert!(e.to_string().contains("wibble"));
    }

    #[test]
    fn benchmark_json_roundtrip() {
        let b = benchmarks::pcr();
        let json = serde_json::to_string(&b).unwrap();
        let back: Benchmark = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, b.name);
        assert_eq!(back.op_count(), b.op_count());
        assert_eq!(back.edge_count(), b.edge_count());
    }
}
