//! `pdw` — command-line front end for the PathDriver-Wash reproduction.
//!
//! ```text
//! pdw list                                 # available benchmarks
//! pdw run PCR                              # DAWO vs PDW comparison
//! pdw run --assay my_assay.json            # custom assay from JSON
//! pdw run IVD --svg out/ --json result.json
//! pdw show demo                            # chip + ASCII Gantt
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pdw: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
