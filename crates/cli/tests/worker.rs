//! End-to-end tests of out-of-process region planning through the real
//! `pdw worker` binary (`CARGO_BIN_EXE_pdw`): subprocess plans must be
//! bit-identical to in-process plans on the mega family, and a chaos
//! sweep — workers killed or corrupting their replies mid-plan — must
//! degrade to in-process replanning with typed events, never a wrong or
//! missing plan.

use std::io::BufRead;
use std::time::Duration;

use pathdriver_wash::{
    plan_partitioned, plan_partitioned_with, ExecutorEvent, NetAddr, PdwConfig, RegionExecutor,
    RespawnPolicy, SocketExecutor, SubprocessExecutor,
};
use pdw_synth::Synthesis;

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_pdw").to_string(), "worker".to_string()]
}

/// A worker argv with `PDW_WORKER_CHAOS` injected via `env(1)`, so chaos
/// stays scoped to the children of one executor instead of mutating this
/// (multi-threaded) test process's environment.
fn chaotic_worker_cmd(chaos: &str) -> Vec<String> {
    vec![
        "env".to_string(),
        format!("PDW_WORKER_CHAOS={chaos}"),
        env!("CARGO_BIN_EXE_pdw").to_string(),
        "worker".to_string(),
    ]
}

fn config() -> PdwConfig {
    PdwConfig {
        ilp: false,
        ..PdwConfig::default()
    }
}

/// Mega-family instances: pristine and fault-injected, several seeds.
fn mega_pool() -> Vec<(pdw_assay::benchmarks::Benchmark, Synthesis, String)> {
    let mut pool = Vec::new();
    for seed in [1u64, 2] {
        let spec = pdw_gen::mega_spec(65, 12, seed);
        let (bench, pristine) = pdw_gen::mega_instance(&spec).expect("mega instance synthesizes");
        let faulted = pdw_gen::inject_faults(&pristine, seed);
        pool.push((bench.clone(), pristine, format!("mega seed {seed}")));
        pool.push((bench, faulted, format!("mega seed {seed} faulted")));
    }
    pool
}

/// Asserts a subprocess outcome is bit-identical to the in-process
/// reference: same rung, same schedule, same metrics.
fn assert_bit_identical(
    label: &str,
    reference: &pathdriver_wash::PlanOutcome,
    subject: &pathdriver_wash::PlanOutcome,
) {
    assert_eq!(subject.rung, reference.rung, "{label}: rung differs");
    let (r, s) = (
        reference.served.as_ref().expect("reference serves"),
        subject.served.as_ref().expect("subject serves"),
    );
    assert_eq!(s.schedule, r.schedule, "{label}: schedule differs");
    assert_eq!(s.metrics, r.metrics, "{label}: metrics differ");
}

#[test]
fn subprocess_plans_are_bit_identical_on_the_mega_family() {
    for (bench, s, label) in mega_pool() {
        let cfg = config();
        let reference = plan_partitioned(&bench, &s, &cfg, 4);
        let executor = SubprocessExecutor::new(worker_cmd(), 2);
        let subject = plan_partitioned_with(&bench, &s, &cfg, 4, &executor);
        assert_bit_identical(&label, &reference, &subject);

        let (remote, fallbacks) = executor.subprocess_counters();
        assert!(remote > 0, "{label}: no job went to a worker");
        assert_eq!(fallbacks, 0, "{label}: healthy workers never fall back");
        assert!(executor.events().is_empty(), "{label}: no transport events");
        let stats = &subject.served.as_ref().unwrap().pipeline;
        assert_eq!(stats.subprocess_jobs, remote);
        assert_eq!(stats.subprocess_fallbacks, 0);
    }
}

#[test]
fn killed_workers_degrade_to_in_process_with_typed_events() {
    chaos_sweep("die:1", "killed");
}

#[test]
fn corrupting_workers_degrade_to_in_process_with_typed_events() {
    chaos_sweep("corrupt:1", "corrupting");
}

/// The chaos contract: every worker dies (or corrupts its reply) on its
/// first request, so every region job must fall back to the in-process
/// front end — and the final plan must still be bit-identical to a run
/// with no subprocess at all.
fn chaos_sweep(chaos: &str, what: &str) {
    let (bench, pristine, _) = mega_pool().swap_remove(0);
    let s = pristine;
    let cfg = config();
    let reference = plan_partitioned(&bench, &s, &cfg, 4);

    let executor = SubprocessExecutor::new(chaotic_worker_cmd(chaos), 2);
    let subject = plan_partitioned_with(&bench, &s, &cfg, 4, &executor);
    assert_bit_identical(&format!("{what} workers"), &reference, &subject);

    let (remote, fallbacks) = executor.subprocess_counters();
    assert_eq!(remote, 0, "{what}: no first-request chaos job succeeds");
    assert!(fallbacks > 0, "{what}: every job must fall back");
    let events = executor.events();
    let failed = events
        .iter()
        .filter(|e| matches!(e, ExecutorEvent::WorkerFailed { .. }))
        .count();
    assert_eq!(failed, fallbacks, "{what}: one typed event per fallback");
    // A lane that gets a second job respawns its dead worker first.
    if fallbacks > 2 {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ExecutorEvent::WorkerRespawned { .. })),
            "{what}: respawn after failure is recorded"
        );
    }

    // The degradation is visible in the served plan's stats and events.
    let stats = &subject.served.as_ref().unwrap().pipeline;
    assert_eq!(stats.subprocess_jobs, 0);
    assert_eq!(stats.subprocess_fallbacks, fallbacks);
    assert!(stats
        .degradation_events()
        .contains(&"some region workers failed; jobs replanned in-process"));

    // And the served plan still passes the independent oracle.
    let served = subject.served.as_ref().unwrap();
    pdw_sim::validate(&s.chip, &bench.graph, &served.schedule).expect("chaos plan validates");
    assert!(
        pdw_sim::propagate(&s.chip, &bench.graph, &served.schedule).is_clean(),
        "{what}: chaos plan is oracle-clean"
    );
}

/// A tight respawn curve so exhaustion tests finish in milliseconds.
fn tiny_policy(budget: usize) -> RespawnPolicy {
    RespawnPolicy {
        budget,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(5),
    }
}

/// Satellite: a lane whose worker dies on *every* request burns its whole
/// respawn budget, emits [`ExecutorEvent::RespawnBudgetExhausted`], surfaces
/// the degradation in the served plan's stats — and the plan itself is
/// still bit-identical to a run with no subprocess at all.
#[test]
fn respawn_budget_exhaustion_degrades_the_lane_in_process() {
    let (bench, s, _) = mega_pool().swap_remove(0);
    let cfg = config();
    let reference = plan_partitioned(&bench, &s, &cfg, 4);

    // One lane so every job queues behind the same persistently dying
    // worker; budget 1 allows exactly one respawn before the lane gives up.
    let executor =
        SubprocessExecutor::new(chaotic_worker_cmd("die:1"), 1).with_respawn_policy(tiny_policy(1));
    let subject = plan_partitioned_with(&bench, &s, &cfg, 4, &executor);
    assert_bit_identical("exhausted lane", &reference, &subject);

    let (remote, fallbacks) = executor.subprocess_counters();
    assert_eq!(remote, 0, "a die:1 worker never completes a job");
    assert!(fallbacks >= 3, "every job falls back in-process");
    assert_eq!(executor.exhausted_lanes(), 1, "the single lane exhausts");
    let events = executor.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ExecutorEvent::RespawnBudgetExhausted { budget: 1, .. })),
        "exhaustion is a typed event; got {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ExecutorEvent::WorkerRespawned { .. })),
        "the budgeted respawn happened before exhaustion; got {events:?}"
    );

    let stats = &subject.served.as_ref().unwrap().pipeline;
    assert_eq!(stats.subprocess_exhausted, 1);
    assert!(stats
        .degradation_events()
        .contains(&"worker respawn budget exhausted; lane degraded to in-process"));
}

/// A live `pdw worker --listen` child whose bound address was scraped from
/// its startup line, killed on drop so chaos tests can't leak processes.
struct ListeningWorker {
    child: std::process::Child,
    addr: NetAddr,
}

impl ListeningWorker {
    /// Spawns `pdw worker --listen 127.0.0.1:0` (plus optional chaos env)
    /// and waits for its "listening on" stderr line to learn the port.
    fn spawn(chaos: Option<&str>) -> ListeningWorker {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_pdw"));
        cmd.args(["worker", "--listen", "127.0.0.1:0"])
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped());
        if let Some(spec) = chaos {
            cmd.env("PDW_WORKER_CHAOS", spec);
        }
        let mut child = cmd.spawn().expect("worker binary spawns");
        let stderr = child.stderr.take().expect("stderr piped");
        let mut line = String::new();
        std::io::BufReader::new(stderr)
            .read_line(&mut line)
            .expect("worker announces its address");
        let addr = line
            .trim()
            .rsplit(' ')
            .next()
            .expect("announcement ends with the address");
        let addr = NetAddr::parse(addr).expect("announced address parses");
        ListeningWorker { child, addr }
    }
}

impl Drop for ListeningWorker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The socket executor against a real `pdw worker --listen` process:
/// same frames, different byte stream — plans stay bit-identical.
#[test]
fn socket_workers_plan_bit_identically_through_the_real_binary() {
    let worker = ListeningWorker::spawn(None);
    for (bench, s, label) in mega_pool() {
        let cfg = config();
        let reference = plan_partitioned(&bench, &s, &cfg, 4);
        let executor = SocketExecutor::new(vec![worker.addr.clone()]);
        let subject = plan_partitioned_with(&bench, &s, &cfg, 4, &executor);
        assert_bit_identical(&label, &reference, &subject);

        let (remote, fallbacks) = executor.subprocess_counters();
        assert!(remote > 0, "{label}: no job went over the socket");
        assert_eq!(fallbacks, 0, "{label}: a healthy peer never falls back");
        assert!(executor.events().is_empty(), "{label}: no transport events");
    }
}

/// A peer that dies mid-plan (chaos `die:1` kills the whole listening
/// process on its first request) tears every lane's connection; reconnect
/// attempts are refused, the budget burns out, and all jobs degrade
/// in-process — bit-identically and with typed events throughout.
#[test]
fn dead_socket_peer_degrades_to_in_process_with_typed_events() {
    let worker = ListeningWorker::spawn(Some("die:1"));
    let (bench, s, _) = mega_pool().swap_remove(0);
    let cfg = config();
    let reference = plan_partitioned(&bench, &s, &cfg, 4);

    let executor =
        SocketExecutor::new(vec![worker.addr.clone()]).with_respawn_policy(tiny_policy(2));
    let subject = plan_partitioned_with(&bench, &s, &cfg, 4, &executor);
    assert_bit_identical("dead socket peer", &reference, &subject);

    let (remote, fallbacks) = executor.subprocess_counters();
    assert_eq!(remote, 0, "the peer dies before answering anything");
    assert!(fallbacks > 0, "every job falls back in-process");
    let events = executor.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ExecutorEvent::WorkerFailed { .. })),
        "the torn connection is a typed event; got {events:?}"
    );
    let stats = &subject.served.as_ref().unwrap().pipeline;
    assert_eq!(stats.subprocess_jobs, 0);
    assert_eq!(stats.subprocess_fallbacks, fallbacks);
}

/// An address nobody listens on: every connect is refused, the lane
/// exhausts its reconnect budget, and planning still serves the exact
/// in-process plan.
#[test]
fn unreachable_socket_peer_exhausts_and_falls_back() {
    // Bind-then-drop reserves a port that is then guaranteed dead.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        NetAddr::parse(&addr.to_string()).expect("parses")
    };
    let (bench, s, _) = mega_pool().swap_remove(0);
    let cfg = config();
    let reference = plan_partitioned(&bench, &s, &cfg, 4);

    let executor = SocketExecutor::new(vec![dead]).with_respawn_policy(tiny_policy(1));
    let subject = plan_partitioned_with(&bench, &s, &cfg, 4, &executor);
    assert_bit_identical("unreachable peer", &reference, &subject);

    let (remote, fallbacks) = executor.subprocess_counters();
    assert_eq!(remote, 0);
    assert!(fallbacks >= 3, "all jobs fall back");
    assert_eq!(executor.exhausted_lanes(), 1);
    let stats = &subject.served.as_ref().unwrap().pipeline;
    assert_eq!(stats.subprocess_exhausted, 1);
    assert!(stats
        .degradation_events()
        .contains(&"worker respawn budget exhausted; lane degraded to in-process"));
}
