//! End-to-end tests of out-of-process region planning through the real
//! `pdw worker` binary (`CARGO_BIN_EXE_pdw`): subprocess plans must be
//! bit-identical to in-process plans on the mega family, and a chaos
//! sweep — workers killed or corrupting their replies mid-plan — must
//! degrade to in-process replanning with typed events, never a wrong or
//! missing plan.

use pathdriver_wash::{
    plan_partitioned, plan_partitioned_with, ExecutorEvent, PdwConfig, RegionExecutor,
    SubprocessExecutor,
};
use pdw_synth::Synthesis;

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_pdw").to_string(), "worker".to_string()]
}

/// A worker argv with `PDW_WORKER_CHAOS` injected via `env(1)`, so chaos
/// stays scoped to the children of one executor instead of mutating this
/// (multi-threaded) test process's environment.
fn chaotic_worker_cmd(chaos: &str) -> Vec<String> {
    vec![
        "env".to_string(),
        format!("PDW_WORKER_CHAOS={chaos}"),
        env!("CARGO_BIN_EXE_pdw").to_string(),
        "worker".to_string(),
    ]
}

fn config() -> PdwConfig {
    PdwConfig {
        ilp: false,
        ..PdwConfig::default()
    }
}

/// Mega-family instances: pristine and fault-injected, several seeds.
fn mega_pool() -> Vec<(pdw_assay::benchmarks::Benchmark, Synthesis, String)> {
    let mut pool = Vec::new();
    for seed in [1u64, 2] {
        let spec = pdw_gen::mega_spec(65, 12, seed);
        let (bench, pristine) = pdw_gen::mega_instance(&spec).expect("mega instance synthesizes");
        let faulted = pdw_gen::inject_faults(&pristine, seed);
        pool.push((bench.clone(), pristine, format!("mega seed {seed}")));
        pool.push((bench, faulted, format!("mega seed {seed} faulted")));
    }
    pool
}

/// Asserts a subprocess outcome is bit-identical to the in-process
/// reference: same rung, same schedule, same metrics.
fn assert_bit_identical(
    label: &str,
    reference: &pathdriver_wash::PlanOutcome,
    subject: &pathdriver_wash::PlanOutcome,
) {
    assert_eq!(subject.rung, reference.rung, "{label}: rung differs");
    let (r, s) = (
        reference.served.as_ref().expect("reference serves"),
        subject.served.as_ref().expect("subject serves"),
    );
    assert_eq!(s.schedule, r.schedule, "{label}: schedule differs");
    assert_eq!(s.metrics, r.metrics, "{label}: metrics differ");
}

#[test]
fn subprocess_plans_are_bit_identical_on_the_mega_family() {
    for (bench, s, label) in mega_pool() {
        let cfg = config();
        let reference = plan_partitioned(&bench, &s, &cfg, 4);
        let executor = SubprocessExecutor::new(worker_cmd(), 2);
        let subject = plan_partitioned_with(&bench, &s, &cfg, 4, &executor);
        assert_bit_identical(&label, &reference, &subject);

        let (remote, fallbacks) = executor.subprocess_counters();
        assert!(remote > 0, "{label}: no job went to a worker");
        assert_eq!(fallbacks, 0, "{label}: healthy workers never fall back");
        assert!(executor.events().is_empty(), "{label}: no transport events");
        let stats = &subject.served.as_ref().unwrap().pipeline;
        assert_eq!(stats.subprocess_jobs, remote);
        assert_eq!(stats.subprocess_fallbacks, 0);
    }
}

#[test]
fn killed_workers_degrade_to_in_process_with_typed_events() {
    chaos_sweep("die:1", "killed");
}

#[test]
fn corrupting_workers_degrade_to_in_process_with_typed_events() {
    chaos_sweep("corrupt:1", "corrupting");
}

/// The chaos contract: every worker dies (or corrupts its reply) on its
/// first request, so every region job must fall back to the in-process
/// front end — and the final plan must still be bit-identical to a run
/// with no subprocess at all.
fn chaos_sweep(chaos: &str, what: &str) {
    let (bench, pristine, _) = mega_pool().swap_remove(0);
    let s = pristine;
    let cfg = config();
    let reference = plan_partitioned(&bench, &s, &cfg, 4);

    let executor = SubprocessExecutor::new(chaotic_worker_cmd(chaos), 2);
    let subject = plan_partitioned_with(&bench, &s, &cfg, 4, &executor);
    assert_bit_identical(&format!("{what} workers"), &reference, &subject);

    let (remote, fallbacks) = executor.subprocess_counters();
    assert_eq!(remote, 0, "{what}: no first-request chaos job succeeds");
    assert!(fallbacks > 0, "{what}: every job must fall back");
    let events = executor.events();
    let failed = events
        .iter()
        .filter(|e| matches!(e, ExecutorEvent::WorkerFailed { .. }))
        .count();
    assert_eq!(failed, fallbacks, "{what}: one typed event per fallback");
    // A lane that gets a second job respawns its dead worker first.
    if fallbacks > 2 {
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ExecutorEvent::WorkerRespawned { .. })),
            "{what}: respawn after failure is recorded"
        );
    }

    // The degradation is visible in the served plan's stats and events.
    let stats = &subject.served.as_ref().unwrap().pipeline;
    assert_eq!(stats.subprocess_jobs, 0);
    assert_eq!(stats.subprocess_fallbacks, fallbacks);
    assert!(stats
        .degradation_events()
        .contains(&"some region workers failed; jobs replanned in-process"));

    // And the served plan still passes the independent oracle.
    let served = subject.served.as_ref().unwrap();
    pdw_sim::validate(&s.chip, &bench.graph, &served.schedule).expect("chaos plan validates");
    assert!(
        pdw_sim::propagate(&s.chip, &bench.graph, &served.schedule).is_clean(),
        "{what}: chaos plan is oracle-clean"
    );
}
