//! Contamination tracking and wash-necessity analysis.
//!
//! Every fluidic task leaves residue of its fluid type on the interior cells
//! of its flow path; a later fluid of a *different* type traversing a
//! contaminated cell is cross-contaminated (Section I of the paper). This
//! crate:
//!
//! - replays a [`Schedule`](pdw_sched::Schedule) and derives every
//!   contamination event ([`replay`]),
//! - classifies each event against the paper's three wash exemptions
//!   (Section II-A / Eqs. 9–11): **Type 1** (cell never used again),
//!   **Type 2** (next fluid through the cell has the same type), **Type 3**
//!   (cell only used to carry waste) — yielding the set of *wash
//!   requirements* ([`analyze`]),
//! - verifies that a final schedule (with wash operations inserted) never
//!   lets a delivery traverse a dirty cell ([`verify_clean`]).
//!
//! # Example
//!
//! ```
//! use pdw_assay::benchmarks;
//! use pdw_contam::{analyze, NecessityOptions};
//! use pdw_synth::synthesize;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::demo();
//! let synthesis = synthesize(&bench)?;
//! let analysis = analyze(
//!     &synthesis.chip,
//!     &bench.graph,
//!     &synthesis.schedule,
//!     NecessityOptions::full(),
//! );
//! // The demo assay has contaminated cells, but not all need washing.
//! assert!(analysis.events.len() > analysis.requirements.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod necessity;
mod state;

pub use necessity::{analyze, Analysis, Classification, NecessityOptions, Source, WashRequirement};
pub use state::{replay, verify_clean, CleanlinessViolation, ContamEvent};
