//! Wash-necessity analysis: which contaminated cells actually need washing.

use std::collections::HashMap;

use pdw_assay::{AssayGraph, FluidType, OpId, OpInput};
use pdw_biochip::{CellSet, Chip, Coord};
use pdw_sched::{Schedule, TaskId, TaskKind, Time};

use crate::state::{interior_cells, op_devices, replay, ContamEvent};

/// What deposited a residue or consumes a cell next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Source {
    /// A fluidic task.
    Task(TaskId),
    /// A biochemical operation executing on its device.
    Op(OpId),
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Source::Task(t) => write!(f, "{t}"),
            Source::Op(o) => write!(f, "{o}"),
        }
    }
}

/// Which exemption (if any) applies to a contamination event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// Type 1: the cell is never used by a later task/operation.
    Type1Unused,
    /// Type 2: the next fluid through the cell has the same type as the
    /// residue.
    Type2SameFluid,
    /// Type 3: the cell is next used only to carry waste off-chip.
    Type3WasteOnly,
    /// No exemption applies: the cell must be washed before its next use.
    NeedsWash,
}

/// Which of the paper's exemptions the analysis applies.
///
/// PathDriver-Wash uses all three ([`full`](Self::full)). The DAWO baseline
/// has no fluid-type analysis and uses [`reuse_only`](Self::reuse_only):
/// a contaminated cell demands a wash iff it is reused by a non-waste task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NecessityOptions {
    /// Apply the Type-1 (never-used-again) exemption.
    pub type1: bool,
    /// Apply the Type-2 (same-fluid) exemption.
    pub type2: bool,
    /// Apply the Type-3 (waste-transport) exemption.
    pub type3: bool,
}

impl NecessityOptions {
    /// All three exemptions (PathDriver-Wash, Section II-A).
    pub fn full() -> Self {
        Self {
            type1: true,
            type2: true,
            type3: true,
        }
    }

    /// Only the structural exemptions (Types 1 and 3), no fluid-type
    /// analysis — the demand-driven behaviour of the DAWO baseline.
    pub fn reuse_only() -> Self {
        Self {
            type1: true,
            type2: false,
            type3: true,
        }
    }
}

/// A cell that must be washed within a time window.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WashRequirement {
    /// The cell to wash.
    pub cell: Coord,
    /// The residue to remove.
    pub fluid: FluidType,
    /// When the residue appears (window start, `t_{j,e}` in Eq. 16).
    pub contaminated_at: Time,
    /// What deposited the residue.
    pub source: Source,
    /// The task or operation that will be harmed if the cell stays dirty.
    pub next_use: Source,
    /// Start time of `next_use` (window end, `t_{j,s}` in Eq. 16).
    pub deadline: Time,
}

/// Result of the wash-necessity analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Every contamination event of the schedule.
    pub events: Vec<ContamEvent>,
    /// Classification of each event (same order as `events`).
    pub classifications: Vec<Classification>,
    /// The first future use that justified each classification (same order
    /// as `events`; `None` for Type-1 events, which have no future use).
    ///
    /// A Type-2/3 exemption is only as good as its witness: an optimizer
    /// that *deletes* the witnessing task (e.g. by integrating an excess
    /// removal into a wash, ψ = 1) would re-expose the residue. Such tasks
    /// must not be deleted.
    pub witnesses: Vec<Option<Source>>,
    /// The events that demand a wash, as requirements with time windows.
    pub requirements: Vec<WashRequirement>,
    /// Waste-disposal tasks that may safely be deleted (e.g. integrated
    /// into a wash, ψ = 1): every event they witness remains exempt without
    /// them, or is already covered by a wash requirement on the same cell.
    pub deletable: std::collections::HashSet<TaskId>,
}

impl Analysis {
    /// Number of events exempted by the given classification.
    pub fn count(&self, c: Classification) -> usize {
        self.classifications.iter().filter(|&&x| x == c).count()
    }

    /// `true` when any cell this analysis reasoned about — a contamination
    /// event's cell or a requirement's wash target — lies inside `mask`.
    ///
    /// Incremental replanning uses this as its invalidation test: a fault
    /// delta whose footprint misses every analyzed cell cannot change what
    /// the analysis would report (the analysis replays the *schedule*, not
    /// the routing graph, so faults reach it only through the cells the
    /// schedule touches), and the cached entry is carried forward.
    pub fn touches(&self, mask: &CellSet) -> bool {
        self.events.iter().any(|e| mask.contains(e.cell))
            || self.requirements.iter().any(|r| mask.contains(r.cell))
    }
}

/// A future consumption of a cell.
#[derive(Debug, Clone)]
struct Use {
    start: Time,
    /// Fluid types that this use tolerates on the cell (its own fluids).
    fluids: Vec<FluidType>,
    is_waste: bool,
    what: Source,
}

/// Classifies every contamination event of `schedule` against the wash
/// exemptions enabled in `opts` and derives the wash requirements.
///
/// Uses are collected per cell from all non-wash tasks and from operation
/// executions. Cells inside a delivery's own source/destination devices are
/// not uses (fluids meeting in a device are intended chemistry), matching
/// [`verify_clean`](crate::verify_clean).
pub fn analyze(
    chip: &Chip,
    graph: &AssayGraph,
    schedule: &Schedule,
    opts: NecessityOptions,
) -> Analysis {
    let events = replay(chip, graph, schedule);
    let op_dev = op_devices(schedule);

    // Collect per-cell uses.
    let mut uses: HashMap<Coord, Vec<Use>> = HashMap::new();
    for (id, task) in schedule.tasks() {
        if task.kind().is_wash() {
            continue;
        }
        let mut exempt_cells: Vec<Coord> = Vec::new();
        match *task.kind() {
            TaskKind::Injection { op, .. } => {
                exempt_cells.extend(chip.device(op_dev[&op]).footprint());
            }
            TaskKind::Transport { from_op, to_op } => {
                exempt_cells.extend(chip.device(op_dev[&from_op]).footprint());
                exempt_cells.extend(chip.device(op_dev[&to_op]).footprint());
            }
            TaskKind::OutputRemoval { op } => {
                exempt_cells.extend(chip.device(op_dev[&op]).footprint());
            }
            _ => {}
        }
        let exempt = CellSet::from_cells(&exempt_cells);
        for cell in interior_cells(chip, task) {
            if exempt.contains(cell) {
                continue;
            }
            uses.entry(cell).or_default().push(Use {
                start: task.start(),
                fluids: vec![task.fluid()],
                is_waste: task.kind().is_waste_disposal(),
                what: Source::Task(id),
            });
        }
    }
    // Operation executions tolerate their own input fluids.
    for sop in schedule.ops() {
        let op = graph.op(sop.op);
        let fluids: Vec<FluidType> = op
            .inputs()
            .iter()
            .map(|&inp| match inp {
                OpInput::Reagent(r) => graph.reagent_fluid(r),
                OpInput::Op(o) => graph.output_fluid(o),
            })
            .collect();
        for &cell in chip.device(sop.device).footprint() {
            uses.entry(cell).or_default().push(Use {
                start: sop.start,
                fluids: fluids.clone(),
                is_waste: false,
                what: Source::Op(sop.op),
            });
        }
    }
    for list in uses.values_mut() {
        list.sort_by_key(|u| u.start);
    }

    let mut classifications = Vec::with_capacity(events.len());
    let mut witnesses = Vec::with_capacity(events.len());
    let mut requirements = Vec::new();
    for e in &events {
        let first_use = uses.get(&e.cell).and_then(|list| {
            list.iter()
                .find(|u| u.start >= e.time && u.what != e.source)
        });
        witnesses.push(first_use.map(|u| u.what));
        let class = match first_use {
            // Residue nobody ever touches can never harm anything; Type 1
            // holds regardless of `opts` (disabling it would only fabricate
            // requirements with no consumer).
            None => Classification::Type1Unused,
            Some(u) => {
                if opts.type2 && u.fluids.contains(&e.fluid) {
                    Classification::Type2SameFluid
                } else if opts.type3 && u.is_waste {
                    Classification::Type3WasteOnly
                } else if !opts.type2
                    && u.fluids.contains(&e.fluid)
                    && matches!(u.what, Source::Op(_))
                {
                    // Even without fluid-type analysis, residue that is one
                    // of the very inputs an operation is about to consume is
                    // part of the recipe, not contamination.
                    Classification::Type2SameFluid
                } else {
                    requirements.push(WashRequirement {
                        cell: e.cell,
                        fluid: e.fluid,
                        contaminated_at: e.time,
                        source: e.source,
                        next_use: u.what,
                        deadline: u.start,
                    });
                    Classification::NeedsWash
                }
            }
        };
        classifications.push(class);
    }

    // Which disposals are safe to delete? For every event E witnessed by a
    // disposal r, E must stay harmless when r vanishes: its first use
    // *skipping r* is absent or fluid-compatible, or r's own residue event
    // on that cell demands a wash (which will clean E's residue too, since
    // the wash covers the cell before that next use).
    let needs_wash_cells: std::collections::HashSet<(Coord, Source)> =
        requirements.iter().map(|r| (r.cell, r.source)).collect();
    let mut unsafe_removals: std::collections::HashSet<TaskId> = std::collections::HashSet::new();
    for (e, w) in events.iter().zip(&witnesses) {
        let Some(Source::Task(rid)) = w else { continue };
        let is_disposal = matches!(
            schedule
                .get_task(*rid)
                .map(|t| t.kind().is_waste_disposal()),
            Some(true)
        );
        if !is_disposal {
            continue;
        }
        let next = uses.get(&e.cell).and_then(|list| {
            list.iter()
                .find(|u| u.start >= e.time && u.what != e.source && u.what != Source::Task(*rid))
        });
        let safe = match next {
            None => true,
            Some(u) if u.fluids.contains(&e.fluid) => true,
            // Relying on *another* disposal would entangle deletions;
            // treat as unsafe unless a wash already covers the cell.
            Some(_) => needs_wash_cells.contains(&(e.cell, Source::Task(*rid))),
        };
        if !safe {
            unsafe_removals.insert(*rid);
        }
    }
    let deletable: std::collections::HashSet<TaskId> = schedule
        .tasks()
        .filter(|(_, t)| t.kind().is_waste_disposal())
        .map(|(id, _)| id)
        .filter(|id| !unsafe_removals.contains(id))
        .collect();

    Analysis {
        events,
        classifications,
        witnesses,
        requirements,
        deletable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    fn demo_analysis(opts: NecessityOptions) -> Analysis {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        analyze(&s.chip, &bench.graph, &s.schedule, opts)
    }

    #[test]
    fn full_analysis_exempts_some_events() {
        let a = demo_analysis(NecessityOptions::full());
        assert!(
            a.count(Classification::Type1Unused) > 0,
            "no type-1 exemptions"
        );
        assert!(
            a.count(Classification::Type2SameFluid) > 0,
            "no type-2 exemptions"
        );
        assert!(!a.requirements.is_empty(), "demo needs some washes");
        assert_eq!(a.classifications.len(), a.events.len());
    }

    #[test]
    fn reuse_only_never_needs_fewer_washes() {
        let full = demo_analysis(NecessityOptions::full());
        let reuse = demo_analysis(NecessityOptions::reuse_only());
        assert!(reuse.requirements.len() >= full.requirements.len());
    }

    #[test]
    fn requirements_have_consistent_windows() {
        let a = demo_analysis(NecessityOptions::full());
        for r in &a.requirements {
            assert!(
                r.contaminated_at <= r.deadline,
                "window inverted for {:?}",
                r
            );
        }
    }

    #[test]
    fn touches_reflects_analyzed_cells_only() {
        let a = demo_analysis(NecessityOptions::full());
        assert!(!a.touches(&CellSet::new()), "empty mask touches nothing");
        let event_cell = a.events[0].cell;
        assert!(a.touches(&CellSet::from_cells(&[event_cell])));
        // A cell no event or requirement mentions is invisible to the
        // analysis.
        let cells: std::collections::HashSet<Coord> = a
            .events
            .iter()
            .map(|e| e.cell)
            .chain(a.requirements.iter().map(|r| r.cell))
            .collect();
        let unused = (0..u16::MAX)
            .map(|i| Coord::new(i % 251, i / 251))
            .find(|c| !cells.contains(c))
            .unwrap();
        assert!(!a.touches(&CellSet::from_cells(&[unused])));
    }

    #[test]
    fn every_benchmark_produces_requirements() {
        for bench in benchmarks::suite() {
            let s = synthesize(&bench).unwrap();
            let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
            assert!(
                !a.requirements.is_empty(),
                "{}: wash problem is vacuous",
                bench.name
            );
        }
    }
}
