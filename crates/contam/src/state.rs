//! Residue replay and cleanliness verification.

use std::collections::HashMap;

use pdw_assay::{AssayGraph, FluidType, OpId};
use pdw_biochip::{Chip, Coord};
use pdw_sched::{Schedule, Task, TaskId, TaskKind, Time};

use crate::necessity::Source;

/// A contamination event: `cell` holds residue of `fluid` from `time` on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContamEvent {
    /// The contaminated cell (`(x, y) ∈ R_c` in the paper).
    pub cell: Coord,
    /// The residue's fluid type.
    pub fluid: FluidType,
    /// The time the residue is deposited (`t^c_{x,y}`): the end of the
    /// depositing task or operation.
    pub time: Time,
    /// What deposited the residue.
    pub source: Source,
}

/// The interior (residue-capable) cells of a task's path.
pub(crate) fn interior_cells<'a>(
    chip: &'a Chip,
    task: &'a Task,
) -> impl Iterator<Item = Coord> + 'a {
    task.path()
        .iter()
        .copied()
        .filter(|&c| chip.grid().kind(c).can_hold_residue())
}

/// Device bound to each operation, extracted from the schedule.
pub(crate) fn op_devices(schedule: &Schedule) -> HashMap<OpId, pdw_biochip::DeviceId> {
    schedule.ops().iter().map(|s| (s.op, s.device)).collect()
}

/// Replays the schedule and returns every contamination event in
/// chronological order.
///
/// Non-wash tasks deposit their fluid on the interior cells of their paths
/// at task end; operations deposit their result fluid on their device's
/// footprint at operation end. Wash tasks deposit nothing (buffer counts as
/// clean).
pub fn replay(chip: &Chip, graph: &AssayGraph, schedule: &Schedule) -> Vec<ContamEvent> {
    let mut events = Vec::new();
    for (id, task) in schedule.tasks() {
        if task.kind().is_wash() {
            continue;
        }
        for cell in interior_cells(chip, task) {
            events.push(ContamEvent {
                cell,
                fluid: task.fluid(),
                time: task.end(),
                source: Source::Task(id),
            });
        }
    }
    for sop in schedule.ops() {
        let fluid = graph.output_fluid(sop.op);
        for &cell in chip.device(sop.device).footprint() {
            events.push(ContamEvent {
                cell,
                fluid,
                time: sop.end(),
                source: Source::Op(sop.op),
            });
        }
    }
    events.sort_by_key(|e| (e.time, e.cell));
    events
}

/// A delivery traversed a dirty cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CleanlinessViolation {
    /// The delivery task that got contaminated.
    pub task: TaskId,
    /// The dirty cell.
    pub cell: Coord,
    /// The residue found on the cell.
    pub residue: FluidType,
    /// The fluid being delivered.
    pub fluid: FluidType,
    /// The delivery's start time.
    pub time: Time,
}

impl std::fmt::Display for CleanlinessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "delivery {} of {} at t={} crosses cell {} holding residue {}",
            self.task, self.fluid, self.time, self.cell, self.residue
        )
    }
}

impl std::error::Error for CleanlinessViolation {}

/// Verifies that no delivery (injection or transport) traverses a cell
/// holding residue of a different fluid type at its start time.
///
/// Cells of the delivery's own source and destination devices are exempt:
/// fluids meeting *inside* a device are the intended biochemistry, not
/// contamination. Wash tasks clean the interior cells of their paths at
/// their end time.
///
/// # Errors
///
/// Returns the first (earliest) violation found.
pub fn verify_clean(
    chip: &Chip,
    graph: &AssayGraph,
    schedule: &Schedule,
) -> Result<(), CleanlinessViolation> {
    let op_dev = op_devices(schedule);

    // Timeline events: residue deposits and wash cleans, at task/op ends.
    enum Ev {
        Deposit(Vec<Coord>, FluidType),
        Clean(Vec<Coord>),
    }
    let mut events: Vec<(Time, Ev)> = Vec::new();
    for (_, task) in schedule.tasks() {
        let cells: Vec<Coord> = interior_cells(chip, task).collect();
        if task.kind().is_wash() {
            events.push((task.end(), Ev::Clean(cells)));
        } else {
            events.push((task.end(), Ev::Deposit(cells, task.fluid())));
        }
    }
    for sop in schedule.ops() {
        let cells = chip.device(sop.device).footprint().to_vec();
        events.push((sop.end(), Ev::Deposit(cells, graph.output_fluid(sop.op))));
    }
    events.sort_by_key(|(t, _)| *t);

    // Checks: deliveries at their start times.
    let mut checks: Vec<(Time, TaskId)> = schedule
        .tasks()
        .filter(|(_, t)| t.kind().is_delivery())
        .map(|(id, t)| (t.start(), id))
        .collect();
    checks.sort_unstable();

    let mut residue: HashMap<Coord, FluidType> = HashMap::new();
    let mut ei = 0;
    for (start, id) in checks {
        while ei < events.len() && events[ei].0 <= start {
            match &events[ei].1 {
                Ev::Deposit(cells, fluid) => {
                    for &c in cells {
                        residue.insert(c, *fluid);
                    }
                }
                Ev::Clean(cells) => {
                    for c in cells {
                        residue.remove(c);
                    }
                }
            }
            ei += 1;
        }
        let task = schedule.task(id);
        let mut exempt: Vec<Coord> = Vec::new();
        match *task.kind() {
            TaskKind::Injection { op, .. } => {
                exempt.extend(chip.device(op_dev[&op]).footprint());
            }
            TaskKind::Transport { from_op, to_op } => {
                exempt.extend(chip.device(op_dev[&from_op]).footprint());
                exempt.extend(chip.device(op_dev[&to_op]).footprint());
            }
            _ => {}
        }
        for cell in interior_cells(chip, task) {
            if exempt.contains(&cell) {
                continue;
            }
            if let Some(&r) = residue.get(&cell) {
                if !r.is_buffer() && r != task.fluid() {
                    return Err(CleanlinessViolation {
                        task: id,
                        cell,
                        residue: r,
                        fluid: task.fluid(),
                        time: start,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn replay_reports_residue_with_sources() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let events = replay(&s.chip, &bench.graph, &s.schedule);
        assert!(!events.is_empty());
        // Chronologically sorted.
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        // Both task and op sources appear.
        assert!(events.iter().any(|e| matches!(e.source, Source::Task(_))));
        assert!(events.iter().any(|e| matches!(e.source, Source::Op(_))));
    }

    #[test]
    fn ports_never_contaminated() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        for e in replay(&s.chip, &bench.graph, &s.schedule) {
            assert!(
                s.chip.grid().kind(e.cell).can_hold_residue(),
                "port cell {} contaminated",
                e.cell
            );
        }
    }

    #[test]
    fn raw_synthesis_schedule_is_dirty() {
        // Without wash operations, some delivery must cross residue in a
        // multi-fluid assay — otherwise the wash problem would be vacuous.
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        assert!(verify_clean(&s.chip, &bench.graph, &s.schedule).is_err());
    }
}
