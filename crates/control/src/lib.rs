//! Control-layer model for continuous-flow biochips.
//!
//! In the two-layer architecture of Fig. 1(a)/(b) of the PathDriver-Wash
//! paper, a *control layer* sits above the flow layer: elastomer-membrane
//! microvalves at the overlap of the two layers pinch flow channels shut
//! when pressurized. Executing a fluidic task means opening exactly the
//! valves along its flow path and keeping every crossing channel closed.
//!
//! This crate derives, from a [`Schedule`]:
//!
//! - the **valve set** of a chip (one valve per channel/device cell,
//!   [`valve_count`]),
//! - the **actuation program** ([`ValveProgram`]): for every event time,
//!   which valves open and which close,
//! - control-layer **cost metrics** ([`ControlStats`]): total switching
//!   operations, peak simultaneously-open valves, and event count — the
//!   standard control-overhead measures in the flow-based biochip
//!   literature. Wash operations open extra valves; PathDriver-Wash's
//!   fewer/shorter washes translate directly into fewer switch operations.
//!
//! # Example
//!
//! ```
//! use pdw_assay::benchmarks;
//! use pdw_control::{compile, ControlStats};
//! use pdw_synth::synthesize;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::demo();
//! let s = synthesize(&bench)?;
//! let program = compile(&s.chip, &s.schedule);
//! let stats = ControlStats::measure(&program);
//! assert!(stats.switches > 0);
//! assert!(stats.peak_open <= pdw_control::valve_count(&s.chip));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};

use pdw_biochip::{Chip, Coord};
use pdw_sched::{Schedule, Time};
use serde::{Deserialize, Serialize};

/// Number of valves on the chip: one per channel or device cell (ports are
/// external connections and carry no valve).
pub fn valve_count(chip: &Chip) -> usize {
    chip.grid()
        .occupied()
        .filter(|(_, k)| k.can_hold_residue())
        .count()
}

/// A switching event: at `time`, `open` valves are released and `close`
/// valves are pressurized.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValveEvent {
    /// The event time in seconds.
    pub time: Time,
    /// Valves (cells) that open at this time.
    pub open: Vec<Coord>,
    /// Valves (cells) that close at this time.
    pub close: Vec<Coord>,
}

/// A compiled valve actuation program: chronologically ordered switching
/// events. All valves are closed before the first event and after the last.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValveProgram {
    events: Vec<ValveEvent>,
}

impl ValveProgram {
    /// The switching events, in time order.
    pub fn events(&self) -> &[ValveEvent] {
        &self.events
    }

    /// The set of open valves at time `t` (after applying all events with
    /// `time ≤ t`).
    pub fn open_at(&self, t: Time) -> BTreeSet<Coord> {
        let mut open = BTreeSet::new();
        for e in &self.events {
            if e.time > t {
                break;
            }
            for &c in &e.open {
                open.insert(c);
            }
            for &c in &e.close {
                open.remove(&c);
            }
        }
        open
    }
}

/// Compiles the valve actuation program for a schedule.
///
/// At any time, the open valves are exactly the union of (a) the interior
/// cells of the flow paths of active tasks and (b) the device cells of
/// executing operations; every other valve is held closed, which is what
/// isolates concurrent flows from each other.
pub fn compile(chip: &Chip, schedule: &Schedule) -> ValveProgram {
    // Demand intervals per cell.
    let mut intervals: Vec<(Coord, Time, Time)> = Vec::new();
    for (_, task) in schedule.tasks() {
        for &c in task.path().cells() {
            if chip.grid().kind(c).can_hold_residue() {
                intervals.push((c, task.start(), task.end()));
            }
        }
    }
    for sop in schedule.ops() {
        for &c in chip.device(sop.device).footprint() {
            intervals.push((c, sop.start, sop.end()));
        }
    }

    // Per-cell open intervals, merged where they touch (a valve that a
    // back-to-back pair of tasks both needs stays open across the boundary).
    let mut per_cell: BTreeMap<Coord, Vec<(Time, Time)>> = BTreeMap::new();
    for (c, s, e) in intervals {
        per_cell.entry(c).or_default().push((s, e));
    }
    let mut deltas: BTreeMap<Time, (Vec<Coord>, Vec<Coord>)> = BTreeMap::new();
    for (c, mut spans) in per_cell {
        spans.sort_unstable();
        let mut merged: Vec<(Time, Time)> = Vec::new();
        for (s, e) in spans {
            match merged.last_mut() {
                Some(last) if s <= last.1 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        for (s, e) in merged {
            deltas.entry(s).or_default().0.push(c);
            deltas.entry(e).or_default().1.push(c);
        }
    }

    let events = deltas
        .into_iter()
        .map(|(time, (mut open, mut close))| {
            open.sort_unstable();
            close.sort_unstable();
            ValveEvent { time, open, close }
        })
        .collect();
    ValveProgram { events }
}

/// Control-layer cost metrics of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlStats {
    /// Total valve switching operations (each open and each close counts).
    pub switches: usize,
    /// Peak number of simultaneously open valves.
    pub peak_open: usize,
    /// Number of distinct switching instants.
    pub events: usize,
}

impl ControlStats {
    /// Measures a compiled program.
    pub fn measure(program: &ValveProgram) -> Self {
        let mut open = 0isize;
        let mut peak = 0isize;
        let mut switches = 0usize;
        for e in program.events() {
            switches += e.open.len() + e.close.len();
            open += e.open.len() as isize - e.close.len() as isize;
            peak = peak.max(open);
        }
        ControlStats {
            switches,
            peak_open: peak.max(0) as usize,
            events: program.events().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    fn demo_program() -> (pdw_synth::Synthesis, ValveProgram) {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let p = compile(&s.chip, &s.schedule);
        (s, p)
    }

    #[test]
    fn events_are_chronological_and_balanced() {
        let (_, p) = demo_program();
        assert!(p.events().windows(2).all(|w| w[0].time < w[1].time));
        let opens: usize = p.events().iter().map(|e| e.open.len()).sum();
        let closes: usize = p.events().iter().map(|e| e.close.len()).sum();
        assert_eq!(opens, closes, "every opened valve eventually closes");
    }

    #[test]
    fn active_task_paths_are_open() {
        let (s, p) = demo_program();
        for (_, task) in s.schedule.tasks() {
            let open = p.open_at(task.start());
            for &c in task.path().cells() {
                if s.chip.grid().kind(c).can_hold_residue() {
                    assert!(open.contains(&c), "valve {c} closed under active task");
                }
            }
        }
    }

    #[test]
    fn all_valves_closed_at_the_end() {
        let (s, p) = demo_program();
        assert!(p.open_at(s.schedule.makespan() + 1).is_empty());
    }

    #[test]
    fn peak_open_bounded_by_valve_count() {
        let (s, p) = demo_program();
        let stats = ControlStats::measure(&p);
        assert!(stats.peak_open <= valve_count(&s.chip));
        assert!(stats.peak_open > 0);
        assert!(stats.switches >= stats.events);
    }

    #[test]
    fn back_to_back_use_keeps_the_valve_open() {
        // Build a tiny schedule with two touching intervals on one cell.
        use pdw_assay::FluidType;
        use pdw_biochip::{ChipBuilder, Coord, FlowPath};
        use pdw_sched::{Task, TaskKind};

        let chip = ChipBuilder::new(5, 3)
            .flow_port("in", Coord::new(0, 1))
            .unwrap()
            .waste_port("out", Coord::new(4, 1))
            .unwrap()
            .channel_segment(Coord::new(1, 1), Coord::new(3, 1))
            .unwrap()
            .build()
            .unwrap();
        let path = FlowPath::new((0..5).map(|x| Coord::new(x, 1)).collect()).unwrap();
        let mut sched = pdw_sched::Schedule::new();
        sched.push_task(Task::new(
            TaskKind::Wash { targets: vec![] },
            path.clone(),
            0,
            2,
            FluidType::BUFFER,
        ));
        sched.push_task(Task::new(
            TaskKind::Wash { targets: vec![] },
            path,
            2,
            2,
            FluidType::BUFFER,
        ));
        let p = compile(&chip, &sched);
        // One open at t=0, one close at t=4 per cell: exactly 2 events.
        assert_eq!(p.events().len(), 2);
        let stats = ControlStats::measure(&p);
        assert_eq!(stats.switches, 6); // 3 interior cells × (open + close)
    }
}
