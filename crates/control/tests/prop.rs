//! Property tests: valve programs against randomly generated assays.

use proptest::prelude::*;

use pdw_assay::synthetic::{generate, SyntheticSpec};
use pdw_control::{compile, valve_count, ControlStats};
use pdw_synth::synthesize;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (4usize..=9, 0usize..=3, 6usize..=9, any::<u64>()).prop_map(|(ops, extra, devices, seed)| {
        SyntheticSpec {
            name: format!("ctl-{seed:x}"),
            ops,
            edges: 2 * ops - ops / 2 + extra,
            devices,
            seed,
            grid: (15, 15),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any synthesized schedule: the valve program opens every cell an
    /// active task needs, balances opens and closes, stays within the
    /// chip's valve count, and ends with all valves closed.
    #[test]
    fn valve_programs_are_consistent(spec in spec_strategy()) {
        let bench = generate(&spec);
        let s = synthesize(&bench).expect("random assay synthesizes");
        let program = compile(&s.chip, &s.schedule);
        let stats = ControlStats::measure(&program);

        prop_assert!(stats.peak_open <= valve_count(&s.chip));
        let opens: usize = program.events().iter().map(|e| e.open.len()).sum();
        let closes: usize = program.events().iter().map(|e| e.close.len()).sum();
        prop_assert_eq!(opens, closes);
        prop_assert!(program.open_at(s.schedule.makespan() + 1).is_empty());

        // Spot-check: at every task start, its interior cells are open.
        for (_, task) in s.schedule.tasks() {
            let open = program.open_at(task.start());
            for &c in task.path().cells() {
                if s.chip.grid().kind(c).can_hold_residue() {
                    prop_assert!(open.contains(&c), "cell {c} closed under a running task");
                }
            }
        }
    }
}
