//! Canonical cache keys for long-running planning services.
//!
//! A plan server ([`pdw-serve`]) memoizes verified plans and keeps warm
//! [`PlanContext`](crate::PlanContext) state across requests. Both caches
//! need *canonical* keys: two requests naming the same instance must map to
//! the same key regardless of how their in-memory objects were built, and
//! two chips differing in any identity-bearing detail (grid, devices,
//! ports, labels, **faults**) must map to different keys.
//!
//! The keys here are 64-bit FNV-1a hashes over the instance's canonical
//! serde serialization. The vendored serde sorts `HashMap` keys when
//! serializing, so the byte stream — and therefore the hash — is a pure
//! function of the value, stable across processes and thread counts.
//! (These are cache keys, not cryptographic digests: collisions are
//! astronomically unlikely at service scale but not adversarially hard.)
//!
//! [`pdw-serve`]: https://example.com/pathdriver-wash

use pdw_assay::benchmarks::Benchmark;
use pdw_biochip::Chip;
use pdw_synth::Synthesis;

use crate::config::PdwConfig;

/// Incremental 64-bit FNV-1a hasher — tiny, dependency-free, and stable
/// across platforms (unlike `DefaultHasher`, which is randomly keyed per
/// process).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes a value through its canonical serde serialization.
fn hash_serialized<T: serde::Serialize + ?Sized>(hasher: &mut Fnv64, value: &T) {
    let json = serde_json::to_string(value).expect("in-memory values always serialize");
    hasher.write(json.as_bytes());
}

/// Canonical hash of a chip's full identity: grid, devices, ports, labels,
/// and the [`FaultSet`](pdw_biochip::FaultSet) it currently carries. Two
/// chips differing only in faults hash differently — a warm context built
/// for a damaged chip must never be served for its pristine twin.
pub fn chip_hash(chip: &Chip) -> u64 {
    let mut h = Fnv64::new();
    hash_serialized(&mut h, chip);
    h.finish()
}

/// Canonical hash of a full planning instance: the benchmark (assay graph +
/// device library) and the synthesis (chip, base schedule, binding, reagent
/// ports). This is the memo-cache key of a plan server — every cached plan
/// is a pure function of this hash plus the planner configuration
/// ([`config_fingerprint`]).
pub fn instance_hash(bench: &Benchmark, synthesis: &Synthesis) -> u64 {
    let mut h = Fnv64::new();
    hash_serialized(&mut h, bench);
    hash_serialized(&mut h, &synthesis.chip);
    hash_serialized(&mut h, &synthesis.schedule);
    hash_serialized(&mut h, &synthesis.binding);
    hash_serialized(&mut h, &synthesis.reagent_ports);
    h.finish()
}

/// Fingerprint of the configuration fields that shape a plan's *result*.
///
/// `threads` is deliberately excluded — every planner is documented
/// thread-count-invariant, so two solves differing only in the thread knob
/// must share one memo entry. Budgets are included: a deadline-degraded
/// plan is a different result family than an unbounded one.
pub fn config_fingerprint(config: &PdwConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(config.weights.alpha.to_bits());
    h.write_u64(config.weights.beta.to_bits());
    h.write_u64(config.weights.gamma.to_bits());
    h.write_u64(u64::from(config.necessity_analysis));
    h.write_u64(u64::from(config.integration));
    h.write_u64(u64::from(config.merging));
    h.write_u64(u64::from(config.ilp));
    h.write_u64(config.ilp_budget.as_nanos() as u64);
    h.write_u64(config.candidates as u64);
    h.write_u64(u64::from(config.exact_paths));
    match config.pipeline_budget {
        None => h.write_u64(u64::MAX),
        Some(b) => {
            h.write_u64(1);
            h.write_u64(b.as_nanos() as u64);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_biochip::FaultSet;
    use pdw_synth::synthesize;
    use std::time::Duration;

    #[test]
    fn hashes_are_deterministic_across_rebuilds() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let again = synthesize(&benchmarks::demo()).unwrap();
        assert_eq!(chip_hash(&s.chip), chip_hash(&again.chip));
        assert_eq!(
            instance_hash(&bench, &s),
            instance_hash(&benchmarks::demo(), &again)
        );
    }

    #[test]
    fn faults_change_the_chip_hash() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let pristine = chip_hash(&s.chip);
        // Block some spare channel cell: the chip's identity changed.
        let grid = s.chip.grid();
        let spare = grid
            .coords()
            .find(|&c| {
                matches!(grid.kind(c), pdw_biochip::CellKind::Channel)
                    && s.chip.devices().iter().all(|d| !d.footprint().contains(&c))
                    && s.schedule
                        .tasks()
                        .all(|(_, t)| !t.path().cells().contains(&c))
            })
            .expect("demo chip has a spare cell");
        let mut faults = FaultSet::new();
        faults.block_cell(spare);
        let damaged = s.chip.with_faults(faults).unwrap();
        assert_ne!(pristine, chip_hash(&damaged));
        // And the instance hash follows the chip.
        let mutated = pdw_synth::Synthesis {
            chip: damaged,
            schedule: s.schedule.clone(),
            binding: s.binding.clone(),
            reagent_ports: s.reagent_ports.clone(),
        };
        assert_ne!(instance_hash(&bench, &s), instance_hash(&bench, &mutated));
    }

    #[test]
    fn different_benchmarks_hash_differently() {
        let demo = benchmarks::demo();
        let ds = synthesize(&demo).unwrap();
        let other = &benchmarks::suite()[0];
        let os = synthesize(other).unwrap();
        assert_ne!(instance_hash(&demo, &ds), instance_hash(other, &os));
    }

    #[test]
    fn config_fingerprint_ignores_threads_but_not_results() {
        let base = PdwConfig::default();
        let threaded = PdwConfig {
            threads: 8,
            ..base.clone()
        };
        assert_eq!(config_fingerprint(&base), config_fingerprint(&threaded));
        let no_ilp = PdwConfig {
            ilp: false,
            ..base.clone()
        };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&no_ilp));
        let bounded = PdwConfig {
            pipeline_budget: Some(Duration::from_millis(5)),
            ..base.clone()
        };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&bounded));
        let zero = PdwConfig {
            pipeline_budget: Some(Duration::ZERO),
            ..base
        };
        assert_ne!(config_fingerprint(&bounded), config_fingerprint(&zero));
    }

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write(b"ab");
        let mut b = Fnv64::new();
        b.write(b"ba");
        assert_ne!(a.finish(), b.finish());
        assert_eq!(Fnv64::default().finish(), Fnv64::new().finish());
    }
}
