//! The versioned canonical codec: one deterministic binary encoding for
//! every planning boundary that crosses a process, a wire, or a restart.
//!
//! Three subsystems used to each invent their own representation of "the
//! same instance": the serve memo cache hashed canonical JSON, the context
//! LRU hashed chips, and region planning shipped nothing at all (it only
//! worked in-process). This module replaces all of that with a single
//! self-describing binary format:
//!
//! - **Canonical value encoding** — the vendored serde data model
//!   ([`serde::Value`]) rendered to bytes with explicit tags,
//!   little-endian integers, raw-bit floats (`f64::to_bits`, so round-trips
//!   are exact and no float-printing ambiguity can creep in), and
//!   length-prefixed strings/arrays/objects. The vendored serde sorts
//!   `HashMap` keys and preserves struct field order, so the byte stream is
//!   a pure function of the value — stable across processes, platforms,
//!   and thread counts.
//! - **Framing** — every artifact that leaves the process is wrapped in a
//!   frame: magic `"PDWC"`, a schema version byte ([`SCHEMA_VERSION`]), a
//!   frame-type tag ([`FrameType`]), a length-prefixed payload, and an
//!   FNV-1a digest trailer over everything before it. Decoding re-verifies
//!   the digest and rejects version skew with typed [`CodecError`]s — a
//!   corrupt or stale frame can never be mistaken for data.
//! - **[`PlanArtifact`]** — the one reusable product of the pipeline (a
//!   verified schedule) as a first-class, durable value: schedule +
//!   metrics + ladder rung + a [`VerificationCertificate`] binding it to
//!   the instance and config that produced it. Artifacts are what the
//!   persistent memo store keeps and what `pdw worker` returns.
//! - **Canonical hashes** — [`chip_hash`], [`instance_hash`], and
//!   [`config_fingerprint`] (the serve-layer cache keys) now hash the
//!   binary encoding instead of JSON text, and [`memo_key`] mixes
//!   [`SCHEMA_VERSION`] into the memo-cache key so an entry persisted by
//!   an older codec can never be served by a newer one.

use pdw_assay::benchmarks::Benchmark;
use pdw_biochip::Chip;
use pdw_synth::Synthesis;
use serde::{Deserialize, Serialize, Value};

use crate::config::PdwConfig;
use crate::pdw::WashResult;
use crate::resilient::RungKind;

/// Version byte of the wire format. Bump on any change to the value
/// encoding, the frame layout, or the canonical shape of a framed type;
/// decoders reject mismatches with [`CodecError::VersionSkew`] and the
/// memo key shifts so stale persisted entries are evicted, not served.
pub const SCHEMA_VERSION: u8 = 2;

/// Frame magic: the first four bytes of every encoded frame.
pub const MAGIC: [u8; 4] = *b"PDWC";

/// Frame header length: magic (4) + version (1) + type (1) + payload
/// length (4).
const HEADER_LEN: usize = 10;

/// Digest trailer length (FNV-1a 64, little-endian).
const DIGEST_LEN: usize = 8;

/// Default ceiling on a frame's payload length, applied *before* the
/// payload buffer is allocated. A corrupt or hostile length field is a
/// typed [`CodecError::FrameTooLarge`], never a multi-gigabyte
/// allocation. 64 MiB clears every artifact the mega-grid family
/// produces by two orders of magnitude; transports that want a tighter
/// bound pass their own cap to [`read_frame_capped`] /
/// [`check_frame_capped`].
pub const DEFAULT_MAX_FRAME_LEN: usize = 64 << 20;

/// Incremental 64-bit FNV-1a hasher — tiny, dependency-free, and stable
/// across platforms (unlike `DefaultHasher`, which is randomly keyed per
/// process).
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// What kind of value a frame carries. The tag byte is part of the frame
/// header, so a decoder expecting one type rejects another with
/// [`CodecError::UnexpectedFrameType`] instead of misreading the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// A [`Chip`] (whole chip or a region/span view — same shape).
    Chip = 1,
    /// A full planning instance (benchmark + synthesis).
    Instance = 2,
    /// A [`PdwConfig`].
    Config = 3,
    /// A [`PlanDelta`](crate::PlanDelta).
    Delta = 4,
    /// A [`PlanArtifact`].
    Artifact = 5,
    /// A [`WorkerRequest`](crate::worker::WorkerRequest).
    WorkerRequest = 6,
    /// A [`WorkerResponse`](crate::worker::WorkerResponse).
    WorkerResponse = 7,
    /// A persistent memo-store record.
    MemoRecord = 8,
    /// A [`NetRequest`](crate::transport::NetRequest) (socket transport).
    NetRequest = 9,
    /// A [`NetResponse`](crate::transport::NetResponse) (socket
    /// transport).
    NetResponse = 10,
}

impl FrameType {
    fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            1 => FrameType::Chip,
            2 => FrameType::Instance,
            3 => FrameType::Config,
            4 => FrameType::Delta,
            5 => FrameType::Artifact,
            6 => FrameType::WorkerRequest,
            7 => FrameType::WorkerResponse,
            8 => FrameType::MemoRecord,
            9 => FrameType::NetRequest,
            10 => FrameType::NetResponse,
            _ => return None,
        })
    }
}

/// Typed decode failures. Every variant names exactly what was wrong, so
/// callers can distinguish "stale version — evict and re-solve" from
/// "corrupt frame — fall back and report".
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CodecError {
    /// The frame does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame was written by a different codec version.
    VersionSkew {
        /// The version byte in the frame.
        found: u8,
        /// This build's [`SCHEMA_VERSION`].
        expected: u8,
    },
    /// The frame carries a different payload type than the caller asked
    /// for (or an unknown tag byte).
    UnexpectedFrameType {
        /// The tag byte in the frame.
        found: u8,
        /// The tag the caller expected (`0` when any known tag would do).
        expected: u8,
    },
    /// The frame's length field exceeds the decoder's cap. Raised before
    /// any payload allocation, so a corrupt length byte costs nothing.
    FrameTooLarge {
        /// The payload length the frame claims.
        len: usize,
        /// The cap the decoder enforces.
        cap: usize,
    },
    /// The byte stream ended before the frame did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes it had.
        have: usize,
    },
    /// The digest trailer does not match the frame contents.
    DigestMismatch {
        /// The digest stored in the trailer.
        stored: u64,
        /// The digest recomputed over the frame.
        computed: u64,
    },
    /// The payload decoded as a value but not as the requested type, or a
    /// value tag byte was invalid.
    Malformed(String),
    /// An I/O error while reading or writing a frame.
    Io(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic { found } => {
                write!(f, "bad frame magic {found:?} (expected {MAGIC:?})")
            }
            CodecError::VersionSkew { found, expected } => {
                write!(
                    f,
                    "codec version skew: frame v{found}, this build v{expected}"
                )
            }
            CodecError::UnexpectedFrameType { found, expected } => {
                write!(f, "unexpected frame type {found} (expected {expected})")
            }
            CodecError::FrameTooLarge { len, cap } => {
                write!(f, "frame payload length {len} exceeds cap {cap}")
            }
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated frame: needed {needed} bytes, have {have}")
            }
            CodecError::DigestMismatch { stored, computed } => write!(
                f,
                "digest mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CodecError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
            CodecError::Io(msg) => write!(f, "frame i/o: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Canonical value encoding
// ---------------------------------------------------------------------------

// One tag byte per `Value` variant. Floats are encoded as raw IEEE-754
// bits: exact round-trips, no text formatting, and non-finite values
// survive (unlike the JSON rendering, which nulls them).
const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_UINT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;

/// Appends the canonical binary encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_len(s.len(), out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            encode_len(items.len(), out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(entries) => {
            out.push(TAG_OBJECT);
            encode_len(entries.len(), out);
            for (k, val) in entries {
                encode_len(k.len(), out);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
    }
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&(len as u32).to_le_bytes());
}

/// Decodes one canonical value starting at `*pos`, advancing `*pos` past
/// it.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    let tag = *bytes.get(*pos).ok_or(CodecError::Truncated {
        needed: *pos + 1,
        have: bytes.len(),
    })?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(take::<8>(bytes, pos)?))),
        TAG_UINT => Ok(Value::UInt(u64::from_le_bytes(take::<8>(bytes, pos)?))),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(take::<8>(
            bytes, pos,
        )?)))),
        TAG_STR => {
            let len = decode_len(bytes, pos)?;
            Ok(Value::Str(take_str(bytes, pos, len)?))
        }
        TAG_ARRAY => {
            let len = decode_len(bytes, pos)?;
            let mut items = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                items.push(decode_value(bytes, pos)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let len = decode_len(bytes, pos)?;
            let mut entries = Vec::with_capacity(len.min(4096));
            for _ in 0..len {
                let klen = decode_len(bytes, pos)?;
                let key = take_str(bytes, pos, klen)?;
                let val = decode_value(bytes, pos)?;
                entries.push((key, val));
            }
            Ok(Value::Object(entries))
        }
        other => Err(CodecError::Malformed(format!("invalid value tag {other}"))),
    }
}

fn take<const N: usize>(bytes: &[u8], pos: &mut usize) -> Result<[u8; N], CodecError> {
    let end = *pos + N;
    let slice = bytes.get(*pos..end).ok_or(CodecError::Truncated {
        needed: end,
        have: bytes.len(),
    })?;
    *pos = end;
    Ok(slice.try_into().expect("slice length checked"))
}

fn decode_len(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    Ok(u32::from_le_bytes(take::<4>(bytes, pos)?) as usize)
}

fn take_str(bytes: &[u8], pos: &mut usize, len: usize) -> Result<String, CodecError> {
    let end = *pos + len;
    let slice = bytes.get(*pos..end).ok_or(CodecError::Truncated {
        needed: end,
        have: bytes.len(),
    })?;
    *pos = end;
    String::from_utf8(slice.to_vec())
        .map_err(|e| CodecError::Malformed(format!("non-UTF-8 string: {e}")))
}

/// The canonical binary encoding of any serializable value — the byte
/// stream every canonical hash is computed over.
pub fn canonical_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(&value.to_value(), &mut out);
    out
}

/// FNV-1a digest of a value's canonical binary encoding.
pub fn canonical_digest<T: Serialize + ?Sized>(value: &T) -> u64 {
    let mut h = Fnv64::new();
    h.write(&canonical_bytes(value));
    h.finish()
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Encodes `value` into a self-describing frame: `MAGIC`, version, type
/// tag, length-prefixed canonical payload, FNV-1a digest trailer.
pub fn encode_frame<T: Serialize + ?Sized>(ty: FrameType, value: &T) -> Vec<u8> {
    let payload = canonical_bytes(value);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + DIGEST_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(SCHEMA_VERSION);
    out.push(ty as u8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    let mut h = Fnv64::new();
    h.write(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Validates a frame's envelope (magic, version, digest, length) and
/// returns its type tag and payload bytes, enforcing
/// [`DEFAULT_MAX_FRAME_LEN`].
pub fn check_frame(frame: &[u8]) -> Result<(FrameType, &[u8]), CodecError> {
    check_frame_capped(frame, DEFAULT_MAX_FRAME_LEN)
}

/// [`check_frame`] with an explicit payload-length cap: the length field
/// is validated against `cap` before it is trusted for any slicing
/// arithmetic.
pub fn check_frame_capped(frame: &[u8], cap: usize) -> Result<(FrameType, &[u8]), CodecError> {
    if frame.len() < HEADER_LEN + DIGEST_LEN {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN + DIGEST_LEN,
            have: frame.len(),
        });
    }
    if frame[..4] != MAGIC {
        return Err(CodecError::BadMagic {
            found: frame[..4].try_into().expect("length checked"),
        });
    }
    if frame[4] != SCHEMA_VERSION {
        return Err(CodecError::VersionSkew {
            found: frame[4],
            expected: SCHEMA_VERSION,
        });
    }
    let ty = FrameType::from_u8(frame[5]).ok_or(CodecError::UnexpectedFrameType {
        found: frame[5],
        expected: 0,
    })?;
    let len = u32::from_le_bytes(frame[6..10].try_into().expect("length checked")) as usize;
    if len > cap {
        return Err(CodecError::FrameTooLarge { len, cap });
    }
    let total = HEADER_LEN + len + DIGEST_LEN;
    if frame.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            have: frame.len(),
        });
    }
    let body = &frame[..HEADER_LEN + len];
    let stored = u64::from_le_bytes(
        frame[HEADER_LEN + len..total]
            .try_into()
            .expect("length checked"),
    );
    let mut h = Fnv64::new();
    h.write(body);
    let computed = h.finish();
    if stored != computed {
        return Err(CodecError::DigestMismatch { stored, computed });
    }
    Ok((ty, &frame[HEADER_LEN..HEADER_LEN + len]))
}

/// Decodes a frame expected to carry `ty`, re-verifying magic, version,
/// and digest, then deserializing the payload as `T`.
pub fn decode_frame<T: Deserialize>(ty: FrameType, frame: &[u8]) -> Result<T, CodecError> {
    let (found, payload) = check_frame(frame)?;
    if found != ty {
        return Err(CodecError::UnexpectedFrameType {
            found: found as u8,
            expected: ty as u8,
        });
    }
    let mut pos = 0;
    let value = decode_value(payload, &mut pos)?;
    if pos != payload.len() {
        return Err(CodecError::Malformed(format!(
            "{} trailing payload bytes",
            payload.len() - pos
        )));
    }
    T::from_value(&value).map_err(|e| CodecError::Malformed(e.to_string()))
}

/// Writes one frame to `w`.
pub fn write_frame(w: &mut impl std::io::Write, frame: &[u8]) -> Result<(), CodecError> {
    w.write_all(frame)
        .and_then(|()| w.flush())
        .map_err(|e| CodecError::Io(e.to_string()))
}

/// Reads one whole frame from `r`, enforcing [`DEFAULT_MAX_FRAME_LEN`].
/// `Ok(None)` on a clean EOF at a frame boundary; a stream ending
/// mid-frame is [`CodecError::Truncated`]. The returned bytes still carry
/// their digest trailer — pass them to [`decode_frame`] for full
/// validation.
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>, CodecError> {
    read_frame_capped(r, DEFAULT_MAX_FRAME_LEN)
}

/// [`read_frame`] with an explicit payload-length cap. The wire-supplied
/// length field is validated against `cap` *before* the payload buffer is
/// allocated — the whole point: a flipped length byte surfaces as a typed
/// [`CodecError::FrameTooLarge`], never as an attempted huge allocation.
pub fn read_frame_capped(
    r: &mut impl std::io::Read,
    cap: usize,
) -> Result<Option<Vec<u8>>, CodecError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(CodecError::Truncated {
                    needed: HEADER_LEN,
                    have: got,
                })
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CodecError::Io(e.to_string())),
        }
    }
    if header[..4] != MAGIC {
        return Err(CodecError::BadMagic {
            found: header[..4].try_into().expect("length checked"),
        });
    }
    let len = u32::from_le_bytes(header[6..10].try_into().expect("length checked")) as usize;
    if len > cap {
        return Err(CodecError::FrameTooLarge { len, cap });
    }
    let mut frame = Vec::with_capacity(HEADER_LEN + len + DIGEST_LEN);
    frame.extend_from_slice(&header);
    frame.resize(HEADER_LEN + len + DIGEST_LEN, 0);
    let mut filled = HEADER_LEN;
    while filled < frame.len() {
        match r.read(&mut frame[filled..]) {
            Ok(0) => {
                return Err(CodecError::Truncated {
                    needed: HEADER_LEN + len + DIGEST_LEN,
                    have: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(CodecError::Io(e.to_string())),
        }
    }
    Ok(Some(frame))
}

/// A resumable frame reader for tick-polled loops: partially read bytes
/// survive a reader error instead of being discarded, so a frame whose
/// delivery spans several short read deadlines (a slow peer, WAN
/// congestion mid-payload) is assembled across calls rather than
/// desynchronizing the stream. [`read_frame_capped`] is the one-shot
/// sibling for callers whose deadline covers the whole frame.
#[derive(Debug)]
pub struct FrameAccumulator {
    cap: usize,
    buf: Vec<u8>,
    need: usize,
}

impl FrameAccumulator {
    /// An empty accumulator enforcing `cap` on the payload length.
    pub fn new(cap: usize) -> Self {
        FrameAccumulator {
            cap,
            buf: Vec::new(),
            need: HEADER_LEN,
        }
    }

    /// Bytes buffered toward the frame currently being assembled — the
    /// caller's progress signal (a mid-frame stall with no progress is
    /// idle; one with progress is a slow peer still delivering).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Reads from `r` until one whole frame is assembled, mirroring
    /// [`read_frame_capped`]'s contract (`Ok(None)` = clean EOF at a
    /// frame boundary, length validated against the cap *before* the
    /// payload buffer grows). The difference: an `Err` from `r` — e.g. a
    /// read deadline elapsing — surfaces as [`CodecError::Io`] but leaves
    /// the partial frame buffered, so the next call resumes where this
    /// one stopped.
    pub fn read_from(&mut self, r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>, CodecError> {
        loop {
            while self.buf.len() < self.need {
                let start = self.buf.len();
                self.buf.resize(self.need, 0);
                match r.read(&mut self.buf[start..]) {
                    Ok(0) => {
                        self.buf.truncate(start);
                        if start == 0 {
                            return Ok(None);
                        }
                        return Err(CodecError::Truncated {
                            needed: self.need,
                            have: start,
                        });
                    }
                    Ok(n) => self.buf.truncate(start + n),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                        self.buf.truncate(start);
                    }
                    Err(e) => {
                        self.buf.truncate(start);
                        return Err(CodecError::Io(e.to_string()));
                    }
                }
            }
            if self.need == HEADER_LEN {
                if self.buf[..4] != MAGIC {
                    let found = self.buf[..4].try_into().expect("length checked");
                    self.buf.clear();
                    return Err(CodecError::BadMagic { found });
                }
                let len =
                    u32::from_le_bytes(self.buf[6..10].try_into().expect("length checked")) as usize;
                if len > self.cap {
                    self.buf.clear();
                    return Err(CodecError::FrameTooLarge { len, cap: self.cap });
                }
                self.need = HEADER_LEN + len + DIGEST_LEN;
            } else {
                self.need = HEADER_LEN;
                return Ok(Some(std::mem::take(&mut self.buf)));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plan artifacts
// ---------------------------------------------------------------------------

/// Digests binding a [`PlanArtifact`] to its independent re-verification.
///
/// The validator digest covers what [`pdw_sim::validate`] judged (the
/// schedule and the chip it ran against); the oracle digest covers what
/// [`pdw_sim::propagate`] observed (its replay counters over that
/// schedule). A consumer re-runs both checks against the *requester's*
/// instance and recomputes both digests — a persisted artifact whose
/// certificate no longer reproduces is rejected, never served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationCertificate {
    /// FNV-1a over the canonical bytes of the schedule and the chip hash.
    pub validator_digest: u64,
    /// FNV-1a over the oracle's replay counters (violations, deposits,
    /// dissolved, checks, ineffective washes).
    pub oracle_digest: u64,
}

/// The durable product of one verified solve: everything a cache, a wire,
/// or a restart needs to re-serve the plan without re-planning — and
/// everything a skeptical consumer needs to re-verify it first.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanArtifact {
    /// [`SCHEMA_VERSION`] at encode time (also enforced by the frame).
    pub codec_version: u8,
    /// Canonical hash of the instance the plan was solved for.
    pub instance_hash: u64,
    /// Fingerprint of the config that shaped the solve.
    pub config_fingerprint: u64,
    /// The degradation-ladder rung that produced the plan.
    pub rung: RungKind,
    /// The verified plan: schedule, metrics, diagnostics.
    pub result: WashResult,
    /// Re-verification digests (see [`VerificationCertificate`]).
    pub certificate: VerificationCertificate,
}

impl PlanArtifact {
    /// Re-verifies the artifact against a concrete instance: the schedule
    /// must validate on the chip, replay clean through the oracle, and
    /// reproduce both certificate digests. Returns a human-readable reason
    /// on any failure.
    pub fn verify(&self, bench: &Benchmark, synthesis: &Synthesis) -> Result<(), String> {
        if self.codec_version != SCHEMA_VERSION {
            return Err(format!(
                "artifact codec v{} does not match build v{SCHEMA_VERSION}",
                self.codec_version
            ));
        }
        let expect_instance = instance_hash(bench, synthesis);
        if self.instance_hash != expect_instance {
            return Err(format!(
                "artifact instance hash {:#018x} does not match requested {expect_instance:#018x}",
                self.instance_hash
            ));
        }
        pdw_sim::validate(&synthesis.chip, &bench.graph, &self.result.schedule)
            .map_err(|e| format!("validator rejected schedule: {e}"))?;
        let report = pdw_sim::propagate(&synthesis.chip, &bench.graph, &self.result.schedule);
        if !report.is_clean() {
            return Err(format!("oracle found contamination: {report}"));
        }
        let recomputed = Self::seal_digests(&synthesis.chip, &self.result, &report);
        if recomputed != self.certificate {
            return Err(format!(
                "certificate digests do not reproduce (stored {:?}, recomputed {recomputed:?})",
                self.certificate
            ));
        }
        Ok(())
    }

    /// Computes both certificate digests from a completed verification.
    pub fn seal_digests(
        chip: &Chip,
        result: &WashResult,
        oracle: &pdw_sim::OracleReport,
    ) -> VerificationCertificate {
        let mut v = Fnv64::new();
        v.write(&canonical_bytes(&result.schedule));
        v.write_u64(chip_hash(chip));
        let mut o = Fnv64::new();
        o.write_u64(oracle.violations.len() as u64);
        o.write_u64(oracle.deposits as u64);
        o.write_u64(oracle.dissolved as u64);
        o.write_u64(oracle.checks as u64);
        o.write_u64(oracle.ineffective_washes.len() as u64);
        VerificationCertificate {
            validator_digest: v.finish(),
            oracle_digest: o.finish(),
        }
    }

    /// Builds a certified artifact by running the verification once (the
    /// caller is expected to have already gated on it — this recomputes
    /// the digests from a fresh replay, so the certificate is honest).
    pub fn certified(
        instance_hash: u64,
        config_fingerprint: u64,
        rung: RungKind,
        bench: &Benchmark,
        synthesis: &Synthesis,
        result: WashResult,
    ) -> Self {
        let report = pdw_sim::propagate(&synthesis.chip, &bench.graph, &result.schedule);
        let certificate = Self::seal_digests(&synthesis.chip, &result, &report);
        PlanArtifact {
            codec_version: SCHEMA_VERSION,
            instance_hash,
            config_fingerprint,
            rung,
            result,
            certificate,
        }
    }

    /// Encodes the artifact as a checked frame.
    pub fn encode(&self) -> Vec<u8> {
        encode_frame(FrameType::Artifact, self)
    }

    /// Decodes an artifact frame, re-verifying magic, version, and digest.
    pub fn decode(frame: &[u8]) -> Result<Self, CodecError> {
        decode_frame(FrameType::Artifact, frame)
    }
}

// ---------------------------------------------------------------------------
// Canonical hashes (the serve-layer cache keys)
// ---------------------------------------------------------------------------

/// Hashes a value through its canonical binary encoding.
fn hash_canonical<T: Serialize + ?Sized>(hasher: &mut Fnv64, value: &T) {
    hasher.write(&canonical_bytes(value));
}

/// Canonical hash of a chip's full identity: grid, devices, ports, labels,
/// and the [`FaultSet`](pdw_biochip::FaultSet) it currently carries. Two
/// chips differing only in faults hash differently — a warm context built
/// for a damaged chip must never be served for its pristine twin.
pub fn chip_hash(chip: &Chip) -> u64 {
    let mut h = Fnv64::new();
    hash_canonical(&mut h, chip);
    h.finish()
}

/// Canonical hash of a full planning instance: the benchmark (assay graph +
/// device library) and the synthesis (chip, base schedule, binding, reagent
/// ports). This is the memo-cache key of a plan server — every cached plan
/// is a pure function of this hash plus the planner configuration
/// ([`config_fingerprint`]).
pub fn instance_hash(bench: &Benchmark, synthesis: &Synthesis) -> u64 {
    let mut h = Fnv64::new();
    hash_canonical(&mut h, bench);
    hash_canonical(&mut h, &synthesis.chip);
    hash_canonical(&mut h, &synthesis.schedule);
    hash_canonical(&mut h, &synthesis.binding);
    hash_canonical(&mut h, &synthesis.reagent_ports);
    h.finish()
}

/// Fingerprint of the configuration fields that shape a plan's *result*.
///
/// `threads` is deliberately excluded — every planner is documented
/// thread-count-invariant, so two solves differing only in the thread knob
/// must share one memo entry. (The region-executor choice is likewise
/// excluded by construction: it never enters [`PdwConfig`], because
/// subprocess region planning is bit-identical to in-process.) Budgets are
/// included: a deadline-degraded plan is a different result family than an
/// unbounded one.
pub fn config_fingerprint(config: &PdwConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(config.weights.alpha.to_bits());
    h.write_u64(config.weights.beta.to_bits());
    h.write_u64(config.weights.gamma.to_bits());
    h.write_u64(u64::from(config.necessity_analysis));
    h.write_u64(u64::from(config.integration));
    h.write_u64(u64::from(config.merging));
    h.write_u64(u64::from(config.ilp));
    h.write_u64(config.ilp_budget.as_nanos() as u64);
    h.write_u64(config.candidates as u64);
    h.write_u64(u64::from(config.exact_paths));
    match config.pipeline_budget {
        None => h.write_u64(u64::MAX),
        Some(b) => {
            h.write_u64(1);
            h.write_u64(b.as_nanos() as u64);
        }
    }
    h.finish()
}

/// The memo-cache key for `(instance, config)` under a given codec
/// version. [`SCHEMA_VERSION`] is mixed in, so entries persisted by an
/// older codec land on a different key and are evicted (by compaction),
/// never served.
pub fn memo_key(instance_hash: u64, config_fingerprint: u64) -> u64 {
    memo_key_versioned(SCHEMA_VERSION, instance_hash, config_fingerprint)
}

/// [`memo_key`] at an explicit version — exposed so tests can prove that
/// stale-version entries cannot collide with current ones.
pub fn memo_key_versioned(version: u8, instance_hash: u64, config_fingerprint: u64) -> u64 {
    let mut h = Fnv64::new();
    h.write(&[version]);
    h.write_u64(instance_hash);
    h.write_u64(config_fingerprint);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_biochip::FaultSet;
    use pdw_synth::synthesize;
    use std::time::Duration;

    #[test]
    fn hashes_are_deterministic_across_rebuilds() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let again = synthesize(&benchmarks::demo()).unwrap();
        assert_eq!(chip_hash(&s.chip), chip_hash(&again.chip));
        assert_eq!(
            instance_hash(&bench, &s),
            instance_hash(&benchmarks::demo(), &again)
        );
    }

    #[test]
    fn faults_change_the_chip_hash() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let pristine = chip_hash(&s.chip);
        // Block some spare channel cell: the chip's identity changed.
        let grid = s.chip.grid();
        let spare = grid
            .coords()
            .find(|&c| {
                matches!(grid.kind(c), pdw_biochip::CellKind::Channel)
                    && s.chip.devices().iter().all(|d| !d.footprint().contains(&c))
                    && s.schedule
                        .tasks()
                        .all(|(_, t)| !t.path().cells().contains(&c))
            })
            .expect("demo chip has a spare cell");
        let mut faults = FaultSet::new();
        faults.block_cell(spare);
        let damaged = s.chip.with_faults(faults).unwrap();
        assert_ne!(pristine, chip_hash(&damaged));
        // And the instance hash follows the chip.
        let mutated = pdw_synth::Synthesis {
            chip: damaged,
            schedule: s.schedule.clone(),
            binding: s.binding.clone(),
            reagent_ports: s.reagent_ports.clone(),
        };
        assert_ne!(instance_hash(&bench, &s), instance_hash(&bench, &mutated));
    }

    #[test]
    fn different_benchmarks_hash_differently() {
        let demo = benchmarks::demo();
        let ds = synthesize(&demo).unwrap();
        let other = &benchmarks::suite()[0];
        let os = synthesize(other).unwrap();
        assert_ne!(instance_hash(&demo, &ds), instance_hash(other, &os));
    }

    #[test]
    fn config_fingerprint_ignores_threads_but_not_results() {
        let base = PdwConfig::default();
        let threaded = PdwConfig {
            threads: 8,
            ..base.clone()
        };
        assert_eq!(config_fingerprint(&base), config_fingerprint(&threaded));
        let no_ilp = PdwConfig {
            ilp: false,
            ..base.clone()
        };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&no_ilp));
        let bounded = PdwConfig {
            pipeline_budget: Some(Duration::from_millis(5)),
            ..base.clone()
        };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&bounded));
        let zero = PdwConfig {
            pipeline_budget: Some(Duration::ZERO),
            ..base
        };
        assert_ne!(config_fingerprint(&bounded), config_fingerprint(&zero));
    }

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write(b"ab");
        let mut b = Fnv64::new();
        b.write(b"ba");
        assert_ne!(a.finish(), b.finish());
        assert_eq!(Fnv64::default().finish(), Fnv64::new().finish());
    }

    #[test]
    fn value_roundtrip_covers_every_variant() {
        let v = Value::Object(vec![
            ("null".into(), Value::Null),
            ("yes".into(), Value::Bool(true)),
            ("no".into(), Value::Bool(false)),
            ("int".into(), Value::Int(-42)),
            ("uint".into(), Value::UInt(u64::MAX)),
            ("float".into(), Value::Float(0.1 + 0.2)),
            ("nan".into(), Value::Float(f64::NAN)),
            ("str".into(), Value::Str("héllo".into())),
            (
                "arr".into(),
                Value::Array(vec![Value::Int(1), Value::Str(String::new())]),
            ),
        ]);
        let mut bytes = Vec::new();
        encode_value(&v, &mut bytes);
        let mut pos = 0;
        let back = decode_value(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        // NaN != NaN, so compare via re-encoding: bit-exact floats mean
        // the re-encoded stream is identical.
        let mut again = Vec::new();
        encode_value(&back, &mut again);
        assert_eq!(bytes, again);
    }

    #[test]
    fn frame_envelope_rejects_each_failure_mode_typed() {
        let frame = encode_frame(FrameType::Config, &PdwConfig::default());
        // Clean decode round-trips.
        let back: PdwConfig = decode_frame(FrameType::Config, &frame).unwrap();
        assert_eq!(back, PdwConfig::default());
        // Wrong expected type.
        assert!(matches!(
            decode_frame::<PdwConfig>(FrameType::Chip, &frame),
            Err(CodecError::UnexpectedFrameType { .. })
        ));
        // Bad magic.
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            check_frame(&bad),
            Err(CodecError::BadMagic { .. })
        ));
        // Version skew.
        let mut skew = frame.clone();
        skew[4] = SCHEMA_VERSION + 1;
        assert!(matches!(
            check_frame(&skew),
            Err(CodecError::VersionSkew { found, expected })
                if found == SCHEMA_VERSION + 1 && expected == SCHEMA_VERSION
        ));
        // Truncation.
        assert!(matches!(
            check_frame(&frame[..frame.len() - 3]),
            Err(CodecError::Truncated { .. })
        ));
        // Payload corruption flips the digest.
        let mut corrupt = frame.clone();
        let mid = HEADER_LEN + 2;
        corrupt[mid] ^= 0xff;
        assert!(matches!(
            check_frame(&corrupt),
            Err(CodecError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn read_frame_streams_and_reports_truncation() {
        let a = encode_frame(FrameType::Config, &PdwConfig::default());
        let b = encode_frame(FrameType::Config, &PdwConfig::naive());
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut r = std::io::Cursor::new(stream);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b);
        assert!(read_frame(&mut r).unwrap().is_none());
        // A stream cut mid-frame is a typed truncation, not a silent EOF.
        let mut cut = std::io::Cursor::new(a[..a.len() - 1].to_vec());
        assert!(matches!(
            read_frame(&mut cut),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_accumulator_resumes_across_read_timeouts() {
        // A reader that delivers the frame three bytes at a time with a
        // `WouldBlock` between every chunk — a socket whose read deadline
        // keeps elapsing mid-frame. One-shot `read_frame_capped` discards
        // its partial bytes on such an error; the accumulator must not.
        struct Chunked {
            data: Vec<u8>,
            pos: usize,
            hiccup: bool,
        }
        impl std::io::Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Ok(0);
                }
                if self.hiccup {
                    self.hiccup = false;
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                self.hiccup = true;
                let n = buf.len().min(3).min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let frame = encode_frame(FrameType::Config, &PdwConfig::default());
        let mut r = Chunked {
            data: frame.clone(),
            pos: 0,
            hiccup: false,
        };
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME_LEN);
        let mut interruptions = 0;
        let assembled = loop {
            match acc.read_from(&mut r) {
                Ok(Some(f)) => break f,
                Ok(None) => panic!("clean EOF before the frame completed"),
                Err(CodecError::Io(_)) => interruptions += 1,
                Err(e) => panic!("unexpected error mid-assembly: {e}"),
            }
        };
        assert!(
            interruptions > 3,
            "the frame spanned many interrupted reads ({interruptions})"
        );
        assert_eq!(assembled, frame, "assembled bit-identical");
        // And the accumulator is clean for the next frame on the stream.
        assert_eq!(acc.buffered(), 0);

        // The length cap still guards allocation: a corrupt length field
        // is typed before any payload buffer grows.
        let mut corrupt = frame.clone();
        corrupt[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut acc = FrameAccumulator::new(DEFAULT_MAX_FRAME_LEN);
        let mut r = std::io::Cursor::new(corrupt);
        assert!(matches!(
            acc.read_from(&mut r),
            Err(CodecError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn memo_key_shifts_with_schema_version() {
        let k1 = memo_key_versioned(1, 0xabcd, 0x1234);
        let k2 = memo_key_versioned(2, 0xabcd, 0x1234);
        assert_ne!(k1, k2);
        assert_eq!(
            memo_key(0xabcd, 0x1234),
            memo_key_versioned(SCHEMA_VERSION, 0xabcd, 0x1234)
        );
    }

    #[test]
    fn artifact_roundtrips_and_verifies() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let config = PdwConfig {
            ilp: false,
            ..PdwConfig::default()
        };
        let outcome = crate::plan_resilient(&bench, &s, &config);
        let result = outcome.served.clone().unwrap();
        let artifact = PlanArtifact::certified(
            instance_hash(&bench, &s),
            config_fingerprint(&config),
            outcome.rung.unwrap(),
            &bench,
            &s,
            result,
        );
        artifact
            .verify(&bench, &s)
            .expect("fresh artifact verifies");
        let frame = artifact.encode();
        let back = PlanArtifact::decode(&frame).unwrap();
        assert_eq!(back.result.schedule, artifact.result.schedule);
        assert_eq!(back.result.metrics, artifact.result.metrics);
        assert_eq!(back.rung, artifact.rung);
        assert_eq!(back.certificate, artifact.certificate);
        back.verify(&bench, &s).expect("decoded artifact verifies");
        // Encode→decode→encode is bit-identical.
        assert_eq!(back.encode(), frame);
        // The certificate is bound to the instance: a different instance
        // rejects the artifact instead of serving it.
        let other = &benchmarks::suite()[0];
        let os = synthesize(other).unwrap();
        assert!(back.verify(other, &os).is_err());
    }
}
