//! Configuration of the PathDriver-Wash optimizer.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Weighting factors of the objective `α·N_wash + β·L_wash + γ·T_assay`
/// (Eq. 26).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Weight of the number of wash operations.
    pub alpha: f64,
    /// Weight of the total wash-path length (mm).
    pub beta: f64,
    /// Weight of the assay completion time (s).
    pub gamma: f64,
}

impl Default for Weights {
    /// The paper's experimental setting: `α = 0.3`, `β = 0.3`, `γ = 0.4`.
    fn default() -> Self {
        Self {
            alpha: 0.3,
            beta: 0.3,
            gamma: 0.4,
        }
    }
}

impl Weights {
    /// The paper's objective `α·N_wash + β·L_wash + γ·T_assay` (Eq. 26) for
    /// a set of measured metrics.
    ///
    /// This is the *only* place the objective is encoded: [`WashResult`],
    /// the ILP-adoption gate, and the differential verifier's independent
    /// recompute all call it, so any two objective values computed from
    /// equal metrics are bit-identical `f64`s.
    ///
    /// [`WashResult`]: crate::WashResult
    pub fn objective(&self, m: &pdw_sim::Metrics) -> f64 {
        self.alpha * m.n_wash as f64 + self.beta * m.l_wash_mm + self.gamma * m.t_assay as f64
    }
}

/// How wash-path candidates are picked for each wash operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidatePolicy {
    /// Enumerate all port pairs and keep the `k` shortest paths
    /// (PathDriver-Wash: the ILP chooses among them).
    Shortest,
    /// Take the first feasible path from the port nearest the targets
    /// (the DAWO baseline's independent BFS construction).
    Nearest,
}

/// Full configuration of a PathDriver-Wash run.
///
/// The default matches the paper's setup; the ablation switches isolate the
/// three techniques of Section III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PdwConfig {
    /// Objective weights (Eq. 26).
    pub weights: Weights,
    /// Apply the wash-necessity analysis (technique 1). When `false`, every
    /// contaminated cell that is reused demands a wash, like the baseline.
    pub necessity_analysis: bool,
    /// Integrate wash operations with excess-fluid removals (technique 2,
    /// the ψ variables of Eqs. 7/21).
    pub integration: bool,
    /// Merge compatible wash groups into shared wash paths.
    pub merging: bool,
    /// Optimize wash paths and time windows with the ILP (technique 3).
    /// When `false`, the greedy warm-start solution is returned directly.
    pub ilp: bool,
    /// Wall-clock budget for the ILP solver (the paper used 15 minutes;
    /// the default here keeps the full benchmark suite interactive).
    pub ilp_budget: Duration,
    /// Worker threads, shared by the front-end (candidate-path enumeration
    /// during grouping) and the ILP's branch-and-bound search. `0` (the
    /// default) uses all available cores. Results are thread-count
    /// invariant; only wall time changes.
    pub threads: usize,
    /// Number of candidate wash paths per wash operation offered to the ILP.
    pub candidates: usize,
    /// Additionally construct each group's provably shortest wash path with
    /// the exact Eq. 12–15 flow ILP ([`exact_wash_path`]) and offer it as a
    /// candidate. One ILP solve per wash group — accurate but slow.
    ///
    /// [`exact_wash_path`]: crate::exact_wash_path
    pub exact_paths: bool,
    /// Wall-clock budget for the *entire* pipeline (`None` = unlimited).
    ///
    /// Unlike [`ilp_budget`](Self::ilp_budget), which bounds only the ILP
    /// back-end, this deadline is threaded through every stage: once it
    /// expires, candidate enumeration degrades to its cheapest variant
    /// (one candidate per group, no merging), exact-path refinement is
    /// skipped, and the ILP is skipped — so the pipeline always returns the
    /// best plan it finished, instead of overrunning. A zero budget
    /// deterministically yields the fully degraded pipeline; see
    /// [`Deadline`](crate::Deadline). Degradations taken are recorded in
    /// [`PipelineStats`](crate::PipelineStats).
    pub pipeline_budget: Option<Duration>,
}

impl Default for PdwConfig {
    fn default() -> Self {
        Self {
            weights: Weights::default(),
            necessity_analysis: true,
            integration: true,
            merging: true,
            ilp: true,
            ilp_budget: Duration::from_secs(10),
            threads: 0,
            candidates: 3,
            exact_paths: false,
            pipeline_budget: None,
        }
    }
}

impl PdwConfig {
    /// A configuration with every PDW technique disabled — wash demands are
    /// served naively. Useful as an ablation floor.
    pub fn naive() -> Self {
        Self {
            necessity_analysis: false,
            integration: false,
            merging: false,
            ilp: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_match_the_paper() {
        let w = Weights::default();
        assert_eq!((w.alpha, w.beta, w.gamma), (0.3, 0.3, 0.4));
    }

    #[test]
    fn objective_weighs_the_three_terms() {
        let w = Weights {
            alpha: 1.0,
            beta: 10.0,
            gamma: 100.0,
        };
        let m = pdw_sim::Metrics {
            n_wash: 2,
            l_wash_mm: 3.0,
            t_assay: 4,
            total_wash_time: 0,
            avg_wait: 0.0,
            buffer_nl: 0.0,
        };
        assert_eq!(w.objective(&m), 2.0 + 30.0 + 400.0);
    }

    #[test]
    fn default_config_enables_all_techniques() {
        let c = PdwConfig::default();
        assert!(c.necessity_analysis && c.integration && c.merging && c.ilp);
        assert!(c.candidates >= 1);
    }
}
