//! Shared, reusable per-instance solve state.
//!
//! Every planner needs the same expensive prefix before it can schedule a
//! single wash: the contamination replay + necessity analysis of the base
//! schedule, the chip's port-reachability fields, and warm routing scratch
//! buffers. [`PlanContext`] owns that prefix for one `(benchmark,
//! synthesis)` instance so that running several planners on it — as the
//! differential verifier and the batch driver do — computes each piece
//! once:
//!
//! - necessity analyses are cached per [`NecessityOptions`] (DAWO's
//!   reuse-only analysis and PDW's full analysis are distinct entries),
//! - front-end wash groups (grouping, spot-cluster splitting, merging) are
//!   cached per [`FrontEndKey`] — the configuration fields that affect the
//!   groups, deliberately excluding the thread count, which is
//!   result-invariant; re-solving with a different thread knob (as the
//!   differential verifier does) clones the groups instead of re-routing
//!   every candidate,
//! - the chip's [`PortReach`](pdw_biochip::PortReach) cache is forced warm
//!   on construction,
//! - a [`ScratchPool`] keeps BFS scratch buffers warm across planners, and
//!   across *instances* when the context is rebuilt around a batch worker's
//!   long-lived pool ([`PlanContext::with_pool`] / [`into_pool`]).
//!
//! Everything cached here is a pure function of the instance, so a planner
//! run against a warm context is bit-identical to a cold one-shot run —
//! only the wall time changes.
//!
//! [`into_pool`]: PlanContext::into_pool

use std::time::Instant;

use pdw_assay::benchmarks::Benchmark;
use pdw_biochip::{Chip, ScratchPool};
use pdw_contam::{analyze, Analysis, NecessityOptions};
use pdw_sched::Schedule;
use pdw_synth::Synthesis;

use crate::config::CandidatePolicy;
use crate::groups::WashGroup;

/// The configuration fields the front end's wash groups depend on. Thread
/// counts are deliberately absent: the fan-out is result-invariant, so two
/// solves differing only in `threads` share one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontEndKey {
    /// Necessity options the requirements were derived under.
    pub necessity: NecessityOptions,
    /// Candidate-selection policy.
    pub policy: CandidatePolicy,
    /// Candidate paths kept per group.
    pub candidates: usize,
    /// Whether compatible groups were merged after splitting.
    pub merged: bool,
}

/// Reusable solve state for one benchmark instance (see the
/// [module docs](self)).
pub struct PlanContext<'a> {
    bench: &'a Benchmark,
    synthesis: &'a Synthesis,
    pool: ScratchPool,
    /// Necessity analyses keyed by the options they were computed under.
    analyses: Vec<(NecessityOptions, Analysis)>,
    /// Front-end group sets keyed by the config fields that shape them.
    front_ends: Vec<(FrontEndKey, Vec<WashGroup>)>,
}

impl<'a> PlanContext<'a> {
    /// Builds a context for one instance with a fresh scratch pool.
    pub fn new(bench: &'a Benchmark, synthesis: &'a Synthesis) -> Self {
        Self::with_pool(bench, synthesis, ScratchPool::new())
    }

    /// Builds a context around an existing scratch pool — the batch driver
    /// hands each worker's pool from instance to instance so warm scratch
    /// buffers survive context turnover.
    pub fn with_pool(bench: &'a Benchmark, synthesis: &'a Synthesis, pool: ScratchPool) -> Self {
        // Force the chip's port-reachability cache warm so no planner pays
        // for it mid-stage.
        let _ = synthesis.chip.port_reach();
        PlanContext {
            bench,
            synthesis,
            pool,
            analyses: Vec::new(),
            front_ends: Vec::new(),
        }
    }

    /// The benchmark this context plans for.
    pub fn bench(&self) -> &'a Benchmark {
        self.bench
    }

    /// The synthesized chip + base schedule this context plans against.
    pub fn synthesis(&self) -> &'a Synthesis {
        self.synthesis
    }

    /// The instance's chip.
    pub fn chip(&self) -> &'a Chip {
        &self.synthesis.chip
    }

    /// The instance's wash-free base schedule.
    pub fn base_schedule(&self) -> &'a Schedule {
        &self.synthesis.schedule
    }

    /// The shared routing-scratch pool.
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// Ensures the necessity analysis for `opts` is computed and cached,
    /// returning the wall time spent *in this call* in seconds — ≈0 on a
    /// cache hit, which is exactly what a planner's `necessity_s` stat
    /// should then report.
    pub fn ensure_analysis(&mut self, opts: NecessityOptions) -> f64 {
        if self.analyses.iter().any(|(o, _)| *o == opts) {
            return 0.0;
        }
        let t = Instant::now();
        let analysis = analyze(
            &self.synthesis.chip,
            &self.bench.graph,
            &self.synthesis.schedule,
            opts,
        );
        self.analyses.push((opts, analysis));
        t.elapsed().as_secs_f64()
    }

    /// The cached necessity analysis for `opts`.
    ///
    /// # Panics
    ///
    /// Panics if [`ensure_analysis`](Self::ensure_analysis) has not been
    /// called for `opts` — planners always ensure before reading.
    pub fn analysis(&self, opts: NecessityOptions) -> &Analysis {
        self.analyses
            .iter()
            .find(|(o, _)| *o == opts)
            .map(|(_, a)| a)
            .expect("analysis not ensured for these options")
    }

    /// Number of distinct necessity analyses cached so far.
    pub fn cached_analyses(&self) -> usize {
        self.analyses.len()
    }

    /// The cached front-end groups for `key`, if a planner already built
    /// them on this context.
    pub fn front_end(&self, key: FrontEndKey) -> Option<&[WashGroup]> {
        self.front_ends
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, g)| g.as_slice())
    }

    /// Caches the front-end groups built under `key`. Later planners whose
    /// configuration maps to the same key clone these instead of re-routing
    /// every candidate path. No-op if the key is already present.
    pub fn store_front_end(&mut self, key: FrontEndKey, groups: Vec<WashGroup>) {
        if self.front_end(key).is_none() {
            self.front_ends.push((key, groups));
        }
    }

    /// Number of distinct front-end group sets cached so far.
    pub fn cached_front_ends(&self) -> usize {
        self.front_ends.len()
    }

    /// Releases the context, handing its scratch pool back for reuse on the
    /// next instance.
    pub fn into_pool(self) -> ScratchPool {
        self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn analyses_are_cached_per_options() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut ctx = PlanContext::new(&bench, &s);
        assert_eq!(ctx.cached_analyses(), 0);
        ctx.ensure_analysis(NecessityOptions::full());
        assert_eq!(ctx.cached_analyses(), 1);
        // Same options: cache hit, no new entry, zero reported time.
        assert_eq!(ctx.ensure_analysis(NecessityOptions::full()), 0.0);
        assert_eq!(ctx.cached_analyses(), 1);
        // Different options: a distinct entry.
        ctx.ensure_analysis(NecessityOptions::reuse_only());
        assert_eq!(ctx.cached_analyses(), 2);
        // Both stay addressable.
        let full = ctx.analysis(NecessityOptions::full());
        let reuse = ctx.analysis(NecessityOptions::reuse_only());
        assert!(full.requirements.len() <= reuse.requirements.len());
    }

    #[test]
    fn cached_analysis_equals_a_cold_one() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut ctx = PlanContext::new(&bench, &s);
        ctx.ensure_analysis(NecessityOptions::full());
        let cold = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let cached = ctx.analysis(NecessityOptions::full());
        assert_eq!(cached.requirements, cold.requirements);
        assert_eq!(cached.classifications, cold.classifications);
        assert_eq!(cached.deletable, cold.deletable);
    }

    #[test]
    fn front_ends_are_cached_per_key() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut ctx = PlanContext::new(&bench, &s);
        let key = FrontEndKey {
            necessity: NecessityOptions::full(),
            policy: CandidatePolicy::Shortest,
            candidates: 3,
            merged: true,
        };
        assert!(ctx.front_end(key).is_none());
        ctx.store_front_end(key, Vec::new());
        assert!(ctx.front_end(key).is_some());
        assert_eq!(ctx.cached_front_ends(), 1);
        // Same key again: no duplicate entry.
        ctx.store_front_end(key, Vec::new());
        assert_eq!(ctx.cached_front_ends(), 1);
        // Any differing field is a distinct entry.
        let unmerged = FrontEndKey {
            merged: false,
            ..key
        };
        assert!(ctx.front_end(unmerged).is_none());
        ctx.store_front_end(unmerged, Vec::new());
        assert_eq!(ctx.cached_front_ends(), 2);
    }

    #[test]
    fn pool_round_trips_through_the_context() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let pool = ScratchPool::for_chip(&s.chip);
        let ctx = PlanContext::with_pool(&bench, &s, pool);
        let back = ctx.into_pool();
        assert_eq!(back.available(), 1);
    }
}
