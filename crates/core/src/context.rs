//! Shared, reusable per-instance solve state.
//!
//! Every planner needs the same expensive prefix before it can schedule a
//! single wash: the contamination replay + necessity analysis of the base
//! schedule, the chip's port-reachability fields, and warm routing scratch
//! buffers. [`PlanContext`] owns that prefix for one `(benchmark,
//! synthesis)` instance so that running several planners on it — as the
//! differential verifier and the batch driver do — computes each piece
//! once:
//!
//! - necessity analyses are cached per [`NecessityOptions`] (DAWO's
//!   reuse-only analysis and PDW's full analysis are distinct entries),
//! - front-end wash groups (grouping, spot-cluster splitting, merging) are
//!   cached per [`FrontEndKey`] — the configuration fields that affect the
//!   groups, deliberately excluding the thread count, which is
//!   result-invariant; re-solving with a different thread knob (as the
//!   differential verifier does) clones the groups instead of re-routing
//!   every candidate,
//! - the chip's [`PortReach`](pdw_biochip::PortReach) cache is forced warm
//!   on construction,
//! - a [`ScratchPool`] keeps BFS scratch buffers warm across planners, and
//!   across *instances* when the context is rebuilt around a batch worker's
//!   long-lived pool ([`PlanContext::with_pool`] / [`into_pool`]).
//!
//! Everything cached here is a pure function of the instance, so a planner
//! run against a warm context is bit-identical to a cold one-shot run —
//! only the wall time changes.
//!
//! [`into_pool`]: PlanContext::into_pool

use std::time::Instant;

use pdw_assay::benchmarks::Benchmark;
use pdw_biochip::{CellSet, Chip, Coord, ScratchPool};
use pdw_contam::{analyze, Analysis, NecessityOptions, WashRequirement};
use pdw_sched::Schedule;
use pdw_synth::Synthesis;

use crate::config::CandidatePolicy;
use crate::groups::WashGroup;

/// The configuration fields the front end's wash groups depend on. Thread
/// counts are deliberately absent: the fan-out is result-invariant, so two
/// solves differing only in `threads` share one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontEndKey {
    /// Necessity options the requirements were derived under.
    pub necessity: NecessityOptions,
    /// Candidate-selection policy.
    pub policy: CandidatePolicy,
    /// Candidate paths kept per group.
    pub candidates: usize,
    /// Whether compatible groups were merged after splitting.
    pub merged: bool,
}

/// Post-analysis edits to the wash-requirement set — the "requirement
/// added/dropped" arm of a [`PlanDelta`](crate::PlanDelta).
///
/// Applied deterministically to every necessity analysis the moment it is
/// computed ([`PlanContext::ensure_analysis`]): analyzed requirements on a
/// waived cell are removed, then the forced requirements are appended in
/// insertion order. Forced requirements are *not* subject to waivers, so
/// forcing a requirement on a waived cell re-introduces exactly that
/// requirement. Two contexts with equal overrides produce bit-identical
/// analyses, which is what makes warm repair differentially testable
/// against a cold solve.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RequirementOverrides {
    /// Requirements appended after analysis, in insertion order.
    pub forced: Vec<WashRequirement>,
    /// Cells whose analyzed requirements are dropped (sorted, deduped).
    pub waived: Vec<Coord>,
}

impl RequirementOverrides {
    /// No edits at all.
    pub fn is_empty(&self) -> bool {
        self.forced.is_empty() && self.waived.is_empty()
    }

    /// Appends a forced requirement.
    pub fn force(&mut self, req: WashRequirement) {
        self.forced.push(req);
    }

    /// Waives analyzed requirements on `cell`. Idempotent; returns `false`
    /// if the cell was already waived.
    pub fn waive(&mut self, cell: Coord) -> bool {
        match self.waived.binary_search(&cell) {
            Ok(_) => false,
            Err(i) => {
                self.waived.insert(i, cell);
                true
            }
        }
    }

    /// The cells every override mentions (waived cells and forced-
    /// requirement targets) — the delta footprint of an override edit.
    pub fn cells(&self) -> impl Iterator<Item = Coord> + '_ {
        self.waived
            .iter()
            .copied()
            .chain(self.forced.iter().map(|r| r.cell))
    }

    fn apply(&self, analysis: &mut Analysis) {
        if self.is_empty() {
            return;
        }
        analysis
            .requirements
            .retain(|r| self.waived.binary_search(&r.cell).is_err());
        analysis.requirements.extend(self.forced.iter().cloned());
    }
}

/// The owned, instance-independent pieces of a [`PlanContext`]: the scratch
/// pool, both cache vectors, and the requirement overrides.
///
/// A context borrows its benchmark and synthesis, so repairing a mutated
/// instance means tearing the context down ([`PlanContext::into_parts`]),
/// invalidating whatever the delta's footprint touches, and rebuilding
/// around the new borrows ([`PlanContext::from_parts`]). Every surviving
/// entry must be provably identical to what a cold solve on the mutated
/// instance would recompute — the invalidation helpers here enforce that.
#[derive(Debug, Default)]
pub struct ContextParts {
    /// Warm BFS scratch buffers.
    pub pool: ScratchPool,
    /// Cached necessity analyses keyed by options.
    pub analyses: Vec<(NecessityOptions, Analysis)>,
    /// Cached front-end group sets keyed by the config fields shaping them.
    pub front_ends: Vec<(FrontEndKey, Vec<WashGroup>)>,
    /// Requirement edits applied to every analysis.
    pub overrides: RequirementOverrides,
}

impl ContextParts {
    /// Invalidates cache entries a *reachability-shrinking* fault delta
    /// with cell/port footprint `mask` could touch, returning
    /// `(analyses_dropped, front_ends_dropped)`:
    ///
    /// - analyses are dropped iff their scanned footprint intersects the
    ///   mask ([`Analysis::touches`]) — the analysis replays the schedule,
    ///   not the routing graph, so a delta missing every analyzed cell
    ///   cannot change it;
    /// - front-end group sets are dropped iff any stored candidate path's
    ///   cell mask overlaps the delta mask. Blocking cells off every stored
    ///   path preserves BFS path extraction, pruning outcomes, and the
    ///   stable top-k tie-break, so untouched entries re-enumerate
    ///   bit-identically.
    pub fn invalidate_masked(&mut self, mask: &CellSet) -> (usize, usize) {
        let before_a = self.analyses.len();
        self.analyses.retain(|(_, a)| !a.touches(mask));
        let before_f = self.front_ends.len();
        self.front_ends.retain(|(_, groups)| {
            !groups
                .iter()
                .any(|g| g.candidates.iter().any(|c| c.path.mask().intersects(mask)))
        });
        (
            before_a - self.analyses.len(),
            before_f - self.front_ends.len(),
        )
    }

    /// Drops every cached front-end group set (required when reachability
    /// *expands*: new, shorter candidate paths may appear anywhere).
    /// Returns the number of entries dropped.
    pub fn invalidate_front_ends(&mut self) -> usize {
        let n = self.front_ends.len();
        self.front_ends.clear();
        n
    }

    /// Drops every cached analysis (required when the base schedule or the
    /// requirement overrides change). Returns the number dropped.
    pub fn invalidate_analyses(&mut self) -> usize {
        let n = self.analyses.len();
        self.analyses.clear();
        n
    }
}

/// Reusable solve state for one benchmark instance (see the
/// [module docs](self)).
pub struct PlanContext<'a> {
    bench: &'a Benchmark,
    synthesis: &'a Synthesis,
    pool: ScratchPool,
    /// Necessity analyses keyed by the options they were computed under.
    analyses: Vec<(NecessityOptions, Analysis)>,
    /// Front-end group sets keyed by the config fields that shape them.
    front_ends: Vec<(FrontEndKey, Vec<WashGroup>)>,
    /// Requirement edits applied to every analysis as it is computed.
    overrides: RequirementOverrides,
}

impl<'a> PlanContext<'a> {
    /// Builds a context for one instance with a fresh scratch pool.
    pub fn new(bench: &'a Benchmark, synthesis: &'a Synthesis) -> Self {
        Self::with_pool(bench, synthesis, ScratchPool::new())
    }

    /// Builds a context around an existing scratch pool — the batch driver
    /// hands each worker's pool from instance to instance so warm scratch
    /// buffers survive context turnover.
    pub fn with_pool(bench: &'a Benchmark, synthesis: &'a Synthesis, pool: ScratchPool) -> Self {
        Self::from_parts(
            bench,
            synthesis,
            ContextParts {
                pool,
                ..ContextParts::default()
            },
        )
    }

    /// Rebuilds a context around previously harvested
    /// [`parts`](ContextParts) — the repair engine's way of carrying
    /// surviving caches across an instance mutation.
    pub fn from_parts(bench: &'a Benchmark, synthesis: &'a Synthesis, parts: ContextParts) -> Self {
        // Force the chip's port-reachability cache warm so no planner pays
        // for it mid-stage (a no-op when the repair engine seeded it with
        // carried-forward fields).
        let _ = synthesis.chip.port_reach();
        PlanContext {
            bench,
            synthesis,
            pool: parts.pool,
            analyses: parts.analyses,
            front_ends: parts.front_ends,
            overrides: parts.overrides,
        }
    }

    /// Tears the context down into its owned parts, releasing the borrows
    /// on the instance.
    pub fn into_parts(self) -> ContextParts {
        ContextParts {
            pool: self.pool,
            analyses: self.analyses,
            front_ends: self.front_ends,
            overrides: self.overrides,
        }
    }

    /// The benchmark this context plans for.
    pub fn bench(&self) -> &'a Benchmark {
        self.bench
    }

    /// The synthesized chip + base schedule this context plans against.
    pub fn synthesis(&self) -> &'a Synthesis {
        self.synthesis
    }

    /// The instance's chip.
    pub fn chip(&self) -> &'a Chip {
        &self.synthesis.chip
    }

    /// The instance's wash-free base schedule.
    pub fn base_schedule(&self) -> &'a Schedule {
        &self.synthesis.schedule
    }

    /// The shared routing-scratch pool.
    pub fn scratch_pool(&self) -> &ScratchPool {
        &self.pool
    }

    /// Ensures the necessity analysis for `opts` is computed and cached,
    /// returning the wall time spent *in this call* in seconds — ≈0 on a
    /// cache hit, which is exactly what a planner's `necessity_s` stat
    /// should then report.
    pub fn ensure_analysis(&mut self, opts: NecessityOptions) -> f64 {
        if self.analyses.iter().any(|(o, _)| *o == opts) {
            return 0.0;
        }
        let t = Instant::now();
        let mut analysis = analyze(
            &self.synthesis.chip,
            &self.bench.graph,
            &self.synthesis.schedule,
            opts,
        );
        self.overrides.apply(&mut analysis);
        self.analyses.push((opts, analysis));
        t.elapsed().as_secs_f64()
    }

    /// The requirement overrides applied to every analysis this context
    /// computes.
    pub fn overrides(&self) -> &RequirementOverrides {
        &self.overrides
    }

    /// The cached necessity analysis for `opts`.
    ///
    /// # Panics
    ///
    /// Panics if [`ensure_analysis`](Self::ensure_analysis) has not been
    /// called for `opts` — planners always ensure before reading.
    pub fn analysis(&self, opts: NecessityOptions) -> &Analysis {
        self.analyses
            .iter()
            .find(|(o, _)| *o == opts)
            .map(|(_, a)| a)
            .expect("analysis not ensured for these options")
    }

    /// Number of distinct necessity analyses cached so far.
    pub fn cached_analyses(&self) -> usize {
        self.analyses.len()
    }

    /// The cached front-end groups for `key`, if a planner already built
    /// them on this context.
    pub fn front_end(&self, key: FrontEndKey) -> Option<&[WashGroup]> {
        self.front_ends
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, g)| g.as_slice())
    }

    /// Caches the front-end groups built under `key`. Later planners whose
    /// configuration maps to the same key clone these instead of re-routing
    /// every candidate path. No-op if the key is already present.
    pub fn store_front_end(&mut self, key: FrontEndKey, groups: Vec<WashGroup>) {
        if self.front_end(key).is_none() {
            self.front_ends.push((key, groups));
        }
    }

    /// Number of distinct front-end group sets cached so far.
    pub fn cached_front_ends(&self) -> usize {
        self.front_ends.len()
    }

    /// Releases the context, handing its scratch pool back for reuse on the
    /// next instance.
    pub fn into_pool(self) -> ScratchPool {
        self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn analyses_are_cached_per_options() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut ctx = PlanContext::new(&bench, &s);
        assert_eq!(ctx.cached_analyses(), 0);
        ctx.ensure_analysis(NecessityOptions::full());
        assert_eq!(ctx.cached_analyses(), 1);
        // Same options: cache hit, no new entry, zero reported time.
        assert_eq!(ctx.ensure_analysis(NecessityOptions::full()), 0.0);
        assert_eq!(ctx.cached_analyses(), 1);
        // Different options: a distinct entry.
        ctx.ensure_analysis(NecessityOptions::reuse_only());
        assert_eq!(ctx.cached_analyses(), 2);
        // Both stay addressable.
        let full = ctx.analysis(NecessityOptions::full());
        let reuse = ctx.analysis(NecessityOptions::reuse_only());
        assert!(full.requirements.len() <= reuse.requirements.len());
    }

    #[test]
    fn cached_analysis_equals_a_cold_one() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut ctx = PlanContext::new(&bench, &s);
        ctx.ensure_analysis(NecessityOptions::full());
        let cold = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let cached = ctx.analysis(NecessityOptions::full());
        assert_eq!(cached.requirements, cold.requirements);
        assert_eq!(cached.classifications, cold.classifications);
        assert_eq!(cached.deletable, cold.deletable);
    }

    #[test]
    fn front_ends_are_cached_per_key() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut ctx = PlanContext::new(&bench, &s);
        let key = FrontEndKey {
            necessity: NecessityOptions::full(),
            policy: CandidatePolicy::Shortest,
            candidates: 3,
            merged: true,
        };
        assert!(ctx.front_end(key).is_none());
        ctx.store_front_end(key, Vec::new());
        assert!(ctx.front_end(key).is_some());
        assert_eq!(ctx.cached_front_ends(), 1);
        // Same key again: no duplicate entry.
        ctx.store_front_end(key, Vec::new());
        assert_eq!(ctx.cached_front_ends(), 1);
        // Any differing field is a distinct entry.
        let unmerged = FrontEndKey {
            merged: false,
            ..key
        };
        assert!(ctx.front_end(unmerged).is_none());
        ctx.store_front_end(unmerged, Vec::new());
        assert_eq!(ctx.cached_front_ends(), 2);
    }

    #[test]
    fn pool_round_trips_through_the_context() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let pool = ScratchPool::for_chip(&s.chip);
        let ctx = PlanContext::with_pool(&bench, &s, pool);
        let back = ctx.into_pool();
        assert_eq!(back.available(), 1);
    }

    #[test]
    fn parts_round_trip_preserves_every_cache() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut ctx = PlanContext::new(&bench, &s);
        ctx.ensure_analysis(NecessityOptions::full());
        let key = FrontEndKey {
            necessity: NecessityOptions::full(),
            policy: CandidatePolicy::Shortest,
            candidates: 3,
            merged: true,
        };
        ctx.store_front_end(key, Vec::new());
        let reference = ctx.analysis(NecessityOptions::full()).clone();

        let parts = ctx.into_parts();
        let mut ctx = PlanContext::from_parts(&bench, &s, parts);
        assert_eq!(ctx.cached_analyses(), 1);
        assert_eq!(ctx.cached_front_ends(), 1);
        assert!(ctx.front_end(key).is_some());
        // The rebuilt context serves the cached analysis without recompute.
        assert_eq!(ctx.ensure_analysis(NecessityOptions::full()), 0.0);
        assert_eq!(
            ctx.analysis(NecessityOptions::full()).requirements,
            reference.requirements
        );
    }

    #[test]
    fn overrides_waive_and_force_requirements() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut plain = PlanContext::new(&bench, &s);
        plain.ensure_analysis(NecessityOptions::full());
        let baseline = plain.analysis(NecessityOptions::full()).clone();
        assert!(!baseline.requirements.is_empty());

        let waived_cell = baseline.requirements[0].cell;
        let mut forced = baseline.requirements[0].clone();
        forced.deadline += 1;
        let mut overrides = RequirementOverrides::default();
        assert!(overrides.waive(waived_cell));
        assert!(!overrides.waive(waived_cell), "waive is idempotent");
        overrides.force(forced.clone());
        assert!(overrides.cells().any(|c| c == waived_cell));

        let mut ctx = PlanContext::from_parts(
            &bench,
            &s,
            ContextParts {
                overrides: overrides.clone(),
                ..ContextParts::default()
            },
        );
        ctx.ensure_analysis(NecessityOptions::full());
        let edited = ctx.analysis(NecessityOptions::full());
        // Analyzed requirements on the waived cell are gone; the forced one
        // (on the same cell — forcing trumps waiving) is appended last.
        assert_eq!(edited.requirements.last(), Some(&forced));
        let analyzed = &edited.requirements[..edited.requirements.len() - 1];
        assert!(analyzed.iter().all(|r| r.cell != waived_cell));
        // The edit is deterministic: a second context reproduces it.
        let mut again = PlanContext::from_parts(
            &bench,
            &s,
            ContextParts {
                overrides,
                ..ContextParts::default()
            },
        );
        again.ensure_analysis(NecessityOptions::full());
        assert_eq!(
            again.analysis(NecessityOptions::full()).requirements,
            edited.requirements
        );
    }

    #[test]
    fn masked_invalidation_drops_only_touched_entries() {
        use crate::groups::Candidate;

        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut ctx = PlanContext::new(&bench, &s);
        ctx.ensure_analysis(NecessityOptions::full());
        let touched_cell = ctx.analysis(NecessityOptions::full()).events[0].cell;

        // One front-end entry whose only candidate crosses `path_cell`, and
        // one with no candidates at all.
        let path = s.schedule.tasks().next().unwrap().1.path().clone();
        let path_cell = path.cells()[path.cells().len() / 2];
        let crossing = FrontEndKey {
            necessity: NecessityOptions::full(),
            policy: CandidatePolicy::Shortest,
            candidates: 3,
            merged: true,
        };
        let empty = FrontEndKey {
            merged: false,
            ..crossing
        };
        let group = WashGroup {
            parts: Vec::new(),
            candidates: vec![Candidate::from_path(path)],
        };
        ctx.store_front_end(crossing, vec![group]);
        ctx.store_front_end(empty, Vec::new());

        let mut parts = ctx.into_parts();
        // A mask missing everything drops nothing.
        let far = CellSet::from_cells(&[Coord::new(u16::MAX - 1, u16::MAX - 1)]);
        assert_eq!(parts.invalidate_masked(&far), (0, 0));
        // A mask over the candidate's path drops that front end — and the
        // analysis too, since a base-schedule task's path cells are exactly
        // the event cells the analysis scanned.
        let on_path = CellSet::from_cells(&[path_cell]);
        let (a_dropped, fe_dropped) = parts.invalidate_masked(&on_path);
        assert_eq!(fe_dropped, 1);
        assert_eq!(a_dropped, 1);
        assert_eq!(parts.front_ends.len(), 1);
        assert_eq!(parts.front_ends[0].0, empty);
        assert!(parts.analyses.is_empty());
        // With the analysis already gone, an event-cell mask drops nothing.
        let on_event = CellSet::from_cells(&[touched_cell]);
        assert_eq!(parts.invalidate_masked(&on_event), (0, 0));
        // The blanket flushes clear what's left and report counts.
        assert_eq!(parts.invalidate_front_ends(), 1);
        assert_eq!(parts.invalidate_analyses(), 0);
    }
}
