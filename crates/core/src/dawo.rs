//! DAWO: the delay-aware wash optimization baseline.
//!
//! Reimplemented from the description in the PathDriver-Wash paper
//! (Sections I and IV) of the method of [10] (TC'22):
//!
//! 1. wash operations are introduced per contaminated spot group, with **no**
//!    fluid-type analysis (a contaminated cell demands a wash whenever a
//!    non-waste task reuses it),
//! 2. each wash path is constructed **independently** by BFS from the
//!    nearest flow port — no resource sharing between washes,
//! 3. washes are assigned to time intervals by a **sweep line** over the
//!    existing schedule, right-shifting the assay when no interval fits —
//!    the source of DAWO's delay.

use pdw_assay::benchmarks::Benchmark;
use pdw_contam::{Classification, NecessityOptions};
use pdw_sim::Metrics;
use pdw_synth::Synthesis;

use crate::config::CandidatePolicy;
use crate::context::{FrontEndKey, PlanContext};
use crate::greedy::insert_washes;
use crate::groups::{build_groups_pooled, split_into_spot_clusters_pooled};
use crate::pdw::{PdwError, SolverReport, WashResult};
use crate::stats::StageTimer;

/// Runs the DAWO baseline on a synthesized assay.
///
/// This is the one-shot compatibility wrapper around a throwaway
/// [`PlanContext`]; callers also running other planners on the instance
/// should share one context via
/// [`DawoPlanner`](crate::planner::DawoPlanner).
///
/// # Errors
///
/// Returns [`PdwError`] only if an internal invariant is broken — every
/// returned schedule has passed [`pdw_sim::validate`] and
/// [`pdw_contam::verify_clean`].
pub fn dawo(bench: &Benchmark, synthesis: &Synthesis) -> Result<WashResult, PdwError> {
    let mut ctx = PlanContext::new(bench, synthesis);
    run_dawo(&mut ctx)
}

/// The DAWO baseline against a (possibly warm) [`PlanContext`].
pub(crate) fn run_dawo(ctx: &mut PlanContext<'_>) -> Result<WashResult, PdwError> {
    let bench = ctx.bench();
    let synthesis = ctx.synthesis();
    let mut timer = StageTimer::start(0);
    timer.stats.necessity_s = ctx.ensure_analysis(NecessityOptions::reuse_only());
    let exemptions = {
        let analysis = ctx.analysis(NecessityOptions::reuse_only());
        (
            analysis.count(Classification::Type1Unused),
            analysis.count(Classification::Type2SameFluid),
            analysis.count(Classification::Type3WasteOnly),
        )
    };

    let key = FrontEndKey {
        necessity: NecessityOptions::reuse_only(),
        policy: CandidatePolicy::Nearest,
        candidates: 1,
        merged: false,
    };
    let groups = match ctx.front_end(key) {
        Some(cached) => timer.stage(|s| &mut s.grouping_s, || cached.to_vec()),
        None => {
            let analysis = ctx.analysis(NecessityOptions::reuse_only());
            let pool = ctx.scratch_pool();
            let groups = timer.stage(
                |s| &mut s.grouping_s,
                || {
                    let groups = build_groups_pooled(
                        &synthesis.chip,
                        &synthesis.schedule,
                        &analysis.requirements,
                        CandidatePolicy::Nearest,
                        1,
                        0,
                        pool,
                    );
                    // DAWO introduces washes per contaminated spot cluster
                    // and constructs each path independently — no resource
                    // sharing across clusters.
                    split_into_spot_clusters_pooled(
                        &synthesis.chip,
                        &synthesis.schedule,
                        groups,
                        4,
                        CandidatePolicy::Nearest,
                        1,
                        0,
                        pool,
                    )
                },
            );
            ctx.store_front_end(key, groups.clone());
            groups
        }
    };
    let out = timer.stage(
        |s| &mut s.greedy_s,
        || insert_washes(&synthesis.chip, &synthesis.schedule, &groups, false),
    );

    pdw_sim::validate(&synthesis.chip, &bench.graph, &out.schedule).map_err(PdwError::Invalid)?;
    pdw_contam::verify_clean(&synthesis.chip, &bench.graph, &out.schedule)
        .map_err(PdwError::Dirty)?;
    let metrics = Metrics::measure(&bench.graph, &out.schedule);
    timer.stats.groups = out.groups.len();
    timer.stats.candidates = out.groups.iter().map(|g| g.candidates.len()).sum();
    Ok(WashResult {
        schedule: out.schedule,
        metrics,
        exemptions,
        integrated: 0,
        solver: SolverReport::greedy(),
        pipeline: timer.seal(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn demo_dawo_produces_clean_valid_schedule() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let r = dawo(&bench, &s).unwrap();
        assert!(r.metrics.n_wash > 0);
        assert!(!r.solver.used_ilp);
    }

    #[test]
    fn dawo_never_beats_pdw_on_wash_count() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let base = dawo(&bench, &s).unwrap();
        let opt = crate::pdw(&bench, &s, &crate::PdwConfig::default()).unwrap();
        assert!(opt.metrics.n_wash <= base.metrics.n_wash);
        assert!(opt.metrics.t_assay <= base.metrics.t_assay);
    }
}
