//! DAWO: the delay-aware wash optimization baseline.
//!
//! Reimplemented from the description in the PathDriver-Wash paper
//! (Sections I and IV) of the method of [10] (TC'22):
//!
//! 1. wash operations are introduced per contaminated spot group, with **no**
//!    fluid-type analysis (a contaminated cell demands a wash whenever a
//!    non-waste task reuses it),
//! 2. each wash path is constructed **independently** by BFS from the
//!    nearest flow port — no resource sharing between washes,
//! 3. washes are assigned to time intervals by a **sweep line** over the
//!    existing schedule, right-shifting the assay when no interval fits —
//!    the source of DAWO's delay.

use std::time::Instant;

use pdw_assay::benchmarks::Benchmark;
use pdw_contam::{analyze, Classification, NecessityOptions};
use pdw_sim::Metrics;
use pdw_synth::Synthesis;

use crate::config::CandidatePolicy;
use crate::greedy::insert_washes;
use crate::groups::build_groups;
use crate::pdw::{PdwError, SolverReport, WashResult};
use crate::stats::PipelineStats;

/// Runs the DAWO baseline on a synthesized assay.
///
/// # Errors
///
/// Returns [`PdwError`] only if an internal invariant is broken — every
/// returned schedule has passed [`pdw_sim::validate`] and
/// [`pdw_contam::verify_clean`].
pub fn dawo(bench: &Benchmark, synthesis: &Synthesis) -> Result<WashResult, PdwError> {
    let run_start = Instant::now();
    let counters_start = pdw_biochip::routing_counters();
    let mut stats = PipelineStats {
        threads: crate::par::resolve_threads(0),
        ..PipelineStats::default()
    };
    let stage = Instant::now();
    let analysis = analyze(
        &synthesis.chip,
        &bench.graph,
        &synthesis.schedule,
        NecessityOptions::reuse_only(),
    );
    stats.necessity_s = stage.elapsed().as_secs_f64();
    let exemptions = (
        analysis.count(Classification::Type1Unused),
        analysis.count(Classification::Type2SameFluid),
        analysis.count(Classification::Type3WasteOnly),
    );

    let stage = Instant::now();
    let groups = build_groups(
        &synthesis.chip,
        &synthesis.schedule,
        &analysis.requirements,
        CandidatePolicy::Nearest,
        1,
        0,
    );
    // DAWO introduces washes per contaminated spot cluster and constructs
    // each path independently — no resource sharing across clusters.
    let groups = crate::groups::split_into_spot_clusters(
        &synthesis.chip,
        &synthesis.schedule,
        groups,
        4,
        CandidatePolicy::Nearest,
        1,
        0,
    );
    stats.grouping_s = stage.elapsed().as_secs_f64();
    let stage = Instant::now();
    let out = insert_washes(&synthesis.chip, &synthesis.schedule, &groups, false);
    stats.greedy_s = stage.elapsed().as_secs_f64();

    pdw_sim::validate(&synthesis.chip, &bench.graph, &out.schedule).map_err(PdwError::Invalid)?;
    pdw_contam::verify_clean(&synthesis.chip, &bench.graph, &out.schedule)
        .map_err(PdwError::Dirty)?;
    let metrics = Metrics::measure(&bench.graph, &out.schedule);
    stats.groups = out.groups.len();
    stats.candidates = out.groups.iter().map(|g| g.candidates.len()).sum();
    stats.total_s = run_start.elapsed().as_secs_f64();
    let d = pdw_biochip::routing_counters() - counters_start;
    stats.route_calls = d.route_calls;
    stats.bfs_runs = d.bfs_runs;
    stats.scratch_reuses = d.scratch_reuses;
    Ok(WashResult {
        schedule: out.schedule,
        metrics,
        exemptions,
        integrated: 0,
        solver: SolverReport::greedy(),
        pipeline: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn demo_dawo_produces_clean_valid_schedule() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let r = dawo(&bench, &s).unwrap();
        assert!(r.metrics.n_wash > 0);
        assert!(!r.solver.used_ilp);
    }

    #[test]
    fn dawo_never_beats_pdw_on_wash_count() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let base = dawo(&bench, &s).unwrap();
        let opt = crate::pdw(&bench, &s, &crate::PdwConfig::default()).unwrap();
        assert!(opt.metrics.n_wash <= base.metrics.n_wash);
        assert!(opt.metrics.t_assay <= base.metrics.t_assay);
    }
}
