//! Pipeline-wide wall-clock deadline.
//!
//! The ILP back-end has always had a budget (`PdwConfig::ilp_budget`), but
//! the stages in front of it — candidate enumeration, per-group exact-path
//! solves — could overrun freely. A [`Deadline`] is one wall-clock budget
//! for the *whole* pipeline, created when a solve starts and consulted at
//! stage checkpoints: an expired deadline makes the remaining stages cut
//! over to their cheapest variants (fewer candidates, no merging, no exact
//! paths, no ILP) instead of blowing the budget.
//!
//! A `None` budget never expires; a zero budget is expired from the first
//! checkpoint on, which makes fully-degraded runs deterministic — the
//! degradation-ladder tests rely on that.

use std::time::{Duration, Instant};

/// A wall-clock budget for an entire planning run. Cheap to copy; all
/// checkpoints of one run share the same start instant.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    start: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    /// Starts the clock now. `None` means unlimited (never expires).
    pub fn start(budget: Option<Duration>) -> Self {
        Deadline {
            start: Instant::now(),
            budget,
        }
    }

    /// A deadline that never expires.
    pub fn unlimited() -> Self {
        Self::start(None)
    }

    /// The budget this deadline was created with.
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Wall time elapsed since the deadline started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// `true` once the elapsed time has reached the budget. A zero budget
    /// is expired immediately; an unlimited deadline never is.
    pub fn expired(&self) -> bool {
        match self.budget {
            Some(b) => self.start.elapsed() >= b,
            None => false,
        }
    }

    /// Time left before expiry: `None` when unlimited, zero when expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.budget.map(|b| b.saturating_sub(self.start.elapsed()))
    }

    /// Clamps a stage budget to the time remaining, so no stage can be
    /// granted more wall clock than the pipeline has left.
    pub fn clamp(&self, stage_budget: Duration) -> Duration {
        match self.remaining() {
            Some(r) => stage_budget.min(r),
            None => stage_budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_expires_and_never_clamps() {
        let d = Deadline::unlimited();
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
        assert_eq!(d.clamp(Duration::from_secs(7)), Duration::from_secs(7));
    }

    #[test]
    fn zero_budget_is_expired_immediately() {
        let d = Deadline::start(Some(Duration::ZERO));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert_eq!(d.clamp(Duration::from_secs(7)), Duration::ZERO);
    }

    #[test]
    fn generous_budget_is_not_expired_and_clamps_down() {
        let d = Deadline::start(Some(Duration::from_secs(3600)));
        assert!(!d.expired());
        let r = d.remaining().unwrap();
        assert!(r > Duration::from_secs(3000));
        assert_eq!(d.clamp(Duration::from_secs(2)), Duration::from_secs(2));
        assert!(d.clamp(Duration::from_secs(100_000)) <= Duration::from_secs(3600));
    }

    #[test]
    fn elapsed_grows() {
        let d = Deadline::start(Some(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(2));
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        assert!(d.elapsed() >= Duration::from_millis(2));
    }
}
