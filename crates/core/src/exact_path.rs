//! Exact wash-path construction: the paper's Eqs. 12–15 as an ILP.
//!
//! The paper models a wash path with per-cell binaries `u^j_{x,y}`: one flow
//! port and one waste port are selected (Eq. 12), each selected port has one
//! occupied neighbor (Eq. 13), interior path cells have exactly two occupied
//! neighbors (Eq. 14), and all wash targets are covered (Eq. 15). As
//! written, that system also admits solutions containing disconnected
//! degree-2 *cycles* — it has no subtour elimination. This module implements
//! the intent exactly with a standard single-commodity-flow strengthening:
//!
//! - binary arc variables `x_(u,v)` over adjacent routable cells form a unit
//!   source→sink path (per-node inflow ≤ 1 plus flow conservation ⇒ the
//!   paper's degree constraints),
//! - port-selection binaries reproduce Eq. 12,
//! - a continuous commodity `f ≤ K·x` delivers one unit to every target,
//!   which forces all targets onto the *connected* path (Eq. 15, without the
//!   cycle loophole),
//! - the objective minimizes the number of occupied cells — exactly the
//!   `L_wash` term the candidate enumeration otherwise approximates.
//!
//! Exact construction costs an ILP solve per wash, so it is off by default
//! ([`PdwConfig::exact_paths`](crate::PdwConfig)); candidate enumeration
//! stays within a couple of cells of it in practice (see the tests).

use std::collections::{HashMap, HashSet};
use std::time::Duration;

use pdw_biochip::{CellKind, Chip, Coord, FlowPath};
use pdw_ilp::{Model, Relation, SolveOptions, VarId};

use crate::groups::Candidate;

/// Builds the exact minimal wash path covering `targets` on `chip`,
/// threading only through target devices (other device footprints are
/// impassable, as in candidate enumeration). A known-feasible `warm` path
/// (e.g. the best enumerated candidate) seeds branch-and-bound: the result
/// is then never longer than it, and the solve is anytime. Returns `None`
/// when the solver finds no path within `budget` (or none exists).
pub fn exact_wash_path(
    chip: &Chip,
    targets: &[Coord],
    warm: Option<&FlowPath>,
    budget: Duration,
) -> Option<Candidate> {
    let target_set: HashSet<Coord> = targets.iter().copied().collect();
    if target_set.is_empty() {
        return None;
    }

    // Routable nodes: channels, ports, and target-device cells.
    let mut nodes: Vec<Coord> = Vec::new();
    for (c, kind) in chip.grid().occupied() {
        let passable = match kind {
            CellKind::Channel | CellKind::FlowPort(_) | CellKind::WastePort(_) => true,
            CellKind::Device(id) => chip
                .device(id)
                .footprint()
                .iter()
                .any(|f| target_set.contains(f)),
            CellKind::Empty => false,
        };
        if passable {
            nodes.push(c);
        }
    }
    let index: HashMap<Coord, usize> = nodes.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    if targets.iter().any(|t| !index.contains_key(t)) {
        return None;
    }

    // Directed arcs between adjacent routable cells.
    let mut arcs: Vec<(usize, usize)> = Vec::new();
    for (u, &cu) in nodes.iter().enumerate() {
        for cv in chip.grid().neighbors(cu) {
            if let Some(&v) = index.get(&cv) {
                arcs.push((u, v));
            }
        }
    }

    let mut m = Model::new("exact-wash-path");
    let k = targets.len() as f64 + 1.0;

    // Arc binaries (objective: one cell per arc head; the source cell is
    // paid through the port-selection variable).
    let x: Vec<VarId> = arcs
        .iter()
        .map(|&(u, v)| m.binary(&format!("x_{u}_{v}"), 1.0))
        .collect();
    // Commodity flow on each arc.
    let f: Vec<VarId> = arcs
        .iter()
        .map(|&(u, v)| m.continuous(&format!("f_{u}_{v}"), 0.0, k, 0.0))
        .collect();
    for (i, _) in arcs.iter().enumerate() {
        // f <= K·x
        m.constraint([(f[i], 1.0), (x[i], -k)], Relation::Le, 0.0);
    }

    // Port selection (Eq. 12).
    let mut s_var: HashMap<usize, VarId> = HashMap::new();
    let mut t_var: HashMap<usize, VarId> = HashMap::new();
    for (i, &c) in nodes.iter().enumerate() {
        match chip.grid().kind(c) {
            CellKind::FlowPort(_) => {
                s_var.insert(i, m.binary(&format!("s_{i}"), 1.0));
            }
            CellKind::WastePort(_) => {
                t_var.insert(i, m.binary(&format!("t_{i}"), 0.0));
            }
            _ => {}
        }
    }
    let sum = |vars: &HashMap<usize, VarId>| -> Vec<(VarId, f64)> {
        vars.values().map(|&v| (v, 1.0)).collect()
    };
    m.constraint(sum(&s_var), Relation::Eq, 1.0);
    m.constraint(sum(&t_var), Relation::Eq, 1.0);

    // Unit-path conservation and simplicity (Eqs. 13–14 strengthened):
    // out(x) − in(x) = s_v − t_v;  in(x) ≤ 1.
    let mut in_arcs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut out_arcs: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (i, &(u, v)) in arcs.iter().enumerate() {
        out_arcs[u].push(i);
        in_arcs[v].push(i);
    }
    for v in 0..nodes.len() {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &a in &out_arcs[v] {
            terms.push((x[a], 1.0));
        }
        for &a in &in_arcs[v] {
            terms.push((x[a], -1.0));
        }
        if let Some(&sv) = s_var.get(&v) {
            terms.push((sv, -1.0));
        }
        if let Some(&tv) = t_var.get(&v) {
            terms.push((tv, 1.0));
        }
        m.constraint(terms, Relation::Eq, 0.0);
        let indeg: Vec<(VarId, f64)> = in_arcs[v].iter().map(|&a| (x[a], 1.0)).collect();
        if !indeg.is_empty() {
            m.constraint(indeg, Relation::Le, 1.0);
        }
    }

    // Commodity: the source emits K units, each target consumes 1, the sink
    // absorbs the remainder — all targets end up on the connected path
    // (Eq. 15 without the cycle loophole).
    for v in 0..nodes.len() {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &a in &out_arcs[v] {
            terms.push((f[a], 1.0));
        }
        for &a in &in_arcs[v] {
            terms.push((f[a], -1.0));
        }
        let mut rhs = 0.0;
        if let Some(&sv) = s_var.get(&v) {
            terms.push((sv, -k));
        }
        if target_set.contains(&nodes[v]) {
            rhs = -1.0;
        }
        if let Some(&tv) = t_var.get(&v) {
            terms.push((tv, 1.0));
        }
        m.constraint(terms, Relation::Eq, rhs);
    }

    // Seed with a known path: arcs along it carry the commodity, depleted
    // by one unit at each target.
    let warm_start = warm.and_then(|path| {
        let mut vals = vec![0.0; m.num_vars()];
        let cells = path.cells();
        let arc_index: HashMap<(usize, usize), usize> = arcs
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| ((u, v), i))
            .collect();
        let mut remaining = k;
        for w in cells.windows(2) {
            let u = *index.get(&w[0])?;
            let v = *index.get(&w[1])?;
            let a = *arc_index.get(&(u, v))?;
            vals[x[a].0] = 1.0;
            if target_set.contains(&w[0]) {
                remaining -= 1.0;
            }
            vals[f[a].0] = remaining;
        }
        let src = index.get(&cells[0])?;
        let snk = index.get(cells.last()?)?;
        vals[s_var.get(src)?.0] = 1.0;
        vals[t_var.get(snk)?.0] = 1.0;
        Some(vals)
    });

    let sol = pdw_ilp::solve(
        &m,
        &SolveOptions {
            time_limit: budget,
            warm_start,
            ..SolveOptions::default()
        },
    )
    .ok()?;

    // Reconstruct the path by walking chosen arcs from the chosen source.
    let src = *s_var.iter().find(|(_, &v)| sol.bool_value(v))?.0;
    let mut next: HashMap<usize, usize> = HashMap::new();
    for (i, &(u, v)) in arcs.iter().enumerate() {
        if sol.bool_value(x[i]) {
            next.insert(u, v);
        }
    }
    let mut cells = vec![nodes[src]];
    let mut cur = src;
    while let Some(&v) = next.get(&cur) {
        cells.push(nodes[v]);
        cur = v;
        if cells.len() > nodes.len() {
            return None; // malformed solution; be safe
        }
    }
    let path = FlowPath::new(cells).ok()?;
    chip.validate_path(&path).ok()?;
    if targets.iter().any(|t| !path.contains(*t)) {
        return None;
    }
    Some(Candidate::from_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CandidatePolicy;
    use crate::groups::build_groups;
    use pdw_assay::benchmarks;
    use pdw_contam::{analyze, NecessityOptions};
    use pdw_synth::synthesize;

    #[test]
    fn exact_path_is_never_longer_than_enumeration() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let groups = build_groups(
            &s.chip,
            &s.schedule,
            &a.requirements,
            CandidatePolicy::Shortest,
            3,
            0,
        );
        let mut checked = 0;
        for g in groups.iter().take(3) {
            let enumerated = g.candidates[0].path.len();
            let Some(exact) = exact_wash_path(
                &s.chip,
                &g.targets(),
                Some(&g.candidates[0].path),
                Duration::from_secs(10),
            ) else {
                continue;
            };
            assert!(
                exact.path.len() <= enumerated,
                "exact {} > enumerated {enumerated}",
                exact.path.len()
            );
            for t in g.targets() {
                assert!(exact.path.contains(t));
            }
            checked += 1;
        }
        assert!(checked > 0, "no group solved exactly");
    }

    #[test]
    fn exact_path_handles_single_cells() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        // Any channel junction works as a single target.
        let target = Coord::new(2, 6);
        let c = exact_wash_path(&s.chip, &[target], None, Duration::from_secs(10))
            .expect("single-cell wash path exists");
        assert!(c.path.contains(target));
        s.chip.validate_path(&c.path).unwrap();
    }

    #[test]
    fn empty_targets_yield_none() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        assert!(exact_wash_path(&s.chip, &[], None, Duration::from_secs(1)).is_none());
    }
}
