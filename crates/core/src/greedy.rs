//! Greedy (sweep-line) wash insertion.
//!
//! Washes are placed one by one, earliest deadline first, into the first
//! conflict-free slot of their time window; when no slot exists the schedule
//! is right-shifted from the deadline onward. This is both the DAWO
//! baseline's scheduling strategy and the warm start handed to the
//! PathDriver-Wash ILP.

use std::collections::HashSet;

use pdw_assay::FluidType;
use pdw_biochip::{CellSet, Chip, Coord};
use pdw_sched::{Schedule, Task, TaskId, TaskKind, Time};

use crate::groups::{window, WashGroup};
use crate::timeline::{shift_from, Timeline};

/// Where a group's wash ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Index of the group (into [`GreedyOutcome::groups`]).
    pub group: usize,
    /// Index of the chosen candidate path.
    pub candidate: usize,
    /// The wash task inserted into the schedule.
    pub task: TaskId,
}

/// Result of greedy insertion.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The schedule with washes inserted (and integrated removals deleted).
    pub schedule: Schedule,
    /// The effective wash groups. Input groups whose wash could not be
    /// scheduled as one flush (a device residency pinned under a merged
    /// member's earlier deadline) are split, so this list may be longer
    /// than the input.
    pub groups: Vec<WashGroup>,
    /// One placement per effective group.
    pub placements: Vec<Placement>,
    /// Excess removals that were integrated into washes and deleted
    /// (id plus the removed task itself, for downstream bookkeeping).
    pub integrated: Vec<(TaskId, Task)>,
}

/// First task after `from` (exclusive of `except`) that shares a cell with
/// `cells`; returns its start time.
fn next_use_of_cells(
    schedule: &Schedule,
    cells: &CellSet,
    from: Time,
    except: TaskId,
) -> Option<Time> {
    schedule
        .tasks()
        .filter(|(id, t)| *id != except && !t.kind().is_wash() && t.start() >= from)
        .filter(|(_, t)| t.path().mask().intersects(cells))
        .map(|(_, t)| t.start())
        .min()
}

/// The cells an excess-removal task exists to flush: the cells of its path
/// adjacent to its operation's device (where the excess fluid is cached).
pub(crate) fn excess_targets(
    chip: &Chip,
    schedule: &Schedule,
    op: pdw_assay::OpId,
    r: &Task,
) -> Vec<Coord> {
    let Some(sop) = schedule.scheduled_op(op) else {
        return r.path().cells().to_vec();
    };
    let foot = chip.device(sop.device).footprint();
    r.path()
        .iter()
        .copied()
        .filter(|c| foot.iter().any(|f| f.is_adjacent(*c)))
        .collect()
}

/// Latest delivery of `op` ending at or before `by`; the excess a removal
/// flushes appears when its delivery ends.
fn delivery_end_for(schedule: &Schedule, op: pdw_assay::OpId, by: Time) -> Time {
    schedule
        .tasks()
        .filter(|(_, t)| match *t.kind() {
            TaskKind::Injection { op: o, .. } => o == op,
            TaskKind::Transport { to_op, .. } => to_op == op,
            _ => false,
        })
        .map(|(_, t)| t.end())
        .filter(|&e| e <= by)
        .max()
        .unwrap_or(0)
}

/// Inserts a wash for every group into (a clone of) `base`.
///
/// Groups are processed earliest-deadline-first (recomputed after every
/// insertion, since insertions may shift the schedule). With `integration`
/// enabled, an excess-removal task whose cached excess cells the chosen
/// wash path covers (within its window) is deleted — the wash does its job
/// (ψ = 1 in Eq. 21). **Prefer [`insert_washes_protected`] when enabling
/// integration**: deleting a removal that witnesses a Type-2/3 exemption
/// can re-expose residue; [`pdw_contam::Analysis::deletable`] identifies
/// the removals that are safe to delete.
///
/// # Panics
///
/// Panics if a single-cell wash cannot be scheduled at all, which would mean
/// the chip layout cannot reach one of its own channels.
pub fn insert_washes(
    chip: &Chip,
    base: &Schedule,
    groups: &[WashGroup],
    integration: bool,
) -> GreedyOutcome {
    insert_washes_protected(chip, base, groups, integration, &HashSet::new())
}

/// Like [`insert_washes`], but never integrates (deletes) a removal in
/// `protected` — the set of tasks witnessing a Type-2/3 wash exemption,
/// whose disappearance would re-expose residue.
pub fn insert_washes_protected(
    chip: &Chip,
    base: &Schedule,
    groups: &[WashGroup],
    integration: bool,
    protected: &HashSet<TaskId>,
) -> GreedyOutcome {
    let mut schedule = base.clone();
    let mut groups: Vec<WashGroup> = groups.to_vec();
    let mut placements: Vec<Placement> = Vec::new();
    let mut integrated: Vec<(TaskId, Task)> = Vec::new();
    let mut remaining: Vec<usize> = (0..groups.len()).collect();

    while !remaining.is_empty() {
        // Earliest current deadline first (sweep line).
        remaining.sort_by_key(|&gi| window(&schedule, &groups[gi]).1);
        let gi = remaining.remove(0);
        let (ready, deadline) = window(&schedule, &groups[gi]);

        let timeline = Timeline::new(chip, &schedule);
        // Try candidates shortest-first inside the window.
        let mut choice: Option<(usize, Time, Time)> = None; // (ci, t, delay)
        for (ci, cand) in groups[gi].candidates.iter().enumerate() {
            if deadline.checked_sub(cand.duration).is_none() {
                continue;
            }
            if let Some(t) =
                timeline.earliest_fit(cand.path.mask(), ready, cand.duration, Some(deadline))
            {
                choice = Some((ci, t, 0));
                break;
            }
        }
        // No slot inside the window: find, per candidate, the earliest slot
        // that survives a right-shift from the deadline (device residencies
        // straddling the deadline stretch instead of moving — such slots
        // are rejected). Pick the candidate needing the smallest delay.
        if choice.is_none() {
            for (ci, cand) in groups[gi].candidates.iter().enumerate() {
                if let Some(t) =
                    timeline.earliest_fit_shifted(cand.path.mask(), ready, cand.duration, deadline)
                {
                    let delay = (t + cand.duration).saturating_sub(deadline);
                    if choice.is_none_or(|(_, _, d)| delay < d) {
                        choice = Some((ci, t, delay));
                    }
                }
            }
        }
        // Still nothing: every candidate is pinned under a stretching
        // residency. Split the group (merged members get their own windows;
        // multi-cell parts fall back to per-cell washes) and retry.
        let Some((ci, start, delay)) = choice else {
            let g = groups[gi].clone();
            let pieces: Vec<WashGroup> = if g.parts.len() > 1 {
                g.parts
                    .iter()
                    .map(|p| WashGroup {
                        candidates: crate::groups::enumerate_candidates(
                            chip,
                            std::slice::from_ref(&p.seq),
                            groups[gi].candidates.len().max(1),
                        ),
                        parts: vec![p.clone()],
                    })
                    .collect()
            } else {
                g.parts[0]
                    .split_cells()
                    .into_iter()
                    .map(|p| WashGroup {
                        candidates: crate::groups::enumerate_candidates(
                            chip,
                            std::slice::from_ref(&p.seq),
                            3,
                        ),
                        parts: vec![p],
                    })
                    .collect()
            };
            assert!(
                pieces.iter().all(|p| !p.candidates.is_empty()),
                "wash group cannot be split into schedulable pieces"
            );
            assert!(
                g.parts.len() > 1 || g.parts[0].seq.len() > 1,
                "single-cell wash for {:?} cannot be scheduled; chip layout is broken",
                g.targets()
            );
            let mut pieces = pieces.into_iter();
            groups[gi] = pieces.next().expect("split produces at least one piece");
            remaining.push(gi);
            for piece in pieces {
                remaining.push(groups.len());
                groups.push(piece);
            }
            continue;
        };
        if delay > 0 {
            shift_from(&mut schedule, deadline, delay);
        }

        let cand = groups[gi].candidates[ci].clone();
        // Integration: delete excess removals the wash subsumes (ψ = 1).
        // An integrated removal never runs, so it never deposits residue:
        // pending wash groups sourced by it are pruned afterwards — the
        // paper's technique 2 cascades into technique 1.
        let mut newly_integrated: Vec<TaskId> = Vec::new();
        if integration {
            let removals: Vec<(TaskId, pdw_assay::OpId)> = schedule
                .tasks()
                .filter_map(|(id, t)| match *t.kind() {
                    TaskKind::ExcessRemoval { op } => Some((id, op)),
                    _ => None,
                })
                .collect();
            for (rid, rop) in removals {
                if protected.contains(&rid) {
                    continue;
                }
                let r = schedule.task(rid).clone();
                // The wash subsumes the removal when it covers the cached
                // excess cells — a complete port-to-port flush then carries
                // the excess to a waste port exactly as the removal would.
                let excess = excess_targets(chip, &schedule, rop, &r);
                if excess.is_empty() || !excess.iter().all(|c| cand.path.contains(*c)) {
                    continue;
                }
                let appears = delivery_end_for(&schedule, rop, r.start());
                if start < appears {
                    continue;
                }
                let e_cells: CellSet = excess.into_iter().collect();
                let next_use =
                    next_use_of_cells(&schedule, &e_cells, r.start(), rid).unwrap_or(Time::MAX);
                if start + cand.duration > next_use {
                    continue;
                }
                let removed = schedule.remove_task(rid);
                integrated.push((rid, removed));
                newly_integrated.push(rid);
            }
        }
        // Note: groups sourced by an integrated removal are kept. Their
        // washes still serve the *older* residues on those cells — exactly
        // what makes deleting the removal safe (see `Analysis::deletable`).
        let _ = newly_integrated;

        let task = schedule.push_task(Task::new(
            TaskKind::Wash {
                targets: groups[gi].targets(),
            },
            cand.path.clone(),
            start,
            cand.duration,
            FluidType::BUFFER,
        ));
        placements.push(Placement {
            group: gi,
            candidate: ci,
            task,
        });
    }

    // Groups fully pruned by integration were never placed; re-index so the
    // returned groups and placements correspond one-to-one.
    let mut final_groups = Vec::with_capacity(placements.len());
    let mut final_placements = Vec::with_capacity(placements.len());
    for p in placements {
        final_placements.push(Placement {
            group: final_groups.len(),
            ..p
        });
        final_groups.push(groups[p.group].clone());
    }
    GreedyOutcome {
        schedule,
        groups: final_groups,
        placements: final_placements,
        integrated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CandidatePolicy;
    use crate::groups::{build_groups, merge_groups};
    use pdw_assay::benchmarks;
    use pdw_contam::{analyze, verify_clean, NecessityOptions};
    use pdw_synth::synthesize;

    fn run(
        integration: bool,
    ) -> (
        pdw_assay::benchmarks::Benchmark,
        pdw_synth::Synthesis,
        GreedyOutcome,
    ) {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let groups = build_groups(
            &s.chip,
            &s.schedule,
            &a.requirements,
            CandidatePolicy::Shortest,
            3,
            0,
        );
        let groups = merge_groups(&s.chip, &s.schedule, groups, 3);
        // Integration may only delete provably-safe removals.
        let protected: HashSet<TaskId> = s
            .schedule
            .tasks()
            .filter(|(_, t)| t.kind().is_waste_disposal())
            .map(|(id, _)| id)
            .filter(|id| !a.deletable.contains(id))
            .collect();
        let out = insert_washes_protected(&s.chip, &s.schedule, &groups, integration, &protected);
        (bench, s, out)
    }

    #[test]
    fn inserted_schedule_is_valid_and_clean() {
        let (bench, s, out) = run(false);
        pdw_sim::validate(&s.chip, &bench.graph, &out.schedule).unwrap();
        verify_clean(&s.chip, &bench.graph, &out.schedule).unwrap();
        assert!(!out.placements.is_empty());
        assert_eq!(out.placements.len(), out.groups.len());
    }

    #[test]
    fn integration_only_removes_excess_removals() {
        let (bench, s, out) = run(true);
        pdw_sim::validate(&s.chip, &bench.graph, &out.schedule).unwrap();
        verify_clean(&s.chip, &bench.graph, &out.schedule).unwrap();
        for (id, removed) in &out.integrated {
            assert!(out.schedule.get_task(*id).is_none());
            assert!(matches!(removed.kind(), TaskKind::ExcessRemoval { .. }));
        }
    }

    #[test]
    fn washes_cover_their_targets_before_reuse() {
        let (_, _, out) = run(false);
        for p in &out.placements {
            let t = out.schedule.task(p.task);
            assert!(t.kind().is_wash());
        }
    }
}
