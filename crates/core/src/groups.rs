//! Wash-target grouping, merging, and candidate-path enumeration.

use pdw_biochip::{CellSet, Chip, Coord, FlowPath, RouteScratch, ScratchPool};
use pdw_contam::{Source, WashRequirement};
use pdw_sched::{flow_duration, Schedule, TaskKind, Time};
use pdw_sim::DISSOLUTION_S;

use crate::config::CandidatePolicy;
use crate::par::par_map_ctx;
use crate::timeline::Timeline;

/// A candidate wash path for a group.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Candidate {
    /// The complete `[flow port → targets → waste port]` path.
    pub path: FlowPath,
    /// Required wash duration: flush time plus dissolution (Eq. 17).
    pub duration: Time,
}

impl Candidate {
    /// Builds a candidate from a complete wash path, deriving its required
    /// duration (flush + dissolution, Eq. 17).
    pub fn from_path(path: FlowPath) -> Self {
        let duration = flow_duration(path.len()) + DISSOLUTION_S;
        Self { path, duration }
    }
}

/// The targets contributed by one contaminating source: its dirty cells in
/// source-path order, with each cell's own reuse deadlines.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WashPart {
    /// Dirty cells, ordered along the contaminating flow path.
    pub seq: Vec<Coord>,
    /// The residue's source: the wash may start only after it ends
    /// (`t_{j,e}`, Eq. 16).
    pub ready: Source,
    /// Per-cell reuse deadlines (`t_{j,s}`, Eq. 16), parallel to `seq`.
    pub cell_deadlines: Vec<Vec<Source>>,
}

impl WashPart {
    fn singleton(cell: Coord, ready: Source, deadlines: Vec<Source>) -> Self {
        Self {
            seq: vec![cell],
            ready,
            cell_deadlines: vec![deadlines],
        }
    }

    /// Splits this part into single-cell parts, each keeping only its own
    /// deadlines.
    pub fn split_cells(&self) -> Vec<WashPart> {
        self.seq
            .iter()
            .zip(&self.cell_deadlines)
            .map(|(&c, d)| WashPart::singleton(c, self.ready, d.clone()))
            .collect()
    }
}

/// A wash operation under construction: one or more parts plus candidate
/// paths covering all their cells.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WashGroup {
    /// The contamination sources this wash serves.
    pub parts: Vec<WashPart>,
    /// Candidate wash paths, shortest first.
    pub candidates: Vec<Candidate>,
}

impl WashGroup {
    /// All target cells (flattened).
    pub fn targets(&self) -> Vec<Coord> {
        self.parts
            .iter()
            .flat_map(|p| p.seq.iter().copied())
            .collect()
    }

    /// All ready references (one per part).
    pub fn ready_refs(&self) -> Vec<Source> {
        self.parts.iter().map(|p| p.ready).collect()
    }

    /// All deadline references, deduplicated.
    pub fn deadline_refs(&self) -> Vec<Source> {
        let mut out: Vec<Source> = Vec::new();
        for p in &self.parts {
            for ds in &p.cell_deadlines {
                for &d in ds {
                    if !out.contains(&d) {
                        out.push(d);
                    }
                }
            }
        }
        out
    }

    /// The target sequences (one per part), for candidate enumeration.
    pub fn target_seqs(&self) -> Vec<Vec<Coord>> {
        self.parts.iter().map(|p| p.seq.clone()).collect()
    }
}

/// End time of a residue source in the current schedule. A source task that
/// was integrated away no longer deposits residue; it imposes no lower
/// bound.
pub(crate) fn source_end(schedule: &Schedule, s: Source) -> Time {
    match s {
        Source::Task(t) => schedule.get_task(t).map(|t| t.end()).unwrap_or(0),
        Source::Op(o) => schedule.scheduled_op(o).expect("op scheduled").end(),
    }
}

/// Start time of a future use in the current schedule. For an operation this
/// is the start of its device *occupancy* (its first delivery): a wash
/// covering device cells must finish before loading begins.
pub(crate) fn use_start(schedule: &Schedule, s: Source) -> Time {
    match s {
        Source::Task(t) => schedule.get_task(t).map(|t| t.start()).unwrap_or(Time::MAX),
        Source::Op(o) => {
            let mut start = schedule.scheduled_op(o).expect("op scheduled").start;
            for (_, task) in schedule.tasks() {
                let feeds = match *task.kind() {
                    TaskKind::Injection { op, .. } | TaskKind::ExcessRemoval { op } => op == o,
                    TaskKind::Transport { to_op, .. } => to_op == o,
                    _ => false,
                };
                if feeds {
                    start = start.min(task.start());
                }
            }
            start
        }
    }
}

/// Current `[ready, deadline]` window of a group.
pub(crate) fn window(schedule: &Schedule, g: &WashGroup) -> (Time, Time) {
    let ready = g
        .ready_refs()
        .iter()
        .map(|&s| source_end(schedule, s))
        .max()
        .unwrap_or(0);
    let deadline = g
        .deadline_refs()
        .iter()
        .map(|&s| use_start(schedule, s))
        .min()
        .unwrap_or(Time::MAX);
    (ready, deadline)
}

/// Cells blocked while routing a wash for `targets`: the footprints of every
/// device that contains none of the targets. A wash may thread through a
/// device only to wash it — an apparently idle device may hold a resident
/// plug exactly inside the wash's only feasible window.
fn wash_blocked(chip: &Chip, targets: &CellSet) -> Vec<Coord> {
    chip.devices()
        .iter()
        .filter(|d| !d.footprint().iter().any(|c| targets.contains(*c)))
        .flat_map(|d| d.footprint().iter().copied())
        .collect()
}

/// Enumerates candidate wash paths for the target sequences, shortest first.
///
/// Every flow/waste port pair is tried; target sequences are visited as
/// blocks (each forward or reversed, blocks ordered by distance from the
/// entry port) so the router follows the contamination trails.
pub fn enumerate_candidates(chip: &Chip, target_seqs: &[Vec<Coord>], k: usize) -> Vec<Candidate> {
    let mut scratch = RouteScratch::for_chip(chip);
    enumerate_with(chip, &mut scratch, target_seqs, k)
}

/// [`enumerate_candidates`] against a caller-held scratch (allocation-free
/// after warm-up).
fn enumerate_with(
    chip: &Chip,
    scratch: &mut RouteScratch,
    target_seqs: &[Vec<Coord>],
    k: usize,
) -> Vec<Candidate> {
    let targets: CellSet = target_seqs.iter().flatten().copied().collect();
    // Hopeless-query pruning: `route_via` greedily routes port-free legs, so
    // a target cell unreachable from a port with *no* blocking can never lie
    // on a wash path from that port — skipping those pairs cannot change the
    // output. Reachability of every target is equivalent to reachability of
    // any one (the via legs chain them into one port-free component).
    let reach = chip.port_reach();
    if targets.iter().any(|c| !reach.washable(c)) {
        return Vec::new();
    }
    let blocked = wash_blocked(chip, &targets);
    scratch.load_blocked(blocked);

    let mut found: Vec<FlowPath> = Vec::new();
    for (pi, fp) in chip.flow_ports().enumerate() {
        if targets.iter().any(|c| !reach.flow_reaches(pi, c)) {
            continue;
        }
        // Order the blocks near-to-far from the entry port; orient each
        // block to enter at its end nearest the previous position.
        let mut seqs: Vec<Vec<Coord>> = target_seqs.to_vec();
        seqs.sort_by_key(|s| s.iter().map(|c| c.manhattan(fp)).min().unwrap_or(u32::MAX));
        let mut via: Vec<Coord> = Vec::new();
        let mut pos = fp;
        for mut seq in seqs {
            let d_front = seq.first().map(|c| c.manhattan(pos)).unwrap_or(0);
            let d_back = seq.last().map(|c| c.manhattan(pos)).unwrap_or(0);
            if d_back < d_front {
                seq.reverse();
            }
            pos = *seq.last().expect("sequences are nonempty");
            via.extend(seq);
        }
        for (wi, wp) in chip.waste_ports().enumerate() {
            if targets.iter().any(|c| !reach.waste_reaches(wi, c)) {
                continue;
            }
            if let Some(cells) = chip.route_via_with(scratch, fp, &via, wp) {
                let path = FlowPath::new(cells).expect("route_via returns a simple path");
                if !found.contains(&path) {
                    found.push(path);
                }
            }
        }
    }
    found.sort_by_key(|p| p.len());
    found.truncate(k.max(1));
    found.into_iter().map(Candidate::from_path).collect()
}

/// Builds the initial wash groups from the requirements: one group per
/// contaminating source, targets in source-path order, per-cell deadlines.
/// Groups no single device-avoiding path covers are split into runs along
/// the contamination trail (and cells, if needed).
///
/// Candidate enumeration fans out over `threads` workers (0 = all cores),
/// one routing scratch per worker; per-source work is independent and
/// results merge in input order, so the output is identical at any thread
/// count.
pub fn build_groups(
    chip: &Chip,
    schedule: &Schedule,
    requirements: &[WashRequirement],
    policy: CandidatePolicy,
    k: usize,
    threads: usize,
) -> Vec<WashGroup> {
    let pool = ScratchPool::new();
    build_groups_pooled(chip, schedule, requirements, policy, k, threads, &pool)
}

/// [`build_groups`] drawing worker scratches from a caller-held pool, so a
/// context-carrying caller reuses warm buffers across calls (and across
/// instances). Output is identical to [`build_groups`].
pub(crate) fn build_groups_pooled(
    chip: &Chip,
    schedule: &Schedule,
    requirements: &[WashRequirement],
    policy: CandidatePolicy,
    k: usize,
    threads: usize,
    pool: &ScratchPool,
) -> Vec<WashGroup> {
    // One part per source.
    let mut parts: Vec<WashPart> = Vec::new();
    for r in requirements {
        if let Some(p) = parts.iter_mut().find(|p| p.ready == r.source) {
            if let Some(i) = p.seq.iter().position(|&c| c == r.cell) {
                if !p.cell_deadlines[i].contains(&r.next_use) {
                    p.cell_deadlines[i].push(r.next_use);
                }
            } else {
                p.seq.push(r.cell);
                p.cell_deadlines.push(vec![r.next_use]);
            }
        } else {
            parts.push(WashPart::singleton(r.cell, r.source, vec![r.next_use]));
        }
    }

    // Order each part's cells along its source path.
    for p in &mut parts {
        let mut order: Vec<usize> = (0..p.seq.len()).collect();
        match p.ready {
            Source::Task(t) => {
                let path = schedule.task(t).path();
                order.sort_by_key(|&i| {
                    path.cells()
                        .iter()
                        .position(|c| *c == p.seq[i])
                        .unwrap_or(usize::MAX)
                });
            }
            Source::Op(_) => order.sort_by_key(|&i| p.seq[i]),
        }
        p.seq = order.iter().map(|&i| p.seq[i]).collect();
        p.cell_deadlines = order.iter().map(|&i| p.cell_deadlines[i].clone()).collect();
    }

    let k_eff = match policy {
        CandidatePolicy::Shortest => k,
        CandidatePolicy::Nearest => 1,
    };
    let nested = par_map_ctx(
        &parts,
        threads,
        || pool.checkout(chip),
        |scratch, _, part| {
            let scratch: &mut RouteScratch = scratch;
            let mut out: Vec<WashGroup> = Vec::new();
            for piece in coverable_pieces(chip, scratch, schedule, part.clone(), k_eff) {
                let mut g = WashGroup {
                    candidates: enumerate_with(
                        chip,
                        scratch,
                        std::slice::from_ref(&piece.seq),
                        k_eff,
                    ),
                    parts: vec![piece],
                };
                assert!(
                    !g.candidates.is_empty(),
                    "no wash path reaches {:?}; chip layout is broken",
                    g.targets()
                );
                if policy == CandidatePolicy::Nearest {
                    nearest_candidate(chip, scratch, &mut g);
                }
                out.push(g);
            }
            out
        },
    );
    nested.into_iter().flatten().collect()
}

/// Splits a part into pieces that a single device-avoiding path can cover:
/// the whole part if possible, else maximal source-path runs, else cells.
fn coverable_pieces(
    chip: &Chip,
    scratch: &mut RouteScratch,
    schedule: &Schedule,
    part: WashPart,
    k: usize,
) -> Vec<WashPart> {
    if !enumerate_with(chip, scratch, std::slice::from_ref(&part.seq), k).is_empty() {
        return vec![part];
    }
    let runs = split_runs(schedule, &part);
    let mut out = Vec::new();
    for run in runs {
        if enumerate_with(chip, scratch, std::slice::from_ref(&run.seq), k).is_empty() {
            out.extend(run.split_cells());
        } else {
            out.push(run);
        }
    }
    out
}

/// Splits a part into maximal runs of cells that are consecutive on the
/// contaminating source's flow path (singletons when the source is an
/// operation).
fn split_runs(schedule: &Schedule, part: &WashPart) -> Vec<WashPart> {
    split_runs_gapped(schedule, part, 1)
}

/// Like [`split_runs`], but cells up to `gap` positions apart on the source
/// path stay in one run, with the bridging (clean) cells included in the
/// wash targets.
fn split_runs_gapped(schedule: &Schedule, part: &WashPart, gap: usize) -> Vec<WashPart> {
    let Source::Task(t) = part.ready else {
        // Operation residue covers its device footprint: contiguous cells
        // form one spot cluster.
        let mut runs: Vec<WashPart> = Vec::new();
        for (i, &c) in part.seq.iter().enumerate() {
            let deadlines = part.cell_deadlines[i].clone();
            match runs.last_mut() {
                Some(run) if run.seq.iter().any(|&p| p.is_adjacent(c)) => {
                    run.seq.push(c);
                    run.cell_deadlines.push(deadlines);
                }
                _ => runs.push(WashPart::singleton(c, part.ready, deadlines)),
            }
        }
        return runs;
    };
    let path = schedule.task(t).path();
    let pos = |c: &Coord| {
        path.cells()
            .iter()
            .position(|p| p == c)
            .unwrap_or(usize::MAX)
    };
    let mut runs: Vec<WashPart> = Vec::new();
    for (i, &c) in part.seq.iter().enumerate() {
        let deadlines = part.cell_deadlines[i].clone();
        let p = pos(&c);
        match runs.last_mut() {
            Some(run) if p.saturating_sub(pos(run.seq.last().expect("nonempty"))) <= gap => {
                // Bridge across exempt cells on the source path.
                let last = pos(run.seq.last().expect("nonempty"));
                for bridge in last + 1..p {
                    run.seq.push(path.cells()[bridge]);
                    run.cell_deadlines.push(Vec::new());
                }
                run.seq.push(c);
                run.cell_deadlines.push(deadlines);
            }
            _ => runs.push(WashPart::singleton(c, part.ready, deadlines)),
        }
    }
    runs
}

/// Replaces a group's candidates with the DAWO-style single path: BFS from
/// the flow port nearest the targets, to the first waste port that works.
fn nearest_candidate(chip: &Chip, scratch: &mut RouteScratch, g: &mut WashGroup) {
    let targets = g.targets();
    let target_set: CellSet = targets.iter().copied().collect();
    let blocked = wash_blocked(chip, &target_set);
    scratch.load_blocked(blocked);
    let mut fps: Vec<Coord> = chip.flow_ports().collect();
    fps.sort_by_key(|fp| {
        targets
            .iter()
            .map(|c| c.manhattan(*fp))
            .min()
            .unwrap_or(u32::MAX)
    });
    for fp in fps {
        let mut via: Vec<Coord> = Vec::new();
        let mut pos = fp;
        for p in &g.parts {
            let mut seq = p.seq.clone();
            let d_front = seq.first().map(|c| c.manhattan(pos)).unwrap_or(0);
            let d_back = seq.last().map(|c| c.manhattan(pos)).unwrap_or(0);
            if d_back < d_front {
                seq.reverse();
            }
            pos = *seq.last().expect("nonempty");
            via.extend(seq);
        }
        let mut wps: Vec<Coord> = chip.waste_ports().collect();
        wps.sort_by_key(|wp| pos.manhattan(*wp));
        for wp in wps {
            if let Some(cells) = chip.route_via_with(scratch, fp, &via, wp) {
                let path = FlowPath::new(cells).expect("simple path");
                g.candidates = vec![Candidate::from_path(path)];
                return;
            }
        }
    }
    g.candidates.truncate(1);
}

/// Splits every group into one group per contaminated *spot cluster* (the
/// DAWO baseline's behaviour: wash operations are introduced per
/// contaminated spot region and their paths constructed independently — no
/// resource sharing). Dirty cells closer than `gap` steps along the source
/// path fall into the same cluster; the clean cells bridging them are
/// flushed along (wastefully, but that is the baseline).
pub fn split_into_spot_clusters(
    chip: &Chip,
    schedule: &Schedule,
    groups: Vec<WashGroup>,
    gap: usize,
    policy: CandidatePolicy,
    k: usize,
    threads: usize,
) -> Vec<WashGroup> {
    let pool = ScratchPool::new();
    split_into_spot_clusters_pooled(chip, schedule, groups, gap, policy, k, threads, &pool)
}

/// [`split_into_spot_clusters`] drawing worker scratches from a caller-held
/// pool. Output is identical to [`split_into_spot_clusters`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn split_into_spot_clusters_pooled(
    chip: &Chip,
    schedule: &Schedule,
    groups: Vec<WashGroup>,
    gap: usize,
    policy: CandidatePolicy,
    k: usize,
    threads: usize,
    pool: &ScratchPool,
) -> Vec<WashGroup> {
    let nested = par_map_ctx(
        &groups,
        threads,
        || pool.checkout(chip),
        |scratch, _, g| {
            let scratch: &mut RouteScratch = scratch;
            let mut out: Vec<WashGroup> = Vec::new();
            for part in &g.parts {
                for run in split_runs_gapped(schedule, part, gap) {
                    let mut sub = WashGroup {
                        candidates: enumerate_with(
                            chip,
                            scratch,
                            std::slice::from_ref(&run.seq),
                            k,
                        ),
                        parts: vec![run],
                    };
                    if sub.candidates.is_empty() {
                        // Unreachable as one flush: wash cell by cell.
                        for piece in sub.parts[0].split_cells() {
                            let mut cellg = WashGroup {
                                candidates: enumerate_with(
                                    chip,
                                    scratch,
                                    std::slice::from_ref(&piece.seq),
                                    k,
                                ),
                                parts: vec![piece],
                            };
                            assert!(!cellg.candidates.is_empty(), "unreachable channel cell");
                            if policy == CandidatePolicy::Nearest {
                                nearest_candidate(chip, scratch, &mut cellg);
                            }
                            out.push(cellg);
                        }
                        continue;
                    }
                    if policy == CandidatePolicy::Nearest {
                        nearest_candidate(chip, scratch, &mut sub);
                    }
                    out.push(sub);
                }
            }
            out
        },
    );
    nested.into_iter().flatten().collect()
}

/// Greedily merges compatible groups: overlapping time windows, a routable
/// combined path no longer than the separate ones, and — crucially — a
/// conflict-free slot for the combined wash inside the combined window of
/// the *current* schedule. (Without the fit check a merge can become a delay
/// trap: e.g. a device wash pinned under another member's earlier deadline
/// while the device still holds a resident plug.)
pub fn merge_groups(
    chip: &Chip,
    schedule: &Schedule,
    groups: Vec<WashGroup>,
    k: usize,
) -> Vec<WashGroup> {
    let pool = ScratchPool::new();
    merge_groups_pooled(chip, schedule, groups, k, &pool)
}

/// [`merge_groups`] drawing its scratch from a caller-held pool. Output is
/// identical to [`merge_groups`].
pub(crate) fn merge_groups_pooled(
    chip: &Chip,
    schedule: &Schedule,
    mut groups: Vec<WashGroup>,
    k: usize,
    pool: &ScratchPool,
) -> Vec<WashGroup> {
    let timeline = Timeline::new(chip, schedule);
    let mut scratch = pool.checkout(chip);
    let scratch: &mut RouteScratch = &mut scratch;
    let mut merged = true;
    while merged {
        merged = false;
        'pairs: for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                if groups[i].parts.len() + groups[j].parts.len() > 6 {
                    continue; // keep waypoint ordering tractable
                }
                let (ri, di) = window(schedule, &groups[i]);
                let (rj, dj) = window(schedule, &groups[j]);
                let ready = ri.max(rj);
                let deadline = di.min(dj);
                if ready >= deadline {
                    continue;
                }
                let mut seqs = groups[i].target_seqs();
                seqs.extend(groups[j].target_seqs());
                let cands = enumerate_with(chip, &mut *scratch, &seqs, k);
                let Some(best) = cands.first() else { continue };
                if ready + best.duration > deadline {
                    continue;
                }
                let sep_len =
                    groups[i].candidates[0].path.len() + groups[j].candidates[0].path.len();
                if best.path.len() > sep_len {
                    continue; // merging would lengthen L_wash more than α saves
                }
                // The combined wash must actually fit in the window now.
                if timeline
                    .earliest_fit(best.path.mask(), ready, best.duration, Some(deadline))
                    .is_none()
                {
                    continue;
                }
                let gj = groups.remove(j);
                let gi = &mut groups[i];
                gi.parts.extend(gj.parts);
                gi.candidates = cands;
                merged = true;
                break 'pairs;
            }
        }
    }
    groups
}

/// [`merge_groups_pooled`] restricted to pairs whose current best candidate
/// paths share at least one cell. The partitioned pipeline's cross-bucket
/// cleanup pass: in-bucket merging already consolidated whatever shares a
/// span view, and across buckets a profitable merge all but requires the
/// two washes to traverse common channels — disjoint best paths would make
/// the combined path longer than the separate ones. The mask-intersection
/// gate skips the expensive combined enumeration for exactly those pairs,
/// keeping this pass far below the full merge's quadratic enumeration cost.
pub(crate) fn merge_groups_overlapping_pooled(
    chip: &Chip,
    schedule: &Schedule,
    mut groups: Vec<WashGroup>,
    k: usize,
    pool: &ScratchPool,
) -> Vec<WashGroup> {
    let timeline = Timeline::new(chip, schedule);
    let mut scratch = pool.checkout(chip);
    let scratch: &mut RouteScratch = &mut scratch;
    let mut merged = true;
    while merged {
        merged = false;
        'pairs: for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                if groups[i].parts.len() + groups[j].parts.len() > 6 {
                    continue; // keep waypoint ordering tractable
                }
                let (pi, pj) = (&groups[i].candidates[0].path, &groups[j].candidates[0].path);
                if !pi.mask().intersects(pj.mask()) {
                    continue; // disjoint paths: a merge cannot shorten L_wash
                }
                let (ri, di) = window(schedule, &groups[i]);
                let (rj, dj) = window(schedule, &groups[j]);
                let ready = ri.max(rj);
                let deadline = di.min(dj);
                if ready >= deadline {
                    continue;
                }
                let mut seqs = groups[i].target_seqs();
                seqs.extend(groups[j].target_seqs());
                let cands = enumerate_with(chip, &mut *scratch, &seqs, k);
                let Some(best) = cands.first() else { continue };
                if ready + best.duration > deadline {
                    continue;
                }
                let sep_len =
                    groups[i].candidates[0].path.len() + groups[j].candidates[0].path.len();
                if best.path.len() > sep_len {
                    continue;
                }
                if timeline
                    .earliest_fit(best.path.mask(), ready, best.duration, Some(deadline))
                    .is_none()
                {
                    continue;
                }
                let gj = groups.remove(j);
                let gi = &mut groups[i];
                gi.parts.extend(gj.parts);
                gi.candidates = cands;
                merged = true;
                break 'pairs;
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_contam::{analyze, NecessityOptions};
    use pdw_synth::synthesize;

    fn demo_groups(policy: CandidatePolicy) -> (pdw_synth::Synthesis, Vec<WashGroup>) {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let g = build_groups(&s.chip, &s.schedule, &a.requirements, policy, 3, 0);
        (s, g)
    }

    #[test]
    fn every_group_covers_its_targets() {
        let (_, groups) = demo_groups(CandidatePolicy::Shortest);
        assert!(!groups.is_empty());
        for g in &groups {
            assert!(!g.candidates.is_empty());
            for cand in &g.candidates {
                for cell in g.targets() {
                    assert!(cand.path.contains(cell), "candidate misses target {cell}");
                }
            }
        }
    }

    #[test]
    fn groups_cover_every_requirement_cell() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let groups = build_groups(
            &s.chip,
            &s.schedule,
            &a.requirements,
            CandidatePolicy::Shortest,
            3,
            0,
        );
        for r in &a.requirements {
            assert!(
                groups.iter().any(|g| g
                    .parts
                    .iter()
                    .any(|p| p.ready == r.source && p.seq.contains(&r.cell))),
                "requirement {:?} not covered by any group",
                r
            );
        }
    }

    #[test]
    fn candidates_are_sorted_shortest_first() {
        let (_, groups) = demo_groups(CandidatePolicy::Shortest);
        for g in &groups {
            assert!(g
                .candidates
                .windows(2)
                .all(|w| w[0].path.len() <= w[1].path.len()));
        }
    }

    #[test]
    fn merging_never_increases_group_count() {
        let (s, groups) = demo_groups(CandidatePolicy::Shortest);
        let before = groups.len();
        let merged = merge_groups(&s.chip, &s.schedule, groups, 3);
        assert!(merged.len() <= before);
        for g in &merged {
            assert!(!g.candidates.is_empty());
        }
    }

    #[test]
    fn nearest_policy_yields_single_candidates() {
        let (_, groups) = demo_groups(CandidatePolicy::Nearest);
        for g in &groups {
            assert_eq!(g.candidates.len(), 1);
        }
    }

    #[test]
    fn group_windows_are_ordered() {
        // Ready may equal the deadline (back-to-back tasks leave no slack;
        // the schedulers then shift the schedule), but never exceed it.
        let (s, groups) = demo_groups(CandidatePolicy::Shortest);
        for g in &groups {
            let (ready, deadline) = window(&s.schedule, g);
            assert!(ready <= deadline, "window [{ready}, {deadline}] inverted");
        }
    }
}
