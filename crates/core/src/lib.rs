//! PathDriver-Wash: path-driven wash optimization for continuous-flow
//! lab-on-a-chip systems.
//!
//! This crate is the top of the reproduction stack: given a bioassay
//! benchmark and its synthesized chip + schedule (from [`pdw_synth`]), it
//! computes an optimized execution with wash operations.
//!
//! # Engine architecture
//!
//! Every solve strategy is a [`Planner`] running against a shared
//! [`PlanContext`]:
//!
//! - [`PdwPlanner`] — the paper's method: wash-necessity analysis
//!   (Types 1–3), wash/excess-removal integration (ψ), and ILP-optimized
//!   wash paths and time windows minimizing
//!   `α·N_wash + β·L_wash + γ·T_assay` (Eq. 26);
//! - [`GreedyPlanner`] — the same pipeline stopped at its deterministic
//!   greedy warm start (no ILP);
//! - [`DawoPlanner`] — the delay-aware wash optimization baseline of TC'22
//!   \[10\]: per-spot washes with independently BFS-routed paths and
//!   sweep-line time assignment.
//!
//! The context owns the instance's expensive common prefix — necessity
//! analyses, port-reachability fields, warm routing scratch — so running
//! several planners on one instance computes it once. [`plan_batch`] fans a
//! corpus of instances across threads with per-worker context reuse;
//! results are bit-identical to serial one-shot calls at any thread count.
//! The free functions [`pdw`] and [`dawo`] remain as one-shot wrappers.
//!
//! Every planner returns a [`WashResult`] whose schedule is guaranteed
//! physically valid ([`pdw_sim::validate`]) and contamination-free
//! ([`pdw_contam::verify_clean`]).
//!
//! # Example
//!
//! Two planners sharing one context — the necessity analysis and routing
//! state are computed once, and the results match one-shot calls exactly:
//!
//! ```
//! use pathdriver_wash::{DawoPlanner, PdwConfig, PdwPlanner, PlanContext, Planner};
//! use pdw_assay::benchmarks;
//! use pdw_synth::synthesize;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::demo();
//! let synthesis = synthesize(&bench)?;
//!
//! let mut ctx = PlanContext::new(&bench, &synthesis);
//! let baseline = DawoPlanner.plan(&mut ctx)?;
//! let optimized = PdwPlanner::new(PdwConfig::default()).plan(&mut ctx)?;
//!
//! assert!(optimized.metrics.n_wash <= baseline.metrics.n_wash);
//! assert_eq!(optimized.schedule, pathdriver_wash::pdw(&bench, &synthesis, &PdwConfig::default())?.schedule);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod config;
mod context;
mod dawo;
mod deadline;
mod exact_path;
mod greedy;
mod groups;
mod model;
mod par;
mod partition;
mod pdw;
mod planner;
mod repair;
mod resilient;
mod stats;
mod timeline;
pub mod transport;
pub mod verify;
pub mod worker;

pub use codec::{
    chip_hash, config_fingerprint, instance_hash, memo_key, CodecError, PlanArtifact,
    VerificationCertificate, SCHEMA_VERSION,
};
pub use config::{CandidatePolicy, PdwConfig, Weights};
pub use context::{ContextParts, FrontEndKey, PlanContext, RequirementOverrides};
pub use dawo::dawo;
pub use deadline::Deadline;
pub use exact_path::exact_wash_path;
pub use greedy::{insert_washes, insert_washes_protected, GreedyOutcome, Placement};
pub use groups::{
    build_groups, enumerate_candidates, merge_groups, split_into_spot_clusters, Candidate,
    WashGroup, WashPart,
};
pub use partition::{
    plan_partitioned, plan_partitioned_ctx, plan_partitioned_ctx_with, plan_partitioned_with,
    ExecutorEvent, InProcessExecutor, PartitionedPlanner, RegionExecutor, RegionJob, RespawnPolicy,
    SubprocessExecutor,
};
pub use pdw::{pdw, PdwError, SolverReport, WashResult};
pub use pdw_ilp::{IncumbentEvent, SolverStats};
pub use planner::{plan_batch, DawoPlanner, GreedyPlanner, PdwPlanner, Planner};
pub use repair::{PlanDelta, RepairSession};
pub use resilient::{
    plan_resilient, plan_resilient_batch, plan_resilient_ctx, PlanOutcome, RungAttempt, RungKind,
    RungRejection,
};
pub use stats::PipelineStats;
pub use transport::{
    NetAddr, NetListener, NetRequest, NetResponse, NetStream, SocketExecutor, SocketTimeouts,
    TransportError, WireError,
};
pub use worker::{run_worker, RegionRequest, SolveRequest, WorkerRequest, WorkerResponse};
