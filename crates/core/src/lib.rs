//! PathDriver-Wash: path-driven wash optimization for continuous-flow
//! lab-on-a-chip systems.
//!
//! This crate is the top of the reproduction stack: given a bioassay
//! benchmark and its synthesized chip + schedule (from [`pdw_synth`]), it
//! computes an optimized execution with wash operations:
//!
//! - [`pdw`] — the paper's method: wash-necessity analysis (Types 1–3),
//!   wash/excess-removal integration (ψ), and ILP-optimized wash paths and
//!   time windows minimizing `α·N_wash + β·L_wash + γ·T_assay` (Eq. 26);
//! - [`dawo`] — the delay-aware wash optimization baseline of TC'22 \[10\]:
//!   per-spot washes with independently BFS-routed paths and sweep-line
//!   time assignment.
//!
//! Both return a [`WashResult`] whose schedule is guaranteed physically
//! valid ([`pdw_sim::validate`]) and contamination-free
//! ([`pdw_contam::verify_clean`]).
//!
//! # Example
//!
//! ```
//! use pdw_assay::benchmarks;
//! use pdw_synth::synthesize;
//! use pathdriver_wash::{dawo, pdw, PdwConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = benchmarks::demo();
//! let synthesis = synthesize(&bench)?;
//! let optimized = pdw(&bench, &synthesis, &PdwConfig::default())?;
//! let baseline = dawo(&bench, &synthesis)?;
//! assert!(optimized.metrics.n_wash <= baseline.metrics.n_wash);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dawo;
mod exact_path;
mod greedy;
mod groups;
mod model;
mod par;
mod pdw;
mod stats;
mod timeline;
pub mod verify;

pub use config::{CandidatePolicy, PdwConfig, Weights};
pub use dawo::dawo;
pub use exact_path::exact_wash_path;
pub use greedy::{insert_washes, insert_washes_protected, GreedyOutcome, Placement};
pub use groups::{
    build_groups, enumerate_candidates, merge_groups, split_into_spot_clusters, Candidate,
    WashGroup, WashPart,
};
pub use pdw::{pdw, PdwError, SolverReport, WashResult};
pub use pdw_ilp::{IncumbentEvent, SolverStats};
pub use stats::PipelineStats;
