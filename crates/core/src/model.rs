//! The PathDriver-Wash ILP: joint retiming of every fluidic manipulation
//! plus wash path/window selection.
//!
//! The paper's formulation (Eqs. 1–26) re-decides *all* start times and all
//! pairwise orders. Re-deciding the order of the base tasks explodes the
//! binary count, and the paper itself runs its solver as best-effort under a
//! wall-clock budget; this implementation therefore keeps the *relative
//! order* of the base schedule's tasks fixed (those `κ`/`ε` binaries of
//! Eqs. 3/8 are constants) while keeping, as decision variables:
//!
//! - the start time of **every** operation and task (full retiming),
//! - the wash path of each wash group (candidate-selection binaries,
//!   standing in for the per-cell path variables of Eqs. 12–15 — every
//!   candidate satisfies those constraints by construction),
//! - each wash's time window (Eqs. 16–18) and its ordering against
//!   conflicting tasks, operations, and other washes (`μ`/`η` binaries of
//!   Eqs. 19–20),
//! - the assay completion time `T_assay` (Eq. 22),
//!
//! minimizing `β·L_wash + γ·T_assay` (the `α·N_wash` term is fixed once the
//! groups are formed; group merging handles it upstream). The greedy
//! insertion result warm-starts branch-and-bound, so the ILP can only
//! improve on it.

use std::collections::HashMap;

use pdw_assay::{AssayGraph, OpId};
use pdw_biochip::{Chip, CELL_PITCH_MM};
use pdw_ilp::{LinExpr, Model, Relation, SolveOptions, VarId};
use pdw_sched::{Schedule, TaskId, TaskKind, Time};

use crate::config::PdwConfig;
use crate::greedy::GreedyOutcome;
use crate::groups::WashGroup;

/// A retimed schedule extracted from the ILP.
#[derive(Debug, Clone)]
pub(crate) struct Refined {
    /// The optimized schedule (base tasks retimed, washes placed).
    pub schedule: Schedule,
    /// Whether the solver proved optimality within the budget.
    pub optimal: bool,
    /// Branch-and-bound nodes processed.
    pub nodes: u64,
    /// Detailed solver counters and timings.
    pub stats: pdw_ilp::SolverStats,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    Op(OpId),
    Task(TaskId),
}

/// Builds and solves the retiming ILP. Returns `None` when the solver finds
/// nothing within the budget (callers fall back to the greedy schedule).
pub(crate) fn refine_with_ilp(
    chip: &Chip,
    graph: &AssayGraph,
    groups: &[WashGroup],
    greedy: &GreedyOutcome,
    config: &PdwConfig,
) -> Option<Refined> {
    // Work on the greedy schedule *without* its wash tasks: base tasks are
    // retimed, washes re-placed. Integrated removals stay deleted.
    let mut base = greedy.schedule.clone();
    let wash_ids: Vec<TaskId> = base
        .tasks()
        .filter(|(_, t)| t.kind().is_wash())
        .map(|(id, _)| id)
        .collect();
    let mut greedy_wash: HashMap<usize, (usize, Time)> = HashMap::new();
    for p in &greedy.placements {
        let t = base.task(p.task);
        greedy_wash.insert(p.group, (p.candidate, t.start()));
    }
    for id in wash_ids {
        base.remove_task(id);
    }

    let horizon = (greedy.schedule.makespan() as f64 * 2.0 + 64.0).max(256.0);
    let big_m = horizon;

    let mut m = Model::new("pdw");

    // Start-time variables.
    let mut op_var: HashMap<OpId, VarId> = HashMap::new();
    for sop in base.ops() {
        op_var.insert(
            sop.op,
            m.continuous(&format!("s_{}", sop.op), 0.0, horizon, 0.0),
        );
    }
    let mut task_var: HashMap<TaskId, VarId> = HashMap::new();
    for (id, _) in base.tasks() {
        task_var.insert(id, m.continuous(&format!("s_{id}"), 0.0, horizon, 0.0));
    }
    let dur_of = |n: Node| -> Time {
        match n {
            Node::Op(o) => base.scheduled_op(o).expect("op scheduled").duration,
            Node::Task(t) => base.task(t).duration(),
        }
    };
    let var_of = |n: Node| -> VarId {
        match n {
            Node::Op(o) => op_var[&o],
            Node::Task(t) => task_var[&t],
        }
    };

    // ---- Base precedence edges (orders fixed to the base schedule). ----
    let mut edges: HashMap<(Node, Node), Time> = HashMap::new();
    let add_edge = |edges: &mut HashMap<(Node, Node), Time>, a: Node, b: Node, w: Time| {
        let e = edges.entry((a, b)).or_insert(0);
        *e = (*e).max(w);
    };

    // Structural chains: deliveries/removals feed operations, transports
    // leave operations, output removals follow operations.
    for (id, task) in base.tasks() {
        match *task.kind() {
            TaskKind::Injection { op, .. } => {
                add_edge(&mut edges, Node::Task(id), Node::Op(op), task.duration());
            }
            TaskKind::Transport { from_op, to_op } => {
                add_edge(
                    &mut edges,
                    Node::Op(from_op),
                    Node::Task(id),
                    dur_of(Node::Op(from_op)),
                );
                add_edge(&mut edges, Node::Task(id), Node::Op(to_op), task.duration());
            }
            TaskKind::ExcessRemoval { op } => {
                add_edge(&mut edges, Node::Task(id), Node::Op(op), task.duration());
            }
            TaskKind::OutputRemoval { op } => {
                add_edge(
                    &mut edges,
                    Node::Op(op),
                    Node::Task(id),
                    dur_of(Node::Op(op)),
                );
            }
            TaskKind::Wash { .. } => unreachable!("washes were removed"),
        }
    }
    // Operation dependencies (Eq. 2).
    for (parent, child) in graph.dep_edges() {
        add_edge(
            &mut edges,
            Node::Op(parent),
            Node::Op(child),
            dur_of(Node::Op(parent)),
        );
    }

    // Cell-sharing pairs, ordered as in the base schedule (ε of Eq. 8 fixed)
    // — including operation executions as footprint intervals.
    let mut intervals: Vec<(Node, Time, Vec<pdw_biochip::Coord>)> = Vec::new();
    for (id, task) in base.tasks() {
        intervals.push((Node::Task(id), task.start(), task.path().cells().to_vec()));
    }
    for sop in base.ops() {
        intervals.push((
            Node::Op(sop.op),
            sop.start,
            chip.device(sop.device).footprint().to_vec(),
        ));
    }
    intervals.sort_by_key(|(_, s, _)| *s);
    for i in 0..intervals.len() {
        for j in i + 1..intervals.len() {
            let (a, _, ca) = &intervals[i];
            let (b, _, cb) = &intervals[j];
            if ca.iter().any(|c| cb.contains(c)) {
                add_edge(&mut edges, *a, *b, dur_of(*a));
            }
        }
    }

    // Transitive reduction: drop edges implied by longer paths.
    let reduced = transitive_reduce(&edges, &intervals);
    for ((a, b), w) in &reduced {
        // s_b - s_a >= w
        m.constraint(
            [(var_of(*b), 1.0), (var_of(*a), -1.0)],
            Relation::Ge,
            *w as f64,
        );
    }

    // Reachability in the precedence DAG, for pruning wash order binaries:
    // a node with a precedence path *to* a wash's source ends before the
    // wash starts; a node reachable *from* a deadline use starts after the
    // wash ends. Neither needs a μ binary.
    let node_index: HashMap<Node, usize> = intervals
        .iter()
        .enumerate()
        .map(|(i, (n, _, _))| (*n, i))
        .collect();
    let nn = intervals.len();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nn];
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); nn];
    for (a, b) in edges.keys() {
        succ[node_index[a]].push(node_index[b]);
        pred[node_index[b]].push(node_index[a]);
    }
    let reach = |seeds: Vec<usize>, adj: &Vec<Vec<usize>>| -> Vec<bool> {
        let mut seen = vec![false; nn];
        let mut stack = seeds;
        while let Some(u) = stack.pop() {
            if seen[u] {
                continue;
            }
            seen[u] = true;
            stack.extend(adj[u].iter().copied());
        }
        seen
    };
    let source_node = |s: &pdw_contam::Source| -> Option<usize> {
        match s {
            pdw_contam::Source::Task(t) => node_index.get(&Node::Task(*t)).copied(),
            pdw_contam::Source::Op(o) => node_index.get(&Node::Op(*o)).copied(),
        }
    };

    // ---- Wash variables. ----
    let beta = config.weights.beta;
    let gamma = config.weights.gamma;
    let t_assay = m.continuous("T_assay", 0.0, horizon, gamma);

    struct WashVars {
        start: VarId,
        y: Vec<VarId>,
    }
    let mut wash_vars: Vec<WashVars> = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let start = m.continuous(&format!("w{gi}_s"), 0.0, horizon, 0.0);
        let y: Vec<VarId> = g
            .candidates
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                m.binary(
                    &format!("w{gi}_y{ci}"),
                    beta * c.path.len() as f64 * CELL_PITCH_MM,
                )
            })
            .collect();
        // Exactly one candidate (Eq. 12–15 are satisfied by construction).
        let expr: LinExpr = y.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>().into();
        m.constraint(expr, Relation::Eq, 1.0);
        wash_vars.push(WashVars { start, y });
    }
    // Wash end expression: e_g = s_g + Σ dur_c y_c.
    let wash_end_terms = |gi: usize| -> Vec<(VarId, f64)> {
        let mut terms = vec![(wash_vars[gi].start, 1.0)];
        for (ci, &yv) in wash_vars[gi].y.iter().enumerate() {
            terms.push((yv, groups[gi].candidates[ci].duration as f64));
        }
        terms
    };

    // Window constraints (Eq. 16): after sources, before uses.
    for (gi, g) in groups.iter().enumerate() {
        for &src in &g.ready_refs() {
            let (v, d) = match src {
                pdw_contam::Source::Task(t) => {
                    if base.get_task(t).is_none() {
                        continue; // integrated away; residue no longer exists
                    }
                    (task_var[&t], base.task(t).duration())
                }
                pdw_contam::Source::Op(o) => (op_var[&o], dur_of(Node::Op(o))),
            };
            // s_g >= s_src + dur_src
            m.constraint(
                [(wash_vars[gi].start, 1.0), (v, -1.0)],
                Relation::Ge,
                d as f64,
            );
        }
        for &usage in &g.deadline_refs() {
            let bounds: Vec<VarId> = match usage {
                pdw_contam::Source::Task(t) => match task_var.get(&t) {
                    Some(&v) => vec![v],
                    None => continue,
                },
                pdw_contam::Source::Op(o) => {
                    // The wash must end before the op's occupancy begins:
                    // before the op itself and before each of its deliveries.
                    let mut vs = vec![op_var[&o]];
                    for (id, task) in base.tasks() {
                        let feeds = match *task.kind() {
                            TaskKind::Injection { op, .. } | TaskKind::ExcessRemoval { op } => {
                                op == o
                            }
                            TaskKind::Transport { to_op, .. } => to_op == o,
                            _ => false,
                        };
                        if feeds {
                            vs.push(task_var[&id]);
                        }
                    }
                    vs
                }
            };
            for v in bounds {
                // e_g <= s_use   =>   s_use - e_g >= 0
                let mut terms = vec![(v, 1.0)];
                for (tv, c) in wash_end_terms(gi) {
                    terms.push((tv, -c));
                }
                m.constraint(terms, Relation::Ge, 0.0);
            }
        }
    }

    // Wash-vs-task and wash-vs-op conflicts (Eqs. 19): one order binary per
    // (group, node) pair that shares cells with any candidate; constraints
    // are relaxed by `1 - y_c` so only the chosen candidate binds.
    let mut mu: HashMap<(usize, Node), VarId> = HashMap::new();
    for (gi, g) in groups.iter().enumerate() {
        let before = reach(
            g.ready_refs().iter().filter_map(source_node).collect(),
            &pred,
        );
        let deadline_refs = g.deadline_refs();
        let mut after_seeds: Vec<usize> = deadline_refs.iter().filter_map(source_node).collect();
        // An op-typed deadline also bounds the wash by the op's deliveries
        // (occupancy start), so their descendants are ordered after too.
        for d in &deadline_refs {
            if let pdw_contam::Source::Op(o) = d {
                for (id, task) in base.tasks() {
                    let feeds = match *task.kind() {
                        TaskKind::Injection { op, .. } | TaskKind::ExcessRemoval { op } => op == *o,
                        TaskKind::Transport { to_op, .. } => to_op == *o,
                        _ => false,
                    };
                    if feeds {
                        after_seeds.push(node_index[&Node::Task(id)]);
                    }
                }
            }
        }
        let after = reach(after_seeds, &succ);
        let (gci, gstart) = greedy_wash[&gi];
        let gend = gstart + g.candidates[gci].duration;
        for (node, _, cells) in &intervals {
            let ni = node_index[node];
            if before[ni] || after[ni] {
                continue; // order already forced by window + precedence
            }
            let conflicting: Vec<usize> = g
                .candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| cells.iter().any(|x| c.path.contains(*x)))
                .map(|(ci, _)| ci)
                .collect();
            if conflicting.is_empty() {
                continue;
            }
            // Far-apart pairs keep their greedy order as a plain linear
            // constraint; only temporally close pairs get an order binary.
            // (A fixed order is a restriction, never an unsoundness.)
            const NEAR_S: Time = 30;
            let node_start = match node {
                Node::Op(o) => base.scheduled_op(*o).expect("scheduled").start,
                Node::Task(t) => base.task(*t).start(),
            };
            let node_end = node_start + dur_of(*node);
            if node_end + NEAR_S <= gstart {
                // Node well before the wash: keep node → wash.
                m.constraint(
                    [(wash_vars[gi].start, 1.0), (var_of(*node), -1.0)],
                    Relation::Ge,
                    dur_of(*node) as f64,
                );
                continue;
            }
            if gend + NEAR_S <= node_start {
                // Wash well before the node: keep wash → node (end expr).
                let mut terms = vec![(var_of(*node), 1.0)];
                for (tv, c) in wash_end_terms(gi) {
                    terms.push((tv, -c));
                }
                m.constraint(terms, Relation::Ge, 0.0);
                continue;
            }
            let mv = *mu
                .entry((gi, *node))
                .or_insert_with(|| m.binary(&format!("mu_w{gi}_{node:?}"), 0.0));
            let nv = var_of(*node);
            let nd = dur_of(*node) as f64;
            for ci in conflicting {
                let yv = wash_vars[gi].y[ci];
                // μ = 0 binds: wash ends before the node starts:
                //   s_node - e_g ≥ -M·μ - M(1 - y_c)
                //   ⇔ s_node - e_g + M·μ - M·y_c ≥ -M
                let mut terms = vec![(nv, 1.0), (mv, big_m), (yv, -big_m)];
                for (tv, c) in wash_end_terms(gi) {
                    terms.push((tv, -c));
                }
                m.constraint(terms, Relation::Ge, -big_m);
                // μ = 1 binds: wash starts after the node ends:
                //   s_g - s_node ≥ d - M(1-μ) - M(1 - y_c)
                //   ⇔ s_g - s_node - M·μ - M·y_c ≥ d - 2M
                m.constraint(
                    [
                        (wash_vars[gi].start, 1.0),
                        (nv, -1.0),
                        (mv, -big_m),
                        (yv, -big_m),
                    ],
                    Relation::Ge,
                    nd - 2.0 * big_m,
                );
            }
        }
    }

    // Wash-vs-wash conflicts (Eq. 20).
    let mut eta: HashMap<(usize, usize), VarId> = HashMap::new();
    for gi in 0..groups.len() {
        for gj in gi + 1..groups.len() {
            let pairs: Vec<(usize, usize)> = groups[gi]
                .candidates
                .iter()
                .enumerate()
                .flat_map(|(ci, a)| {
                    groups[gj]
                        .candidates
                        .iter()
                        .enumerate()
                        .filter(move |(_, b)| a.path.overlaps(&b.path))
                        .map(move |(cj, _)| (ci, cj))
                })
                .collect();
            if pairs.is_empty() {
                continue;
            }
            // Washes far apart in the greedy schedule keep their order as a
            // single linear constraint; only close pairs get a binary.
            const NEAR_S: Time = 30;
            let (ci_g, si) = greedy_wash[&gi];
            let (cj_g, sj) = greedy_wash[&gj];
            let ei = si + groups[gi].candidates[ci_g].duration;
            let ej = sj + groups[gj].candidates[cj_g].duration;
            if ei + NEAR_S <= sj {
                // gi well before gj: e_gi <= s_gj.
                let mut terms = vec![(wash_vars[gj].start, 1.0)];
                for (tv, c) in wash_end_terms(gi) {
                    terms.push((tv, -c));
                }
                m.constraint(terms, Relation::Ge, 0.0);
                continue;
            }
            if ej + NEAR_S <= si {
                let mut terms = vec![(wash_vars[gi].start, 1.0)];
                for (tv, c) in wash_end_terms(gj) {
                    terms.push((tv, -c));
                }
                m.constraint(terms, Relation::Ge, 0.0);
                continue;
            }
            let ev = m.binary(&format!("eta_{gi}_{gj}"), 0.0);
            eta.insert((gi, gj), ev);
            for (ci, cj) in pairs {
                let yi = wash_vars[gi].y[ci];
                let yj = wash_vars[gj].y[cj];
                // η = 1 binds: wash gi ends before gj starts:
                //   s_gj - e_gi ≥ -M(1-η) - M(1-y_i) - M(1-y_j)
                //   ⇔ s_gj - e_gi - M·η - M·y_i - M·y_j ≥ -3M
                let mut terms = vec![
                    (wash_vars[gj].start, 1.0),
                    (ev, -big_m),
                    (yi, -big_m),
                    (yj, -big_m),
                ];
                for (tv, c) in wash_end_terms(gi) {
                    terms.push((tv, -c));
                }
                m.constraint(terms, Relation::Ge, -3.0 * big_m);
                // η = 0 binds: wash gj ends before gi starts:
                //   s_gi - e_gj ≥ -M·η - M(1-y_i) - M(1-y_j)
                //   ⇔ s_gi - e_gj + M·η - M·y_i - M·y_j ≥ -2M
                let mut terms = vec![
                    (wash_vars[gi].start, 1.0),
                    (ev, big_m),
                    (yi, -big_m),
                    (yj, -big_m),
                ];
                for (tv, c) in wash_end_terms(gj) {
                    terms.push((tv, -c));
                }
                m.constraint(terms, Relation::Ge, -2.0 * big_m);
            }
        }
    }

    // Integrated removals (ψ fixed from the greedy pass): the wash that
    // absorbed a removal must keep covering its excess cells — candidates
    // that do not cover them are forbidden for that group.
    for p in &greedy.placements {
        let g = &groups[p.group];
        for (_, removed) in &greedy.integrated {
            let rop = match *removed.kind() {
                TaskKind::ExcessRemoval { op } => op,
                _ => continue,
            };
            let excess = crate::greedy::excess_targets(chip, &base, rop, removed);
            if excess.is_empty()
                || !excess
                    .iter()
                    .all(|c| g.candidates[p.candidate].path.contains(*c))
            {
                continue; // absorbed by a different group's wash
            }
            for (ci, cand) in g.candidates.iter().enumerate() {
                if !excess.iter().all(|c| cand.path.contains(*c)) {
                    m.constraint([(wash_vars[p.group].y[ci], 1.0)], Relation::Eq, 0.0);
                }
            }
        }
    }

    // T_assay bounds every end (Eq. 22, extended to tasks and washes).
    for sop in base.ops() {
        m.constraint(
            [(t_assay, 1.0), (op_var[&sop.op], -1.0)],
            Relation::Ge,
            sop.duration as f64,
        );
    }
    for (id, task) in base.tasks() {
        m.constraint(
            [(t_assay, 1.0), (task_var[&id], -1.0)],
            Relation::Ge,
            task.duration() as f64,
        );
    }
    for gi in 0..groups.len() {
        let mut terms = vec![(t_assay, 1.0)];
        for (tv, c) in wash_end_terms(gi) {
            terms.push((tv, -c));
        }
        m.constraint(terms, Relation::Ge, 0.0);
    }

    // ---- Warm start from the greedy solution. ----
    let mut warm = vec![0.0; m.num_vars()];
    for sop in base.ops() {
        warm[op_var[&sop.op].0] = sop.start as f64;
    }
    for (id, task) in base.tasks() {
        warm[task_var[&id].0] = task.start() as f64;
    }
    for (gi, wv) in wash_vars.iter().enumerate() {
        let (chosen, start) = greedy_wash[&gi];
        warm[wv.start.0] = start as f64;
        for (ci, &yv) in wv.y.iter().enumerate() {
            warm[yv.0] = if ci == chosen { 1.0 } else { 0.0 };
        }
    }
    warm[t_assay.0] = greedy.schedule.makespan() as f64;
    // Order binaries consistent with greedy times.
    for ((gi, node), &mv) in &mu {
        let (ci, wstart) = greedy_wash[gi];
        let wend = wstart + groups[*gi].candidates[ci].duration;
        let node_start = match node {
            Node::Op(o) => greedy.schedule.scheduled_op(*o).expect("scheduled").start,
            Node::Task(t) => greedy.schedule.task(*t).start(),
        };
        // μ = 0 ⇔ the wash ends before the node starts.
        warm[mv.0] = if wend <= node_start { 0.0 } else { 1.0 };
    }
    for ((gi, gj), &ev) in &eta {
        let (ci, si) = greedy_wash[gi];
        let (_, sj) = greedy_wash[gj];
        let ei = si + groups[*gi].candidates[ci].duration;
        // η = 1 ⇔ wash gi runs before wash gj.
        warm[ev.0] = if ei <= sj { 1.0 } else { 0.0 };
    }

    // A dense-tableau LP of r rows costs roughly r × (vars + r) doubles.
    // Refuse models whose relaxation would not even fit one solve into the
    // budget — the greedy schedule stands (best-effort semantics).
    let rows = m.num_constraints() as u64;
    let cols = m.num_vars() as u64 + 2 * rows; // slacks + worst-case artificials
    if std::env::var_os("PDW_MODEL_DEBUG").is_some() {
        eprintln!(
            "pdw ilp model: {} rows x {} vars (tableau ~{} MB)",
            rows,
            m.num_vars(),
            rows * cols * 8 / 1_000_000
        );
    }
    if rows * cols > 40_000_000 {
        return None;
    }

    let options = SolveOptions {
        time_limit: config.ilp_budget,
        warm_start: Some(warm),
        threads: config.threads,
        ..SolveOptions::default()
    };
    let sol = pdw_ilp::solve(&m, &options).ok()?;

    // ---- Extract: floor the starts (difference constraints with integer
    // offsets stay satisfied under uniform flooring). ----
    let mut schedule = base.clone();
    for op in schedule.ops_mut() {
        op.start = sol.value(op_var[&op.op]).floor() as Time;
    }
    let ids: Vec<TaskId> = schedule.tasks().map(|(id, _)| id).collect();
    for id in ids {
        let s = sol.value(task_var[&id]).floor() as Time;
        schedule.task_mut(id).set_start(s);
    }
    for (gi, g) in groups.iter().enumerate() {
        let ci = wash_vars[gi]
            .y
            .iter()
            .position(|&yv| sol.bool_value(yv))
            .expect("exactly one candidate is chosen");
        let cand = &g.candidates[ci];
        schedule.push_task(pdw_sched::Task::new(
            TaskKind::Wash {
                targets: g.targets(),
            },
            cand.path.clone(),
            sol.value(wash_vars[gi].start).floor() as Time,
            cand.duration,
            pdw_assay::FluidType::BUFFER,
        ));
    }

    Some(Refined {
        schedule,
        optimal: sol.status == pdw_ilp::SolveStatus::Optimal,
        nodes: sol.nodes,
        stats: sol.stats,
    })
}

/// Transitive reduction of the precedence edges: an edge `(a, b, w)` is
/// dropped when some other path from `a` to `b` already has length ≥ `w`.
fn transitive_reduce(
    edges: &HashMap<(Node, Node), Time>,
    intervals: &[(Node, Time, Vec<pdw_biochip::Coord>)],
) -> HashMap<(Node, Node), Time> {
    // Topological order: base start times (ties by discovery order).
    let order: Vec<Node> = intervals.iter().map(|(n, _, _)| *n).collect();
    let index: HashMap<Node, usize> = order.iter().enumerate().map(|(i, &n)| (n, i)).collect();

    let mut out: HashMap<usize, Vec<(usize, Time)>> = HashMap::new();
    for (&(a, b), &w) in edges {
        out.entry(index[&a]).or_default().push((index[&b], w));
    }

    let mut kept = HashMap::new();
    for (&(a, b), &w) in edges {
        let (ia, ib) = (index[&a], index[&b]);
        // Longest path a→b not using the direct edge.
        let mut dist: Vec<Option<Time>> = vec![None; order.len()];
        dist[ia] = Some(0);
        for u in ia..=ib {
            let Some(du) = dist[u] else { continue };
            if let Some(succ) = out.get(&u) {
                for &(v, ew) in succ {
                    if u == ia && v == ib {
                        continue; // skip the direct edge itself
                    }
                    if v <= ib {
                        let nd = du + ew;
                        if dist[v].is_none_or(|d| nd > d) {
                            dist[v] = Some(nd);
                        }
                    }
                }
            }
        }
        if dist[ib].is_none_or(|d| d < w) {
            kept.insert((a, b), w);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CandidatePolicy, PdwConfig};
    use crate::greedy::insert_washes;
    use crate::groups::{build_groups, merge_groups};
    use pdw_assay::benchmarks;
    use pdw_contam::{analyze, NecessityOptions};
    use pdw_sim::Metrics;
    use pdw_synth::synthesize;

    #[test]
    fn transitive_reduction_drops_implied_edges() {
        use pdw_assay::OpId;
        let a = Node::Op(OpId(0));
        let b = Node::Op(OpId(1));
        let c = Node::Op(OpId(2));
        let mut edges = HashMap::new();
        edges.insert((a, b), 3);
        edges.insert((b, c), 4);
        edges.insert((a, c), 5); // implied: a→b→c has length 7 ≥ 5
        let intervals = vec![(a, 0, vec![]), (b, 3, vec![]), (c, 7, vec![])];
        let reduced = transitive_reduce(&edges, &intervals);
        assert!(reduced.contains_key(&(a, b)));
        assert!(reduced.contains_key(&(b, c)));
        assert!(!reduced.contains_key(&(a, c)), "implied edge kept");
    }

    #[test]
    fn transitive_reduction_keeps_tighter_direct_edges() {
        use pdw_assay::OpId;
        let a = Node::Op(OpId(0));
        let b = Node::Op(OpId(1));
        let c = Node::Op(OpId(2));
        let mut edges = HashMap::new();
        edges.insert((a, b), 1);
        edges.insert((b, c), 1);
        edges.insert((a, c), 9); // tighter than the 2-long path: must stay
        let intervals = vec![(a, 0, vec![]), (b, 1, vec![]), (c, 9, vec![])];
        let reduced = transitive_reduce(&edges, &intervals);
        assert!(reduced.contains_key(&(a, c)));
    }

    /// The ILP, warm-started from greedy, never returns a worse objective
    /// than the greedy schedule it started from.
    #[test]
    fn ilp_never_regresses_the_greedy_objective() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let a = analyze(&s.chip, &bench.graph, &s.schedule, NecessityOptions::full());
        let config = PdwConfig {
            ilp_budget: std::time::Duration::from_secs(3),
            ..PdwConfig::default()
        };
        let groups = build_groups(
            &s.chip,
            &s.schedule,
            &a.requirements,
            CandidatePolicy::Shortest,
            config.candidates,
            0,
        );
        let groups = crate::groups::split_into_spot_clusters(
            &s.chip,
            &s.schedule,
            groups,
            4,
            CandidatePolicy::Shortest,
            config.candidates,
            0,
        );
        let groups = merge_groups(&s.chip, &s.schedule, groups, config.candidates);
        let greedy = insert_washes(&s.chip, &s.schedule, &groups, config.integration);
        let greedy_metrics = Metrics::measure(&bench.graph, &greedy.schedule);

        if let Some(refined) =
            refine_with_ilp(&s.chip, &bench.graph, &greedy.groups, &greedy, &config)
        {
            // The refined schedule must validate, and its makespan must not
            // exceed the greedy one (γ > 0 and the warm start is feasible).
            pdw_sim::validate(&s.chip, &bench.graph, &refined.schedule).unwrap();
            let m = Metrics::measure(&bench.graph, &refined.schedule);
            let w = &config.weights;
            let obj = |x: &Metrics| {
                w.alpha * x.n_wash as f64 + w.beta * x.l_wash_mm + w.gamma * x.t_assay as f64
            };
            assert!(
                obj(&m) <= obj(&greedy_metrics) + 1e-6,
                "ILP objective {} worse than greedy {}",
                obj(&m),
                obj(&greedy_metrics)
            );
        }
    }
}
