//! Deterministic parallel map over a work list.
//!
//! Same worker pattern as the ILP's branch-and-bound pool: scoped threads
//! pulling indices off a shared atomic counter, writing results into
//! per-index slots. Because every item's result lands in its own slot, the
//! output order is the input order regardless of which worker ran what —
//! callers get bit-identical results at any thread count as long as the
//! closure itself is a pure function of the item.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Resolves a thread-count knob: `0` means all available cores.
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Maps `f` over `items` with up to `threads` workers (0 = all cores), each
/// worker holding one context built by `init` (e.g. a routing scratch).
/// Results come back in input order.
pub(crate) fn par_map_ctx<T, R, C, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len());
    if threads <= 1 {
        let mut ctx = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut ctx, i, t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut ctx = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = f(&mut ctx, i, &items[i]);
                    *slots[i].lock().expect("slot lock poisoned") = Some(r);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot lock poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// Like [`par_map_ctx`], but a panic while mapping one item becomes that
/// item's `Err(message)` instead of tearing down the whole map: siblings
/// keep running, results stay in input order, and the worker's context
/// survives for the next item (anything the panicking call checked out of
/// it — e.g. a pooled routing scratch — is returned by `Drop` during
/// unwinding, so the pool does not leak).
///
/// The closure is wrapped in [`AssertUnwindSafe`]: a caller must only pass
/// contexts whose invariants hold across an unwound item, which is true of
/// the crate's scratch pools.
pub(crate) fn try_par_map_ctx<T, R, C, I, F>(
    items: &[T],
    threads: usize,
    init: I,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    I: Fn() -> C + Sync,
    F: Fn(&mut C, usize, &T) -> R + Sync,
{
    par_map_ctx(items, threads, init, |ctx, i, t| {
        std::panic::catch_unwind(AssertUnwindSafe(|| f(ctx, i, t))).map_err(panic_message)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order_at_any_thread_count() {
        let items: Vec<usize> = (0..97).collect();
        let serial = par_map_ctx(&items, 1, || (), |(), i, &x| (i, x * x));
        for threads in [2, 3, 8] {
            let par = par_map_ctx(&items, threads, || (), |(), i, &x| (i, x * x));
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = par_map_ctx(&[] as &[u32], 8, || (), |(), _, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn one_panicking_item_does_not_poison_its_siblings() {
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 4] {
            let out = try_par_map_ctx(
                &items,
                threads,
                || (),
                |(), _, &x| {
                    assert!(x != 17, "item 17 exploded");
                    x * 2
                },
            );
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i == 17 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(msg.contains("item 17 exploded"), "got: {msg}");
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn panicking_item_leaves_the_worker_context_usable() {
        // The context tallies successful items; the worker that hit the
        // panic must keep its context and keep processing.
        use std::sync::atomic::AtomicUsize;
        static DONE: AtomicUsize = AtomicUsize::new(0);
        struct Tally(usize);
        impl Drop for Tally {
            fn drop(&mut self) {
                DONE.fetch_add(self.0, Ordering::Relaxed);
            }
        }
        let items: Vec<u32> = (0..30).collect();
        let out = try_par_map_ctx(
            &items,
            2,
            || Tally(0),
            |t, _, &x| {
                assert!(x != 5, "boom");
                t.0 += 1;
                x
            },
        );
        assert_eq!(out.iter().filter(|r| r.is_ok()).count(), 29);
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
        assert_eq!(DONE.load(Ordering::Relaxed), 29);
    }

    #[test]
    fn context_is_per_worker() {
        // Each worker counts its own items; the counts must sum to the total.
        use std::sync::atomic::AtomicUsize;
        static TOTAL: AtomicUsize = AtomicUsize::new(0);
        struct Tally(usize);
        impl Drop for Tally {
            fn drop(&mut self) {
                TOTAL.fetch_add(self.0, Ordering::Relaxed);
            }
        }
        let items: Vec<u32> = (0..50).collect();
        let _ = par_map_ctx(
            &items,
            4,
            || Tally(0),
            |t, _, &x| {
                t.0 += 1;
                x
            },
        );
        assert_eq!(TOTAL.load(Ordering::Relaxed), 50);
    }
}
