//! Partitioned planning: cut the chip into regions, plan each region's
//! washes in parallel against its own sub-chip view, coordinate the
//! cross-boundary remainder over the cut interfaces, and stitch everything
//! on one timeline.
//!
//! The whole-chip pipeline walls on mega-grids: candidate enumeration and
//! the port-reachability fields are super-linear in chip area. The
//! partitioned pipeline ([`plan_partitioned`]) instead
//!
//! 1. cuts the grid into `K` column bands along low-traffic boundaries
//!    ([`pdw_biochip::partition`]),
//! 2. buckets wash requirements by the **span** of their contaminating
//!    path — the contiguous run of bands the source task's flow path
//!    touches. Single-band buckets plan on their region's view; cross-cut
//!    buckets plan on a carved union of exactly the bands they span
//!    ([`pdw_biochip::span_view`]). A requirement its view cannot wash
//!    alone (no enabled port pair, or the cell is unreachable inside the
//!    view) joins the whole-chip **seam set**,
//! 3. plans every live bucket's front end *in parallel* — each worker sees
//!    only its bucket's carved view, so BFS fields, routing, and candidate
//!    enumeration all shrink to the span; regions with no necessity of
//!    their own are skipped outright,
//! 4. plans the seam set on the whole chip and lets a small coordination
//!    ILP pick, per cut-crossing group, the candidate path that balances
//!    crossings over the cut interfaces,
//! 5. stitches all groups with one greedy sweep-line insertion on the full
//!    chip and re-validates the result end to end.
//!
//! Because every region view preserves the parent grid's dimensions,
//! coordinates, device ids, and port ids, a path enumerated inside a region
//! is directly valid on the whole chip — stitching needs no translation.
//!
//! `K ≤ 1` (and a partition that clamps to one region) delegates verbatim
//! to the unpartitioned ladder, so its output is bit-identical to
//! [`plan_resilient`](crate::plan_resilient) at any thread count. For
//! `K ≥ 2` the partitioned plan is attempted as its own ladder rung,
//! re-verified by the fault-aware validator and the contamination oracle,
//! and on any rejection the standard PDW → greedy → DAWO ladder takes over
//! with the remaining budget.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pdw_assay::benchmarks::Benchmark;
use pdw_biochip::partition::{Partition, Region};
use pdw_biochip::{CellKind, Chip, Coord, FlowPortId, ScratchPool, WastePortId};
use pdw_contam::{Classification, NecessityOptions, Source, WashRequirement};
use pdw_ilp::{solve, Model, Relation, SolveOptions, SolveStatus, VarId};
use pdw_sched::Schedule;
use pdw_synth::Synthesis;

use crate::codec::{self, FrameType};
use crate::config::{CandidatePolicy, PdwConfig};
use crate::context::PlanContext;
use crate::deadline::Deadline;
use crate::greedy::insert_washes_protected;
use crate::groups::{
    build_groups_pooled, merge_groups_pooled, split_into_spot_clusters_pooled, WashGroup,
};
use crate::par::{panic_message, resolve_threads, try_par_map_ctx};
use crate::pdw::{finish, run_pipeline, PdwError, SolverReport, WashResult};
use crate::planner::Planner;
use crate::resilient::RungRejection;
use crate::resilient::{attempt_rung, plan_resilient_ctx, PlanOutcome, RungAttempt, RungKind};
use crate::stats::StageTimer;
use crate::worker::{RegionRequest, WorkerRequest, WorkerResponse};

/// A [`Planner`] that runs the partitioned pipeline with a fixed region
/// count. With `partitions ≤ 1` it is the unpartitioned pipeline.
pub struct PartitionedPlanner {
    config: PdwConfig,
    partitions: usize,
}

impl PartitionedPlanner {
    /// A partitioned planner cutting the chip into (up to) `partitions`
    /// regions; `config` shapes each region's front end.
    pub fn new(config: PdwConfig, partitions: usize) -> Self {
        Self { config, partitions }
    }
}

impl Planner for PartitionedPlanner {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn plan(&self, ctx: &mut PlanContext<'_>) -> Result<WashResult, PdwError> {
        if self.partitions <= 1 {
            run_pipeline(ctx, &self.config)
        } else {
            run_partitioned_pipeline(ctx, &self.config, self.partitions, &InProcessExecutor)
        }
    }
}

/// One region front-end job: a carved view's chip plus the requirements it
/// plans. Region views preserve the parent grid's coordinates and ids, so
/// the job is self-contained — an executor may plan it on another thread or
/// in another process and the groups come back directly valid.
#[derive(Debug)]
pub struct RegionJob<'a> {
    /// The carved view's chip (parent dimensions, band faults applied).
    pub chip: &'a Chip,
    /// The wash requirements this job's front end plans.
    pub requirements: &'a [WashRequirement],
}

/// A typed record of something the subprocess transport had to do — where
/// planning happened changed, what was planned did not.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecutorEvent {
    /// A worker process failed mid-job (died, closed its pipe, or returned
    /// a corrupt frame); the job was replanned in-process.
    WorkerFailed {
        /// The executor lane whose worker failed.
        worker: usize,
        /// The job index (input order) that hit the failure.
        job: usize,
        /// What the transport observed.
        detail: String,
    },
    /// A lane respawned its worker process after a failure.
    WorkerRespawned {
        /// The executor lane that respawned.
        worker: usize,
    },
    /// A lane burned its whole per-run respawn budget and stopped
    /// respawning; its remaining jobs degrade to in-process planning.
    RespawnBudgetExhausted {
        /// The executor lane that gave up on its worker.
        worker: usize,
        /// The respawn budget that was exhausted.
        budget: usize,
    },
}

/// Bounds on worker respawning for one executor run. After a lane's
/// worker fails, the lane waits `base_backoff · 2^(k−1)` before its k-th
/// consecutive respawn attempt (capped at `max_backoff`), and stops
/// respawning entirely once it has burned `budget` respawns this run —
/// a persistently dying worker (`PDW_WORKER_CHAOS=die:1`) degrades the
/// lane to in-process planning instead of hot-looping spawn/die forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespawnPolicy {
    /// Respawns allowed per lane per run (the initial spawn is free).
    pub budget: usize,
    /// Backoff before the first respawn; doubles per consecutive failure.
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff.
    pub max_backoff: Duration,
}

impl Default for RespawnPolicy {
    fn default() -> Self {
        RespawnPolicy {
            budget: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RespawnPolicy {
    /// The delay before a respawn attempt following `consecutive_failures`
    /// back-to-back failures (≥ 1).
    pub fn backoff(&self, consecutive_failures: u32) -> Duration {
        let exp = consecutive_failures.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(1u32 << exp)
            .min(self.max_backoff)
    }
}

/// Where region front ends run. The partitioned pipeline is generic over
/// this seam: [`InProcessExecutor`] plans on scoped threads (the classic
/// path), [`SubprocessExecutor`] ships each job to a `pdw worker` process
/// over the canonical codec. Both are bit-identical by construction — the
/// front end is a pure function of `(chip, schedule, requirements,
/// candidates, merging)` and the codec round-trips chips exactly.
pub trait RegionExecutor: Sync {
    /// Human-readable executor name (for logs and stats).
    fn name(&self) -> &'static str;

    /// Plans every job's front end; results come back in job order. A
    /// refused job — a front-end panic, in any process — is its
    /// `Err(message)`; the pipeline replans refusals as whole-chip seam
    /// work, exactly as before this seam existed.
    fn run(
        &self,
        jobs: &[RegionJob<'_>],
        schedule: &Schedule,
        candidates: usize,
        merging: bool,
        threads: usize,
    ) -> Vec<Result<Vec<WashGroup>, String>>;

    /// Transport events recorded by the most recent [`run`](Self::run)
    /// (always empty for in-process execution).
    fn events(&self) -> Vec<ExecutorEvent> {
        Vec::new()
    }

    /// `(jobs answered by a subprocess worker, jobs that fell back
    /// in-process after a transport failure)` for the most recent run.
    fn subprocess_counters(&self) -> (usize, usize) {
        (0, 0)
    }

    /// Lanes that exhausted their per-run respawn budget during the most
    /// recent run and degraded to in-process planning.
    fn exhausted_lanes(&self) -> usize {
        0
    }
}

/// The serial front end for one region job: grouping, spot-cluster
/// splitting, and (optionally) in-bucket merging, all single-threaded —
/// the parallelism lives across jobs, never inside one.
pub(crate) fn region_front_end(
    chip: &Chip,
    schedule: &Schedule,
    requirements: &[WashRequirement],
    candidates: usize,
    merging: bool,
    pool: &ScratchPool,
) -> Vec<WashGroup> {
    let groups = build_groups_pooled(
        chip,
        schedule,
        requirements,
        CandidatePolicy::Shortest,
        candidates,
        1,
        pool,
    );
    let groups = split_into_spot_clusters_pooled(
        chip,
        schedule,
        groups,
        4,
        CandidatePolicy::Shortest,
        candidates,
        1,
        pool,
    );
    if merging {
        merge_groups_pooled(chip, schedule, groups, candidates, pool)
    } else {
        groups
    }
}

/// Plans region jobs on scoped threads in this process: one worker-held
/// scratch pool per thread, one serial front end per job, panic isolation
/// per job ([`try_par_map_ctx`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct InProcessExecutor;

impl RegionExecutor for InProcessExecutor {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn run(
        &self,
        jobs: &[RegionJob<'_>],
        schedule: &Schedule,
        candidates: usize,
        merging: bool,
        threads: usize,
    ) -> Vec<Result<Vec<WashGroup>, String>> {
        try_par_map_ctx(jobs, threads, ScratchPool::new, |pool, _, job| {
            region_front_end(
                job.chip,
                schedule,
                job.requirements,
                candidates,
                merging,
                pool,
            )
        })
    }
}

/// One live `pdw worker` child process with framed stdin/stdout.
struct WorkerProc {
    child: Child,
    stdin: ChildStdin,
    stdout: ChildStdout,
}

impl WorkerProc {
    fn spawn(cmd: &[String]) -> Result<Self, String> {
        let mut child = Command::new(&cmd[0])
            .args(&cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", cmd[0]))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        Ok(WorkerProc {
            child,
            stdin,
            stdout,
        })
    }

    /// One framed round trip. Any failure — pipe error, EOF, corrupt or
    /// stale frame — comes back as a transport error message.
    fn call(&mut self, req: &WorkerRequest) -> Result<WorkerResponse, String> {
        let frame = codec::encode_frame(FrameType::WorkerRequest, req);
        codec::write_frame(&mut self.stdin, &frame).map_err(|e| e.to_string())?;
        let frame = codec::read_frame(&mut self.stdout)
            .map_err(|e| e.to_string())?
            .ok_or_else(|| "worker closed its stdout".to_string())?;
        codec::decode_frame(FrameType::WorkerResponse, &frame).map_err(|e| e.to_string())
    }
}

impl Drop for WorkerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Plans region jobs in out-of-process `pdw worker` children: `workers`
/// lanes, each owning one persistent child, jobs dealt round-robin by
/// input index. A lane whose worker fails mid-job records a typed
/// [`ExecutorEvent::WorkerFailed`], replans that job in-process (the same
/// pure front end — the plan is unchanged), and respawns the child for its
/// next job under the lane's [`RespawnPolicy`]: exponential backoff
/// between consecutive failures, and a hard per-run respawn budget after
/// which the lane degrades to in-process planning
/// ([`ExecutorEvent::RespawnBudgetExhausted`]). Results are bit-identical
/// to [`InProcessExecutor`] under any combination of failures.
pub struct SubprocessExecutor {
    cmd: Vec<String>,
    workers: usize,
    policy: RespawnPolicy,
    events: Mutex<Vec<ExecutorEvent>>,
    remote_jobs: AtomicUsize,
    fallbacks: AtomicUsize,
    exhausted: AtomicUsize,
}

impl SubprocessExecutor {
    /// An executor launching `workers` children (0 = all cores) with the
    /// given argv, e.g. `["/path/to/pdw", "worker"]`, under the default
    /// [`RespawnPolicy`].
    ///
    /// # Panics
    /// Panics if `cmd` is empty.
    pub fn new(cmd: Vec<String>, workers: usize) -> Self {
        assert!(!cmd.is_empty(), "subprocess executor needs an argv");
        Self {
            cmd,
            workers,
            policy: RespawnPolicy::default(),
            events: Mutex::new(Vec::new()),
            remote_jobs: AtomicUsize::new(0),
            fallbacks: AtomicUsize::new(0),
            exhausted: AtomicUsize::new(0),
        }
    }

    /// Replaces the respawn policy (budget and backoff curve).
    pub fn with_respawn_policy(mut self, policy: RespawnPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn record(&self, event: ExecutorEvent) {
        self.events
            .lock()
            .expect("executor event log poisoned")
            .push(event);
    }
}

/// One job's result slot, filled by whichever executor lane planned it.
type JobSlot = Mutex<Option<Result<Vec<WashGroup>, String>>>;

impl RegionExecutor for SubprocessExecutor {
    fn name(&self) -> &'static str {
        "subprocess"
    }

    fn run(
        &self,
        jobs: &[RegionJob<'_>],
        schedule: &Schedule,
        candidates: usize,
        merging: bool,
        _threads: usize,
    ) -> Vec<Result<Vec<WashGroup>, String>> {
        self.events
            .lock()
            .expect("executor event log poisoned")
            .clear();
        self.remote_jobs.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
        self.exhausted.store(0, Ordering::Relaxed);
        if jobs.is_empty() {
            return Vec::new();
        }
        let lanes = resolve_threads(self.workers).min(jobs.len()).max(1);
        let slots: Vec<JobSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for lane in 0..lanes {
                let slots = &slots;
                scope.spawn(move || {
                    let pool = ScratchPool::new();
                    let mut proc: Option<WorkerProc> = None;
                    let mut failed_before = false;
                    let mut respawns_used = 0usize;
                    let mut consecutive = 0u32;
                    let mut exhausted = false;
                    for i in (lane..jobs.len()).step_by(lanes) {
                        let job = &jobs[i];
                        if proc.is_none() && !exhausted && failed_before {
                            // A (re)spawn after a failure draws on the
                            // lane's budget and waits out the backoff; a
                            // burned-out lane stops spawning for good.
                            if respawns_used >= self.policy.budget {
                                exhausted = true;
                                self.exhausted.fetch_add(1, Ordering::Relaxed);
                                self.record(ExecutorEvent::RespawnBudgetExhausted {
                                    worker: lane,
                                    budget: self.policy.budget,
                                });
                            } else {
                                std::thread::sleep(self.policy.backoff(consecutive));
                                respawns_used += 1;
                            }
                        }
                        if !exhausted && proc.is_none() {
                            match WorkerProc::spawn(&self.cmd) {
                                Ok(p) => {
                                    proc = Some(p);
                                    if failed_before {
                                        self.record(ExecutorEvent::WorkerRespawned {
                                            worker: lane,
                                        });
                                    }
                                }
                                Err(e) => {
                                    // Spawn failures fall through to the
                                    // per-job fallback below.
                                    failed_before = true;
                                    consecutive += 1;
                                    self.record(ExecutorEvent::WorkerFailed {
                                        worker: lane,
                                        job: i,
                                        detail: e.clone(),
                                    });
                                }
                            }
                        }
                        let Some(worker) = proc.as_mut() else {
                            let out = fallback_front_end(job, schedule, candidates, merging, &pool);
                            self.fallbacks.fetch_add(1, Ordering::Relaxed);
                            *slots[i].lock().expect("slot poisoned") = Some(out);
                            continue;
                        };
                        let req = WorkerRequest::Region(Box::new(RegionRequest {
                            chip: job.chip.clone(),
                            schedule: schedule.clone(),
                            requirements: job.requirements.to_vec(),
                            candidates,
                            merging,
                        }));
                        let out = match worker.call(&req) {
                            Ok(WorkerResponse::Groups(g)) => {
                                self.remote_jobs.fetch_add(1, Ordering::Relaxed);
                                consecutive = 0;
                                Ok(g)
                            }
                            // The worker's front end panicked — the same
                            // refusal an in-process panic would be. The
                            // worker itself is still healthy.
                            Ok(WorkerResponse::Error(msg)) => {
                                self.remote_jobs.fetch_add(1, Ordering::Relaxed);
                                consecutive = 0;
                                Err(msg)
                            }
                            Ok(_) => {
                                proc = None;
                                failed_before = true;
                                consecutive += 1;
                                self.record(ExecutorEvent::WorkerFailed {
                                    worker: lane,
                                    job: i,
                                    detail: "unexpected response kind".to_string(),
                                });
                                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                                fallback_front_end(job, schedule, candidates, merging, &pool)
                            }
                            Err(detail) => {
                                proc = None;
                                failed_before = true;
                                consecutive += 1;
                                self.record(ExecutorEvent::WorkerFailed {
                                    worker: lane,
                                    job: i,
                                    detail,
                                });
                                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                                fallback_front_end(job, schedule, candidates, merging, &pool)
                            }
                        };
                        *slots[i].lock().expect("slot poisoned") = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("every job slot filled")
            })
            .collect()
    }

    fn events(&self) -> Vec<ExecutorEvent> {
        self.events
            .lock()
            .expect("executor event log poisoned")
            .clone()
    }

    fn subprocess_counters(&self) -> (usize, usize) {
        (
            self.remote_jobs.load(Ordering::Relaxed),
            self.fallbacks.load(Ordering::Relaxed),
        )
    }

    fn exhausted_lanes(&self) -> usize {
        self.exhausted.load(Ordering::Relaxed)
    }
}

/// In-process replanning of one job after a transport failure: the same
/// pure front end the worker would have run, with the same panic-refusal
/// semantics as [`InProcessExecutor`].
pub(crate) fn fallback_front_end(
    job: &RegionJob<'_>,
    schedule: &Schedule,
    candidates: usize,
    merging: bool,
    pool: &ScratchPool,
) -> Result<Vec<WashGroup>, String> {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        region_front_end(
            job.chip,
            schedule,
            job.requirements,
            candidates,
            merging,
            pool,
        )
    }))
    .map_err(panic_message)
}

/// Solves the context's instance with the partitioned ladder: the
/// partitioned rung first (for `partitions ≥ 2`), then the standard
/// degradation ladder on any rejection. `partitions ≤ 1` delegates verbatim
/// to [`plan_resilient_ctx`] — bit-identical output at any thread count.
/// Never panics.
pub fn plan_partitioned_ctx(
    ctx: &mut PlanContext<'_>,
    config: &PdwConfig,
    partitions: usize,
) -> PlanOutcome {
    plan_partitioned_ctx_with(ctx, config, partitions, &InProcessExecutor)
}

/// An internal [`Planner`] shim binding a region executor to the
/// partitioned pipeline so [`attempt_rung`]'s panic isolation and timing
/// apply unchanged.
struct ExecutorPlanner<'e> {
    config: PdwConfig,
    partitions: usize,
    executor: &'e dyn RegionExecutor,
}

impl Planner for ExecutorPlanner<'_> {
    fn name(&self) -> &'static str {
        "partitioned"
    }

    fn plan(&self, ctx: &mut PlanContext<'_>) -> Result<WashResult, PdwError> {
        if self.partitions <= 1 {
            run_pipeline(ctx, &self.config)
        } else {
            run_partitioned_pipeline(ctx, &self.config, self.partitions, self.executor)
        }
    }
}

/// [`plan_partitioned_ctx`] with an explicit [`RegionExecutor`] — the seam
/// `pdw worker` plugs into. The executor only changes *where* region front
/// ends run; the served plan is bit-identical across executors.
pub fn plan_partitioned_ctx_with(
    ctx: &mut PlanContext<'_>,
    config: &PdwConfig,
    partitions: usize,
    executor: &dyn RegionExecutor,
) -> PlanOutcome {
    if partitions <= 1 {
        return plan_resilient_ctx(ctx, config);
    }
    let deadline = Deadline::start(config.pipeline_budget);
    let mut attempts: Vec<RungAttempt> = Vec::new();
    if deadline.expired() {
        attempts.push(RungAttempt {
            rung: RungKind::Partitioned,
            rejection: Some(RungRejection::DeadlineExpired),
            wall_s: 0.0,
        });
    } else {
        let planner = ExecutorPlanner {
            config: PdwConfig {
                pipeline_budget: deadline.remaining(),
                ..config.clone()
            },
            partitions,
            executor,
        };
        let (served, rejection, wall_s) = attempt_rung(&planner, ctx);
        attempts.push(RungAttempt {
            rung: RungKind::Partitioned,
            rejection,
            wall_s,
        });
        if let Some(result) = served {
            return PlanOutcome {
                served: Some(result),
                rung: Some(RungKind::Partitioned),
                attempts,
            };
        }
    }
    // The partitioned rung did not serve: the standard ladder takes over
    // with whatever budget remains.
    let mut outcome = plan_resilient_ctx(
        ctx,
        &PdwConfig {
            pipeline_budget: deadline.remaining(),
            ..config.clone()
        },
    );
    attempts.extend(outcome.attempts);
    outcome.attempts = attempts;
    outcome
}

/// One-shot wrapper for [`plan_partitioned_ctx`]: builds a throwaway
/// [`PlanContext`] for the instance. Never panics.
pub fn plan_partitioned(
    bench: &Benchmark,
    synthesis: &Synthesis,
    config: &PdwConfig,
    partitions: usize,
) -> PlanOutcome {
    let mut ctx = PlanContext::new(bench, synthesis);
    plan_partitioned_ctx(&mut ctx, config, partitions)
}

/// One-shot wrapper for [`plan_partitioned_ctx_with`]. Never panics.
pub fn plan_partitioned_with(
    bench: &Benchmark,
    synthesis: &Synthesis,
    config: &PdwConfig,
    partitions: usize,
    executor: &dyn RegionExecutor,
) -> PlanOutcome {
    let mut ctx = PlanContext::new(bench, synthesis);
    plan_partitioned_ctx_with(&mut ctx, config, partitions, executor)
}

/// The partitioned pipeline proper (see the [module docs](self)). Requires
/// `partitions ≥ 2`; a partition that clamps to a single region falls back
/// to the unpartitioned [`run_pipeline`].
fn run_partitioned_pipeline(
    ctx: &mut PlanContext<'_>,
    config: &PdwConfig,
    partitions: usize,
    executor: &dyn RegionExecutor,
) -> Result<WashResult, PdwError> {
    let bench = ctx.bench();
    let synthesis = ctx.synthesis();
    let mut timer = StageTimer::start(config.threads);
    let deadline = Deadline::start(config.pipeline_budget);

    let necessity = if config.necessity_analysis {
        NecessityOptions::full()
    } else {
        NecessityOptions::reuse_only()
    };
    timer.stats.necessity_s = ctx.ensure_analysis(necessity);
    let exemptions = {
        let analysis = ctx.analysis(necessity);
        (
            analysis.count(Classification::Type1Unused),
            analysis.count(Classification::Type2SameFluid),
            analysis.count(Classification::Type3WasteOnly),
        )
    };

    let part = pdw_biochip::partition(&synthesis.chip, partitions)
        .map_err(|e| PdwError::Partition(e.to_string()))?;
    if part.regions().len() < 2 {
        // Every viable cut was clamped away: the "partition" is the whole
        // chip, so the unpartitioned pipeline is the correct (and cheaper)
        // path. The clamp is still surfaced via the returned stats.
        let mut result = run_pipeline(ctx, config)?;
        result.pipeline.partition_regions = 1;
        result.pipeline.partition_clamped = true;
        return Ok(result);
    }
    timer.stats.partition_regions = part.regions().len();
    timer.stats.partition_clamped = part.clamped();

    // Deadline checkpoint, mirroring the unpartitioned front end: an
    // expired budget degrades every region to the cheapest variant.
    let degraded = deadline.expired();
    if degraded {
        timer.stats.deadline_expired = true;
        timer.stats.degraded_front_end = true;
    }
    let candidates = if degraded { 1 } else { config.candidates };
    let merging = if degraded { false } else { config.merging };

    // Assign each requirement by the *span* of its contaminating path: the
    // contiguous run of bands the source task's flow path touches (cached
    // per task; device residues key on their cell's band). Each distinct
    // span plans against its own carved view — a region for single-band
    // spans, a [`pdw_biochip::span_view`] union of bands otherwise — so one
    // wash can still sweep an entire cross-cut contamination run, while
    // never enumerating candidates on more chip than that run touches.
    // Splitting a cross-cut run per band would instead pay one wash per
    // band it crosses; planning it whole-chip would forfeit the speedup.
    let analysis = ctx.analysis(necessity);
    let mut spans: HashMap<pdw_sched::TaskId, (usize, usize)> = HashMap::new();
    let mut buckets: BTreeMap<(usize, usize), Vec<WashRequirement>> = BTreeMap::new();
    for r in &analysis.requirements {
        let cell_band = part.region_of(r.cell);
        let key = match r.source {
            Source::Task(id) => *spans.entry(id).or_insert_with(|| {
                synthesis.schedule.task(id).path().cells().iter().fold(
                    (cell_band, cell_band),
                    |(lo, hi), &c| {
                        let b = part.region_of(c);
                        (lo.min(b), hi.max(b))
                    },
                )
            }),
            Source::Op(_) => (cell_band, cell_band),
        };
        buckets.entry(key).or_default().push(r.clone());
    }

    // One carved view per distinct multi-band span; span boundaries reuse
    // the partition's own validated cut columns. Single-band buckets borrow
    // their region's view. Requirements a view cannot wash alone (no
    // enabled port pair, or the cell is walled off channel-wise inside the
    // view) fall through to the whole-chip seam set.
    let span_views: Vec<((usize, usize), Region)> = buckets
        .keys()
        .filter(|&&(lo, hi)| lo != hi)
        .map(|&(lo, hi)| {
            let x_lo = part.regions()[lo].x_lo;
            let x_hi = part.regions()[hi].x_hi;
            (
                (lo, hi),
                pdw_biochip::span_view(&synthesis.chip, x_lo, x_hi),
            )
        })
        .collect();
    let view_of = |key: (usize, usize)| -> Option<&Region> {
        let view = if key.0 == key.1 {
            &part.regions()[key.0]
        } else {
            span_views
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v)
                .expect("every multi-band bucket carved a span view")
        };
        view.plannable().then_some(view)
    };

    let mut seam: Vec<WashRequirement> = Vec::new();
    let mut work: Vec<((usize, usize), &Region, Vec<WashRequirement>)> = Vec::new();
    let mut band_live = vec![false; part.regions().len()];
    for (key, reqs) in buckets {
        let Some(view) = view_of(key) else {
            seam.extend(reqs);
            continue;
        };
        let reach = BandReach::compute(view.chip());
        let (keep, spill): (Vec<_>, Vec<_>) = reqs
            .into_iter()
            .partition(|r| reach.washable(view.chip(), r.cell));
        seam.extend(spill);
        if !keep.is_empty() {
            if key.0 == key.1 {
                band_live[key.0] = true;
            }
            work.push((key, view, keep));
        }
    }
    // A region with no live band bucket of its own contributes no front end
    // — no reachability fields, no routing, no candidate enumeration.
    timer.stats.regions_skipped = band_live.iter().filter(|live| !**live).count();

    // Plan every live bucket's front end through the region executor —
    // scoped threads in-process, or `pdw worker` children out-of-process;
    // either way one serial front end per bucket (the parallelism is across
    // buckets). A bucket that panics — e.g. a cluster-split bridge cell
    // landing outside its view — refuses: its requirements are replanned on
    // the whole chip as seam work.
    let jobs: Vec<RegionJob<'_>> = work
        .iter()
        .map(|(_, view, reqs)| RegionJob {
            chip: view.chip(),
            requirements: reqs,
        })
        .collect();
    let fronts = timer.stage(
        |s| &mut s.grouping_s,
        || {
            executor.run(
                &jobs,
                &synthesis.schedule,
                candidates,
                merging,
                config.threads,
            )
        },
    );
    let (remote_jobs, remote_fallbacks) = executor.subprocess_counters();
    timer.stats.subprocess_jobs = remote_jobs;
    timer.stats.subprocess_fallbacks = remote_fallbacks;
    timer.stats.subprocess_exhausted = executor.exhausted_lanes();
    let mut groups: Vec<WashGroup> = Vec::new();
    let mut cross_groups: Vec<WashGroup> = Vec::new();
    for (front, (key, _, reqs)) in fronts.into_iter().zip(&work) {
        match front {
            Ok(g) => {
                if key.0 == key.1 {
                    groups.extend(g);
                } else {
                    cross_groups.extend(g);
                }
            }
            Err(_) => {
                timer.stats.regions_refused += 1;
                seam.extend(reqs.iter().cloned());
            }
        }
    }

    // The seam set plans on the whole chip — these groups may use any port
    // and cross any cut.
    let seam_front = timer.stage(
        |s| &mut s.merge_s,
        || {
            if seam.is_empty() {
                Vec::new()
            } else {
                let pool = ctx.scratch_pool();
                let g = build_groups_pooled(
                    &synthesis.chip,
                    &synthesis.schedule,
                    &seam,
                    CandidatePolicy::Shortest,
                    candidates,
                    config.threads,
                    pool,
                );
                let g = split_into_spot_clusters_pooled(
                    &synthesis.chip,
                    &synthesis.schedule,
                    g,
                    4,
                    CandidatePolicy::Shortest,
                    candidates,
                    config.threads,
                    pool,
                );
                if merging {
                    merge_groups_pooled(&synthesis.chip, &synthesis.schedule, g, candidates, pool)
                } else {
                    g
                }
            }
        },
    );
    cross_groups.extend(seam_front);

    // Cross-bucket cleanup: in-bucket merging cannot see washes from other
    // buckets, yet two buckets' washes that traverse common channels (the
    // port funnels, a shared cut crossing) still consolidate profitably.
    // The overlap-gated merge retries exactly those pairs on the whole
    // chip — the mask gate keeps it far below the full quadratic merge.
    let mut all_groups = groups;
    all_groups.extend(cross_groups);
    if merging {
        all_groups = timer.stage(
            |s| &mut s.merge_s,
            || {
                crate::groups::merge_groups_overlapping_pooled(
                    &synthesis.chip,
                    &synthesis.schedule,
                    all_groups,
                    candidates,
                    ctx.scratch_pool(),
                )
            },
        );
    }
    let mut groups = all_groups;
    timer.stats.seam_groups = groups
        .iter()
        .filter(|g| {
            part.interfaces().iter().any(|iface| {
                iface.channels.iter().any(|&(a, b)| {
                    g.candidates[0].path.contains(a) && g.candidates[0].path.contains(b)
                })
            })
        })
        .count();

    // Coordinate the groups' path choices over the cut interfaces. Groups
    // that never cross a cut contribute no crossing terms; the ILP leaves
    // their shortest-first order standing.
    if !groups.is_empty() && !part.interfaces().is_empty() {
        if deadline.expired() {
            timer.stats.deadline_expired = true;
            timer.stats.ilp_skipped = true;
        } else {
            let budget = deadline.clamp(config.ilp_budget);
            timer.stage(
                |s| &mut s.ilp_s,
                || coordinate_seams(&mut groups, &part, budget),
            );
        }
    }

    // Stitch: all groups (band buckets, span buckets, seam) inserted by one
    // greedy sweep line on the full chip and the full base schedule. Bucket
    // paths are valid here verbatim, because carved views preserve all
    // coordinates and ids.
    let protected: HashSet<pdw_sched::TaskId> = synthesis
        .schedule
        .tasks()
        .filter(|(_, t)| t.kind().is_waste_disposal())
        .map(|(id, _)| id)
        .filter(|id| !analysis.deletable.contains(id))
        .collect();
    let greedy = timer.stage(
        |s| &mut s.greedy_s,
        || {
            insert_washes_protected(
                &synthesis.chip,
                &synthesis.schedule,
                &groups,
                config.integration,
                &protected,
            )
        },
    );
    let integrated = greedy.integrated.len();
    timer.stats.groups = greedy.groups.len();
    timer.stats.candidates = greedy.groups.iter().map(|g| g.candidates.len()).sum();

    finish(
        bench,
        synthesis,
        greedy.schedule,
        exemptions,
        integrated,
        SolverReport::greedy(),
        timer.seal(),
    )
}

/// Channel-only flow/waste reachability inside one region view — the
/// passability that candidate enumeration actually uses for wash paths
/// (device-avoiding). The chip's cached `PortReach` fields treat device
/// interiors as routable, which over-promises what a band can wash on its
/// own: a cell admitted by that test but walled off channel-wise would
/// panic the region's front end and refuse the whole band. This stricter
/// check sends such cells straight to the seam set instead.
struct BandReach {
    width: usize,
    flow: Vec<bool>,
    waste: Vec<bool>,
    enabled_ports: HashSet<Coord>,
}

impl BandReach {
    fn compute(chip: &Chip) -> Self {
        let grid = chip.grid();
        let w = grid.width() as usize;
        let h = grid.height() as usize;
        let flood = |ports: Vec<Coord>| -> Vec<bool> {
            let mut seen = vec![false; w * h];
            let mut queue: Vec<Coord> = Vec::new();
            let visit = |from: Coord, seen: &mut Vec<bool>, queue: &mut Vec<Coord>| {
                for n in grid.neighbors(from) {
                    let ni = n.y as usize * w + n.x as usize;
                    if seen[ni]
                        || grid.kind(n) != CellKind::Channel
                        || chip.faults().cell_blocked(n)
                        || chip.faults().edge_blocked(from, n)
                    {
                        continue;
                    }
                    seen[ni] = true;
                    queue.push(n);
                }
            };
            for p in ports {
                visit(p, &mut seen, &mut queue);
            }
            let mut head = 0;
            while head < queue.len() {
                let c = queue[head];
                head += 1;
                visit(c, &mut seen, &mut queue);
            }
            seen
        };
        let flow_ports: Vec<Coord> = chip
            .flow_ports()
            .enumerate()
            .filter(|&(i, _)| !chip.faults().flow_port_disabled(FlowPortId(i as u32)))
            .map(|(_, c)| c)
            .collect();
        let waste_ports: Vec<Coord> = chip
            .waste_ports()
            .enumerate()
            .filter(|&(i, _)| !chip.faults().waste_port_disabled(WastePortId(i as u32)))
            .map(|(_, c)| c)
            .collect();
        let flow = flood(flow_ports.clone());
        let waste = flood(waste_ports.clone());
        BandReach {
            width: w,
            flow,
            waste,
            enabled_ports: flow_ports.into_iter().chain(waste_ports).collect(),
        }
    }

    fn at(&self, field: &[bool], c: Coord) -> bool {
        field[c.y as usize * self.width + c.x as usize]
    }

    /// `true` when a device-avoiding wash path through `cell` can exist on
    /// this chip: channel cells need flow- and waste-side reachability AND
    /// two distinct usable neighbors to enter and leave through — a
    /// dead-end stub at a cut boundary is reachable but not traversable.
    /// Device cells are always seam work: a wash path covers a device
    /// target by traversing its footprint run, and whether that run's exit
    /// survives the cut is a whole-chip question, not a band-local one.
    fn washable(&self, chip: &Chip, cell: Coord) -> bool {
        let grid = chip.grid();
        if grid.kind(cell) != CellKind::Channel
            || !self.at(&self.flow, cell)
            || !self.at(&self.waste, cell)
        {
            return false;
        }
        let exits = grid
            .neighbors(cell)
            .filter(|&n| {
                (grid.kind(n) == CellKind::Channel
                    && (self.at(&self.flow, n) || self.at(&self.waste, n)))
                    || self.enabled_ports.contains(&n)
            })
            .count();
        exits >= 2
    }
}

/// The seam-coordination ILP: pick one candidate path per seam group so
/// that total wash duration is minimized and no cut interface is
/// oversubscribed — seam paths piling onto one cut serialize there, so
/// every crossing beyond the first per cut pays a wash-scale penalty.
///
/// Determinism: the model is built in group order and solved single-
/// threaded; its choice is adopted only when proven optimal. On a budget
/// expiry, a solver error, or a non-optimal incumbent, the shortest-first
/// candidate order stands untouched — the same fallback at any thread
/// count.
fn coordinate_seams(groups: &mut [WashGroup], part: &Partition, budget: Duration) {
    let choosers: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.candidates.len() > 1)
        .map(|(i, _)| i)
        .collect();
    if choosers.is_empty() {
        return;
    }

    let mut m = Model::new("seam-coordination");
    // x[g][c]: seam group g washes via candidate c; cost = the candidate's
    // wash duration (the objective's length term at stitch granularity).
    let mut xs: Vec<Vec<VarId>> = Vec::new();
    let mut duration_sum = 0.0;
    let mut duration_n = 0usize;
    for &gi in &choosers {
        let vars: Vec<VarId> = groups[gi]
            .candidates
            .iter()
            .enumerate()
            .map(|(ci, cand)| {
                duration_sum += cand.duration as f64;
                duration_n += 1;
                m.binary(&format!("x_{gi}_{ci}"), cand.duration as f64)
            })
            .collect();
        let pick: Vec<(VarId, f64)> = vars.iter().map(|&v| (v, 1.0)).collect();
        m.constraint(pick, Relation::Eq, 1.0);
        xs.push(vars);
    }
    // y[i] ≥ (crossings of cut i) − 1: overflow beyond one shared crossing
    // per cut, penalized at the scale of a typical candidate duration.
    let penalty = duration_sum / duration_n as f64;
    for (ii, iface) in part.interfaces().iter().enumerate() {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for (k, &gi) in choosers.iter().enumerate() {
            for (ci, cand) in groups[gi].candidates.iter().enumerate() {
                let crosses = iface
                    .channels
                    .iter()
                    .any(|&(a, b)| cand.path.contains(a) && cand.path.contains(b));
                if crosses {
                    terms.push((xs[k][ci], 1.0));
                }
            }
        }
        if terms.len() > 1 {
            let cap = terms.len() as f64;
            let y = m.integer(&format!("y_{ii}"), 0.0, cap, penalty);
            terms.push((y, -1.0));
            m.constraint(terms, Relation::Le, 1.0);
        }
    }

    let opts = SolveOptions {
        time_limit: budget,
        threads: 1,
        ..SolveOptions::default()
    };
    let Ok(sol) = solve(&m, &opts) else { return };
    if sol.status != SolveStatus::Optimal {
        return;
    }
    // Promote each group's chosen candidate to the front; the greedy
    // stitcher tries candidates in order.
    for (k, &gi) in choosers.iter().enumerate() {
        if let Some(ci) = xs[k].iter().position(|&v| sol.bool_value(v)) {
            if ci > 0 {
                let chosen = groups[gi].candidates.remove(ci);
                groups[gi].candidates.insert(0, chosen);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    fn config() -> PdwConfig {
        PdwConfig {
            ilp: false,
            ..PdwConfig::default()
        }
    }

    #[test]
    fn k1_is_bit_identical_to_plan_resilient() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let base = crate::plan_resilient(&bench, &s, &config());
        let part = plan_partitioned(&bench, &s, &config(), 1);
        assert_eq!(part.rung, base.rung);
        assert_eq!(
            part.served.as_ref().unwrap().schedule,
            base.served.as_ref().unwrap().schedule
        );
        assert_eq!(
            part.served.as_ref().unwrap().metrics,
            base.served.as_ref().unwrap().metrics
        );
    }

    #[test]
    fn partitioned_demo_serves_a_validated_plan() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let outcome = plan_partitioned(&bench, &s, &config(), 2);
        assert!(outcome.is_served(), "{outcome}");
        let served = outcome.served.as_ref().unwrap();
        // The rung gate already ran validate + propagate; spot-check here.
        pdw_sim::validate(&s.chip, &bench.graph, &served.schedule).unwrap();
        assert!(pdw_sim::propagate(&s.chip, &bench.graph, &served.schedule).is_clean());
        if outcome.rung == Some(RungKind::Partitioned) {
            assert!(served.pipeline.partition_regions >= 1);
        }
    }

    #[test]
    fn partitioned_output_is_thread_count_invariant() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let run = |threads: usize| {
            plan_partitioned(
                &bench,
                &s,
                &PdwConfig {
                    threads,
                    ..config()
                },
                4,
            )
        };
        let serial = run(1);
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(par.rung, serial.rung);
            assert_eq!(
                par.served.as_ref().unwrap().schedule,
                serial.served.as_ref().unwrap().schedule,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn oversized_k_clamps_and_still_serves() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let outcome = plan_partitioned(&bench, &s, &config(), 64);
        assert!(outcome.is_served(), "{outcome}");
        let served = outcome.served.as_ref().unwrap();
        if outcome.rung == Some(RungKind::Partitioned) {
            assert!(served.pipeline.partition_clamped);
            assert!(served
                .pipeline
                .degradation_events()
                .contains(&"partition clamped (fewer viable cuts than requested regions)"));
        }
    }
}
