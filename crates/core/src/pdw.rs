//! The PathDriver-Wash pipeline.

use std::fmt;

use pdw_assay::benchmarks::Benchmark;
use pdw_contam::{verify_clean, Classification, CleanlinessViolation, NecessityOptions};
use pdw_sched::Schedule;
use pdw_sim::{validate, Metrics, SimError};
use pdw_synth::Synthesis;

use crate::config::{CandidatePolicy, PdwConfig};
use crate::context::{FrontEndKey, PlanContext};
use crate::deadline::Deadline;
use crate::greedy::insert_washes_protected;
use crate::groups::{build_groups_pooled, merge_groups_pooled, split_into_spot_clusters_pooled};
use crate::model::refine_with_ilp;
use crate::par::par_map_ctx;
use crate::stats::{PipelineStats, StageTimer};

/// How the final schedule was obtained.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SolverReport {
    /// Whether the ILP produced the returned schedule (`false` = greedy).
    pub used_ilp: bool,
    /// Whether the ILP proved optimality within its budget.
    pub optimal: bool,
    /// Branch-and-bound nodes processed (0 for greedy).
    pub nodes: u64,
    /// Detailed solver counters and timings (`None` when the ILP never ran
    /// or its refinement was rejected).
    pub stats: Option<pdw_ilp::SolverStats>,
}

impl SolverReport {
    /// A report for a schedule produced without the ILP.
    pub fn greedy() -> Self {
        SolverReport {
            used_ilp: false,
            optimal: false,
            nodes: 0,
            stats: None,
        }
    }
}

/// The outcome of a wash optimization run.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WashResult {
    /// The optimized, validated, contamination-free schedule.
    pub schedule: Schedule,
    /// The paper's metrics for this schedule.
    pub metrics: Metrics,
    /// `(Type 1, Type 2, Type 3)` exemption counts from the necessity
    /// analysis.
    pub exemptions: (usize, usize, usize),
    /// Number of excess removals integrated into washes (ψ = 1 count).
    pub integrated: usize,
    /// Solver diagnostics.
    pub solver: SolverReport,
    /// Per-stage wall times and routing-effort counters. Stages served from
    /// a warm [`PlanContext`] cache (e.g. `necessity_s` on the second
    /// planner sharing a context) report the time actually spent, ≈0.
    pub pipeline: PipelineStats,
}

impl WashResult {
    /// The paper's objective `α·N_wash + β·L_wash + γ·T_assay` (Eq. 26).
    pub fn objective(&self, w: &crate::config::Weights) -> f64 {
        w.objective(&self.metrics)
    }
}

/// Failure modes of wash optimization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PdwError {
    /// The produced schedule violates a physical constraint (internal
    /// invariant breach — please report).
    Invalid(SimError),
    /// The produced schedule still lets a delivery cross residue (internal
    /// invariant breach — please report).
    Dirty(CleanlinessViolation),
    /// A planner worker panicked while solving this instance. The panic was
    /// caught and isolated: other instances in the batch (and other rungs of
    /// a resilient solve) are unaffected.
    WorkerPanic(String),
    /// The chip could not be partitioned as requested (e.g. a cut would
    /// sever a device footprint, or zero regions were asked for).
    Partition(String),
}

impl fmt::Display for PdwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdwError::Invalid(e) => write!(f, "optimized schedule is invalid: {e}"),
            PdwError::Dirty(v) => write!(f, "optimized schedule is contaminated: {v}"),
            PdwError::WorkerPanic(msg) => write!(f, "planner worker panicked: {msg}"),
            PdwError::Partition(msg) => write!(f, "chip partitioning failed: {msg}"),
        }
    }
}

impl std::error::Error for PdwError {}

pub(crate) fn finish(
    bench: &Benchmark,
    synthesis: &Synthesis,
    schedule: Schedule,
    exemptions: (usize, usize, usize),
    integrated: usize,
    solver: SolverReport,
    pipeline: PipelineStats,
) -> Result<WashResult, PdwError> {
    validate(&synthesis.chip, &bench.graph, &schedule).map_err(PdwError::Invalid)?;
    verify_clean(&synthesis.chip, &bench.graph, &schedule).map_err(PdwError::Dirty)?;
    let metrics = Metrics::measure(&bench.graph, &schedule);
    Ok(WashResult {
        schedule,
        metrics,
        exemptions,
        integrated,
        solver,
        pipeline,
    })
}

/// Runs PathDriver-Wash: necessity analysis, wash grouping/merging, greedy
/// warm start, and ILP refinement of wash paths and time windows.
///
/// This is the one-shot compatibility wrapper: it builds a throwaway
/// [`PlanContext`] for the instance. Callers solving an instance more than
/// once — several planners, several configurations — should build one
/// context and run [`Planner`](crate::Planner)s through it instead, so the
/// necessity analysis and routing state are computed once.
///
/// # Errors
///
/// Returns [`PdwError`] only if an internal invariant is broken — every
/// returned schedule has passed [`pdw_sim::validate`] and
/// [`pdw_contam::verify_clean`].
pub fn pdw(
    bench: &Benchmark,
    synthesis: &Synthesis,
    config: &PdwConfig,
) -> Result<WashResult, PdwError> {
    let mut ctx = PlanContext::new(bench, synthesis);
    run_pipeline(&mut ctx, config)
}

/// The PathDriver-Wash pipeline against a (possibly warm) [`PlanContext`].
/// Backs both [`pdw`] and the `GreedyPlanner`/`PdwPlanner` implementations;
/// the result is a pure function of `(instance, config)` — context warmth
/// only changes wall time.
pub(crate) fn run_pipeline(
    ctx: &mut PlanContext<'_>,
    config: &PdwConfig,
) -> Result<WashResult, PdwError> {
    let bench = ctx.bench();
    let synthesis = ctx.synthesis();
    let mut timer = StageTimer::start(config.threads);
    let deadline = Deadline::start(config.pipeline_budget);

    let necessity = if config.necessity_analysis {
        NecessityOptions::full()
    } else {
        NecessityOptions::reuse_only()
    };
    timer.stats.necessity_s = ctx.ensure_analysis(necessity);
    let exemptions = {
        let analysis = ctx.analysis(necessity);
        (
            analysis.count(Classification::Type1Unused),
            analysis.count(Classification::Type2SameFluid),
            analysis.count(Classification::Type3WasteOnly),
        )
    };

    // Deadline checkpoint: if the budget is already gone, cut the front end
    // over to its cheapest variant — one candidate per group, no merging —
    // so even a zero-budget run returns a (degraded but valid) plan.
    let degraded = deadline.expired();
    if degraded {
        timer.stats.deadline_expired = true;
        timer.stats.degraded_front_end = true;
    }
    let candidates = if degraded { 1 } else { config.candidates };
    let merging = if degraded { false } else { config.merging };

    // The front-end groups are a pure function of the instance and these
    // config fields (thread counts are result-invariant), so a warm context
    // serves them as a clone instead of re-routing every candidate path.
    let key = FrontEndKey {
        necessity,
        policy: CandidatePolicy::Shortest,
        candidates,
        merged: merging,
    };
    let mut groups = match ctx.front_end(key) {
        // Cache hit: the clone is charged to the grouping stage, which then
        // reports ≈0 — exactly the time actually spent.
        Some(cached) => timer.stage(|s| &mut s.grouping_s, || cached.to_vec()),
        None => {
            let analysis = ctx.analysis(necessity);
            let pool = ctx.scratch_pool();
            let groups = timer.stage(
                |s| &mut s.grouping_s,
                || {
                    let groups = build_groups_pooled(
                        &synthesis.chip,
                        &synthesis.schedule,
                        &analysis.requirements,
                        CandidatePolicy::Shortest,
                        candidates,
                        config.threads,
                        pool,
                    );
                    // Work at spot-cluster granularity (fine washes schedule
                    // concurrently far more easily), then let merging coarsen
                    // only where it pays off.
                    split_into_spot_clusters_pooled(
                        &synthesis.chip,
                        &synthesis.schedule,
                        groups,
                        4,
                        CandidatePolicy::Shortest,
                        candidates,
                        config.threads,
                        pool,
                    )
                },
            );
            let groups = timer.stage(
                |s| &mut s.merge_s,
                || {
                    if merging {
                        merge_groups_pooled(
                            &synthesis.chip,
                            &synthesis.schedule,
                            groups,
                            candidates,
                            pool,
                        )
                    } else {
                        groups
                    }
                },
            );
            ctx.store_front_end(key, groups.clone());
            groups
        }
    };
    if config.exact_paths {
        // Deadline checkpoint: exact-path solves are the most expensive
        // optional stage; an expired deadline drops them outright, and a
        // live one clamps each solve to the time remaining.
        if deadline.expired() {
            timer.stats.deadline_expired = true;
            timer.stats.exact_paths_skipped = true;
        } else {
            let exact_budget = deadline.clamp(config.ilp_budget);
            // One budget-bound flow-ILP solve per group, fanned across
            // workers; each group's refinement is independent and results
            // apply in input order, so the outcome matches the serial loop.
            let exacts = par_map_ctx(
                &groups,
                config.threads,
                || (),
                |(), _, g| {
                    let warm = g.candidates[0].path.clone();
                    crate::exact_path::exact_wash_path(
                        &synthesis.chip,
                        &g.targets(),
                        Some(&warm),
                        exact_budget,
                    )
                },
            );
            timer.stats.exact_path_giveups = exacts.iter().filter(|e| e.is_none()).count();
            for (g, exact) in groups.iter_mut().zip(exacts) {
                if let Some(exact) = exact {
                    if exact.path.len() < g.candidates[0].path.len() {
                        g.candidates.insert(0, exact);
                        g.candidates.truncate(candidates.max(1));
                    }
                }
            }
        }
    }

    // Only provably-safe removals may be integrated away: deleting a
    // removal that witnesses a Type-2/3 exemption would re-expose residue
    // unless a wash already covers the cell (`Analysis::deletable`).
    let analysis = ctx.analysis(necessity);
    let protected: std::collections::HashSet<pdw_sched::TaskId> = synthesis
        .schedule
        .tasks()
        .filter(|(_, t)| t.kind().is_waste_disposal())
        .map(|(id, _)| id)
        .filter(|id| !analysis.deletable.contains(id))
        .collect();
    let greedy = timer.stage(
        |s| &mut s.greedy_s,
        || {
            insert_washes_protected(
                &synthesis.chip,
                &synthesis.schedule,
                &groups,
                config.integration,
                &protected,
            )
        },
    );
    let integrated = greedy.integrated.len();
    timer.stats.groups = greedy.groups.len();
    timer.stats.candidates = greedy.groups.iter().map(|g| g.candidates.len()).sum();

    if config.ilp {
        // Deadline checkpoint: skip the back-end outright once expired;
        // otherwise clamp its budget to the pipeline time remaining.
        if deadline.expired() {
            timer.stats.deadline_expired = true;
            timer.stats.ilp_skipped = true;
        } else {
            let ilp_config = PdwConfig {
                ilp_budget: deadline.clamp(config.ilp_budget),
                ..config.clone()
            };
            let refined = timer.stage(
                |s| &mut s.ilp_s,
                || {
                    refine_with_ilp(
                        &synthesis.chip,
                        &bench.graph,
                        &greedy.groups,
                        &greedy,
                        &ilp_config,
                    )
                },
            );
            if let Some(refined) = refined {
                timer.stats.ilp_budget_expired = !refined.optimal;
                let report = SolverReport {
                    used_ilp: true,
                    optimal: refined.optimal,
                    nodes: refined.nodes,
                    stats: Some(refined.stats),
                };
                // The ILP schedule must independently pass validation; on any
                // breach, fall back to the (always valid) greedy schedule.
                if let Ok(result) = finish(
                    bench,
                    synthesis,
                    refined.schedule,
                    exemptions,
                    integrated,
                    report,
                    timer.seal(),
                ) {
                    // Only adopt the refinement when it does not regress the
                    // paper's objective (floor-rounding can cost a second).
                    let greedy_metrics = Metrics::measure(&bench.graph, &greedy.schedule);
                    let w = &config.weights;
                    if result.objective(w) <= w.objective(&greedy_metrics) {
                        return Ok(result);
                    }
                }
            }
            // Any fall-through means the refinement was not served.
            timer.stats.ilp_rejected = true;
        }
    }

    finish(
        bench,
        synthesis,
        greedy.schedule,
        exemptions,
        integrated,
        SolverReport::greedy(),
        timer.seal(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn demo_pdw_produces_clean_valid_schedule() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let r = pdw(&bench, &s, &PdwConfig::default()).unwrap();
        assert!(r.metrics.n_wash > 0);
        assert!(r.metrics.l_wash_mm > 0.0);
    }

    #[test]
    fn necessity_analysis_reduces_wash_count() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let full = pdw(&bench, &s, &PdwConfig::default()).unwrap();
        let no_necessity = pdw(
            &bench,
            &s,
            &PdwConfig {
                necessity_analysis: false,
                ..PdwConfig::default()
            },
        )
        .unwrap();
        assert!(full.metrics.n_wash <= no_necessity.metrics.n_wash);
    }

    #[test]
    fn greedy_only_mode_skips_the_solver() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let r = pdw(
            &bench,
            &s,
            &PdwConfig {
                ilp: false,
                ..PdwConfig::default()
            },
        )
        .unwrap();
        assert!(!r.solver.used_ilp);
    }

    #[test]
    fn zero_pipeline_budget_degrades_deterministically() {
        // A zero pipeline budget must still return a valid plan — the fully
        // degraded front end — bit-identically at any thread count, and the
        // stats must record every degradation taken.
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let run = |threads: usize| {
            pdw(
                &bench,
                &s,
                &PdwConfig {
                    exact_paths: true,
                    threads,
                    pipeline_budget: Some(std::time::Duration::ZERO),
                    ..PdwConfig::default()
                },
            )
            .unwrap()
        };
        let serial = run(1);
        assert!(serial.pipeline.deadline_expired);
        assert!(serial.pipeline.degraded_front_end);
        assert!(serial.pipeline.exact_paths_skipped);
        assert!(serial.pipeline.ilp_skipped);
        assert!(!serial.solver.used_ilp);
        assert!(!serial.pipeline.degradation_events().is_empty());
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(par.schedule, serial.schedule, "threads={threads}");
            assert_eq!(par.metrics, serial.metrics);
        }
    }

    #[test]
    fn unlimited_pipeline_budget_changes_nothing() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let base = pdw(
            &bench,
            &s,
            &PdwConfig {
                ilp: false,
                ..PdwConfig::default()
            },
        )
        .unwrap();
        let budgeted = pdw(
            &bench,
            &s,
            &PdwConfig {
                ilp: false,
                pipeline_budget: Some(std::time::Duration::from_secs(3600)),
                ..PdwConfig::default()
            },
        )
        .unwrap();
        assert_eq!(base.schedule, budgeted.schedule);
        assert!(!budgeted.pipeline.deadline_expired);
        assert!(budgeted.pipeline.degradation_events().is_empty());
    }

    #[test]
    fn exact_paths_refinement_is_fanned_out_deterministically() {
        // The parallel exact-path refinement must agree with itself across
        // thread counts (generous budget so the anytime solver converges).
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let run = |threads: usize| {
            pdw(
                &bench,
                &s,
                &PdwConfig {
                    ilp: false,
                    exact_paths: true,
                    threads,
                    ..PdwConfig::default()
                },
            )
            .unwrap()
        };
        let serial = run(1);
        let par = run(8);
        assert_eq!(serial.schedule, par.schedule);
        assert_eq!(serial.metrics, par.metrics);
    }
}
