//! The PathDriver-Wash pipeline.

use std::fmt;
use std::time::Instant;

use pdw_assay::benchmarks::Benchmark;
use pdw_contam::{analyze, verify_clean, Classification, CleanlinessViolation, NecessityOptions};
use pdw_sched::Schedule;
use pdw_sim::{validate, Metrics, SimError};
use pdw_synth::Synthesis;

use crate::config::{CandidatePolicy, PdwConfig, Weights};
use crate::greedy::insert_washes_protected;
use crate::groups::{build_groups, merge_groups};
use crate::model::refine_with_ilp;
use crate::stats::PipelineStats;

/// How the final schedule was obtained.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverReport {
    /// Whether the ILP produced the returned schedule (`false` = greedy).
    pub used_ilp: bool,
    /// Whether the ILP proved optimality within its budget.
    pub optimal: bool,
    /// Branch-and-bound nodes processed (0 for greedy).
    pub nodes: u64,
    /// Detailed solver counters and timings (`None` when the ILP never ran
    /// or its refinement was rejected).
    pub stats: Option<pdw_ilp::SolverStats>,
}

impl SolverReport {
    /// A report for a schedule produced without the ILP.
    pub fn greedy() -> Self {
        SolverReport {
            used_ilp: false,
            optimal: false,
            nodes: 0,
            stats: None,
        }
    }
}

/// The outcome of a wash optimization run.
#[derive(Debug, Clone)]
pub struct WashResult {
    /// The optimized, validated, contamination-free schedule.
    pub schedule: Schedule,
    /// The paper's metrics for this schedule.
    pub metrics: Metrics,
    /// `(Type 1, Type 2, Type 3)` exemption counts from the necessity
    /// analysis.
    pub exemptions: (usize, usize, usize),
    /// Number of excess removals integrated into washes (ψ = 1 count).
    pub integrated: usize,
    /// Solver diagnostics.
    pub solver: SolverReport,
    /// Per-stage wall times and routing-effort counters.
    pub pipeline: PipelineStats,
}

impl WashResult {
    /// The paper's objective `α·N_wash + β·L_wash + γ·T_assay` (Eq. 26).
    pub fn objective(&self, w: &Weights) -> f64 {
        w.alpha * self.metrics.n_wash as f64
            + w.beta * self.metrics.l_wash_mm
            + w.gamma * self.metrics.t_assay as f64
    }
}

/// Failure modes of wash optimization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PdwError {
    /// The produced schedule violates a physical constraint (internal
    /// invariant breach — please report).
    Invalid(SimError),
    /// The produced schedule still lets a delivery cross residue (internal
    /// invariant breach — please report).
    Dirty(CleanlinessViolation),
}

impl fmt::Display for PdwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdwError::Invalid(e) => write!(f, "optimized schedule is invalid: {e}"),
            PdwError::Dirty(v) => write!(f, "optimized schedule is contaminated: {v}"),
        }
    }
}

impl std::error::Error for PdwError {}

fn finish(
    bench: &Benchmark,
    synthesis: &Synthesis,
    schedule: Schedule,
    exemptions: (usize, usize, usize),
    integrated: usize,
    solver: SolverReport,
    pipeline: PipelineStats,
) -> Result<WashResult, PdwError> {
    validate(&synthesis.chip, &bench.graph, &schedule).map_err(PdwError::Invalid)?;
    verify_clean(&synthesis.chip, &bench.graph, &schedule).map_err(PdwError::Dirty)?;
    let metrics = Metrics::measure(&bench.graph, &schedule);
    Ok(WashResult {
        schedule,
        metrics,
        exemptions,
        integrated,
        solver,
        pipeline,
    })
}

/// Runs PathDriver-Wash: necessity analysis, wash grouping/merging, greedy
/// warm start, and ILP refinement of wash paths and time windows.
///
/// # Errors
///
/// Returns [`PdwError`] only if an internal invariant is broken — every
/// returned schedule has passed [`pdw_sim::validate`] and
/// [`pdw_contam::verify_clean`].
pub fn pdw(
    bench: &Benchmark,
    synthesis: &Synthesis,
    config: &PdwConfig,
) -> Result<WashResult, PdwError> {
    let run_start = Instant::now();
    let counters_start = pdw_biochip::routing_counters();
    let mut stats = PipelineStats {
        threads: crate::par::resolve_threads(config.threads),
        ..PipelineStats::default()
    };

    let necessity = if config.necessity_analysis {
        NecessityOptions::full()
    } else {
        NecessityOptions::reuse_only()
    };
    let stage = Instant::now();
    let analysis = analyze(
        &synthesis.chip,
        &bench.graph,
        &synthesis.schedule,
        necessity,
    );
    stats.necessity_s = stage.elapsed().as_secs_f64();
    let exemptions = (
        analysis.count(Classification::Type1Unused),
        analysis.count(Classification::Type2SameFluid),
        analysis.count(Classification::Type3WasteOnly),
    );

    let stage = Instant::now();
    let groups = build_groups(
        &synthesis.chip,
        &synthesis.schedule,
        &analysis.requirements,
        CandidatePolicy::Shortest,
        config.candidates,
        config.threads,
    );
    // Work at spot-cluster granularity (fine washes schedule concurrently
    // far more easily), then let merging coarsen only where it pays off.
    let groups = crate::groups::split_into_spot_clusters(
        &synthesis.chip,
        &synthesis.schedule,
        groups,
        4,
        CandidatePolicy::Shortest,
        config.candidates,
        config.threads,
    );
    stats.grouping_s = stage.elapsed().as_secs_f64();
    let stage = Instant::now();
    let mut groups = if config.merging {
        merge_groups(
            &synthesis.chip,
            &synthesis.schedule,
            groups,
            config.candidates,
        )
    } else {
        groups
    };
    stats.merge_s = stage.elapsed().as_secs_f64();
    if config.exact_paths {
        for g in &mut groups {
            let warm = g.candidates[0].path.clone();
            if let Some(exact) = crate::exact_path::exact_wash_path(
                &synthesis.chip,
                &g.targets(),
                Some(&warm),
                config.ilp_budget,
            ) {
                if exact.path.len() < g.candidates[0].path.len() {
                    g.candidates.insert(0, exact);
                    g.candidates.truncate(config.candidates.max(1));
                }
            }
        }
    }

    // Only provably-safe removals may be integrated away: deleting a
    // removal that witnesses a Type-2/3 exemption would re-expose residue
    // unless a wash already covers the cell (`Analysis::deletable`).
    let protected: std::collections::HashSet<pdw_sched::TaskId> = synthesis
        .schedule
        .tasks()
        .filter(|(_, t)| t.kind().is_waste_disposal())
        .map(|(id, _)| id)
        .filter(|id| !analysis.deletable.contains(id))
        .collect();
    let stage = Instant::now();
    let greedy = insert_washes_protected(
        &synthesis.chip,
        &synthesis.schedule,
        &groups,
        config.integration,
        &protected,
    );
    stats.greedy_s = stage.elapsed().as_secs_f64();
    let integrated = greedy.integrated.len();
    stats.groups = greedy.groups.len();
    stats.candidates = greedy.groups.iter().map(|g| g.candidates.len()).sum();

    if config.ilp {
        let stage = Instant::now();
        let refined = refine_with_ilp(
            &synthesis.chip,
            &bench.graph,
            &greedy.groups,
            &greedy,
            config,
        );
        stats.ilp_s = stage.elapsed().as_secs_f64();
        if let Some(refined) = refined {
            let report = SolverReport {
                used_ilp: true,
                optimal: refined.optimal,
                nodes: refined.nodes,
                stats: Some(refined.stats),
            };
            let stats = seal_stats(stats, run_start, counters_start);
            // The ILP schedule must independently pass validation; on any
            // breach, fall back to the (always valid) greedy schedule.
            if let Ok(result) = finish(
                bench,
                synthesis,
                refined.schedule,
                exemptions,
                integrated,
                report,
                stats,
            ) {
                // Only adopt the refinement when it does not regress the
                // paper's objective (floor-rounding can cost a second).
                let greedy_metrics = Metrics::measure(&bench.graph, &greedy.schedule);
                let w = &config.weights;
                let greedy_obj = w.alpha * greedy_metrics.n_wash as f64
                    + w.beta * greedy_metrics.l_wash_mm
                    + w.gamma * greedy_metrics.t_assay as f64;
                if result.objective(w) <= greedy_obj {
                    return Ok(result);
                }
            }
        }
    }

    let stats = seal_stats(stats, run_start, counters_start);
    finish(
        bench,
        synthesis,
        greedy.schedule,
        exemptions,
        integrated,
        SolverReport::greedy(),
        stats,
    )
}

/// Fills the run-wide totals: end-to-end wall time and the routing-counter
/// deltas accumulated since `counters_start`.
fn seal_stats(
    mut stats: PipelineStats,
    run_start: Instant,
    counters_start: pdw_biochip::RoutingCounters,
) -> PipelineStats {
    stats.total_s = run_start.elapsed().as_secs_f64();
    let d = pdw_biochip::routing_counters() - counters_start;
    stats.route_calls = d.route_calls;
    stats.bfs_runs = d.bfs_runs;
    stats.scratch_reuses = d.scratch_reuses;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn demo_pdw_produces_clean_valid_schedule() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let r = pdw(&bench, &s, &PdwConfig::default()).unwrap();
        assert!(r.metrics.n_wash > 0);
        assert!(r.metrics.l_wash_mm > 0.0);
    }

    #[test]
    fn necessity_analysis_reduces_wash_count() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let full = pdw(&bench, &s, &PdwConfig::default()).unwrap();
        let no_necessity = pdw(
            &bench,
            &s,
            &PdwConfig {
                necessity_analysis: false,
                ..PdwConfig::default()
            },
        )
        .unwrap();
        assert!(full.metrics.n_wash <= no_necessity.metrics.n_wash);
    }

    #[test]
    fn greedy_only_mode_skips_the_solver() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let r = pdw(
            &bench,
            &s,
            &PdwConfig {
                ilp: false,
                ..PdwConfig::default()
            },
        )
        .unwrap();
        assert!(!r.solver.used_ilp);
    }
}
