//! The planner engine: every optimizer behind one trait, one shared
//! context, and a batched solve driver.
//!
//! The three solve strategies the crate offers — the DAWO baseline, the
//! greedy PathDriver-Wash pipeline, and the full ILP-refined pipeline — are
//! [`Planner`]s. A planner does not own its precomputation: it consumes a
//! [`PlanContext`], so running several planners on one instance (the
//! differential verifier, an ablation sweep, a baseline-vs-optimized
//! service endpoint) computes the common prefix — necessity analysis,
//! port-reachability fields, routing scratch — once.
//!
//! [`plan_batch`] scales that to a corpus: instances fan out across worker
//! threads, each worker carrying its scratch pool from instance to
//! instance, and results come back in input order. Every planner here is a
//! pure function of `(instance, config)`, so batch output is bit-identical
//! to serial one-shot calls at any thread count. (The one caveat is
//! wall-clock-budget-bound ILP refinement, which is documented to vary run
//! to run regardless of batching.)

use pdw_assay::benchmarks::Benchmark;
use pdw_biochip::ScratchPool;
use pdw_synth::Synthesis;

use crate::config::PdwConfig;
use crate::context::PlanContext;
use crate::pdw::{PdwError, WashResult};

/// A wash-plan optimizer that solves against a shared [`PlanContext`].
pub trait Planner: Sync {
    /// Short identifier for reports (`"dawo"`, `"greedy"`, `"pdw"`).
    fn name(&self) -> &'static str;

    /// Produces a validated, contamination-free wash plan for the context's
    /// instance. Warm context caches only change wall time, never the plan.
    ///
    /// # Errors
    ///
    /// Returns [`PdwError`] only if an internal invariant is broken.
    fn plan(&self, ctx: &mut PlanContext<'_>) -> Result<WashResult, PdwError>;
}

/// The DAWO baseline of TC'22 \[10\]: per-spot washes with independently
/// BFS-routed paths and sweep-line time assignment.
#[derive(Debug, Clone, Copy, Default)]
pub struct DawoPlanner;

impl Planner for DawoPlanner {
    fn name(&self) -> &'static str {
        "dawo"
    }

    fn plan(&self, ctx: &mut PlanContext<'_>) -> Result<WashResult, PdwError> {
        crate::dawo::run_dawo(ctx)
    }
}

/// The PathDriver-Wash pipeline stopped at its greedy warm start — the ILP
/// back-end is forced off, making the planner deterministic and fast.
#[derive(Debug, Clone)]
pub struct GreedyPlanner {
    config: PdwConfig,
}

impl GreedyPlanner {
    /// A greedy planner with `config`'s front-end knobs; `config.ilp` is
    /// ignored (forced off).
    pub fn new(config: PdwConfig) -> Self {
        GreedyPlanner {
            config: PdwConfig {
                ilp: false,
                ..config
            },
        }
    }

    /// The effective configuration (with the ILP off).
    pub fn config(&self) -> &PdwConfig {
        &self.config
    }
}

impl Default for GreedyPlanner {
    fn default() -> Self {
        Self::new(PdwConfig::default())
    }
}

impl Planner for GreedyPlanner {
    fn name(&self) -> &'static str {
        "greedy"
    }

    fn plan(&self, ctx: &mut PlanContext<'_>) -> Result<WashResult, PdwError> {
        crate::pdw::run_pipeline(ctx, &self.config)
    }
}

/// The full PathDriver-Wash pipeline: necessity analysis, grouping/merging,
/// greedy warm start, and ILP refinement per `config`.
#[derive(Debug, Clone, Default)]
pub struct PdwPlanner {
    /// The pipeline configuration (ablation switches, budgets, threads).
    pub config: PdwConfig,
}

impl PdwPlanner {
    /// A planner running the full pipeline under `config`.
    pub fn new(config: PdwConfig) -> Self {
        PdwPlanner { config }
    }
}

impl Planner for PdwPlanner {
    fn name(&self) -> &'static str {
        "pdw"
    }

    fn plan(&self, ctx: &mut PlanContext<'_>) -> Result<WashResult, PdwError> {
        crate::pdw::run_pipeline(ctx, &self.config)
    }
}

/// Solves a corpus of instances with a set of planners, fanning instances
/// across `threads` workers (0 = all cores).
///
/// Per instance, every planner runs against one shared [`PlanContext`] (the
/// amortized path); per worker, the routing scratch pool survives from
/// instance to instance. Results come back as one row per instance, in
/// input order, with one entry per planner in `planners` order —
/// bit-identical to calling each planner on a cold context serially, at any
/// thread count.
///
/// A panic while solving one instance is caught and isolated: that
/// instance's row reports [`PdwError::WorkerPanic`] for every planner,
/// sibling instances are unaffected, and the worker keeps draining the
/// batch (its scratch pool restarts cold — the context holding the warm
/// scratches is dropped by the unwind, which returns every checked-out
/// scratch, so nothing leaks).
pub fn plan_batch(
    instances: &[(&Benchmark, &Synthesis)],
    planners: &[&dyn Planner],
    threads: usize,
) -> Vec<Vec<Result<WashResult, PdwError>>> {
    crate::par::try_par_map_ctx(
        instances,
        threads,
        ScratchPool::new,
        |pool, _, &(bench, synthesis)| {
            let mut ctx = PlanContext::with_pool(bench, synthesis, std::mem::take(pool));
            let results: Vec<Result<WashResult, PdwError>> =
                planners.iter().map(|p| p.plan(&mut ctx)).collect();
            *pool = ctx.into_pool();
            results
        },
    )
    .into_iter()
    .map(|row| match row {
        Ok(results) => results,
        Err(msg) => planners
            .iter()
            .map(|_| Err(PdwError::WorkerPanic(msg.clone())))
            .collect(),
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dawo, pdw};
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    #[test]
    fn planners_share_a_context_without_changing_results() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let config = PdwConfig {
            ilp: false,
            ..PdwConfig::default()
        };

        // Cold one-shot calls.
        let cold_dawo = dawo(&bench, &s).unwrap();
        let cold_greedy = pdw(&bench, &s, &config).unwrap();

        // Same planners through one shared context.
        let mut ctx = PlanContext::new(&bench, &s);
        let warm_dawo = DawoPlanner.plan(&mut ctx).unwrap();
        let warm_greedy = GreedyPlanner::new(config.clone()).plan(&mut ctx).unwrap();
        // Re-running the greedy planner hits every cache; still identical.
        let warm_greedy2 = GreedyPlanner::new(config).plan(&mut ctx).unwrap();

        assert_eq!(warm_dawo.schedule, cold_dawo.schedule);
        assert_eq!(warm_dawo.metrics, cold_dawo.metrics);
        assert_eq!(warm_greedy.schedule, cold_greedy.schedule);
        assert_eq!(warm_greedy.metrics, cold_greedy.metrics);
        assert_eq!(warm_greedy2.schedule, cold_greedy.schedule);
        // Two distinct analyses were cached: reuse-only (DAWO) + full. The
        // same goes for the front ends (DAWO's nearest-policy groups + the
        // greedy pipeline's — the re-run was served from the cache).
        assert_eq!(ctx.cached_analyses(), 2);
        assert_eq!(ctx.cached_front_ends(), 2);
    }

    #[test]
    fn greedy_planner_forces_the_ilp_off() {
        let p = GreedyPlanner::new(PdwConfig::default());
        assert!(!p.config().ilp);
        assert_eq!(p.name(), "greedy");
        assert_eq!(DawoPlanner.name(), "dawo");
        assert_eq!(PdwPlanner::default().name(), "pdw");
    }

    #[test]
    fn batch_matches_serial_one_shot_calls_at_any_thread_count() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let instances: Vec<(&benchmarks::Benchmark, &pdw_synth::Synthesis)> = vec![(&bench, &s); 3];
        let greedy = GreedyPlanner::default();
        let planners: Vec<&dyn Planner> = vec![&DawoPlanner, &greedy];

        let serial = plan_batch(&instances, &planners, 1);
        let cold_dawo = dawo(&bench, &s).unwrap();
        let cold_greedy = pdw(
            &bench,
            &s,
            &PdwConfig {
                ilp: false,
                ..PdwConfig::default()
            },
        )
        .unwrap();
        for threads in [1, 2, 8] {
            let batch = plan_batch(&instances, &planners, threads);
            assert_eq!(batch.len(), instances.len());
            for row in &batch {
                assert_eq!(row.len(), planners.len());
                let d = row[0].as_ref().unwrap();
                let g = row[1].as_ref().unwrap();
                assert_eq!(d.schedule, cold_dawo.schedule, "dawo at {threads} threads");
                assert_eq!(
                    g.schedule, cold_greedy.schedule,
                    "greedy at {threads} threads"
                );
                assert_eq!(g.metrics, cold_greedy.metrics);
            }
            // Full cross-check against the serial batch, metrics included.
            for (a, b) in batch.iter().zip(&serial) {
                for (x, y) in a.iter().zip(b) {
                    let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
                    assert_eq!(x.schedule, y.schedule);
                    assert_eq!(x.metrics, y.metrics);
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let planners: Vec<&dyn Planner> = vec![&DawoPlanner];
        assert!(plan_batch(&[], &planners, 4).is_empty());
    }

    /// A planner that panics on every instance whose grid width matches its
    /// trigger — used to prove batch-level panic isolation.
    struct PanickyPlanner;

    impl Planner for PanickyPlanner {
        fn name(&self) -> &'static str {
            "panicky"
        }

        fn plan(&self, ctx: &mut PlanContext<'_>) -> Result<WashResult, PdwError> {
            // Touch the context (checking a scratch out of the pool) before
            // panicking, so the unwind exercises the pool-return path.
            let _ = ctx.synthesis().chip.port_reach();
            panic!("planner blew up on {}", ctx.bench().name);
        }
    }

    #[test]
    fn panicking_instance_is_isolated_and_reported() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let instances: Vec<(&benchmarks::Benchmark, &pdw_synth::Synthesis)> = vec![(&bench, &s); 4];
        let planners: Vec<&dyn Planner> = vec![&PanickyPlanner, &DawoPlanner];
        for threads in [1, 4] {
            let batch = plan_batch(&instances, &planners, threads);
            assert_eq!(batch.len(), 4);
            for row in &batch {
                // The panicking planner poisons its whole instance row…
                assert_eq!(row.len(), 2);
                for r in row {
                    match r {
                        Err(PdwError::WorkerPanic(msg)) => {
                            assert!(msg.contains("planner blew up"), "got: {msg}");
                        }
                        other => panic!("expected WorkerPanic, got {other:?}"),
                    }
                }
            }
        }
        // …but sibling batches without the panicky planner still solve.
        let good: Vec<&dyn Planner> = vec![&DawoPlanner];
        let ok = plan_batch(&instances, &good, 4);
        assert!(ok.iter().all(|row| row[0].is_ok()));
    }
}
