//! Incremental replanning: delta-scoped cache invalidation and plan repair.
//!
//! A [`RepairSession`] owns one instance (benchmark + synthesis), a planner
//! configuration, and the warm solve state a [`PlanContext`] accumulates —
//! necessity analyses, front-end wash groups, port-reachability fields, and
//! pooled BFS scratch. When the instance changes — a chip fault appears or
//! is repaired, an operation is delayed, a wash requirement is forced or
//! waived — [`RepairSession::repair`] applies the typed [`PlanDelta`],
//! invalidates only the cached state the delta's cell/port footprint
//! touches, and re-runs the degradation ladder warm:
//!
//! 1. the delta's footprint is computed as a [`CellSet`] mask (blocked/
//!    cleared cells, edge endpoints, port coordinates, edited requirement
//!    cells);
//! 2. cached necessity analyses are dropped only if their scanned cells
//!    intersect the mask ([`Analysis::touches`]); front-end group sets only
//!    if a stored candidate path crosses it; the chip's
//!    [`PortReach`](pdw_biochip::PortReach) fields are carried forward
//!    per-port with epoch-stamped generation counters
//!    ([`PortReach::carry_forward`](pdw_biochip::PortReach::carry_forward))
//!    instead of being recomputed wholesale;
//! 3. the verified schedule prefix before the delta's first affected event
//!    time is certified frozen (`repair_prefix_frozen`): every invalidation
//!    rule above guarantees a surviving cache entry is bit-identical to
//!    what a cold solve would recompute, so the replanned plan provably
//!    reattaches to the same prefix — the certification *counts* the
//!    unchanged prefix tasks rather than trusting the splice;
//! 4. the repaired plan is re-verified with the fault-aware
//!    [`pdw_sim::validate`] + [`pdw_sim::propagate`] oracle before serving,
//!    exactly like [`plan_resilient`](crate::plan_resilient) — including on
//!    the fast path, where a delta that misses every cache entry *and*
//!    every path of the served plan re-serves the cached plan after
//!    re-verification instead of replanning at all.
//!
//! Because every surviving cache entry equals its cold recomputation, a
//! repaired plan is **bit-identical to a cold solve on the mutated
//! instance** (differentially tested by the chaos harness across budgets ×
//! threads × partitions) while skipping most of the work — see
//! `BENCH_repair.json`.

use std::time::Instant;

use pdw_assay::benchmarks::Benchmark;
use pdw_assay::{OpId, Seconds as Time};
use pdw_biochip::{CellSet, Coord, FaultDelta};
use pdw_contam::WashRequirement;
use pdw_synth::Synthesis;

use crate::config::PdwConfig;
use crate::context::{ContextParts, PlanContext};
use crate::partition::plan_partitioned_ctx;
use crate::resilient::{PlanOutcome, RungAttempt, RungKind, RungRejection};
use crate::timeline::frozen_prefix_len;

/// A typed, single-step change to a planned instance.
///
/// Deltas are the unit of incremental replanning: each names exactly what
/// changed so [`RepairSession::repair`] can bound the cached state it must
/// throw away. Applying a delta that changes nothing (blocking an
/// already-blocked cell, a zero delay, waiving an already-waived cell) is a
/// no-op: the cached plan is re-served without replanning.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum PlanDelta {
    /// A chip fault appears or is repaired in the field.
    Fault(FaultDelta),
    /// Operation `op` (and everything at or after its start) slips by
    /// `delay` seconds — an op delayed or retimed upstream.
    DelayOp {
        /// The delayed operation.
        op: OpId,
        /// The slip, in schedule seconds.
        delay: Time,
    },
    /// A wash requirement is forced in addition to what the necessity
    /// analysis derives (e.g. an operator-mandated decontamination).
    AddRequirement(WashRequirement),
    /// Analyzed wash requirements on `cell` are waived (e.g. the residue
    /// is known tolerable for the remaining assay).
    DropRequirement {
        /// The cell whose requirements are dropped.
        cell: Coord,
    },
}

impl std::fmt::Display for PlanDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanDelta::Fault(d) => write!(f, "{d}"),
            PlanDelta::DelayOp { op, delay } => write!(f, "delay op {} by {delay}s", op.0),
            PlanDelta::AddRequirement(r) => write!(f, "force wash at {}", r.cell),
            PlanDelta::DropRequirement { cell } => write!(f, "waive washes at {cell}"),
        }
    }
}

/// Counters describing what one repair invalidated and what it kept.
#[derive(Debug, Clone, Copy, Default)]
struct RepairAccounting {
    invalidated_analyses: usize,
    kept_analyses: usize,
    invalidated_front_ends: usize,
    kept_front_ends: usize,
    reach_recomputed: usize,
    reach_carried: usize,
    cache_served: bool,
}

/// An owning, incrementally-repairable planning session over one instance
/// (see the [module docs](self)).
pub struct RepairSession {
    bench: Benchmark,
    synthesis: Synthesis,
    config: PdwConfig,
    partitions: usize,
    /// Harvested context caches, threaded across repairs. `None` only
    /// transiently while a ladder run borrows them.
    parts: Option<ContextParts>,
    /// The last outcome served (initial plan or latest repair).
    last: Option<PlanOutcome>,
    /// Repairs performed so far.
    repairs: usize,
}

impl RepairSession {
    /// Opens a session owning `bench` + `synthesis`, planned under
    /// `config` through the unpartitioned degradation ladder.
    pub fn new(bench: Benchmark, synthesis: Synthesis, config: PdwConfig) -> Self {
        RepairSession {
            bench,
            synthesis,
            config,
            partitions: 1,
            parts: Some(ContextParts::default()),
            last: None,
            repairs: 0,
        }
    }

    /// Routes solves through [`plan_partitioned_ctx`] with `partitions`
    /// regions (`<= 1` keeps the plain resilient ladder).
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// The benchmark this session plans.
    pub fn bench(&self) -> &Benchmark {
        &self.bench
    }

    /// The instance as currently mutated (chip faults and schedule delays
    /// applied).
    pub fn synthesis(&self) -> &Synthesis {
        &self.synthesis
    }

    /// The planner configuration.
    pub fn config(&self) -> &PdwConfig {
        &self.config
    }

    /// The last outcome served, if any.
    pub fn last(&self) -> Option<&PlanOutcome> {
        self.last.as_ref()
    }

    /// Repairs performed so far.
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// Solves the instance through the ladder, populating the session's
    /// caches. The first call is a cold solve; later calls are warm
    /// re-solves (bit-identical, faster).
    pub fn plan(&mut self) -> PlanOutcome {
        let outcome = self.run_ladder();
        self.last = Some(outcome.clone());
        outcome
    }

    /// A cold differential reference: the ladder run on the *current*
    /// (mutated) instance with no cached analyses or front ends — only the
    /// session's requirement overrides carry over, since they are part of
    /// the instance's meaning, not of its cached solve state. A repaired
    /// plan must be bit-identical to this.
    pub fn cold_reference(&self) -> PlanOutcome {
        let overrides = self
            .parts
            .as_ref()
            .map(|p| p.overrides.clone())
            .unwrap_or_default();
        let mut ctx = PlanContext::from_parts(
            &self.bench,
            &self.synthesis,
            ContextParts {
                overrides,
                ..ContextParts::default()
            },
        );
        plan_partitioned_ctx(&mut ctx, &self.config, self.partitions)
    }

    /// Applies `delta` to the owned instance and repairs the plan,
    /// invalidating only the cached state the delta's footprint touches
    /// (see the [module docs](self) for the invalidation rules). The
    /// returned outcome carries `repair_*` counters in its
    /// [`PipelineStats`](crate::PipelineStats).
    ///
    /// A delta that changes nothing re-serves the cached plan; a malformed
    /// delta (unknown op or port id, off-grid fault) serves nothing and
    /// reports a single [`RungRejection::PlannerError`] attempt.
    pub fn repair(&mut self, delta: &PlanDelta) -> PlanOutcome {
        let t = Instant::now();
        let prior_schedule = self
            .last
            .as_ref()
            .and_then(|o| o.served.as_ref())
            .map(|w| w.schedule.clone());
        let mut acct = RepairAccounting::default();

        // 1. Apply the delta to the owned instance, computing its cell/port
        //    footprint and the first schedule time it can affect.
        let freeze_until: Time = match delta {
            PlanDelta::Fault(fd) => {
                if let Err(msg) = self.check_fault_delta(fd) {
                    return self.reject(msg, t.elapsed().as_secs_f64());
                }
                let mut faults = self.synthesis.chip.faults().clone();
                if !fd.apply(&mut faults) {
                    return self.serve_unchanged(t);
                }
                let mutated = match self.synthesis.chip.with_faults(faults) {
                    Ok(c) => c,
                    Err(e) => return self.reject(e.to_string(), t.elapsed().as_secs_f64()),
                };
                // Carry the reachability fields forward per port instead of
                // recomputing them: seed the mutated chip's lazy cache with
                // the carried fields (bit-identical to a cold compute).
                let reach = self.synthesis.chip.port_reach().carry_forward(&mutated, fd);
                acct.reach_recomputed = reach.recomputed_fields();
                acct.reach_carried = reach.carried_fields();
                mutated.seed_reach(reach);
                let mask = self.fault_mask(fd);
                self.synthesis.chip = mutated;

                let parts = self.parts.as_mut().expect("parts present between runs");
                if fd.expands_reach() {
                    // Reachability may grow anywhere: every cached candidate
                    // enumeration is suspect. Analyses replay the schedule,
                    // not the routing graph, so they all survive.
                    acct.invalidated_front_ends = parts.invalidate_front_ends();
                } else {
                    let (a, f) = parts.invalidate_masked(&mask);
                    acct.invalidated_analyses = a;
                    acct.invalidated_front_ends = f;
                }
                acct.kept_analyses = parts.analyses.len();
                acct.kept_front_ends = parts.front_ends.len();

                let plan_missed = prior_schedule.as_ref().is_some_and(|s| {
                    s.tasks()
                        .all(|(_, task)| !task.path().mask().intersects(&mask))
                });
                // Fast path: a shrink delta that missed every cache entry
                // and every path of the served plan cannot change what a
                // cold deterministic solve would produce — re-verify the
                // cached plan on the mutated chip and serve it as-is. The
                // ILP and exact-path refinements consult the chip beyond
                // the caches, so the fast path requires both off.
                if !fd.expands_reach()
                    && acct.invalidated_analyses == 0
                    && acct.invalidated_front_ends == 0
                    && plan_missed
                    && !self.config.ilp
                    && !self.config.exact_paths
                {
                    if let Some(outcome) = self.serve_cached_verified(acct, t) {
                        return outcome;
                    }
                }
                self.first_affected_time(prior_schedule.as_ref(), &mask)
            }
            PlanDelta::DelayOp { op, delay } => {
                let Some(sop) = self.synthesis.schedule.scheduled_op(*op) else {
                    return self.reject(
                        format!("unknown op {} in delay delta", op.0),
                        t.elapsed().as_secs_f64(),
                    );
                };
                if *delay == 0 {
                    return self.serve_unchanged(t);
                }
                let pivot = sop.start;
                crate::timeline::shift_from(&mut self.synthesis.schedule, pivot, *delay);
                let parts = self.parts.as_mut().expect("parts present between runs");
                // The base schedule changed: every analysis and every
                // requirement-derived group set is stale. Reachability and
                // scratch are schedule-independent and survive.
                acct.invalidated_analyses = parts.invalidate_analyses();
                acct.invalidated_front_ends = parts.invalidate_front_ends();
                pivot
            }
            PlanDelta::AddRequirement(req) => {
                let freeze = req.contaminated_at;
                let parts = self.parts.as_mut().expect("parts present between runs");
                parts.overrides.force(req.clone());
                acct.invalidated_analyses = parts.invalidate_analyses();
                acct.invalidated_front_ends = parts.invalidate_front_ends();
                freeze
            }
            PlanDelta::DropRequirement { cell } => {
                let parts = self.parts.as_mut().expect("parts present between runs");
                // First affected time: the earliest window-start of a
                // requirement this waiver removes (0 if unknown).
                let freeze = parts
                    .analyses
                    .iter()
                    .flat_map(|(_, a)| a.requirements.iter())
                    .filter(|r| r.cell == *cell)
                    .map(|r| r.contaminated_at)
                    .min()
                    .unwrap_or(0);
                if !parts.overrides.waive(*cell) {
                    return self.serve_unchanged(t);
                }
                acct.invalidated_analyses = parts.invalidate_analyses();
                acct.invalidated_front_ends = parts.invalidate_front_ends();
                freeze
            }
        };

        // 2. Replan warm through the ladder (every rung re-verifies with
        //    the fault-aware validator + oracle before serving).
        let mut outcome = self.run_ladder();

        // 3. Certify the frozen prefix and stamp the repair counters.
        self.repairs += 1;
        if let Some(w) = outcome.served.as_mut() {
            w.pipeline.repair_prefix_frozen = prior_schedule
                .as_ref()
                .map(|old| frozen_prefix_len(old, &w.schedule, freeze_until))
                .unwrap_or(0);
            Self::stamp(&mut w.pipeline, self.repairs, acct);
        }
        self.last = Some(outcome.clone());
        outcome
    }

    /// Runs the ladder on the current instance around the session caches.
    fn run_ladder(&mut self) -> PlanOutcome {
        let parts = self.parts.take().unwrap_or_default();
        let mut ctx = PlanContext::from_parts(&self.bench, &self.synthesis, parts);
        let outcome = plan_partitioned_ctx(&mut ctx, &self.config, self.partitions);
        self.parts = Some(ctx.into_parts());
        outcome
    }

    /// Serves the cached outcome for a delta that changed nothing at all
    /// (empty footprint). Plans first if nothing was ever served.
    fn serve_unchanged(&mut self, t: Instant) -> PlanOutcome {
        self.repairs += 1;
        let repairs = self.repairs;
        let mut outcome = match self.last.clone() {
            Some(o) => o,
            None => self.run_ladder(),
        };
        if let Some(w) = outcome.served.as_mut() {
            let parts = self.parts.as_ref().expect("parts present between runs");
            let acct = RepairAccounting {
                kept_analyses: parts.analyses.len(),
                kept_front_ends: parts.front_ends.len(),
                reach_carried: self.synthesis.chip.port_reach().carried_fields()
                    + self.synthesis.chip.port_reach().recomputed_fields(),
                cache_served: true,
                ..RepairAccounting::default()
            };
            w.pipeline.repair_prefix_frozen = w.schedule.tasks().count();
            Self::stamp(&mut w.pipeline, repairs, acct);
            w.pipeline.total_s = t.elapsed().as_secs_f64();
        }
        self.last = Some(outcome.clone());
        outcome
    }

    /// Fast path: re-verifies the cached plan on the mutated chip exactly
    /// like a ladder rung and serves it unchanged. Returns `None` (fall
    /// back to a warm replan) if verification fails — which the caller's
    /// preconditions should make impossible, but the serve gate stays
    /// unconditional.
    fn serve_cached_verified(
        &mut self,
        mut acct: RepairAccounting,
        t: Instant,
    ) -> Option<PlanOutcome> {
        let last = self.last.as_ref()?;
        let served = last.served.as_ref()?;
        let chip = &self.synthesis.chip;
        let graph = &self.bench.graph;
        if pdw_sim::validate(chip, graph, &served.schedule).is_err() {
            return None;
        }
        if !pdw_sim::propagate(chip, graph, &served.schedule).is_clean() {
            return None;
        }
        self.repairs += 1;
        acct.cache_served = true;
        let mut outcome = last.clone();
        if let Some(w) = outcome.served.as_mut() {
            w.pipeline.repair_prefix_frozen = w.schedule.tasks().count();
            Self::stamp(&mut w.pipeline, self.repairs, acct);
            w.pipeline.total_s = t.elapsed().as_secs_f64();
        }
        self.last = Some(outcome.clone());
        Some(outcome)
    }

    /// An unserved outcome for a malformed delta: one typed attempt, no
    /// rung.
    fn reject(&self, msg: String, wall_s: f64) -> PlanOutcome {
        PlanOutcome {
            served: None,
            rung: None,
            attempts: vec![RungAttempt {
                rung: if self.partitions > 1 {
                    RungKind::Partitioned
                } else {
                    RungKind::Pdw
                },
                rejection: Some(RungRejection::PlannerError(format!(
                    "rejected delta: {msg}"
                ))),
                wall_s,
            }],
        }
    }

    /// Validates port ids against the chip's port tables (coordinates and
    /// edges are validated by `Chip::with_faults`).
    fn check_fault_delta(&self, fd: &FaultDelta) -> Result<(), String> {
        let chip = &self.synthesis.chip;
        match *fd {
            FaultDelta::DisableFlowPort(id) | FaultDelta::EnableFlowPort(id)
                if id.0 as usize >= chip.flow_ports().len() =>
            {
                Err(format!("unknown flow port {}", id.0))
            }
            FaultDelta::DisableWastePort(id) | FaultDelta::EnableWastePort(id)
                if id.0 as usize >= chip.waste_ports().len() =>
            {
                Err(format!("unknown waste port {}", id.0))
            }
            _ => Ok(()),
        }
    }

    /// The delta's cell/port footprint as a mask: touched cells, edge
    /// endpoints, and the coordinate of a disabled/enabled port (every path
    /// using the port crosses that coordinate).
    fn fault_mask(&self, fd: &FaultDelta) -> CellSet {
        let chip = &self.synthesis.chip;
        let mut cells: Vec<Coord> = fd.cells().collect();
        match *fd {
            FaultDelta::DisableFlowPort(id) | FaultDelta::EnableFlowPort(id) => {
                cells.push(chip.flow_port(id));
            }
            FaultDelta::DisableWastePort(id) | FaultDelta::EnableWastePort(id) => {
                cells.push(chip.waste_port(id));
            }
            _ => {}
        }
        CellSet::from_cells(&cells)
    }

    /// The earliest start among the prior plan's tasks whose path crosses
    /// `mask` — the first schedule time a fault delta can affect. If no
    /// task crosses it, the whole plan is unaffected and the horizon is
    /// past its end.
    fn first_affected_time(&self, prior: Option<&pdw_sched::Schedule>, mask: &CellSet) -> Time {
        let Some(schedule) = prior else { return 0 };
        schedule
            .tasks()
            .filter(|(_, task)| task.path().mask().intersects(mask))
            .map(|(_, task)| task.start())
            .min()
            .unwrap_or_else(|| schedule.makespan().saturating_add(1))
    }

    fn stamp(stats: &mut crate::stats::PipelineStats, repairs: usize, acct: RepairAccounting) {
        stats.repairs = repairs;
        stats.repair_invalidated_analyses = acct.invalidated_analyses;
        stats.repair_kept_analyses = acct.kept_analyses;
        stats.repair_invalidated_front_ends = acct.invalidated_front_ends;
        stats.repair_kept_front_ends = acct.kept_front_ends;
        stats.repair_reach_recomputed = acct.reach_recomputed;
        stats.repair_reach_carried = acct.reach_carried;
        stats.repair_cache_served = acct.cache_served;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::Planner;
    use crate::resilient::attempt_rung;
    use pdw_assay::benchmarks;
    use pdw_biochip::FlowPortId;
    use pdw_synth::synthesize;

    fn quick_config() -> PdwConfig {
        PdwConfig {
            ilp: false,
            threads: 1,
            ..PdwConfig::default()
        }
    }

    fn session() -> RepairSession {
        let bench = benchmarks::demo();
        let synthesis = synthesize(&bench).unwrap();
        RepairSession::new(bench, synthesis, quick_config())
    }

    /// Picks a channel cell no base-schedule task path or device footprint
    /// uses, so blocking it is guaranteed valid and plan-missing.
    fn spare_cell(s: &Synthesis) -> Coord {
        let chip = &s.chip;
        let mut used: std::collections::HashSet<Coord> = std::collections::HashSet::new();
        for (_, t) in s.schedule.tasks() {
            used.extend(t.path().cells().iter().copied());
        }
        for d in chip.devices() {
            used.extend(d.footprint());
        }
        let grid = chip.grid();
        (0..grid.height())
            .flat_map(|y| (0..grid.width()).map(move |x| Coord::new(x, y)))
            .find(|&c| matches!(grid.kind(c), pdw_biochip::CellKind::Channel) && !used.contains(&c))
            .expect("demo chip has a spare channel cell")
    }

    #[test]
    fn repair_after_fault_matches_cold_solve() {
        let mut s = session();
        let first = s.plan();
        assert!(first.is_served());
        let cell = spare_cell(s.synthesis());
        let outcome = s.repair(&PlanDelta::Fault(FaultDelta::BlockCell(cell)));
        let repaired = outcome.served.as_ref().expect("repair serves a plan");
        let cold = s.cold_reference();
        let cold = cold.served.as_ref().expect("cold solve serves a plan");
        assert_eq!(repaired.schedule, cold.schedule);
        assert_eq!(repaired.metrics, cold.metrics);
        assert_eq!(outcome.rung, s.cold_reference().rung);
        assert!(repaired.pipeline.repairs >= 1);
        // The chip really carries the fault now.
        assert!(s.synthesis().chip.faults().cell_blocked(cell));
    }

    #[test]
    fn empty_footprint_delta_is_a_no_op_serving_the_cached_plan() {
        let mut s = session();
        let first = s.plan();
        let baseline = first.served.as_ref().unwrap().schedule.clone();
        let cell = spare_cell(s.synthesis());
        // Block, then block again: the second apply changes nothing.
        s.repair(&PlanDelta::Fault(FaultDelta::BlockCell(cell)));
        let served_after_block = s.last().unwrap().served.as_ref().unwrap().schedule.clone();
        let outcome = s.repair(&PlanDelta::Fault(FaultDelta::BlockCell(cell)));
        let w = outcome.served.as_ref().expect("no-op still serves");
        assert!(w.pipeline.repair_cache_served);
        assert_eq!(w.schedule, served_after_block);
        assert_eq!(
            w.pipeline.repair_prefix_frozen,
            w.schedule.tasks().count(),
            "a no-op freezes the entire plan"
        );
        // Same for a zero delay and an already-waived cell.
        let op = s.synthesis().schedule.ops().first().unwrap().op;
        let outcome = s.repair(&PlanDelta::DelayOp { op, delay: 0 });
        assert!(outcome.served.unwrap().pipeline.repair_cache_served);
        s.repair(&PlanDelta::DropRequirement { cell });
        let outcome = s.repair(&PlanDelta::DropRequirement { cell });
        assert!(outcome.served.unwrap().pipeline.repair_cache_served);
        let _ = baseline;
    }

    #[test]
    fn malformed_deltas_are_rejected_with_a_typed_attempt() {
        let mut s = session();
        s.plan();
        let bad_port = FlowPortId(u32::MAX);
        let outcome = s.repair(&PlanDelta::Fault(FaultDelta::DisableFlowPort(bad_port)));
        assert!(!outcome.is_served());
        assert!(matches!(
            outcome.attempts[0].rejection,
            Some(RungRejection::PlannerError(_))
        ));
        let outcome = s.repair(&PlanDelta::DelayOp {
            op: OpId(u32::MAX),
            delay: 5,
        });
        assert!(!outcome.is_served());
        // The session survives rejections: a valid repair still works.
        let cell = spare_cell(s.synthesis());
        let outcome = s.repair(&PlanDelta::Fault(FaultDelta::BlockCell(cell)));
        assert!(outcome.is_served());
    }

    #[test]
    fn delay_delta_shifts_the_base_schedule_and_replans() {
        let mut s = session();
        s.plan();
        let op = s.synthesis().schedule.ops().first().unwrap().op;
        let pivot = s.synthesis().schedule.scheduled_op(op).unwrap().start;
        let outcome = s.repair(&PlanDelta::DelayOp { op, delay: 11 });
        assert!(outcome.is_served());
        assert_eq!(
            s.synthesis().schedule.scheduled_op(op).unwrap().start,
            pivot + 11
        );
        let cold = s.cold_reference();
        assert_eq!(
            outcome.served.unwrap().schedule,
            cold.served.unwrap().schedule
        );
    }

    #[test]
    fn requirement_deltas_differentially_match_cold() {
        let mut s = session();
        s.plan();
        let some_req = {
            let mut ctx = PlanContext::new(s.bench(), s.synthesis());
            ctx.ensure_analysis(pdw_contam::NecessityOptions::full());
            ctx.analysis(pdw_contam::NecessityOptions::full())
                .requirements[0]
                .clone()
        };
        let outcome = s.repair(&PlanDelta::DropRequirement {
            cell: some_req.cell,
        });
        assert!(outcome.is_served());
        let cold = s.cold_reference();
        assert_eq!(
            outcome.served.unwrap().schedule,
            cold.served.unwrap().schedule
        );
        let outcome = s.repair(&PlanDelta::AddRequirement(some_req));
        assert!(outcome.is_served());
        let cold = s.cold_reference();
        assert_eq!(
            outcome.served.unwrap().schedule,
            cold.served.unwrap().schedule
        );
    }

    /// A planner that panics mid-solve, for pool-unwind coverage.
    struct PanickyRepairPlanner;

    impl Planner for PanickyRepairPlanner {
        fn name(&self) -> &'static str {
            "panicky-repair"
        }

        fn plan(&self, ctx: &mut PlanContext<'_>) -> Result<crate::WashResult, crate::PdwError> {
            // Check something out of the pool first, as a real worker would.
            let _guard = ctx.scratch_pool().checkout(ctx.chip());
            panic!("repair worker dies mid-solve");
        }
    }

    #[test]
    fn scratch_pool_survives_a_panicking_repair_worker() {
        let mut s = session();
        s.plan();
        let parts = s.parts.take().unwrap();
        let available = parts.pool.available();
        assert!(available > 0, "a served plan leaves warm scratch behind");
        let mut ctx = PlanContext::from_parts(&s.bench, &s.synthesis, parts);
        let (served, rejection, _) = attempt_rung(&PanickyRepairPlanner, &mut ctx);
        assert!(served.is_none());
        assert!(matches!(rejection, Some(RungRejection::Panicked(_))));
        let parts = ctx.into_parts();
        assert_eq!(
            parts.pool.available(),
            available,
            "the checked-out scratch returned on unwind"
        );
        // The session keeps repairing after the panic-isolated attempt.
        s.parts = Some(parts);
        let cell = spare_cell(s.synthesis());
        assert!(s
            .repair(&PlanDelta::Fault(FaultDelta::BlockCell(cell)))
            .is_served());
    }
}
