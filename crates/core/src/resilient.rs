//! The graceful-degradation ladder: PDW → greedy → DAWO.
//!
//! [`plan_resilient`] is the fault-tolerant entry point of the planner
//! engine. It walks a ladder of planners from strongest to cheapest — the
//! full ILP-refined PathDriver-Wash pipeline, its greedy warm start, the
//! DAWO baseline — under one shared [`Deadline`] and one shared
//! [`PlanContext`], and serves the first rung whose plan survives
//! *independent* fault-aware re-verification:
//!
//! - [`pdw_sim::validate`] — physical executability, including the chip's
//!   [`FaultSet`](pdw_biochip::FaultSet): a path through a clogged cell, a
//!   stuck valve, or a disabled port is invalid;
//! - [`pdw_sim::propagate`] — the contamination-propagation oracle, which
//!   likewise reports fault crossings.
//!
//! Every rung is wrapped in `catch_unwind`, so a planner panic (e.g. an
//! internal assertion tripped by a heavily damaged chip) is converted into
//! a typed [`RungRejection::Panicked`] and the ladder moves on. A rung that
//! would start after the deadline has expired is skipped with
//! [`RungRejection::DeadlineExpired`] — except the cheap rungs, which run
//! with a fully-degraded (zero-remaining) budget so that even a zero
//! deadline still serves a plan when one exists. The returned
//! [`PlanOutcome`] records, for every rung attempted, whether it served or
//! why it was rejected, plus its wall time.
//!
//! Determinism: for budgets `None` and `Some(0)` (and any budget that has
//! certainly expired by the first checkpoint), the outcome's schedule is a
//! pure function of `(instance, config)` — bit-identical at any thread
//! count. Intermediate budgets race wall clock by design.

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::time::Instant;

use pdw_assay::benchmarks::Benchmark;
use pdw_synth::Synthesis;

use crate::config::PdwConfig;
use crate::context::PlanContext;
use crate::deadline::Deadline;
use crate::pdw::WashResult;
use crate::planner::{DawoPlanner, GreedyPlanner, PdwPlanner, Planner};

/// A rung of the degradation ladder, strongest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RungKind {
    /// The partitioned planner: regions planned in parallel, stitched at
    /// the seams (only attempted by
    /// [`plan_partitioned`](crate::plan_partitioned) with ≥ 2 regions).
    Partitioned,
    /// The full PathDriver-Wash pipeline (ILP refinement per the config).
    Pdw,
    /// The pipeline stopped at its greedy warm start (no ILP).
    Greedy,
    /// The DAWO baseline: per-spot washes, independent BFS paths.
    Dawo,
}

impl fmt::Display for RungKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RungKind::Partitioned => "partitioned",
            RungKind::Pdw => "pdw",
            RungKind::Greedy => "greedy",
            RungKind::Dawo => "dawo",
        })
    }
}

/// Why a rung of the ladder did not serve.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum RungRejection {
    /// The pipeline deadline had expired before the rung could start.
    DeadlineExpired,
    /// The rung's planner returned an error (e.g. it could not produce a
    /// valid plan on the faulted chip).
    PlannerError(String),
    /// The rung produced a plan, but independent fault-aware validation
    /// rejected it.
    InvalidPlan(String),
    /// The rung produced a plan, but the contamination-propagation oracle
    /// found violations on it.
    ContaminatedPlan(String),
    /// The rung panicked; the panic was caught and isolated.
    Panicked(String),
}

impl fmt::Display for RungRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RungRejection::DeadlineExpired => write!(f, "deadline expired before the rung started"),
            RungRejection::PlannerError(e) => write!(f, "planner error: {e}"),
            RungRejection::InvalidPlan(e) => write!(f, "plan failed fault-aware validation: {e}"),
            RungRejection::ContaminatedPlan(e) => write!(f, "plan failed the oracle: {e}"),
            RungRejection::Panicked(e) => write!(f, "planner panicked: {e}"),
        }
    }
}

/// One attempted rung of the ladder.
#[derive(Debug, Clone)]
pub struct RungAttempt {
    /// Which rung was attempted.
    pub rung: RungKind,
    /// `None` when this rung's plan was served; otherwise why it wasn't.
    pub rejection: Option<RungRejection>,
    /// Wall time spent on this rung, seconds (0 for skipped rungs).
    pub wall_s: f64,
}

/// The outcome of a resilient solve: which rung (if any) served, and the
/// full audit trail of attempts.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The served plan, already validated and oracle-clean on the (possibly
    /// faulted) chip. `None` when every rung was rejected.
    pub served: Option<WashResult>,
    /// The rung that served, when one did.
    pub rung: Option<RungKind>,
    /// Every rung attempted, strongest first, each with its disposition.
    pub attempts: Vec<RungAttempt>,
}

impl PlanOutcome {
    /// `true` when some rung served a plan.
    pub fn is_served(&self) -> bool {
        self.served.is_some()
    }

    /// The rejection recorded for `rung`, if that rung was attempted and
    /// rejected.
    pub fn rejection_of(&self, rung: RungKind) -> Option<&RungRejection> {
        self.attempts
            .iter()
            .find(|a| a.rung == rung)
            .and_then(|a| a.rejection.as_ref())
    }
}

impl fmt::Display for PlanOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.rung {
            Some(r) => write!(
                f,
                "served by `{r}` after {} attempt(s)",
                self.attempts.len()
            ),
            None => write!(f, "no rung served ({} attempts)", self.attempts.len()),
        }
    }
}

/// Runs one rung: the planner under `catch_unwind`, then independent
/// fault-aware re-verification of whatever it produced.
pub(crate) fn attempt_rung(
    planner: &dyn Planner,
    ctx: &mut PlanContext<'_>,
) -> (Option<WashResult>, Option<RungRejection>, f64) {
    let t = Instant::now();
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| planner.plan(ctx)));
    let wall_s = t.elapsed().as_secs_f64();
    let result = match outcome {
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            return (None, Some(RungRejection::Panicked(msg)), wall_s);
        }
        Ok(Err(e)) => {
            return (
                None,
                Some(RungRejection::PlannerError(e.to_string())),
                wall_s,
            )
        }
        Ok(Ok(result)) => result,
    };
    // Independent acceptance gate: the planner's own checks already ran,
    // but the ladder re-verifies with the fault-aware validator and the
    // contamination oracle before serving — a rung may only serve a plan
    // that is executable and clean on the chip *as damaged*.
    let chip = &ctx.synthesis().chip;
    let graph = &ctx.bench().graph;
    if let Err(e) = pdw_sim::validate(chip, graph, &result.schedule) {
        return (
            None,
            Some(RungRejection::InvalidPlan(e.to_string())),
            wall_s,
        );
    }
    let oracle = pdw_sim::propagate(chip, graph, &result.schedule);
    if !oracle.is_clean() {
        let first = oracle
            .violations
            .first()
            .map(|v| v.to_string())
            .unwrap_or_default();
        return (
            None,
            Some(RungRejection::ContaminatedPlan(format!(
                "{} violation(s); first: {first}",
                oracle.violations.len()
            ))),
            wall_s,
        );
    }
    (Some(result), None, wall_s)
}

/// Solves the context's instance with the degradation ladder (see the
/// [module docs](self)). `config` configures the strongest rung; the
/// ladder derives the cheaper rungs from it. Never panics.
pub fn plan_resilient_ctx(ctx: &mut PlanContext<'_>, config: &PdwConfig) -> PlanOutcome {
    let deadline = Deadline::start(config.pipeline_budget);
    let mut attempts: Vec<RungAttempt> = Vec::new();

    // Rung 1: the full pipeline. Skipped outright once the deadline is
    // gone — its value over the greedy rung is exactly the expensive
    // stages the deadline no longer affords.
    if deadline.expired() {
        attempts.push(RungAttempt {
            rung: RungKind::Pdw,
            rejection: Some(RungRejection::DeadlineExpired),
            wall_s: 0.0,
        });
    } else {
        let planner = PdwPlanner::new(PdwConfig {
            pipeline_budget: deadline.remaining(),
            ..config.clone()
        });
        let (served, rejection, wall_s) = attempt_rung(&planner, ctx);
        attempts.push(RungAttempt {
            rung: RungKind::Pdw,
            rejection,
            wall_s,
        });
        if let Some(result) = served {
            return PlanOutcome {
                served: Some(result),
                rung: Some(RungKind::Pdw),
                attempts,
            };
        }
    }

    // Rung 2: the greedy warm start. Runs even on an expired deadline —
    // with zero remaining budget its front end degrades to the cheapest
    // variant, which is precisely the wanted behavior.
    let planner = GreedyPlanner::new(PdwConfig {
        exact_paths: false,
        pipeline_budget: deadline.remaining(),
        ..config.clone()
    });
    let (served, rejection, wall_s) = attempt_rung(&planner, ctx);
    attempts.push(RungAttempt {
        rung: RungKind::Greedy,
        rejection,
        wall_s,
    });
    if let Some(result) = served {
        return PlanOutcome {
            served: Some(result),
            rung: Some(RungKind::Greedy),
            attempts,
        };
    }

    // Rung 3: the DAWO baseline — no budget knobs, cheapest construction.
    let (served, rejection, wall_s) = attempt_rung(&DawoPlanner, ctx);
    attempts.push(RungAttempt {
        rung: RungKind::Dawo,
        rejection,
        wall_s,
    });
    let rung = served.as_ref().map(|_| RungKind::Dawo);
    PlanOutcome {
        served,
        rung,
        attempts,
    }
}

/// One-shot wrapper for [`plan_resilient_ctx`]: builds a throwaway
/// [`PlanContext`] for the instance. Never panics.
pub fn plan_resilient(bench: &Benchmark, synthesis: &Synthesis, config: &PdwConfig) -> PlanOutcome {
    let mut ctx = PlanContext::new(bench, synthesis);
    plan_resilient_ctx(&mut ctx, config)
}

/// Solves a corpus of instances resiliently, fanning across `threads`
/// workers (0 = all cores) with per-worker scratch-pool reuse, mirroring
/// [`plan_batch`](crate::plan_batch). One [`PlanOutcome`] per instance, in
/// input order. Never panics: per-rung panics become typed rejections, and
/// a panic escaping the ladder machinery itself is isolated per instance
/// as an all-rungs-[`Panicked`](RungRejection::Panicked) outcome.
pub fn plan_resilient_batch(
    instances: &[(&Benchmark, &Synthesis)],
    config: &PdwConfig,
    threads: usize,
) -> Vec<PlanOutcome> {
    crate::par::try_par_map_ctx(
        instances,
        threads,
        pdw_biochip::ScratchPool::new,
        |pool, _, &(bench, synthesis)| {
            let mut ctx = PlanContext::with_pool(bench, synthesis, std::mem::take(pool));
            let outcome = plan_resilient_ctx(&mut ctx, config);
            *pool = ctx.into_pool();
            outcome
        },
    )
    .into_iter()
    .map(|row| {
        row.unwrap_or_else(|msg| PlanOutcome {
            served: None,
            rung: None,
            attempts: [RungKind::Pdw, RungKind::Greedy, RungKind::Dawo]
                .into_iter()
                .map(|rung| RungAttempt {
                    rung,
                    rejection: Some(RungRejection::Panicked(msg.clone())),
                    wall_s: 0.0,
                })
                .collect(),
        })
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;
    use std::time::Duration;

    #[test]
    fn pristine_instance_is_served_by_the_top_rung() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let config = PdwConfig {
            ilp: false,
            ..PdwConfig::default()
        };
        let outcome = plan_resilient(&bench, &s, &config);
        assert_eq!(outcome.rung, Some(RungKind::Pdw));
        assert_eq!(outcome.attempts.len(), 1);
        assert!(outcome.attempts[0].rejection.is_none());
        assert!(outcome.is_served());
    }

    #[test]
    fn zero_budget_serves_a_degraded_rung_deterministically() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let run = |threads: usize| {
            plan_resilient(
                &bench,
                &s,
                &PdwConfig {
                    threads,
                    pipeline_budget: Some(Duration::ZERO),
                    ..PdwConfig::default()
                },
            )
        };
        let serial = run(1);
        // The top rung must be skipped with a typed deadline rejection…
        assert!(matches!(
            serial.rejection_of(RungKind::Pdw),
            Some(RungRejection::DeadlineExpired)
        ));
        // …and a cheaper rung must still serve.
        assert!(serial.is_served());
        assert_ne!(serial.rung, Some(RungKind::Pdw));
        let served = serial.served.as_ref().unwrap();
        assert!(served.pipeline.deadline_expired || serial.rung == Some(RungKind::Dawo));
        for threads in [2, 8] {
            let par = run(threads);
            assert_eq!(par.rung, serial.rung);
            let p = par.served.as_ref().unwrap();
            assert_eq!(p.schedule, served.schedule, "threads={threads}");
            assert_eq!(p.metrics, served.metrics);
        }
    }

    #[test]
    fn batch_outcomes_match_one_shot_calls() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let config = PdwConfig {
            ilp: false,
            ..PdwConfig::default()
        };
        let one = plan_resilient(&bench, &s, &config);
        let instances: Vec<(&benchmarks::Benchmark, &pdw_synth::Synthesis)> = vec![(&bench, &s); 3];
        for threads in [1, 4] {
            let batch = plan_resilient_batch(&instances, &config, threads);
            assert_eq!(batch.len(), 3);
            for outcome in &batch {
                assert_eq!(outcome.rung, one.rung);
                assert_eq!(
                    outcome.served.as_ref().unwrap().schedule,
                    one.served.as_ref().unwrap().schedule
                );
            }
        }
    }
}
