//! Per-stage observability of the wash-optimization pipeline.

use std::time::Instant;

use pdw_biochip::RoutingCounters;
use serde::{Deserialize, Serialize};

/// Wall-clock and routing-effort breakdown of one optimizer run.
///
/// Stage names follow the pipeline: necessity analysis → grouping (group
/// construction plus candidate-path enumeration, including the spot-cluster
/// split) → merging → greedy insertion → ILP refinement. Routing counters
/// are process-wide deltas taken over the run, so they include every BFS the
/// stages triggered.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Front-end worker threads used (after resolving 0 = all cores).
    pub threads: usize,
    /// Wash-necessity analysis wall time, seconds.
    pub necessity_s: f64,
    /// Group construction + candidate enumeration wall time, seconds.
    pub grouping_s: f64,
    /// Group merging wall time, seconds.
    pub merge_s: f64,
    /// Greedy sweep-line insertion wall time, seconds.
    pub greedy_s: f64,
    /// ILP refinement wall time, seconds (0 when the ILP is disabled).
    pub ilp_s: f64,
    /// End-to-end optimizer wall time, seconds.
    pub total_s: f64,
    /// Routing queries (`route`/`route_via`) issued during the run.
    pub route_calls: u64,
    /// BFS leg searches run (a `route_via` runs one per stop).
    pub bfs_runs: u64,
    /// Routing queries served by an already-warm scratch (no allocation).
    pub scratch_reuses: u64,
    /// Wash groups after merging (as handed to the greedy inserter).
    pub groups: usize,
    /// Candidate wash paths enumerated across those groups.
    pub candidates: usize,
    /// The pipeline deadline was observed expired at some checkpoint.
    pub deadline_expired: bool,
    /// The front end was cut over to its cheapest variant (one candidate
    /// per group, no merging) because the deadline expired before
    /// enumeration.
    pub degraded_front_end: bool,
    /// Exact-path refinement was requested but skipped because the deadline
    /// had expired.
    pub exact_paths_skipped: bool,
    /// Wash groups whose exact-path solve gave up (no path within its
    /// budget); the enumerated candidates were kept instead.
    pub exact_path_giveups: usize,
    /// ILP refinement was requested but skipped because the deadline had
    /// expired.
    pub ilp_skipped: bool,
    /// The ILP ran out of its (possibly deadline-clamped) budget before
    /// proving optimality.
    pub ilp_budget_expired: bool,
    /// The ILP ran but its refinement was rejected (invalid, or an
    /// objective regression, or no refinement found) and the greedy
    /// schedule was served instead.
    pub ilp_rejected: bool,
    /// Regions the chip was cut into (0 when planning was unpartitioned).
    pub partition_regions: usize,
    /// Regions skipped entirely because no wash necessity fell inside them.
    pub regions_skipped: usize,
    /// Span buckets whose front end panicked (e.g. a cluster-split bridge
    /// cell beyond their view); their requirements were replanned on the
    /// whole chip as seam work.
    pub regions_refused: usize,
    /// Wash groups whose chosen path crosses a cut interface — planned on a
    /// multi-band span view or on the whole chip, and coordinated by the
    /// seam ILP.
    pub seam_groups: usize,
    /// Fewer viable cuts existed than requested regions; the partition was
    /// clamped.
    pub partition_clamped: bool,
    /// Region jobs answered by an out-of-process `pdw worker`
    /// (0 when planning ran in-process).
    pub subprocess_jobs: usize,
    /// Region jobs that fell back to in-process planning after a worker
    /// transport failure (death, pipe loss, corrupt frame). The plan is
    /// unaffected — only where it was computed changed.
    pub subprocess_fallbacks: usize,
    /// Executor lanes that exhausted their per-run respawn budget and
    /// degraded to in-process planning for their remaining jobs.
    pub subprocess_exhausted: usize,
    /// This result was produced by [`RepairSession::repair`]
    /// (0 = a cold/initial solve).
    ///
    /// [`RepairSession::repair`]: crate::RepairSession::repair
    pub repairs: usize,
    /// Cached necessity analyses dropped by the repair's delta footprint.
    pub repair_invalidated_analyses: usize,
    /// Cached necessity analyses that survived the repair untouched.
    pub repair_kept_analyses: usize,
    /// Cached front-end group sets dropped by the repair's delta footprint.
    pub repair_invalidated_front_ends: usize,
    /// Cached front-end group sets that survived the repair untouched.
    pub repair_kept_front_ends: usize,
    /// Per-port reachability fields the repair re-ran BFS for.
    pub repair_reach_recomputed: usize,
    /// Per-port reachability fields carried forward verbatim.
    pub repair_reach_carried: usize,
    /// Tasks of the pre-delta plan certified frozen: they start before the
    /// delta's first affected event time and reappear bit-identically in
    /// the repaired plan.
    pub repair_prefix_frozen: usize,
    /// The repair served the cached plan directly (re-verified on the
    /// mutated chip, no replan): the delta's footprint missed every cache
    /// entry and every path of the plan.
    pub repair_cache_served: bool,
}

impl PipelineStats {
    /// Sum of the front-end stages (everything but the ILP back-end):
    /// grouping, merging, and greedy insertion.
    pub fn front_end_s(&self) -> f64 {
        self.grouping_s + self.merge_s + self.greedy_s
    }

    /// Human-readable degradation/fallback events recorded during the run,
    /// in pipeline order. Empty when the run completed every requested
    /// stage at full strength.
    pub fn degradation_events(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if self.deadline_expired {
            out.push("pipeline deadline expired");
        }
        if self.degraded_front_end {
            out.push("front end degraded (1 candidate/group, no merging)");
        }
        if self.exact_paths_skipped {
            out.push("exact-path refinement skipped");
        }
        if self.exact_path_giveups > 0 {
            out.push("exact-path solver gave up on some groups");
        }
        if self.ilp_skipped {
            out.push("ILP refinement skipped");
        }
        if self.ilp_budget_expired {
            out.push("ILP budget expired before optimality");
        }
        if self.ilp_rejected {
            out.push("ILP refinement rejected; greedy schedule served");
        }
        if self.partition_clamped {
            out.push("partition clamped (fewer viable cuts than requested regions)");
        }
        if self.regions_refused > 0 {
            out.push("some regions refused their front end; replanned as seam work");
        }
        if self.subprocess_fallbacks > 0 {
            out.push("some region workers failed; jobs replanned in-process");
        }
        if self.subprocess_exhausted > 0 {
            out.push("worker respawn budget exhausted; lane degraded to in-process");
        }
        out
    }
}

/// Stage-timing harness for an optimizer run.
///
/// Replaces the per-planner `Instant::now()` / counter-snapshot boilerplate:
/// a planner starts a timer, wraps each stage in [`stage`](Self::stage)
/// naming the stat slot it should charge, and [`seal`](Self::seal)s the
/// run-wide totals (end-to-end wall time plus the process-wide
/// routing-counter deltas accumulated since the timer started). `seal`
/// borrows, so a planner with multiple exits (e.g. ILP adoption vs greedy
/// fallback) can seal at each.
pub(crate) struct StageTimer {
    run_start: Instant,
    counters_start: RoutingCounters,
    /// The stats under construction; planners fill the non-timing fields
    /// (`groups`, `candidates`) directly.
    pub stats: PipelineStats,
}

impl StageTimer {
    /// Starts the run clock and snapshots the routing counters.
    pub fn start(threads: usize) -> Self {
        StageTimer {
            run_start: Instant::now(),
            counters_start: pdw_biochip::routing_counters(),
            stats: PipelineStats {
                threads: crate::par::resolve_threads(threads),
                ..PipelineStats::default()
            },
        }
    }

    /// Runs `f`, charging its wall time to the stat slot picked by `slot`
    /// (e.g. `|s| &mut s.grouping_s`). Times accumulate, so a stage split
    /// across several calls charges one slot correctly.
    pub fn stage<R>(
        &mut self,
        slot: impl FnOnce(&mut PipelineStats) -> &mut f64,
        f: impl FnOnce() -> R,
    ) -> R {
        let t = Instant::now();
        let r = f();
        *slot(&mut self.stats) += t.elapsed().as_secs_f64();
        r
    }

    /// Fills the run-wide totals: end-to-end wall time and routing-counter
    /// deltas since [`start`](Self::start).
    pub fn seal(&self) -> PipelineStats {
        let mut stats = self.stats;
        stats.total_s = self.run_start.elapsed().as_secs_f64();
        let d = pdw_biochip::routing_counters() - self.counters_start;
        stats.route_calls = d.route_calls;
        stats.bfs_runs = d.bfs_runs;
        stats.scratch_reuses = d.scratch_reuses;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_timer_charges_named_slots_and_seals_totals() {
        let mut timer = StageTimer::start(1);
        let out = timer.stage(|s| &mut s.grouping_s, || 41 + 1);
        assert_eq!(out, 42);
        timer.stage(|s| &mut s.grouping_s, || ());
        timer.stage(|s| &mut s.greedy_s, || ());
        let sealed = timer.seal();
        assert!(sealed.grouping_s >= 0.0 && sealed.greedy_s >= 0.0);
        assert!(sealed.total_s >= sealed.grouping_s + sealed.greedy_s);
        assert_eq!(sealed.threads, 1);
        // Sealing is non-consuming: a second exit point can seal again.
        let sealed2 = timer.seal();
        assert!(sealed2.total_s >= sealed.total_s);
    }

    #[test]
    fn front_end_sums_the_non_ilp_stages() {
        let s = PipelineStats {
            grouping_s: 1.0,
            merge_s: 2.0,
            greedy_s: 4.0,
            ilp_s: 100.0,
            necessity_s: 50.0,
            ..PipelineStats::default()
        };
        assert!((s.front_end_s() - 7.0).abs() < 1e-12);
    }
}
