//! Per-stage observability of the wash-optimization pipeline.

use serde::Serialize;

/// Wall-clock and routing-effort breakdown of one optimizer run.
///
/// Stage names follow the pipeline: necessity analysis → grouping (group
/// construction plus candidate-path enumeration, including the spot-cluster
/// split) → merging → greedy insertion → ILP refinement. Routing counters
/// are process-wide deltas taken over the run, so they include every BFS the
/// stages triggered.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct PipelineStats {
    /// Front-end worker threads used (after resolving 0 = all cores).
    pub threads: usize,
    /// Wash-necessity analysis wall time, seconds.
    pub necessity_s: f64,
    /// Group construction + candidate enumeration wall time, seconds.
    pub grouping_s: f64,
    /// Group merging wall time, seconds.
    pub merge_s: f64,
    /// Greedy sweep-line insertion wall time, seconds.
    pub greedy_s: f64,
    /// ILP refinement wall time, seconds (0 when the ILP is disabled).
    pub ilp_s: f64,
    /// End-to-end optimizer wall time, seconds.
    pub total_s: f64,
    /// Routing queries (`route`/`route_via`) issued during the run.
    pub route_calls: u64,
    /// BFS leg searches run (a `route_via` runs one per stop).
    pub bfs_runs: u64,
    /// Routing queries served by an already-warm scratch (no allocation).
    pub scratch_reuses: u64,
    /// Wash groups after merging (as handed to the greedy inserter).
    pub groups: usize,
    /// Candidate wash paths enumerated across those groups.
    pub candidates: usize,
}

impl PipelineStats {
    /// Sum of the front-end stages (everything but the ILP back-end):
    /// grouping, merging, and greedy insertion.
    pub fn front_end_s(&self) -> f64 {
        self.grouping_s + self.merge_s + self.greedy_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn front_end_sums_the_non_ilp_stages() {
        let s = PipelineStats {
            grouping_s: 1.0,
            merge_s: 2.0,
            greedy_s: 4.0,
            ilp_s: 100.0,
            necessity_s: 50.0,
            ..PipelineStats::default()
        };
        assert!((s.front_end_s() - 7.0).abs() < 1e-12);
    }
}
