//! Cell/time occupancy view of a schedule, for wash insertion.

use std::collections::HashMap;

use pdw_biochip::{CellSet, Chip};
use pdw_sched::{Schedule, TaskKind, Time};

/// One busy interval on a set of cells: a task's path over its window, or a
/// device footprint from the start of an operation's loading to the pickup
/// of its result.
#[derive(Debug, Clone)]
struct Item {
    cells: CellSet,
    start: Time,
    end: Time,
    /// Start time of the item's *last* component: a task's own start, or an
    /// operation occupancy's result-pickup start. If a right-shift pivot
    /// falls at or before `moves_at` (but after `start`), the item
    /// stretches over the gap instead of moving out of it.
    moves_at: Time,
}

/// An immutable occupancy index over a schedule.
///
/// Rebuilt after every mutation — schedules are small (hundreds of tasks),
/// so reconstruction is cheaper than maintaining the index incrementally.
#[derive(Debug, Clone)]
pub(crate) struct Timeline {
    items: Vec<Item>,
}

impl Timeline {
    /// Builds the occupancy index: every task plus every operation's
    /// loading-to-pickup device residency.
    pub fn new(chip: &Chip, schedule: &Schedule) -> Self {
        let mut items: Vec<Item> = schedule
            .tasks()
            .map(|(_, t)| Item {
                cells: t.path().mask().clone(),
                start: t.start(),
                end: t.end(),
                moves_at: t.start(),
            })
            .collect();

        // Device occupancy windows: (load start, pickup end, pickup start).
        let mut occupancy: HashMap<_, (Time, Time, Time)> = schedule
            .ops()
            .iter()
            .map(|sop| (sop.op, (sop.start, sop.end(), sop.start)))
            .collect();
        for (_, task) in schedule.tasks() {
            match *task.kind() {
                TaskKind::Injection { op, .. } | TaskKind::ExcessRemoval { op } => {
                    if let Some(w) = occupancy.get_mut(&op) {
                        w.0 = w.0.min(task.start());
                    }
                }
                TaskKind::Transport { from_op, to_op } => {
                    if let Some(w) = occupancy.get_mut(&to_op) {
                        w.0 = w.0.min(task.start());
                    }
                    if let Some(w) = occupancy.get_mut(&from_op) {
                        if task.end() > w.1 {
                            w.1 = task.end();
                            w.2 = w.2.max(task.start());
                        }
                    }
                }
                TaskKind::OutputRemoval { op } => {
                    if let Some(w) = occupancy.get_mut(&op) {
                        if task.end() > w.1 {
                            w.1 = task.end();
                            w.2 = w.2.max(task.start());
                        }
                    }
                }
                TaskKind::Wash { .. } => {}
            }
        }
        for sop in schedule.ops() {
            let (start, end, moves_at) = occupancy[&sop.op];
            items.push(Item {
                cells: CellSet::from_cells(chip.device(sop.device).footprint()),
                start,
                end,
                moves_at,
            });
        }
        Timeline { items }
    }

    /// Earliest `t ≥ ready` with `t + dur ≤ deadline` (when given) such that
    /// `cells` are free over `[t, t + dur)`.
    pub fn earliest_fit(
        &self,
        cells: &CellSet,
        ready: Time,
        dur: Time,
        deadline: Option<Time>,
    ) -> Option<Time> {
        let relevant: Vec<&Item> = self
            .items
            .iter()
            .filter(|it| it.cells.intersects(cells))
            .collect();
        let mut candidates: Vec<Time> = vec![ready];
        candidates.extend(relevant.iter().map(|it| it.end).filter(|&e| e > ready));
        candidates.sort_unstable();
        candidates.dedup();
        'outer: for &t in &candidates {
            if let Some(d) = deadline {
                if t + dur > d {
                    return None; // candidates ascend; nothing later fits either
                }
            }
            for it in &relevant {
                if t < it.end && it.start < t + dur {
                    continue 'outer;
                }
            }
            return Some(t);
        }
        None
    }

    /// Earliest `t ≥ ready` such that `cells` stay free over `[t, t + dur)`
    /// *after* a right-shift of everything starting at or after `pivot`
    /// (with the shift sized so the shifted block lands after `t + dur`):
    ///
    /// - items starting at or after `pivot` move past the wash — ignored;
    /// - items entirely before `pivot` are fixed — checked as usual;
    /// - items that straddle (`start < pivot ≤ moves_at`) *stretch* across
    ///   the gap: they block their cells from `start` onward, forever.
    ///
    /// Returns `None` when a straddling item covers the cells from before
    /// `ready`, i.e. no shift of this shape can ever make room.
    pub fn earliest_fit_shifted(
        &self,
        cells: &CellSet,
        ready: Time,
        dur: Time,
        pivot: Time,
    ) -> Option<Time> {
        let relevant: Vec<(Time, Option<Time>)> = self
            .items
            .iter()
            .filter(|it| it.cells.intersects(cells))
            .filter_map(|it| {
                if it.start >= pivot {
                    None // moves wholesale past the inserted gap
                } else if it.moves_at >= pivot && it.end > pivot {
                    Some((it.start, None)) // stretches: open-ended
                } else {
                    Some((it.start, Some(it.end)))
                }
            })
            .collect();
        let mut candidates: Vec<Time> = vec![ready];
        candidates.extend(
            relevant
                .iter()
                .filter_map(|(_, e)| *e)
                .filter(|&e| e > ready),
        );
        candidates.sort_unstable();
        candidates.dedup();
        'outer: for &t in &candidates {
            for &(start, end) in &relevant {
                let blocked = match end {
                    Some(end) => t < end && start < t + dur,
                    None => start < t + dur,
                };
                if blocked {
                    continue 'outer;
                }
            }
            return Some(t);
        }
        None
    }
}

/// Shifts every operation and task starting at or after `pivot` by `delay`
/// seconds. Relative orders are preserved, so a valid schedule stays valid;
/// gaps between unshifted and shifted items only grow.
pub(crate) fn shift_from(schedule: &mut Schedule, pivot: Time, delay: Time) {
    if delay == 0 {
        return;
    }
    for op in schedule.ops_mut() {
        if op.start >= pivot {
            op.start += delay;
        }
    }
    let ids: Vec<_> = schedule.tasks().map(|(id, _)| id).collect();
    for id in ids {
        let t = schedule.task_mut(id);
        if t.start() >= pivot {
            t.set_start(t.start() + delay);
        }
    }
}

/// Counts tasks of `old` starting strictly before `t` that reappear
/// bit-identically (same kind, path, timing, fluid) in `new` — the repair
/// engine's certification that the schedule prefix up to the delta's first
/// affected event time was frozen across a replan.
pub(crate) fn frozen_prefix_len(old: &Schedule, new: &Schedule, t: Time) -> usize {
    old.tasks()
        .filter(|(_, task)| task.start() < t)
        .filter(|(_, task)| new.tasks().any(|(_, n)| n == *task))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_biochip::Coord;
    use pdw_synth::synthesize;

    #[test]
    fn earliest_fit_respects_deadline() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let tl = Timeline::new(&s.chip, &s.schedule);
        // A task's own cells are busy during its window.
        let (_, t0) = s.schedule.tasks().next().unwrap();
        let cells = t0.path().mask().clone();
        let fit = tl.earliest_fit(&cells, t0.start(), t0.duration(), Some(t0.start() + 1));
        assert_eq!(fit, None);
        // Without a deadline, a fit exists after everything ends.
        let fit = tl.earliest_fit(&cells, 0, 1, None);
        assert!(fit.is_some());
    }

    #[test]
    fn frozen_prefix_counts_identical_early_tasks() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let total = s.schedule.tasks().count();
        assert_eq!(
            frozen_prefix_len(&s.schedule, &s.schedule, Time::MAX),
            total
        );
        assert_eq!(frozen_prefix_len(&s.schedule, &s.schedule, 0), 0);
        // Shifting the tail leaves exactly the strict prefix certified.
        let pivot = s.schedule.tasks().map(|(_, t)| t.start()).max().unwrap();
        let mut moved = s.schedule.clone();
        shift_from(&mut moved, pivot, 7);
        let expect = s
            .schedule
            .tasks()
            .filter(|(_, t)| t.start() < pivot)
            .count();
        assert!(expect < total);
        assert_eq!(frozen_prefix_len(&s.schedule, &moved, pivot), expect);
        assert_eq!(frozen_prefix_len(&s.schedule, &moved, Time::MAX), expect);
    }

    #[test]
    fn shift_preserves_relative_order() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut moved = s.schedule.clone();
        let pivot = moved.makespan() / 2;
        shift_from(&mut moved, pivot, 7);
        for (id, t) in s.schedule.tasks() {
            let new = moved.task(id);
            if t.start() >= pivot {
                assert_eq!(new.start(), t.start() + 7);
            } else {
                assert_eq!(new.start(), t.start());
            }
        }
        // Shifted schedules stay physically valid.
        pdw_sim::validate(&s.chip, &bench.graph, &moved).unwrap();
    }

    /// A hand-built timeline with one item occupying `cells` over
    /// `[start, end)` whose last component begins at `moves_at`.
    fn fixture(start: Time, end: Time, moves_at: Time) -> (Timeline, CellSet) {
        let cells: CellSet = [Coord::new(1, 1)].into_iter().collect();
        let tl = Timeline {
            items: vec![Item {
                cells: cells.clone(),
                start,
                end,
                moves_at,
            }],
        };
        (tl, cells)
    }

    #[test]
    fn shifted_fit_ignores_items_starting_at_the_pivot() {
        // start == pivot: the item moves wholesale past the gap, so the
        // window it used to occupy is free immediately.
        let (tl, cells) = fixture(5, 9, 5);
        assert_eq!(tl.earliest_fit_shifted(&cells, 5, 3, 5), Some(5));
        // One tick earlier and the item stays put: the fit lands at its end.
        assert_eq!(tl.earliest_fit_shifted(&cells, 5, 3, 6), Some(9));
    }

    #[test]
    fn shifted_fit_treats_straddling_items_as_open_ended() {
        // start < pivot <= moves_at and end > pivot: the item stretches over
        // the gap, blocking its cells from `start` forever.
        let (tl, cells) = fixture(2, 9, 6);
        assert_eq!(tl.earliest_fit_shifted(&cells, 3, 2, 6), None);
        // But a slot strictly before the straddler's start still fits.
        assert_eq!(tl.earliest_fit_shifted(&cells, 0, 2, 6), Some(0));
    }

    #[test]
    fn shifted_fit_accepts_zero_length_windows() {
        // dur == 0 occupies no time: only instants strictly inside the item
        // are blocked. Both boundaries are fair game.
        let (tl, cells) = fixture(5, 9, 5);
        assert_eq!(tl.earliest_fit_shifted(&cells, 5, 0, 20), Some(5));
        assert_eq!(tl.earliest_fit_shifted(&cells, 6, 0, 20), Some(9));
        assert_eq!(tl.earliest_fit_shifted(&cells, 0, 0, 20), Some(0));
    }

    #[test]
    fn zero_length_items_never_block() {
        // A degenerate item with start == end occupies no time at all.
        let (tl, cells) = fixture(5, 5, 5);
        assert_eq!(tl.earliest_fit_shifted(&cells, 0, 3, 20), Some(0));
        assert_eq!(tl.earliest_fit(&cells, 0, 3, None), Some(0));
    }

    #[test]
    fn shift_moves_tasks_starting_exactly_at_the_pivot() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        // Pivot on a task's exact start: `>=` must include it.
        let (id, t) = s.schedule.tasks().next().unwrap();
        let pivot = t.start();
        let mut moved = s.schedule.clone();
        shift_from(&mut moved, pivot, 4);
        assert_eq!(moved.task(id).start(), pivot + 4);
        // Ops starting exactly at the pivot move too.
        for (old, new) in s.schedule.ops().iter().zip(moved.ops()) {
            if old.start >= pivot {
                assert_eq!(new.start, old.start + 4);
            } else {
                assert_eq!(new.start, old.start);
            }
        }
    }

    #[test]
    fn zero_delay_shift_is_a_no_op() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let mut moved = s.schedule.clone();
        shift_from(&mut moved, 0, 0);
        for (id, t) in s.schedule.tasks() {
            assert_eq!(moved.task(id).start(), t.start());
        }
    }

    #[test]
    fn occupancy_blocks_the_device_window() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let tl = Timeline::new(&s.chip, &s.schedule);
        let sop = s.schedule.ops()[0];
        let foot = CellSet::from_cells(s.chip.device(sop.device).footprint());
        // No fit inside the op execution window.
        let fit = tl.earliest_fit(&foot, sop.start, 1, Some(sop.end()));
        assert_eq!(fit, None);
    }
}
