//! The socket transport seam: the canonical codec's frames over TCP and
//! Unix-domain byte streams, with every failure mode typed.
//!
//! ROADMAP items 1 and 2 converge here: the framed request/response loop
//! in [`crate::worker`] already works over *any* byte stream, so crossing
//! machines is "just" a transport — except a real network is exactly
//! where faults live. This module supplies the hardened plumbing every
//! networked caller shares:
//!
//! - [`NetAddr`] / [`NetStream`] / [`NetListener`] — one address grammar
//!   (`unix:PATH` or TCP `host:port`) and one stream type over both
//!   socket families, with connect/read/write timeouts.
//! - [`TransportError`] — the transport-level mirror of [`CodecError`]:
//!   `ConnectRefused`, `Timeout`, `TornFrame`, `VersionSkew`,
//!   `ServerDraining`, `Io`. A wire fault is never a panic, never a
//!   mystery string, and never a silently wrong plan.
//! - [`NetRequest`] / [`NetResponse`] / [`WireError`] — the plan-serving
//!   wire protocol (handshake, heartbeat, solve, drain) spoken by
//!   `pdw serve --listen` and `PlanClient` (see DESIGN.md §13). Repairs
//!   are deliberately *not* on the wire: a retried repair would re-apply
//!   its delta, breaking the idempotency argument that makes retries
//!   safe; solves are pure functions of their memo key.
//! - [`send_frame`] / [`recv_frame`] — timeout-aware framed I/O that
//!   classifies `WouldBlock`/`TimedOut` as [`TransportError::Timeout`],
//!   version skew as its own variant, and every other codec failure as a
//!   torn frame.
//! - [`SocketExecutor`] — the remote-worker sibling of
//!   [`SubprocessExecutor`](crate::SubprocessExecutor): region jobs
//!   framed to `pdw worker --listen` peers, reconnect-with-backoff under
//!   the same [`RespawnPolicy`], in-process fallback, bit-identical
//!   plans.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pdw_biochip::ScratchPool;
use pdw_sched::Schedule;
use serde::{Deserialize, Serialize};

use crate::codec::{self, CodecError, FrameType, PlanArtifact, SCHEMA_VERSION};
use crate::groups::WashGroup;
use crate::partition::{
    fallback_front_end, ExecutorEvent, RegionExecutor, RegionJob, RespawnPolicy,
};
use crate::worker::{RegionRequest, SolveRequest, WorkerRequest, WorkerResponse};

/// Typed transport failures — the socket-level mirror of [`CodecError`].
/// Every variant is something a retry loop can reason about: connect
/// refusals and timeouts are retryable, version skew is not, a draining
/// server wants the client to go elsewhere.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransportError {
    /// The peer refused (or could not be reached for) a connection.
    ConnectRefused {
        /// The address dialed.
        addr: String,
        /// The OS-level detail.
        detail: String,
    },
    /// An I/O deadline elapsed mid-operation.
    Timeout {
        /// What was being waited on (`"connect"`, `"read"`, `"write"`).
        during: &'static str,
        /// The deadline that elapsed.
        after: Duration,
    },
    /// The byte stream broke mid-frame or carried a corrupt frame
    /// (truncation, digest mismatch, bad magic, oversized length…).
    TornFrame(CodecError),
    /// The peer speaks a different codec version.
    VersionSkew {
        /// The peer's version byte.
        found: u8,
        /// This build's [`SCHEMA_VERSION`].
        expected: u8,
    },
    /// The server is draining: it finished its in-flight work but will
    /// not accept this request.
    ServerDraining,
    /// Any other I/O failure (connection reset, broken pipe…).
    Io(String),
    /// The peer violated the protocol (unexpected message kind, wrong
    /// request id, missing handshake).
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::ConnectRefused { addr, detail } => {
                write!(f, "connect to {addr} refused: {detail}")
            }
            TransportError::Timeout { during, after } => {
                write!(f, "{during} timed out after {after:?}")
            }
            TransportError::TornFrame(e) => write!(f, "torn frame: {e}"),
            TransportError::VersionSkew { found, expected } => {
                write!(f, "peer codec v{found}, this build v{expected}")
            }
            TransportError::ServerDraining => write!(f, "server is draining"),
            TransportError::Io(msg) => write!(f, "transport i/o: {msg}"),
            TransportError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl TransportError {
    /// `true` when a bounded retry against the same (or a respawned) peer
    /// can plausibly succeed: connect refusals, timeouts, torn frames and
    /// plain I/O faults are transient; version skew and protocol
    /// violations are not, and a draining server has asked us to stop.
    pub fn retryable(&self) -> bool {
        matches!(
            self,
            TransportError::ConnectRefused { .. }
                | TransportError::Timeout { .. }
                | TransportError::TornFrame(_)
                | TransportError::Io(_)
        )
    }
}

// ---------------------------------------------------------------------------
// Addresses, streams, listeners
// ---------------------------------------------------------------------------

/// A socket address in the transport's grammar: `unix:PATH` for a
/// Unix-domain socket, anything else for TCP `host:port`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetAddr {
    /// A TCP endpoint, e.g. `127.0.0.1:7901`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl NetAddr {
    /// Parses `unix:PATH` or TCP `host:port`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path".to_string());
            }
            return Ok(NetAddr::Unix(PathBuf::from(path)));
        }
        if !s.contains(':') {
            return Err(format!("TCP address '{s}' needs host:port (or unix:PATH)"));
        }
        Ok(NetAddr::Tcp(s.to_string()))
    }

    /// Dials the address with a connect timeout (TCP only — Unix-domain
    /// connects are local and effectively instant).
    pub fn connect(&self, timeout: Duration) -> Result<NetStream, TransportError> {
        match self {
            NetAddr::Tcp(addr) => {
                let targets: Vec<_> = addr
                    .to_socket_addrs()
                    .map_err(|e| TransportError::ConnectRefused {
                        addr: addr.clone(),
                        detail: format!("resolve: {e}"),
                    })?
                    .collect();
                let mut last = "no resolved addresses".to_string();
                for target in targets {
                    match TcpStream::connect_timeout(&target, timeout) {
                        Ok(s) => {
                            let _ = s.set_nodelay(true);
                            return Ok(NetStream::Tcp(s));
                        }
                        Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                            return Err(TransportError::Timeout {
                                during: "connect",
                                after: timeout,
                            })
                        }
                        Err(e) => last = e.to_string(),
                    }
                }
                Err(TransportError::ConnectRefused {
                    addr: addr.clone(),
                    detail: last,
                })
            }
            #[cfg(unix)]
            NetAddr::Unix(path) => match UnixStream::connect(path) {
                Ok(s) => Ok(NetStream::Unix(s)),
                Err(e) => Err(TransportError::ConnectRefused {
                    addr: self.to_string(),
                    detail: e.to_string(),
                }),
            },
            #[cfg(not(unix))]
            NetAddr::Unix(_) => Err(TransportError::ConnectRefused {
                addr: self.to_string(),
                detail: "unix sockets unsupported on this platform".to_string(),
            }),
        }
    }
}

impl std::fmt::Display for NetAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetAddr::Tcp(a) => write!(f, "{a}"),
            NetAddr::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// One connected byte stream over either socket family.
#[derive(Debug)]
pub enum NetStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl NetStream {
    /// Sets (or clears) the read deadline for subsequent reads.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Sets (or clears) the write deadline for subsequent writes.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.set_write_timeout(t),
            #[cfg(unix)]
            NetStream::Unix(s) => s.set_write_timeout(t),
        }
    }

    /// An independently owned handle onto the same connection (for a
    /// reader thread and writer threads to share).
    pub fn try_clone(&self) -> io::Result<NetStream> {
        Ok(match self {
            NetStream::Tcp(s) => NetStream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            NetStream::Unix(s) => NetStream::Unix(s.try_clone()?),
        })
    }

    /// Shuts down both halves, unblocking any thread parked in a read.
    pub fn shutdown(&self) {
        match self {
            NetStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            NetStream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    /// A human-readable peer label for events and logs.
    pub fn peer_label(&self) -> String {
        match self {
            NetStream::Tcp(s) => s
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "tcp:?".to_string()),
            #[cfg(unix)]
            NetStream::Unix(_) => "unix-peer".to_string(),
        }
    }
}

impl Read for NetStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for NetStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            NetStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            NetStream::Unix(s) => s.flush(),
        }
    }
}

/// A bound listener over either socket family. Binding a Unix listener
/// unlinks a stale socket file first, so post-drain rebinds of the same
/// path succeed.
#[derive(Debug)]
pub enum NetListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener (path kept for unlink-on-drop).
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl NetListener {
    /// Binds the address (TCP port `0` picks a free port; see
    /// [`NetListener::local_addr`]).
    pub fn bind(addr: &NetAddr) -> Result<Self, TransportError> {
        match addr {
            NetAddr::Tcp(a) => TcpListener::bind(a)
                .map(NetListener::Tcp)
                .map_err(|e| TransportError::Io(format!("bind {a}: {e}"))),
            #[cfg(unix)]
            NetAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path)
                    .map(|l| NetListener::Unix(l, path.clone()))
                    .map_err(|e| TransportError::Io(format!("bind unix:{}: {e}", path.display())))
            }
            #[cfg(not(unix))]
            NetAddr::Unix(_) => Err(TransportError::Io(
                "unix sockets unsupported on this platform".to_string(),
            )),
        }
    }

    /// The concrete bound address (the real port when TCP bound port 0).
    pub fn local_addr(&self) -> NetAddr {
        match self {
            NetListener::Tcp(l) => NetAddr::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "?:?".to_string()),
            ),
            #[cfg(unix)]
            NetListener::Unix(_, path) => NetAddr::Unix(path.clone()),
        }
    }

    /// Switches the listener between blocking and non-blocking accepts
    /// (the accept loop polls non-blocking so a drain flag can stop it).
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            NetListener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            NetListener::Unix(l, _) => l.set_nonblocking(nb),
        }
    }

    /// Accepts one connection (respecting the blocking mode).
    pub fn accept(&self) -> io::Result<NetStream> {
        match self {
            NetListener::Tcp(l) => {
                let (s, _) = l.accept()?;
                let _ = s.set_nodelay(true);
                Ok(NetStream::Tcp(s))
            }
            #[cfg(unix)]
            NetListener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(NetStream::Unix(s))
            }
        }
    }
}

#[cfg(unix)]
impl Drop for NetListener {
    fn drop(&mut self) {
        if let NetListener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Timeout-aware framed I/O
// ---------------------------------------------------------------------------

/// Wraps a stream read so the *I/O error kind* survives the codec's
/// stringly `CodecError::Io` — that's how a read deadline mid-frame is
/// classified as [`TransportError::Timeout`] instead of a generic fault.
struct TrackedReader<'a> {
    inner: &'a mut NetStream,
    last_kind: Option<io::ErrorKind>,
}

impl Read for TrackedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.inner.read(buf) {
            Ok(n) => Ok(n),
            Err(e) => {
                self.last_kind = Some(e.kind());
                Err(e)
            }
        }
    }
}

fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn classify_codec(e: CodecError, io_kind: Option<io::ErrorKind>, t: Duration) -> TransportError {
    match e {
        CodecError::VersionSkew { found, expected } => {
            TransportError::VersionSkew { found, expected }
        }
        CodecError::Io(msg) => {
            if io_kind.is_some_and(is_timeout) {
                TransportError::Timeout {
                    during: "read",
                    after: t,
                }
            } else {
                TransportError::Io(msg)
            }
        }
        other => TransportError::TornFrame(other),
    }
}

/// Writes one already-encoded frame under a write deadline.
pub fn send_frame(
    stream: &mut NetStream,
    frame: &[u8],
    timeout: Duration,
) -> Result<(), TransportError> {
    let _ = stream.set_write_timeout(Some(timeout));
    stream
        .write_all(frame)
        .and_then(|()| stream.flush())
        .map_err(|e| {
            if is_timeout(e.kind()) {
                TransportError::Timeout {
                    during: "write",
                    after: timeout,
                }
            } else {
                TransportError::Io(e.to_string())
            }
        })
}

/// Reads one whole frame under a read deadline and a frame-length cap.
/// `Ok(None)` is a clean EOF at a frame boundary (the peer hung up
/// politely); every other failure is typed.
pub fn recv_frame(
    stream: &mut NetStream,
    cap: usize,
    timeout: Duration,
) -> Result<Option<Vec<u8>>, TransportError> {
    let _ = stream.set_read_timeout(Some(timeout));
    let mut tracked = TrackedReader {
        inner: stream,
        last_kind: None,
    };
    match codec::read_frame_capped(&mut tracked, cap) {
        Ok(frame) => Ok(frame),
        Err(e) => {
            let kind = tracked.last_kind;
            Err(classify_codec(e, kind, timeout))
        }
    }
}

/// A resumable [`recv_frame`] for tick-polled server loops: one reader
/// per connection retains partially received frame bytes across
/// [`TransportError::Timeout`] returns, so a frame whose delivery spans
/// several read ticks (large payload, WAN congestion) is assembled
/// incrementally instead of being torn. [`buffered`](Self::buffered)
/// distinguishes a genuinely idle tick from a slow peer mid-frame.
pub struct FrameReader {
    acc: codec::FrameAccumulator,
}

impl FrameReader {
    /// A reader enforcing `cap` on the payload length.
    pub fn new(cap: usize) -> Self {
        FrameReader {
            acc: codec::FrameAccumulator::new(cap),
        }
    }

    /// Bytes buffered toward the frame currently being assembled.
    pub fn buffered(&self) -> usize {
        self.acc.buffered()
    }

    /// Polls for one whole frame under a read deadline; a timeout leaves
    /// the partial frame buffered for the next poll.
    pub fn poll_frame(
        &mut self,
        stream: &mut NetStream,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, TransportError> {
        let _ = stream.set_read_timeout(Some(timeout));
        let mut tracked = TrackedReader {
            inner: stream,
            last_kind: None,
        };
        match self.acc.read_from(&mut tracked) {
            Ok(frame) => Ok(frame),
            Err(e) => {
                let kind = tracked.last_kind;
                Err(classify_codec(e, kind, timeout))
            }
        }
    }

    /// Polls for one decoded [`NetRequest`] (`Ok(None)` = clean EOF).
    pub fn poll_request(
        &mut self,
        stream: &mut NetStream,
        timeout: Duration,
    ) -> Result<Option<NetRequest>, TransportError> {
        match self.poll_frame(stream, timeout)? {
            None => Ok(None),
            Some(frame) => decode_net(FrameType::NetRequest, &frame).map(Some),
        }
    }
}

/// Decodes a received frame as `T`, classifying version skew.
pub fn decode_net<T: Deserialize>(ty: FrameType, frame: &[u8]) -> Result<T, TransportError> {
    codec::decode_frame(ty, frame).map_err(|e| match e {
        CodecError::VersionSkew { found, expected } => {
            TransportError::VersionSkew { found, expected }
        }
        other => TransportError::TornFrame(other),
    })
}

// ---------------------------------------------------------------------------
// The plan-serving wire protocol (DESIGN.md §13)
// ---------------------------------------------------------------------------

/// What a plan client may send a `pdw serve --listen` endpoint. The
/// first frame on every connection must be `Hello`; after
/// the `HelloAck`, `Ping` and `Solve` interleave freely. Repairs are
/// deliberately absent (see the module docs): only idempotent work rides
/// the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NetRequest {
    /// Handshake: the client announces its codec version. The frame
    /// envelope enforces byte-level version equality already; the field
    /// makes the negotiation explicit and testable.
    Hello {
        /// The client's [`SCHEMA_VERSION`].
        codec_version: u8,
    },
    /// Heartbeat; the server echoes the nonce in a `Pong`.
    Ping {
        /// Echoed verbatim.
        nonce: u64,
    },
    /// One idempotent solve. Retrying this exact request is safe by
    /// construction: the server keys it by its memo key, so a retry can
    /// only hit the memo or re-lead the same single-flight solve.
    Solve {
        /// Client-chosen id echoed in the response (pipelining support).
        id: u64,
        /// Remaining client budget in microseconds (`None` = unbounded),
        /// already reduced by the client's transit estimate.
        budget_us: Option<u64>,
        /// The instance + config to solve.
        solve: Box<SolveRequest>,
    },
    /// Administrative: begin a graceful drain (stop accepting, finish
    /// in-flight, answer the rest `ShuttingDown`).
    Drain,
}

/// What the server answers with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum NetResponse {
    /// Handshake acknowledgement and connection parameters.
    HelloAck {
        /// The server's [`SCHEMA_VERSION`].
        codec_version: u8,
        /// The largest frame the server will read or write.
        max_frame_len: u64,
        /// The heartbeat cadence the server expects (it evicts
        /// connections idle for several multiples of this).
        heartbeat_ms: u64,
    },
    /// Heartbeat echo.
    Pong {
        /// The nonce from the `Ping`.
        nonce: u64,
    },
    /// A served plan: a certified artifact the client must re-verify.
    Plan {
        /// The request id this answers.
        id: u64,
        /// `true` when the plan came from the memo cache.
        memo_hit: bool,
        /// `true` when the plan was deadline-degraded (not memoized).
        degraded: bool,
        /// The certified plan artifact.
        artifact: Box<PlanArtifact>,
    },
    /// A typed serve-side failure for one request.
    Error {
        /// The request id this answers (`0` for connection-level errors).
        id: u64,
        /// What went wrong.
        error: WireError,
    },
    /// Drain acknowledged; `in_flight` requests are still finishing.
    DrainAck {
        /// Requests still in flight at drain start.
        in_flight: u64,
    },
}

/// Serve-side errors as they cross the wire — the union of the server's
/// admission (`Rejected`) and service (`ServeError`) failures, plus
/// protocol-level refusals, every one typed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// Admission control shed the request.
    Saturated {
        /// Cost already queued.
        queued_cost: u64,
        /// This request's cost.
        cost: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The request's (propagated) deadline expired before a plan served.
    DeadlineExpired {
        /// How long the request had waited, microseconds.
        waited_us: u64,
    },
    /// The serve worker panicked (caught; the server is still healthy).
    WorkerPanic(String),
    /// Every rung of the degradation ladder was rejected.
    Unservable(String),
    /// The request was malformed at the protocol level.
    BadRequest(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::ShuttingDown => write!(f, "server is shutting down"),
            WireError::Saturated {
                queued_cost,
                cost,
                budget,
            } => write!(
                f,
                "saturated: queued cost {queued_cost} + request cost {cost} exceeds budget {budget}"
            ),
            WireError::DeadlineExpired { waited_us } => {
                write!(f, "deadline expired after waiting {waited_us}µs")
            }
            WireError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            WireError::Unservable(msg) => write!(f, "no ladder rung served: {msg}"),
            WireError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

/// Encodes and sends one [`NetRequest`].
pub fn send_request(
    stream: &mut NetStream,
    req: &NetRequest,
    timeout: Duration,
) -> Result<(), TransportError> {
    let frame = codec::encode_frame(FrameType::NetRequest, req);
    send_frame(stream, &frame, timeout)
}

/// Receives and decodes one [`NetRequest`] (`Ok(None)` = clean EOF).
pub fn recv_request(
    stream: &mut NetStream,
    cap: usize,
    timeout: Duration,
) -> Result<Option<NetRequest>, TransportError> {
    match recv_frame(stream, cap, timeout)? {
        None => Ok(None),
        Some(frame) => decode_net(FrameType::NetRequest, &frame).map(Some),
    }
}

/// Encodes and sends one [`NetResponse`].
pub fn send_response(
    stream: &mut NetStream,
    resp: &NetResponse,
    timeout: Duration,
) -> Result<(), TransportError> {
    let frame = codec::encode_frame(FrameType::NetResponse, resp);
    send_frame(stream, &frame, timeout)
}

/// Receives and decodes one [`NetResponse`] (`Ok(None)` = clean EOF).
pub fn recv_response(
    stream: &mut NetStream,
    cap: usize,
    timeout: Duration,
) -> Result<Option<NetResponse>, TransportError> {
    match recv_frame(stream, cap, timeout)? {
        None => Ok(None),
        Some(frame) => decode_net(FrameType::NetResponse, &frame).map(Some),
    }
}

/// The handshake `Hello` for this build.
pub fn hello() -> NetRequest {
    NetRequest::Hello {
        codec_version: SCHEMA_VERSION,
    }
}

// ---------------------------------------------------------------------------
// SocketExecutor: remote region workers
// ---------------------------------------------------------------------------

/// Timeouts for one worker-socket lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SocketTimeouts {
    /// Deadline for dialing a peer.
    pub connect: Duration,
    /// Deadline for one framed request/response round trip's read.
    pub read: Duration,
    /// Deadline for writing one request frame.
    pub write: Duration,
}

impl Default for SocketTimeouts {
    fn default() -> Self {
        SocketTimeouts {
            connect: Duration::from_secs(2),
            read: Duration::from_secs(60),
            write: Duration::from_secs(10),
        }
    }
}

/// Plans region jobs on remote `pdw worker --listen` peers: one lane per
/// address, each owning one framed connection speaking the *same*
/// [`WorkerRequest`]/[`WorkerResponse`] protocol the stdin/stdout worker
/// speaks — the byte stream changed, the frames did not. A lane whose
/// connection fails records [`ExecutorEvent::WorkerFailed`], replans the
/// job in-process (bit-identical — the front end is a pure function), and
/// reconnects with exponential backoff under its [`RespawnPolicy`]; a
/// lane that burns its whole reconnect budget degrades to in-process for
/// the rest of the run ([`ExecutorEvent::RespawnBudgetExhausted`]).
pub struct SocketExecutor {
    addrs: Vec<NetAddr>,
    timeouts: SocketTimeouts,
    policy: RespawnPolicy,
    events: Mutex<Vec<ExecutorEvent>>,
    remote_jobs: AtomicUsize,
    fallbacks: AtomicUsize,
    exhausted: AtomicUsize,
}

impl SocketExecutor {
    /// An executor with one lane per peer address.
    ///
    /// # Panics
    /// Panics if `addrs` is empty.
    pub fn new(addrs: Vec<NetAddr>) -> Self {
        assert!(!addrs.is_empty(), "socket executor needs at least one peer");
        Self {
            addrs,
            timeouts: SocketTimeouts::default(),
            policy: RespawnPolicy::default(),
            events: Mutex::new(Vec::new()),
            remote_jobs: AtomicUsize::new(0),
            fallbacks: AtomicUsize::new(0),
            exhausted: AtomicUsize::new(0),
        }
    }

    /// Replaces the lane timeouts.
    pub fn with_timeouts(mut self, timeouts: SocketTimeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Replaces the reconnect policy (budget and backoff curve).
    pub fn with_respawn_policy(mut self, policy: RespawnPolicy) -> Self {
        self.policy = policy;
        self
    }

    fn record(&self, event: ExecutorEvent) {
        self.events
            .lock()
            .expect("executor event log poisoned")
            .push(event);
    }

    /// One framed round trip over a live connection.
    fn call(
        &self,
        stream: &mut NetStream,
        req: &WorkerRequest,
    ) -> Result<WorkerResponse, TransportError> {
        let frame = codec::encode_frame(FrameType::WorkerRequest, req);
        send_frame(stream, &frame, self.timeouts.write)?;
        let frame = recv_frame(stream, codec::DEFAULT_MAX_FRAME_LEN, self.timeouts.read)?
            .ok_or_else(|| TransportError::Io("worker closed the connection".to_string()))?;
        decode_net(FrameType::WorkerResponse, &frame)
    }
}

type JobSlot = Mutex<Option<Result<Vec<WashGroup>, String>>>;

impl RegionExecutor for SocketExecutor {
    fn name(&self) -> &'static str {
        "socket"
    }

    fn run(
        &self,
        jobs: &[RegionJob<'_>],
        schedule: &Schedule,
        candidates: usize,
        merging: bool,
        _threads: usize,
    ) -> Vec<Result<Vec<WashGroup>, String>> {
        self.events
            .lock()
            .expect("executor event log poisoned")
            .clear();
        self.remote_jobs.store(0, Ordering::Relaxed);
        self.fallbacks.store(0, Ordering::Relaxed);
        self.exhausted.store(0, Ordering::Relaxed);
        if jobs.is_empty() {
            return Vec::new();
        }
        let lanes = self.addrs.len().min(jobs.len()).max(1);
        let slots: Vec<JobSlot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for lane in 0..lanes {
                let slots = &slots;
                scope.spawn(move || {
                    let pool = ScratchPool::new();
                    let addr = &self.addrs[lane];
                    let mut conn: Option<NetStream> = None;
                    let mut failed_before = false;
                    let mut reconnects_used = 0usize;
                    let mut consecutive = 0u32;
                    let mut exhausted = false;
                    for i in (lane..jobs.len()).step_by(lanes) {
                        let job = &jobs[i];
                        if conn.is_none() && !exhausted && failed_before {
                            if reconnects_used >= self.policy.budget {
                                exhausted = true;
                                self.exhausted.fetch_add(1, Ordering::Relaxed);
                                self.record(ExecutorEvent::RespawnBudgetExhausted {
                                    worker: lane,
                                    budget: self.policy.budget,
                                });
                            } else {
                                std::thread::sleep(self.policy.backoff(consecutive));
                                reconnects_used += 1;
                            }
                        }
                        if !exhausted && conn.is_none() {
                            match addr.connect(self.timeouts.connect) {
                                Ok(s) => {
                                    conn = Some(s);
                                    if failed_before {
                                        self.record(ExecutorEvent::WorkerRespawned {
                                            worker: lane,
                                        });
                                    }
                                }
                                Err(e) => {
                                    failed_before = true;
                                    consecutive += 1;
                                    self.record(ExecutorEvent::WorkerFailed {
                                        worker: lane,
                                        job: i,
                                        detail: e.to_string(),
                                    });
                                }
                            }
                        }
                        let Some(stream) = conn.as_mut() else {
                            let out = fallback_front_end(job, schedule, candidates, merging, &pool);
                            self.fallbacks.fetch_add(1, Ordering::Relaxed);
                            *slots[i].lock().expect("slot poisoned") = Some(out);
                            continue;
                        };
                        let req = WorkerRequest::Region(Box::new(RegionRequest {
                            chip: job.chip.clone(),
                            schedule: schedule.clone(),
                            requirements: job.requirements.to_vec(),
                            candidates,
                            merging,
                        }));
                        let out = match self.call(stream, &req) {
                            Ok(WorkerResponse::Groups(g)) => {
                                self.remote_jobs.fetch_add(1, Ordering::Relaxed);
                                consecutive = 0;
                                Ok(g)
                            }
                            Ok(WorkerResponse::Error(msg)) => {
                                self.remote_jobs.fetch_add(1, Ordering::Relaxed);
                                consecutive = 0;
                                Err(msg)
                            }
                            Ok(_) => {
                                conn = None;
                                failed_before = true;
                                consecutive += 1;
                                self.record(ExecutorEvent::WorkerFailed {
                                    worker: lane,
                                    job: i,
                                    detail: "unexpected response kind".to_string(),
                                });
                                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                                fallback_front_end(job, schedule, candidates, merging, &pool)
                            }
                            Err(e) => {
                                conn = None;
                                failed_before = true;
                                consecutive += 1;
                                self.record(ExecutorEvent::WorkerFailed {
                                    worker: lane,
                                    job: i,
                                    detail: e.to_string(),
                                });
                                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                                fallback_front_end(job, schedule, candidates, merging, &pool)
                            }
                        };
                        *slots[i].lock().expect("slot poisoned") = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("every job slot filled")
            })
            .collect()
    }

    fn events(&self) -> Vec<ExecutorEvent> {
        self.events
            .lock()
            .expect("executor event log poisoned")
            .clone()
    }

    fn subprocess_counters(&self) -> (usize, usize) {
        (
            self.remote_jobs.load(Ordering::Relaxed),
            self.fallbacks.load(Ordering::Relaxed),
        )
    }

    fn exhausted_lanes(&self) -> usize {
        self.exhausted.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_grammar_parses_both_families() {
        assert_eq!(
            NetAddr::parse("127.0.0.1:7901").unwrap(),
            NetAddr::Tcp("127.0.0.1:7901".to_string())
        );
        assert_eq!(
            NetAddr::parse("unix:/tmp/pdw.sock").unwrap(),
            NetAddr::Unix(PathBuf::from("/tmp/pdw.sock"))
        );
        assert!(NetAddr::parse("unix:").is_err());
        assert!(NetAddr::parse("no-port").is_err());
        assert_eq!(
            NetAddr::parse("unix:/tmp/a.sock").unwrap().to_string(),
            "unix:/tmp/a.sock"
        );
    }

    #[test]
    fn transport_error_retryability_is_principled() {
        assert!(TransportError::Timeout {
            during: "read",
            after: Duration::from_secs(1)
        }
        .retryable());
        assert!(TransportError::ConnectRefused {
            addr: "x".into(),
            detail: "y".into()
        }
        .retryable());
        assert!(
            TransportError::TornFrame(CodecError::Truncated { needed: 9, have: 1 }).retryable()
        );
        assert!(!TransportError::VersionSkew {
            found: 1,
            expected: 2
        }
        .retryable());
        assert!(!TransportError::ServerDraining.retryable());
        assert!(!TransportError::Protocol("x".into()).retryable());
    }

    #[test]
    fn net_messages_round_trip_through_their_frames() {
        let reqs = [
            hello(),
            NetRequest::Ping { nonce: 0xfeed },
            NetRequest::Drain,
        ];
        for req in &reqs {
            let frame = codec::encode_frame(FrameType::NetRequest, req);
            let back: NetRequest = codec::decode_frame(FrameType::NetRequest, &frame).unwrap();
            assert_eq!(
                codec::canonical_bytes(&back),
                codec::canonical_bytes(req),
                "request drifted"
            );
        }
        let resps = [
            NetResponse::HelloAck {
                codec_version: SCHEMA_VERSION,
                max_frame_len: codec::DEFAULT_MAX_FRAME_LEN as u64,
                heartbeat_ms: 1000,
            },
            NetResponse::Pong { nonce: 0xfeed },
            NetResponse::Error {
                id: 7,
                error: WireError::DeadlineExpired { waited_us: 1234 },
            },
            NetResponse::DrainAck { in_flight: 3 },
        ];
        for resp in &resps {
            let frame = codec::encode_frame(FrameType::NetResponse, resp);
            let back: NetResponse = codec::decode_frame(FrameType::NetResponse, &frame).unwrap();
            assert_eq!(
                codec::canonical_bytes(&back),
                codec::canonical_bytes(resp),
                "response drifted"
            );
        }
    }

    #[test]
    fn wire_errors_display_their_facts() {
        let text = WireError::Saturated {
            queued_cost: 10,
            cost: 5,
            budget: 12,
        }
        .to_string();
        assert!(text.contains("10") && text.contains('5') && text.contains("12"));
        assert!(WireError::DeadlineExpired { waited_us: 42 }
            .to_string()
            .contains("42"));
    }
}
