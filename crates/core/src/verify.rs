//! Differential verification of complete wash plans.
//!
//! [`verify_instance`] runs every [`Planner`] the crate offers — the DAWO
//! baseline, the greedy PathDriver-Wash pipeline, and (optionally) the
//! ILP-refined pipeline — through **one shared [`PlanContext`]** for the
//! instance (so the necessity analyses and routing state are computed once,
//! not once per solver run) and pushes each plan through four independent
//! judges:
//!
//! 1. the physical-executability validator ([`pdw_sim::validate`]),
//! 2. the first-error cleanliness check ([`pdw_contam::verify_clean`]),
//! 3. the contamination-propagation oracle ([`pdw_sim::propagate`]), which
//!    replays the schedule cell by cell without consulting the necessity
//!    analysis the solvers scheduled against,
//! 4. an objective cross-check: `α·N_wash + β·L_wash + γ·T_assay` is
//!    recomputed from the raw schedule and must equal the solver's reported
//!    objective with a delta of exactly 0 (bit-identical `f64`s).
//!
//! On top of that the greedy pipeline is re-run at several thread counts
//! (1/2/8 by default) and the resulting schedules must be bit-identical —
//! the parallel front end merges in input order, so any divergence is a
//! determinism bug. The ILP is excluded from this comparison: its
//! branch-and-bound is wall-clock-budget-bound and documented to vary run
//! to run.
//!
//! [`verify_seed`] extends the same check to the seeded random-instance
//! family of [`pdw_gen`], and [`shrink_failure`] reduces a failing seed to
//! the smallest spec that still fails, for a compact repro.
//!
//! # Chaos verification
//!
//! [`chaos_seed`] is the fault-tolerance counterpart: it replays the seeded
//! instance family with seeded chip damage ([`pdw_gen::inject_faults`])
//! under a sweep of pipeline deadlines (including zero), driving
//! [`plan_resilient`](crate::plan_resilient) and asserting the ladder's
//! contract — never a panic, every served plan fault-aware-valid and
//! oracle-clean on the damaged chip, every non-served rung carrying a typed
//! rejection, and bit-identical outcomes across thread counts at the
//! deterministic deadline points.

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::time::Duration;

use pdw_assay::benchmarks::Benchmark;
use pdw_assay::synthetic::SyntheticSpec;
use pdw_assay::AssayGraph;
use pdw_biochip::{Chip, CELL_PITCH_MM};
use pdw_contam::verify_clean;
use pdw_sched::Schedule;
use pdw_sim::{propagate, validate, Metrics, OracleReport};
use pdw_synth::Synthesis;

use crate::config::{PdwConfig, Weights};
use crate::context::PlanContext;
use crate::pdw::WashResult;
use crate::planner::{DawoPlanner, GreedyPlanner, PdwPlanner, Planner};
use crate::resilient::plan_resilient;

/// Knobs of a verification run.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Also run the ILP-refined pipeline (budget-bound; slower).
    pub ilp: bool,
    /// Wall-clock budget handed to the ILP when enabled.
    pub ilp_budget: Duration,
    /// Thread counts whose greedy schedules must be bit-identical.
    pub threads: Vec<usize>,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            ilp: true,
            ilp_budget: Duration::from_secs(2),
            threads: vec![1, 2, 8],
        }
    }
}

/// The verdict on one solver's plan for one instance.
#[derive(Debug, Clone)]
pub struct PlanCheck {
    /// Which solver produced the plan (`"dawo"`, `"greedy"`, `"ilp"`).
    pub solver: &'static str,
    /// The solver itself failed (internal invariant breach).
    pub solver_error: Option<String>,
    /// First physical-executability violation, if any.
    pub sim_error: Option<String>,
    /// First cleanliness violation, if any.
    pub clean_error: Option<String>,
    /// Full contamination-propagation replay report.
    pub oracle: OracleReport,
    /// Objective as reported by the solver (from its own metrics).
    pub reported_objective: f64,
    /// Objective recomputed independently from the raw schedule.
    pub recomputed_objective: f64,
    /// The solver's metrics equal a fresh [`Metrics::measure`].
    pub metrics_match: bool,
}

impl PlanCheck {
    /// `true` when every judge accepted the plan.
    pub fn passed(&self) -> bool {
        self.solver_error.is_none()
            && self.sim_error.is_none()
            && self.clean_error.is_none()
            && self.oracle.is_clean()
            && self.oracle.ineffective_washes.is_empty()
            && self.reported_objective == self.recomputed_objective
            && self.metrics_match
    }

    /// Human-readable descriptions of everything that went wrong.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Some(e) = &self.solver_error {
            out.push(format!("{}: solver failed: {e}", self.solver));
        }
        if let Some(e) = &self.sim_error {
            out.push(format!("{}: invalid schedule: {e}", self.solver));
        }
        if let Some(e) = &self.clean_error {
            out.push(format!("{}: contaminated: {e}", self.solver));
        }
        for v in &self.oracle.violations {
            out.push(format!("{}: oracle: {v}", self.solver));
        }
        for w in &self.oracle.ineffective_washes {
            out.push(format!("{}: oracle: {w}", self.solver));
        }
        if self.reported_objective != self.recomputed_objective {
            out.push(format!(
                "{}: objective mismatch: reported {:.17} != recomputed {:.17}",
                self.solver, self.reported_objective, self.recomputed_objective
            ));
        }
        if !self.metrics_match {
            out.push(format!(
                "{}: metrics drift from schedule remeasure",
                self.solver
            ));
        }
        out
    }
}

/// The verdict on one benchmark instance across all solvers.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Instance name (benchmark name or `prop-<seed>`).
    pub name: String,
    /// Generating seed for random instances (`None` for bundled ones).
    pub seed: Option<u64>,
    /// One verdict per solver run.
    pub plans: Vec<PlanCheck>,
    /// `Some(description)` when greedy schedules diverged across thread
    /// counts; `None` when bit-identical.
    pub thread_mismatch: Option<String>,
}

impl InstanceReport {
    /// `true` when every plan passed and thread counts agreed.
    pub fn passed(&self) -> bool {
        self.thread_mismatch.is_none() && self.plans.iter().all(PlanCheck::passed)
    }

    /// Human-readable descriptions of everything that went wrong.
    pub fn failures(&self) -> Vec<String> {
        let mut out: Vec<String> = self.plans.iter().flat_map(PlanCheck::failures).collect();
        if let Some(m) = &self.thread_mismatch {
            out.push(format!("thread identity: {m}"));
        }
        out
    }
}

impl fmt::Display for InstanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let verdict = if self.passed() { "ok" } else { "FAIL" };
        let solvers: Vec<String> = self
            .plans
            .iter()
            .map(|p| format!("{} {}", p.solver, if p.passed() { "ok" } else { "FAIL" }))
            .collect();
        let threads = if self.thread_mismatch.is_none() {
            "threads ok"
        } else {
            "threads FAIL"
        };
        write!(
            f,
            "{:<14} {:<4} [{}; {}]",
            self.name,
            verdict,
            solvers.join(", "),
            threads
        )
    }
}

/// Recomputes the paper's objective `α·N_wash + β·L_wash + γ·T_assay`
/// (Eq. 26) from the raw schedule, mirroring [`Metrics::measure`]'s
/// summation order so a correct solver reproduces it bit-for-bit.
pub fn objective_of(schedule: &Schedule, w: &Weights) -> f64 {
    let n_wash = schedule.tasks().filter(|(_, t)| t.kind().is_wash()).count();
    let l_wash_mm: f64 = schedule
        .tasks()
        .filter(|(_, t)| t.kind().is_wash())
        .map(|(_, t)| t.path().len() as f64 * CELL_PITCH_MM)
        .sum();
    let remeasured = Metrics {
        n_wash,
        l_wash_mm,
        t_assay: schedule.makespan(),
        total_wash_time: 0,
        avg_wait: 0.0,
        buffer_nl: 0.0,
    };
    w.objective(&remeasured)
}

/// Judges one solver outcome. `result` is `Err` when the solver itself
/// refused to produce a plan.
fn check_plan(
    solver: &'static str,
    chip: &Chip,
    graph: &AssayGraph,
    weights: &Weights,
    result: Result<&WashResult, String>,
) -> PlanCheck {
    match result {
        Err(e) => PlanCheck {
            solver,
            solver_error: Some(e),
            sim_error: None,
            clean_error: None,
            oracle: OracleReport::default(),
            reported_objective: f64::NAN,
            recomputed_objective: f64::NAN,
            metrics_match: false,
        },
        Ok(r) => PlanCheck {
            solver,
            solver_error: None,
            sim_error: validate(chip, graph, &r.schedule)
                .err()
                .map(|e| e.to_string()),
            clean_error: verify_clean(chip, graph, &r.schedule)
                .err()
                .map(|e| e.to_string()),
            oracle: propagate(chip, graph, &r.schedule),
            reported_objective: r.objective(weights),
            recomputed_objective: objective_of(&r.schedule, weights),
            metrics_match: r.metrics == Metrics::measure(graph, &r.schedule),
        },
    }
}

/// Differentially verifies every solver on one instance (see the
/// [module docs](self)).
pub fn verify_instance(
    name: &str,
    bench: &Benchmark,
    synthesis: &Synthesis,
    opts: &VerifyOptions,
) -> InstanceReport {
    let weights = Weights::default();
    let mut plans = Vec::new();

    // One shared context: every planner below reuses its cached necessity
    // analyses and routing scratch. Planner parity with cold one-shot calls
    // is itself property-tested (tests/threads.rs), so sharing here does
    // not weaken the differential check.
    let mut ctx = PlanContext::new(bench, synthesis);

    // DAWO baseline.
    let d = DawoPlanner.plan(&mut ctx).map_err(|e| e.to_string());
    plans.push(check_plan(
        "dawo",
        &synthesis.chip,
        &bench.graph,
        &weights,
        d.as_ref().map_err(Clone::clone),
    ));

    // Greedy pipeline at every requested thread count; the first doubles as
    // the judged greedy plan, the rest must match it bit for bit.
    let threads = if opts.threads.is_empty() {
        vec![0]
    } else {
        opts.threads.clone()
    };
    let mut greedy_runs: Vec<(usize, Result<WashResult, String>)> = Vec::new();
    for &t in &threads {
        let planner = GreedyPlanner::new(PdwConfig {
            threads: t,
            ..PdwConfig::default()
        });
        greedy_runs.push((t, planner.plan(&mut ctx).map_err(|e| e.to_string())));
    }
    plans.push(check_plan(
        "greedy",
        &synthesis.chip,
        &bench.graph,
        &weights,
        greedy_runs[0].1.as_ref().map_err(Clone::clone),
    ));
    let mut thread_mismatch = None;
    if let (t0, Ok(first)) = &greedy_runs[0] {
        for (t, run) in &greedy_runs[1..] {
            match run {
                Ok(r) if r.schedule == first.schedule && r.metrics == first.metrics => {}
                Ok(_) => {
                    thread_mismatch = Some(format!(
                        "greedy schedule at {t} threads differs from {t0} threads"
                    ));
                    break;
                }
                Err(e) => {
                    thread_mismatch = Some(format!("greedy failed at {t} threads: {e}"));
                    break;
                }
            }
        }
    }

    // ILP-refined pipeline.
    if opts.ilp {
        let planner = PdwPlanner::new(PdwConfig {
            ilp_budget: opts.ilp_budget,
            ..PdwConfig::default()
        });
        let r = planner.plan(&mut ctx).map_err(|e| e.to_string());
        plans.push(check_plan(
            "ilp",
            &synthesis.chip,
            &bench.graph,
            &weights,
            r.as_ref().map_err(Clone::clone),
        ));
    }

    InstanceReport {
        name: name.to_string(),
        seed: None,
        plans,
        thread_mismatch,
    }
}

/// Knobs of a chaos (faults × deadlines) verification run.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Pipeline-deadline points swept per faulted instance (`None` =
    /// unlimited). The default covers zero (fully degraded), one
    /// nanosecond (expired by the first checkpoint), and unlimited.
    pub budgets: Vec<Option<Duration>>,
    /// Thread counts whose outcomes must be bit-identical at every swept
    /// deadline point. The sweep keeps the ILP off, so all its rungs are
    /// deterministic.
    pub threads: Vec<usize>,
    /// Partition counts swept per deadline point. `1` (the default) drives
    /// [`plan_resilient`](crate::plan_resilient) exactly as before; larger
    /// counts drive [`plan_partitioned`](crate::plan_partitioned) and hold
    /// the stitched plan to the same fault-aware-validate + oracle
    /// contract.
    pub partitions: Vec<usize>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            budgets: vec![Some(Duration::ZERO), Some(Duration::from_nanos(1)), None],
            threads: vec![1, 8],
            partitions: vec![1],
        }
    }
}

/// The verdict of a chaos run on one faulted instance.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Instance name.
    pub name: String,
    /// Generating seed for random instances (`None` for bundled ones).
    pub seed: Option<u64>,
    /// Human-readable summary of the injected damage.
    pub faults: String,
    /// Resilient solves performed (budget points × thread counts).
    pub solves: usize,
    /// Solves that served a plan.
    pub served: usize,
    /// Everything that violated the ladder's contract.
    pub failures: Vec<String>,
}

impl ChaosReport {
    /// `true` when the ladder's contract held at every swept point.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} {:<4} [{}; {}/{} served]",
            self.name,
            if self.passed() { "ok" } else { "FAIL" },
            self.faults,
            self.served,
            self.solves
        )
    }
}

/// Sweeps [`plan_resilient`](crate::plan_resilient) over deadline points ×
/// thread counts on one (already faulted) instance, checking the ladder's
/// contract (see the [module docs](self)). `synthesis` should carry the
/// injected [`FaultSet`](pdw_biochip::FaultSet); a pristine chip is also
/// legal and simply checks the ladder under deadlines alone.
pub fn chaos_instance(
    name: &str,
    bench: &Benchmark,
    synthesis: &Synthesis,
    opts: &ChaosOptions,
) -> ChaosReport {
    let mut failures: Vec<String> = Vec::new();
    let mut solves = 0usize;
    let mut served = 0usize;
    let threads = if opts.threads.is_empty() {
        vec![1]
    } else {
        opts.threads.clone()
    };
    let partitions = if opts.partitions.is_empty() {
        vec![1]
    } else {
        opts.partitions.clone()
    };
    for budget in &opts.budgets {
        for &k in &partitions {
            // Baseline outcome of the first thread count at this
            // (deadline, partition-count) point; the others must match it
            // bit for bit.
            let mut baseline: Option<crate::resilient::PlanOutcome> = None;
            for &t in &threads {
                let config = PdwConfig {
                    ilp: false,
                    threads: t,
                    pipeline_budget: *budget,
                    ..PdwConfig::default()
                };
                let point = format!("budget {budget:?}, {t} threads, {k} partitions");
                // Both ladders promise to never panic; hold them to that.
                let outcome = match std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if k <= 1 {
                        plan_resilient(bench, synthesis, &config)
                    } else {
                        crate::partition::plan_partitioned(bench, synthesis, &config, k)
                    }
                })) {
                    Ok(o) => o,
                    Err(_) => {
                        failures.push(format!("{point}: planner panicked"));
                        continue;
                    }
                };
                solves += 1;

                // Every non-served rung must carry a typed rejection.
                for a in &outcome.attempts {
                    let served_here = outcome.rung == Some(a.rung) && a.rejection.is_none();
                    if !served_here && a.rejection.is_none() {
                        failures.push(format!("{point}: rung {} has no typed rejection", a.rung));
                    }
                }
                if !outcome.is_served() && outcome.attempts.len() < 3 {
                    failures.push(format!(
                        "{point}: nothing served after only {} attempts",
                        outcome.attempts.len()
                    ));
                }

                // A served plan must hold up under independent fault-aware
                // re-verification on the damaged chip.
                if let Some(r) = &outcome.served {
                    served += 1;
                    if let Err(e) = validate(&synthesis.chip, &bench.graph, &r.schedule) {
                        failures.push(format!("{point}: served plan invalid: {e}"));
                    }
                    let oracle = propagate(&synthesis.chip, &bench.graph, &r.schedule);
                    if !oracle.is_clean() {
                        failures.push(format!(
                            "{point}: served plan dirty: {} oracle violation(s)",
                            oracle.violations.len()
                        ));
                    }
                }

                // Outcome identity across thread counts.
                match &baseline {
                    None => baseline = Some(outcome),
                    Some(base) => {
                        if outcome.rung != base.rung {
                            failures.push(format!(
                                "{point}: served rung {:?} differs from baseline {:?}",
                                outcome.rung, base.rung
                            ));
                        } else {
                            match (&base.served, &outcome.served) {
                                (Some(a), Some(b))
                                    if a.schedule != b.schedule || a.metrics != b.metrics =>
                                {
                                    failures.push(format!(
                                        "{point}: served plan differs from baseline"
                                    ));
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
    }
    ChaosReport {
        name: name.to_string(),
        seed: None,
        faults: synthesis.chip.faults().to_string(),
        solves,
        served,
        failures,
    }
}

/// Sweeps [`RepairSession::repair`](crate::RepairSession::repair) over the
/// same (deadline × partition × thread) grid as [`chaos_instance`],
/// differentially checking incremental replanning: after every applied
/// delta the repaired outcome must be **bit-identical** to a cold solve of
/// the mutated instance (same served schedule, metrics, and rung), the
/// served plan must re-verify fault-aware on the mutated chip, nothing may
/// panic, and outcomes must agree across thread counts.
///
/// Each point replays the same seeded delta sequence: three chip-fault
/// deltas drawn by [`pdw_gen::fault_delta`] (damage on a pristine chip,
/// a damage/healing mix on a faulted one), then one operation delay. The
/// draws are pure functions of the evolving `(synthesis, seed)`, so every
/// thread count sees the same sequence as long as the repairs agree —
/// which is exactly what the sweep asserts.
pub fn chaos_repair_instance(
    name: &str,
    bench: &Benchmark,
    synthesis: &Synthesis,
    opts: &ChaosOptions,
) -> ChaosReport {
    use crate::repair::{PlanDelta, RepairSession};

    let mut failures: Vec<String> = Vec::new();
    let mut solves = 0usize;
    let mut served = 0usize;
    let threads = if opts.threads.is_empty() {
        vec![1]
    } else {
        opts.threads.clone()
    };
    let partitions = if opts.partitions.is_empty() {
        vec![1]
    } else {
        opts.partitions.clone()
    };
    for budget in &opts.budgets {
        for &k in &partitions {
            // Per-step outcomes of the first thread count at this point;
            // the other thread counts must reproduce them bit for bit.
            let mut baseline: Option<Vec<crate::resilient::PlanOutcome>> = None;
            for &t in &threads {
                let config = PdwConfig {
                    ilp: false,
                    threads: t,
                    pipeline_budget: *budget,
                    ..PdwConfig::default()
                };
                let point = format!("budget {budget:?}, {t} threads, {k} partitions");
                let mut session =
                    RepairSession::new(bench.clone(), synthesis.clone(), config).with_partitions(k);
                if std::panic::catch_unwind(AssertUnwindSafe(|| session.plan())).is_err() {
                    failures.push(format!("{point}: initial plan panicked"));
                    continue;
                }

                // The seeded delta sequence: three fault deltas, one delay.
                let mut steps: Vec<crate::resilient::PlanOutcome> = Vec::new();
                for step in 0u64..4 {
                    let delta = if step < 3 {
                        match pdw_gen::fault_delta(session.synthesis(), 0xC0DE ^ step) {
                            Some(fd) => PlanDelta::Fault(fd),
                            None => break,
                        }
                    } else {
                        match session.synthesis().schedule.ops().first() {
                            Some(op) => PlanDelta::DelayOp {
                                op: op.op,
                                delay: 5,
                            },
                            None => break,
                        }
                    };
                    let outcome =
                        match std::panic::catch_unwind(AssertUnwindSafe(|| session.repair(&delta)))
                        {
                            Ok(o) => o,
                            Err(_) => {
                                failures.push(format!("{point}, step {step}: repair panicked"));
                                break;
                            }
                        };
                    solves += 1;

                    // Serving contract on the mutated chip.
                    if let Some(r) = &outcome.served {
                        served += 1;
                        let chip = &session.synthesis().chip;
                        if let Err(e) = validate(chip, &bench.graph, &r.schedule) {
                            failures.push(format!("{point}, step {step} ({delta}): invalid: {e}"));
                        }
                        let oracle = propagate(chip, &bench.graph, &r.schedule);
                        if !oracle.is_clean() {
                            failures.push(format!(
                                "{point}, step {step} ({delta}): dirty: {} violation(s)",
                                oracle.violations.len()
                            ));
                        }
                    }

                    // The incremental-replanning contract: repaired ≡ cold.
                    let cold = session.cold_reference();
                    if outcome.rung != cold.rung {
                        failures.push(format!(
                            "{point}, step {step} ({delta}): repaired rung {:?} != cold {:?}",
                            outcome.rung, cold.rung
                        ));
                    }
                    match (&outcome.served, &cold.served) {
                        (Some(a), Some(b)) => {
                            if a.schedule != b.schedule || a.metrics != b.metrics {
                                failures.push(format!(
                                    "{point}, step {step} ({delta}): repaired plan differs \
                                     from a cold solve of the mutated instance"
                                ));
                            }
                        }
                        (Some(_), None) | (None, Some(_)) => {
                            failures.push(format!(
                                "{point}, step {step} ({delta}): repaired served-ness \
                                 differs from cold"
                            ));
                        }
                        (None, None) => {}
                    }
                    steps.push(outcome);
                }

                // Outcome identity across thread counts, step by step.
                match &baseline {
                    None => baseline = Some(steps),
                    Some(base) => {
                        if base.len() != steps.len() {
                            failures.push(format!(
                                "{point}: {} repair steps vs baseline {}",
                                steps.len(),
                                base.len()
                            ));
                        }
                        for (i, (a, b)) in base.iter().zip(&steps).enumerate() {
                            let agree = a.rung == b.rung
                                && match (&a.served, &b.served) {
                                    (Some(x), Some(y)) => {
                                        x.schedule == y.schedule && x.metrics == y.metrics
                                    }
                                    (None, None) => true,
                                    _ => false,
                                };
                            if !agree {
                                failures.push(format!(
                                    "{point}, step {i}: repaired outcome differs from baseline \
                                     thread count"
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    ChaosReport {
        name: name.to_string(),
        seed: None,
        faults: synthesis.chip.faults().to_string(),
        solves,
        served,
        failures,
    }
}

/// Chaos-verifies incremental repair on the seeded faulted instance of the
/// [`pdw_gen`] family ([`pdw_gen::faulted_instance`], so the delta sequence
/// mixes damage and healing).
///
/// Returns `None` when the seed's spec is structurally infeasible (skipped,
/// not failed).
pub fn chaos_repair_seed(seed: u64, opts: &ChaosOptions) -> Option<ChaosReport> {
    let spec = pdw_gen::spec_from_seed(seed);
    let (bench, synthesis) = pdw_gen::faulted_instance(&spec).ok()?;
    let mut report = chaos_repair_instance(&bench.name, &bench, &synthesis, opts);
    report.seed = Some(seed);
    Some(report)
}

/// Chaos-verifies the seeded instance of the [`pdw_gen`] family with its
/// seeded fault injection applied ([`pdw_gen::faulted_instance`]).
///
/// Returns `None` when the seed's spec is structurally infeasible (skipped,
/// not failed).
pub fn chaos_seed(seed: u64, opts: &ChaosOptions) -> Option<ChaosReport> {
    let spec = pdw_gen::spec_from_seed(seed);
    let (bench, synthesis) = pdw_gen::faulted_instance(&spec).ok()?;
    let mut report = chaos_instance(&bench.name, &bench, &synthesis, opts);
    report.seed = Some(seed);
    Some(report)
}

/// Verifies the instance generated from `seed` in the [`pdw_gen`] family.
///
/// Returns `None` when the seed's spec is structurally infeasible (skipped,
/// not failed).
pub fn verify_seed(seed: u64, opts: &VerifyOptions) -> Option<InstanceReport> {
    let spec = pdw_gen::spec_from_seed(seed);
    let (bench, synthesis) = pdw_gen::instance(&spec).ok()?;
    let mut report = verify_instance(&bench.name, &bench, &synthesis, opts);
    report.seed = Some(seed);
    Some(report)
}

/// `true` when the instance described by `spec` fails verification
/// (infeasible specs do not fail — they are skipped).
pub fn spec_fails(spec: &SyntheticSpec, opts: &VerifyOptions) -> bool {
    match pdw_gen::instance(spec) {
        Ok((bench, synthesis)) => !verify_instance(&bench.name, &bench, &synthesis, opts).passed(),
        Err(_) => false,
    }
}

/// Shrinks the failing instance of `seed` to the smallest spec that still
/// fails verification. Returns the shrunk spec and the number of accepted
/// reduction steps (0 when the original spec is already minimal).
pub fn shrink_failure(seed: u64, opts: &VerifyOptions) -> (SyntheticSpec, usize) {
    let spec = pdw_gen::spec_from_seed(seed);
    pdw_gen::shrink(&spec, |s| spec_fails(s, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdw::pdw;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    fn quick() -> VerifyOptions {
        VerifyOptions {
            ilp: false,
            threads: vec![1, 2],
            ..VerifyOptions::default()
        }
    }

    #[test]
    fn demo_passes_differential_verification() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let report = verify_instance("demo", &bench, &s, &quick());
        assert!(report.passed(), "{:?}", report.failures());
        assert_eq!(report.plans.len(), 2); // dawo + greedy
    }

    #[test]
    fn objective_recompute_is_bit_identical() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let r = pdw(
            &bench,
            &s,
            &PdwConfig {
                ilp: false,
                ..PdwConfig::default()
            },
        )
        .unwrap();
        let w = Weights::default();
        assert_eq!(r.objective(&w), objective_of(&r.schedule, &w));
    }

    #[test]
    fn chaos_on_the_pristine_demo_passes() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let report = chaos_instance("demo", &bench, &s, &ChaosOptions::default());
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.served > 0);
        assert_eq!(report.solves, 6); // 3 budgets × 2 thread counts
    }

    #[test]
    fn chaos_partition_sweep_on_the_demo_passes() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let opts = ChaosOptions {
            budgets: vec![None],
            threads: vec![1, 2],
            partitions: vec![1, 2, 4],
        };
        let report = chaos_instance("demo", &bench, &s, &opts);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.served > 0);
        assert_eq!(report.solves, 6); // 1 budget × 3 partition counts × 2 threads
    }

    #[test]
    fn chaos_repair_on_the_demo_passes() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let opts = ChaosOptions {
            budgets: vec![None],
            threads: vec![1, 2],
            partitions: vec![1],
        };
        let report = chaos_repair_instance("demo", &bench, &s, &opts);
        assert!(report.passed(), "{:?}", report.failures);
        assert!(report.served > 0);
        assert!(report.solves >= 4, "expected ≥4 repair steps per point");
    }

    #[test]
    fn a_chaos_repair_seed_passes_or_skips() {
        let opts = ChaosOptions {
            budgets: vec![None],
            threads: vec![1],
            partitions: vec![1],
        };
        let mut seen = 0;
        for seed in 0..4 {
            if let Some(report) = chaos_repair_seed(seed, &opts) {
                assert!(report.passed(), "seed {seed}: {:?}", report.failures);
                seen += 1;
            }
        }
        assert!(seen > 0, "all chaos repair seeds skipped");
    }

    #[test]
    fn a_chaos_seed_passes_or_skips() {
        let mut seen = 0;
        for seed in 0..6 {
            if let Some(report) = chaos_seed(seed, &ChaosOptions::default()) {
                assert!(report.passed(), "seed {seed}: {:?}", report.failures);
                assert_eq!(report.seed, Some(seed));
                seen += 1;
            }
        }
        assert!(seen > 0, "all chaos seeds skipped");
    }

    #[test]
    fn a_seeded_instance_verifies_or_skips() {
        let mut seen = 0;
        for seed in 0..10 {
            if let Some(report) = verify_seed(seed, &quick()) {
                assert!(report.passed(), "seed {seed}: {:?}", report.failures());
                assert_eq!(report.seed, Some(seed));
                seen += 1;
            }
        }
        assert!(seen > 0, "all ten seeds skipped");
    }
}
