//! The `pdw worker` protocol: an out-of-process planning servant speaking
//! framed canonical codec on stdin/stdout.
//!
//! A worker is a loop: read one [`WorkerRequest`] frame, plan, write one
//! [`WorkerResponse`] frame, flush, repeat until stdin closes. Two request
//! kinds exist:
//!
//! - [`WorkerRequest::Region`] — one region front-end job from the
//!   partitioned pipeline (carved chip view + base schedule +
//!   requirements). The worker runs the *same* serial front end the
//!   in-process executor runs, so its groups are bit-identical; a front-end
//!   panic becomes a [`WorkerResponse::Error`] (the same refusal an
//!   in-process panic is), never a crash.
//! - [`WorkerRequest::Solve`] — a whole instance. The worker runs the full
//!   resilient ladder and returns a certified [`PlanArtifact`]: schedule,
//!   metrics, rung, and a verification certificate the consumer can (and
//!   should) re-check.
//!
//! Every frame carries the codec magic, [`SCHEMA_VERSION`], and an FNV
//! digest trailer, so a version-skewed or corrupted worker is detected at
//! the frame boundary and the parent falls back in-process with a typed
//! event — never a silently wrong plan.
//!
//! # Chaos injection
//!
//! For fault-tolerance tests the env var `PDW_WORKER_CHAOS` makes a worker
//! misbehave deterministically: `die:N` exits without replying to the Nth
//! request this process serves; `corrupt:N` answers the Nth request with a
//! frame whose digest trailer is flipped, then exits. Respawned workers
//! start a fresh count, so a chaotic fleet keeps failing until the parent's
//! fallback path absorbs the work.
//!
//! [`SCHEMA_VERSION`]: crate::codec::SCHEMA_VERSION

use std::io::{Read, Write};
use std::panic::AssertUnwindSafe;

use pdw_assay::benchmarks::Benchmark;
use pdw_biochip::{Chip, ScratchPool};
use pdw_contam::WashRequirement;
use pdw_sched::Schedule;
use pdw_synth::Synthesis;
use serde::{Deserialize, Serialize};

use crate::codec::{self, config_fingerprint, instance_hash, CodecError, FrameType, PlanArtifact};
use crate::config::PdwConfig;
use crate::groups::WashGroup;
use crate::par::panic_message;
use crate::partition::region_front_end;
use crate::resilient::plan_resilient;

/// One region front-end job, self-contained: region views preserve parent
/// coordinates and ids, so the planned groups are valid on the whole chip
/// with no translation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegionRequest {
    /// The carved region/span view's chip.
    pub chip: Chip,
    /// The base schedule the requirements reference.
    pub schedule: Schedule,
    /// The wash requirements this job plans.
    pub requirements: Vec<WashRequirement>,
    /// Candidate wash paths to enumerate per group.
    pub candidates: usize,
    /// Whether in-bucket group merging runs.
    pub merging: bool,
}

/// A whole planning instance for the full resilient ladder.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveRequest {
    /// The bioassay benchmark.
    pub bench: Benchmark,
    /// The synthesized chip + base schedule.
    pub synthesis: Synthesis,
    /// The planner configuration.
    pub config: PdwConfig,
}

/// What a `pdw worker` can be asked to do.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkerRequest {
    /// Plan one region front end (partitioned-pipeline fan-out).
    Region(Box<RegionRequest>),
    /// Solve a whole instance and return a certified artifact.
    Solve(Box<SolveRequest>),
}

/// What a `pdw worker` answers with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WorkerResponse {
    /// The region job's wash groups, bit-identical to in-process planning.
    Groups(Vec<WashGroup>),
    /// The solved instance's certified plan artifact.
    Artifact(Box<PlanArtifact>),
    /// The request was understood but planning refused (front-end panic,
    /// every ladder rung rejected). The worker itself is still healthy.
    Error(String),
}

/// Deterministic misbehavior for fault-tolerance tests, parsed from
/// `PDW_WORKER_CHAOS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chaos {
    None,
    /// Exit without replying to the `n`th request this process serves.
    Die(usize),
    /// Reply to the `n`th request with a digest-corrupted frame, then exit.
    Corrupt(usize),
}

impl Chaos {
    fn from_env() -> Self {
        let Ok(spec) = std::env::var("PDW_WORKER_CHAOS") else {
            return Chaos::None;
        };
        let parse = |rest: &str| rest.parse::<usize>().ok().filter(|&n| n > 0);
        if let Some(n) = spec.strip_prefix("die:").and_then(parse) {
            Chaos::Die(n)
        } else if let Some(n) = spec.strip_prefix("corrupt:").and_then(parse) {
            Chaos::Corrupt(n)
        } else {
            Chaos::None
        }
    }
}

/// Runs the worker loop until `reader` reaches a clean EOF (parent closed
/// the pipe): one request frame in, one response frame out, flushed.
///
/// Returns a [`CodecError`] when the request stream itself is unreadable —
/// truncated, version-skewed, corrupt — which a worker binary should
/// report on stderr and die from. Planning failures never tear down the
/// loop; they come back as [`WorkerResponse::Error`].
pub fn run_worker<R: Read, W: Write>(reader: &mut R, writer: &mut W) -> Result<(), CodecError> {
    let chaos = Chaos::from_env();
    let mut served = 0usize;
    loop {
        let Some(frame) = codec::read_frame(reader)? else {
            return Ok(());
        };
        let request: WorkerRequest = codec::decode_frame(FrameType::WorkerRequest, &frame)?;
        served += 1;
        match chaos {
            Chaos::Die(n) if served == n => std::process::exit(3),
            Chaos::Corrupt(n) if served == n => {
                let mut out = codec::encode_frame(
                    FrameType::WorkerResponse,
                    &WorkerResponse::Error("chaos".to_string()),
                );
                let last = out.len() - 1;
                out[last] ^= 0xff;
                let _ = writer.write_all(&out);
                let _ = writer.flush();
                std::process::exit(4);
            }
            _ => {}
        }
        let response = handle(request);
        let out = codec::encode_frame(FrameType::WorkerResponse, &response);
        codec::write_frame(writer, &out)?;
    }
}

/// Serves one request; a planning panic becomes a typed refusal, so the
/// worker process survives it.
fn handle(request: WorkerRequest) -> WorkerResponse {
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| match request {
        WorkerRequest::Region(r) => {
            let pool = ScratchPool::new();
            WorkerResponse::Groups(region_front_end(
                &r.chip,
                &r.schedule,
                &r.requirements,
                r.candidates,
                r.merging,
                &pool,
            ))
        }
        WorkerRequest::Solve(r) => {
            let outcome = plan_resilient(&r.bench, &r.synthesis, &r.config);
            match (outcome.served, outcome.rung) {
                (Some(result), Some(rung)) => {
                    WorkerResponse::Artifact(Box::new(PlanArtifact::certified(
                        instance_hash(&r.bench, &r.synthesis),
                        config_fingerprint(&r.config),
                        rung,
                        &r.bench,
                        &r.synthesis,
                        result,
                    )))
                }
                _ => WorkerResponse::Error("every ladder rung was rejected".to_string()),
            }
        }
    }));
    match outcome {
        Ok(response) => response,
        Err(payload) => WorkerResponse::Error(panic_message(payload)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdw_assay::benchmarks;
    use pdw_synth::synthesize;

    fn config() -> PdwConfig {
        PdwConfig {
            ilp: false,
            ..PdwConfig::default()
        }
    }

    /// Drives `run_worker` over in-memory pipes — the same loop the `pdw
    /// worker` binary runs, minus the process boundary (which
    /// `crates/cli/tests/worker.rs` covers for real).
    fn roundtrip(requests: &[WorkerRequest]) -> Vec<WorkerResponse> {
        let mut input = Vec::new();
        for req in requests {
            input.extend_from_slice(&codec::encode_frame(FrameType::WorkerRequest, req));
        }
        let mut reader = std::io::Cursor::new(input);
        let mut output = Vec::new();
        run_worker(&mut reader, &mut output).expect("worker loop runs clean");
        let mut responses = Vec::new();
        let mut r = std::io::Cursor::new(output);
        while let Some(frame) = codec::read_frame(&mut r).expect("response stream intact") {
            responses
                .push(codec::decode_frame(FrameType::WorkerResponse, &frame).expect("response"));
        }
        responses
    }

    #[test]
    fn solve_request_returns_a_verifying_artifact() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let responses = roundtrip(&[WorkerRequest::Solve(Box::new(SolveRequest {
            bench: bench.clone(),
            synthesis: s.clone(),
            config: config(),
        }))]);
        assert_eq!(responses.len(), 1);
        let WorkerResponse::Artifact(artifact) = &responses[0] else {
            panic!("expected an artifact, got {:?}", responses[0]);
        };
        artifact.verify(&bench, &s).expect("artifact verifies");
        let direct = plan_resilient(&bench, &s, &config());
        assert_eq!(
            artifact.result.schedule,
            direct.served.as_ref().unwrap().schedule
        );
        assert_eq!(Some(artifact.rung), direct.rung);
    }

    #[test]
    fn region_request_matches_the_in_process_front_end() {
        let bench = benchmarks::demo();
        let s = synthesize(&bench).unwrap();
        let analysis = pdw_contam::analyze(
            &s.chip,
            &bench.graph,
            &s.schedule,
            pdw_contam::NecessityOptions::full(),
        );
        let reqs = analysis.requirements.clone();
        assert!(!reqs.is_empty(), "demo instance has wash necessity");
        let responses = roundtrip(&[WorkerRequest::Region(Box::new(RegionRequest {
            chip: s.chip.clone(),
            schedule: s.schedule.clone(),
            requirements: reqs.clone(),
            candidates: 3,
            merging: true,
        }))]);
        let WorkerResponse::Groups(groups) = &responses[0] else {
            panic!("expected groups, got {:?}", responses[0]);
        };
        let pool = ScratchPool::new();
        let direct = region_front_end(&s.chip, &s.schedule, &reqs, 3, true, &pool);
        assert_eq!(groups.len(), direct.len());
        for (a, b) in groups.iter().zip(&direct) {
            assert_eq!(a.parts, b.parts);
            assert_eq!(a.candidates, b.candidates);
        }
    }

    #[test]
    fn truncated_request_stream_is_a_typed_error() {
        let req = WorkerRequest::Solve(Box::new(SolveRequest {
            bench: benchmarks::demo(),
            synthesis: synthesize(&benchmarks::demo()).unwrap(),
            config: config(),
        }));
        let frame = codec::encode_frame(FrameType::WorkerRequest, &req);
        let mut reader = std::io::Cursor::new(frame[..frame.len() - 5].to_vec());
        let mut output = Vec::new();
        assert!(matches!(
            run_worker(&mut reader, &mut output),
            Err(CodecError::Truncated { .. })
        ));
        assert!(output.is_empty());
    }
}
