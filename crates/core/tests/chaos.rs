//! Chaos sweeps of the fault-tolerant ladder and incremental repair.
//!
//! The unit tests inside `verify.rs` keep single points fast; this
//! integration suite drives the full acceptance grid — pipeline budgets ×
//! thread counts × partition counts — and holds every repaired plan to the
//! differential contract: bit-identical to a cold solve of the mutated
//! instance, fault-aware valid, oracle-clean, and panic-free.

use std::time::Duration;

use pathdriver_wash::verify::{
    chaos_instance, chaos_repair_instance, chaos_repair_seed, ChaosOptions,
};
use pdw_assay::benchmarks;
use pdw_synth::synthesize;

fn full_grid() -> ChaosOptions {
    ChaosOptions {
        budgets: vec![Some(Duration::ZERO), Some(Duration::from_nanos(1)), None],
        threads: vec![1, 8],
        partitions: vec![1, 2],
    }
}

#[test]
fn repair_matches_cold_solves_across_the_full_chaos_grid() {
    let bench = benchmarks::demo();
    let s = synthesize(&bench).unwrap();
    let report = chaos_repair_instance("demo", &bench, &s, &full_grid());
    assert!(report.passed(), "{:#?}", report.failures);
    assert!(report.served > 0, "no repair ever served a plan");
    // 3 budgets × 2 partition counts × 2 thread counts, up to 4 steps each.
    assert!(
        report.solves >= 12,
        "grid under-swept: only {} repair solves",
        report.solves
    );
}

#[test]
fn repair_chaos_holds_on_seeded_faulted_instances() {
    let opts = ChaosOptions {
        budgets: vec![None],
        threads: vec![1, 2],
        partitions: vec![1],
    };
    let mut seen = 0;
    for seed in 0..6 {
        if let Some(report) = chaos_repair_seed(seed, &opts) {
            assert!(report.passed(), "seed {seed}: {:#?}", report.failures);
            seen += 1;
        }
    }
    assert!(seen > 1, "only {seen}/6 repair chaos seeds ran");
}

#[test]
fn ladder_chaos_still_holds_beside_repair() {
    // Guard the pre-repair contract on the same grid: the ladder itself
    // stays panic-free, typed, and thread-identical.
    let bench = benchmarks::demo();
    let s = synthesize(&bench).unwrap();
    let report = chaos_instance("demo", &bench, &s, &full_grid());
    assert!(report.passed(), "{:#?}", report.failures);
    assert!(report.served > 0);
}
