//! Seeded random-instance generation and shrinking for verification.
//!
//! The differential verification harness (`pdw verify`, the `verify` bench
//! binary) and the `random_pipeline` property test all need the same thing:
//! a family of feasible random assay instances, reproducible from a single
//! `u64` seed, plus a way to *shrink* a failing instance to the smallest
//! spec that still fails. This crate is that shared module.
//!
//! - [`spec_strategy`] — the proptest strategy over [`SyntheticSpec`]s
//!   (promoted from the `random_pipeline` test so every consumer draws from
//!   the same distribution);
//! - [`spec_from_seed`] — the same distribution collapsed onto a single
//!   seed, for corpus-style iteration (`for seed in 0..n`);
//! - [`instance`] — spec → generated benchmark → synthesized chip/schedule,
//!   with structurally infeasible specs reported as [`Skip`] rather than
//!   errors;
//! - [`shrink`] — greedy descent over the spec's size knobs. The vendored
//!   proptest stand-in has no shrinking, so the harness shrinks at the spec
//!   level instead: ops, extra edges, devices, and grid are reduced one at
//!   a time while the caller's failure predicate keeps holding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashSet;

use pdw_assay::benchmarks::Benchmark;
use pdw_assay::synthetic::{generate, SyntheticSpec};
use pdw_biochip::{CellKind, Coord, FaultDelta, FaultSet, FlowPortId, WastePortId};
use pdw_synth::{
    build_chip_banded, device_slots, synthesize, synthesize_on, SynthError, Synthesis,
};
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bounds of the random-instance family. Kept in one place so the strategy
/// and the seed-based generator cannot drift apart.
const OPS: std::ops::RangeInclusive<usize> = 4..=10;
const EXTRA_EDGES: std::ops::RangeInclusive<usize> = 0..=4;
const DEVICES: std::ops::RangeInclusive<usize> = 6..=9;
const GRID: (u16, u16) = (15, 15);

/// Builds the spec for the given size knobs.
///
/// `|E| = |O| + mixes + extra inputs + sinks`; the edge count keeps the
/// instance feasible around the generator's structural family.
fn spec(ops: usize, extra: usize, devices: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: format!("prop-{seed:x}"),
        ops,
        edges: 2 * ops - ops / 2 + extra,
        devices,
        seed,
        grid: GRID,
    }
}

/// The proptest strategy over synthetic specs used by the `random_pipeline`
/// property test.
pub fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (OPS, EXTRA_EDGES, DEVICES, proptest::any::<u64>())
        .prop_map(|(ops, extra, devices, seed)| spec(ops, extra, devices, seed))
}

/// Derives a spec deterministically from a single seed, drawing the size
/// knobs from the same ranges as [`spec_strategy`].
pub fn spec_from_seed(seed: u64) -> SyntheticSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = rng.gen_range(OPS);
    let extra = rng.gen_range(EXTRA_EDGES);
    let devices = rng.gen_range(DEVICES);
    spec(ops, extra, devices, seed)
}

/// Why a spec produced no instance. Skips are expected — heavily chained
/// assays on a minimal device library can exceed what list scheduling
/// without result relocation supports — and are not verification failures.
#[derive(Debug, Clone)]
pub enum Skip {
    /// Synthesis deadlocked (`SynthError::Deadlock`): the instance is
    /// structurally under-provisioned, not wrong.
    Deadlock(String),
    /// Any other synthesis infeasibility (e.g. a shrunk grid too small for
    /// the device library). At the family's default grid this should not
    /// occur; the `random_pipeline` property test asserts as much.
    Infeasible(String),
}

impl std::fmt::Display for Skip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Skip::Deadlock(e) => write!(f, "skipped (synthesis deadlock): {e}"),
            Skip::Infeasible(e) => write!(f, "skipped (infeasible): {e}"),
        }
    }
}

/// Generates and synthesizes the instance described by `spec`.
///
/// # Errors
///
/// Returns [`Skip`] for infeasible specs; the call itself never fails.
pub fn instance(spec: &SyntheticSpec) -> Result<(Benchmark, Synthesis), Skip> {
    let bench = generate(spec);
    match synthesize(&bench) {
        Ok(s) => Ok((bench, s)),
        Err(e @ SynthError::Deadlock { .. }) => Err(Skip::Deadlock(e.to_string())),
        Err(e) => Err(Skip::Infeasible(e.to_string())),
    }
}

/// Number of vertical port bands [`mega_instance`] lays out for a grid of
/// `width` columns — one flow and one waste port per band, so a
/// [`partition`](pdw_biochip::partition) cut leaves every region able to
/// wash on its own.
pub fn mega_bands(width: u16) -> u16 {
    (width / 16).clamp(2, 16)
}

/// The spec of a seeded `mega`-family instance: a `side × side` grid
/// (sides up to 1000 cells) running an `ops`-operation assay (up to
/// thousand-op). The device library scales with the assay and is clamped to
/// what the grid can hold; the edge count follows the same structural
/// family as [`spec_from_seed`].
pub fn mega_spec(side: u16, ops: usize, seed: u64) -> SyntheticSpec {
    let side = side.max(15);
    let capacity = device_slots(side, side).len();
    let devices = (ops * 3 / 4).clamp(6, capacity.max(6));
    SyntheticSpec {
        name: format!("mega-{side}x{side}-{ops}op-{seed:x}"),
        ops,
        edges: 2 * ops - ops / 2,
        devices,
        seed,
        grid: (side, side),
    }
}

/// Generates and synthesizes a `mega` instance on its *banded* chip
/// ([`build_chip_banded`]): one flow/waste port pair per vertical band
/// ([`mega_bands`]), devices spread across the whole grid instead of packed
/// top-first. This is the instance family of the partitioned-planning
/// benchmarks (`bench_partition`).
///
/// # Errors
///
/// Returns [`Skip`] for infeasible specs, exactly like [`instance`].
pub fn mega_instance(spec: &SyntheticSpec) -> Result<(Benchmark, Synthesis), Skip> {
    let bench = generate(spec);
    let chip = match build_chip_banded(&bench, mega_bands(spec.grid.0)) {
        Ok(c) => c,
        Err(e) => return Err(Skip::Infeasible(e.to_string())),
    };
    match synthesize_on(&bench, chip) {
        Ok(s) => Ok((bench, s)),
        Err(e @ SynthError::Deadlock { .. }) => Err(Skip::Deadlock(e.to_string())),
        Err(e) => Err(Skip::Infeasible(e.to_string())),
    }
}

/// Canonical form of an undirected edge for the used-edge set.
fn edge_key(a: Coord, b: Coord) -> (Coord, Coord) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The chip elements the base schedule does *not* rely on: safe targets for
/// fault injection. Pools are in deterministic row-major / port-index order
/// and exclude anything already faulted.
struct SparePools {
    cells: Vec<Coord>,
    edges: Vec<(Coord, Coord)>,
    flow: Vec<FlowPortId>,
    waste: Vec<WastePortId>,
}

fn spare_pools(synthesis: &Synthesis) -> SparePools {
    let chip = &synthesis.chip;
    let grid = chip.grid();
    let faults = chip.faults();

    // Everything the base schedule relies on.
    let mut used_cells: HashSet<Coord> = HashSet::new();
    let mut used_edges: HashSet<(Coord, Coord)> = HashSet::new();
    let mut used_endpoints: HashSet<Coord> = HashSet::new();
    for (_, task) in synthesis.schedule.tasks() {
        let cells = task.path().cells();
        used_cells.extend(cells.iter().copied());
        used_edges.extend(cells.windows(2).map(|w| edge_key(w[0], w[1])));
        used_endpoints.insert(task.path().source());
        used_endpoints.insert(task.path().sink());
    }
    for dev in chip.devices() {
        used_cells.extend(dev.footprint().iter().copied());
    }

    let mut cells: Vec<Coord> = Vec::new();
    let mut edges: Vec<(Coord, Coord)> = Vec::new();
    for c in grid.coords() {
        if matches!(grid.kind(c), CellKind::Channel)
            && !used_cells.contains(&c)
            && !faults.cell_blocked(c)
        {
            cells.push(c);
        }
        for n in grid.neighbors(c) {
            let key = edge_key(c, n);
            if key != (c, n) {
                continue; // visit each undirected edge once
            }
            if grid.kind(c).is_routable()
                && grid.kind(n).is_routable()
                && !used_edges.contains(&key)
                && !faults.edge_blocked(key.0, key.1)
            {
                edges.push(key);
            }
        }
    }
    let flow: Vec<_> = chip
        .flow_ports()
        .enumerate()
        .filter(|(_, c)| !used_endpoints.contains(c))
        .map(|(i, _)| FlowPortId(i as u32))
        .filter(|id| !faults.flow_port_disabled(*id))
        .collect();
    let waste: Vec<_> = chip
        .waste_ports()
        .enumerate()
        .filter(|(_, c)| !used_endpoints.contains(c))
        .map(|(i, _)| WastePortId(i as u32))
        .filter(|id| !faults.waste_port_disabled(*id))
        .collect();
    SparePools {
        cells,
        edges,
        flow,
        waste,
    }
}

/// Derives a seeded [`FaultSet`] for a synthesized instance and applies it,
/// returning the same schedule on the now-faulted chip.
///
/// Faults are sampled only from the parts of the chip the *base* (wash-free)
/// schedule does not use — cells and valve edges no task path or device
/// footprint touches, and ports no path terminates at (always leaving at
/// least one inlet and one outlet enabled). The base schedule therefore
/// stays physically valid on the faulted chip by construction; what changes
/// is the *routing slack* the wash planners have to work with, which is
/// exactly what chaos testing wants to squeeze.
///
/// The sampling is a pure function of `(synthesis, seed)`, so faulted
/// corpora are as reproducible as the pristine ones.
pub fn inject_faults(synthesis: &Synthesis, seed: u64) -> Synthesis {
    let chip = &synthesis.chip;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7fa0_17ed_c0ff_ee00);

    let SparePools {
        cells: spare_cells,
        edges: spare_edges,
        flow: spare_flow,
        waste: spare_waste,
    } = spare_pools(synthesis);

    let mut faults = FaultSet::new();
    let pick = |pool_len: usize, max: usize, rng: &mut StdRng| -> Vec<usize> {
        let want = rng.gen_range(0..=max.min(pool_len));
        let mut idx: Vec<usize> = (0..pool_len).collect();
        let mut out = Vec::with_capacity(want);
        for _ in 0..want {
            out.push(idx.remove(rng.gen_range(0..idx.len())));
        }
        out
    };
    for i in pick(spare_cells.len(), 3, &mut rng) {
        faults.block_cell(spare_cells[i]);
    }
    for i in pick(spare_edges.len(), 3, &mut rng) {
        faults.block_edge(spare_edges[i].0, spare_edges[i].1);
    }
    // Keep at least one inlet and one outlet enabled: only ever disable
    // ports that are spare, and never all of them.
    let flow_cap = spare_flow
        .len()
        .min(chip.flow_ports().len().saturating_sub(1));
    for i in pick(spare_flow.len().min(flow_cap), 1, &mut rng) {
        faults.disable_flow_port(spare_flow[i]);
    }
    let waste_cap = spare_waste
        .len()
        .min(chip.waste_ports().len().saturating_sub(1));
    for i in pick(spare_waste.len().min(waste_cap), 1, &mut rng) {
        faults.disable_waste_port(spare_waste[i]);
    }

    let faulted = chip
        .with_faults(faults)
        .expect("faults sampled from the chip's own cells/ports are valid");
    debug_assert!(
        synthesis
            .schedule
            .tasks()
            .all(|(_, t)| faulted.validate_path(t.path()).is_ok()),
        "fault injection must not invalidate the base schedule"
    );
    Synthesis {
        chip: faulted,
        schedule: synthesis.schedule.clone(),
        binding: synthesis.binding.clone(),
        reagent_ports: synthesis.reagent_ports.clone(),
    }
}

/// [`instance`] composed with [`inject_faults`]: the seeded instance with
/// seeded damage applied to its chip.
///
/// # Errors
///
/// Returns [`Skip`] for infeasible specs, exactly like [`instance`].
pub fn faulted_instance(spec: &SyntheticSpec) -> Result<(Benchmark, Synthesis), Skip> {
    let (bench, s) = instance(spec)?;
    let faulted = inject_faults(&s, spec.seed);
    Ok((bench, faulted))
}

/// Derives one seeded [`FaultDelta`] for a synthesized instance — the unit
/// of chaos for incremental-replanning tests (`RepairSession::repair`).
///
/// Damage deltas (`Block*`/`Disable*`) are sampled from the same spare
/// pools as [`inject_faults`] — chip elements the base schedule does not
/// use — so applying the delta always keeps the base schedule physically
/// valid. Healing deltas (`Unblock*`/`Enable*`) are sampled from the faults
/// the chip *currently* carries, so on a [`faulted_instance`] a seed sweep
/// exercises both directions. Port disables keep at least one inlet and one
/// outlet enabled.
///
/// Returns `None` only when the chip offers nothing to mutate (no spare
/// elements and no present faults). The sampling is a pure function of
/// `(synthesis, seed)`.
pub fn fault_delta(synthesis: &Synthesis, seed: u64) -> Option<FaultDelta> {
    let chip = &synthesis.chip;
    let faults = chip.faults();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0de1_7a5e_eded_0001);

    let pools = spare_pools(synthesis);
    // One representative per applicable delta kind, drawn in fixed order so
    // the sampling stays deterministic.
    let mut options: Vec<FaultDelta> = Vec::new();
    if !pools.cells.is_empty() {
        options.push(FaultDelta::BlockCell(
            pools.cells[rng.gen_range(0..pools.cells.len())],
        ));
    }
    if !pools.edges.is_empty() {
        let (a, b) = pools.edges[rng.gen_range(0..pools.edges.len())];
        options.push(FaultDelta::BlockEdge(a, b));
    }
    // Keep at least one inlet and one outlet enabled.
    let enabled_flow = chip.flow_ports().len() - faults.disabled_flow_ports().len();
    if !pools.flow.is_empty() && enabled_flow >= 2 {
        options.push(FaultDelta::DisableFlowPort(
            pools.flow[rng.gen_range(0..pools.flow.len())],
        ));
    }
    let enabled_waste = chip.waste_ports().len() - faults.disabled_waste_ports().len();
    if !pools.waste.is_empty() && enabled_waste >= 2 {
        options.push(FaultDelta::DisableWastePort(
            pools.waste[rng.gen_range(0..pools.waste.len())],
        ));
    }
    // Healing deltas from whatever the chip currently suffers.
    let blocked = faults.blocked_cells();
    if !blocked.is_empty() {
        options.push(FaultDelta::UnblockCell(
            blocked[rng.gen_range(0..blocked.len())],
        ));
    }
    let blocked_edges = faults.blocked_edges();
    if !blocked_edges.is_empty() {
        let (a, b) = blocked_edges[rng.gen_range(0..blocked_edges.len())];
        options.push(FaultDelta::UnblockEdge(a, b));
    }
    let disabled_flow: Vec<_> = faults.disabled_flow_ports().collect();
    if !disabled_flow.is_empty() {
        options.push(FaultDelta::EnableFlowPort(
            disabled_flow[rng.gen_range(0..disabled_flow.len())],
        ));
    }
    let disabled_waste: Vec<_> = faults.disabled_waste_ports().collect();
    if !disabled_waste.is_empty() {
        options.push(FaultDelta::EnableWastePort(
            disabled_waste[rng.gen_range(0..disabled_waste.len())],
        ));
    }
    if options.is_empty() {
        return None;
    }
    Some(options[rng.gen_range(0..options.len())])
}

/// Options of the seeded open-loop request stream ([`request_stream`]).
///
/// The defaults describe a light, memo-friendly load: ~8 distinct
/// instances, 60% chip reuse, 15% repair deltas, 2 ms mean inter-arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOptions {
    /// Stream seed; the whole stream is a pure function of the options.
    pub seed: u64,
    /// Number of request events to emit.
    pub requests: usize,
    /// Size of the instance pool indices are drawn from.
    pub pool: usize,
    /// Mean inter-arrival gap in microseconds (exponential draws).
    pub mean_gap_us: u64,
    /// Probability in `[0, 1]` that a request re-targets an instance the
    /// stream has already touched (a memo/context-cache hit opportunity)
    /// instead of a fresh pool entry.
    pub reuse: f64,
    /// Probability in `[0, 1]` that a request against an already-touched
    /// instance is a *repair delta* rather than a plain solve.
    pub delta_ratio: f64,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            seed: 0,
            requests: 100,
            pool: 8,
            mean_gap_us: 2_000,
            reuse: 0.6,
            delta_ratio: 0.15,
        }
    }
}

/// What one open-loop request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamEventKind {
    /// Plan the instance from scratch (or serve it from the memo cache).
    Solve,
    /// Apply a seeded [`fault_delta`] against the instance's repair session
    /// (`delta_seed` is the sampling seed).
    Repair {
        /// Seed for [`fault_delta`] sampling at materialization time.
        delta_seed: u64,
    },
}

/// One event of the open-loop request stream: at `at_us` microseconds after
/// stream start, issue `kind` against pool instance `pool_index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEvent {
    /// Arrival time, microseconds since stream start (strictly increasing).
    pub at_us: u64,
    /// Which pool instance the request targets.
    pub pool_index: usize,
    /// Solve or repair.
    pub kind: StreamEventKind,
}

/// A `[0, 1)` fraction from the generator's next 64 bits.
fn unit(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Generates a seeded open-loop request stream (see [`StreamOptions`]).
///
/// Inter-arrival gaps are exponential with mean `mean_gap_us` (clamped to
/// `[1, 20 × mean]` so a single draw cannot stall the stream); arrival
/// times are strictly increasing. The first event always targets a fresh
/// pool entry; later events re-target an already-touched instance with
/// probability `reuse` (and, among those, become repair deltas with
/// probability `delta_ratio`), otherwise they touch the next fresh entry
/// until the pool is exhausted. The stream is a pure function of the
/// options — the serve tests and `bench_serve` replay identical traffic.
pub fn request_stream(opts: &StreamOptions) -> Vec<StreamEvent> {
    assert!(opts.pool > 0, "request_stream needs a non-empty pool");
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x5e4e_57a7_ea00_0001);
    let mut events = Vec::with_capacity(opts.requests);
    let mut touched: Vec<usize> = Vec::new();
    let mut at_us: u64 = 0;
    for _ in 0..opts.requests {
        let mean = opts.mean_gap_us.max(1) as f64;
        let gap = (-(1.0 - unit(&mut rng)).ln() * mean) as u64;
        at_us = at_us.saturating_add(gap.clamp(1, opts.mean_gap_us.max(1) * 20));

        let reuse_now = !touched.is_empty() && unit(&mut rng) < opts.reuse;
        let (pool_index, kind) = if reuse_now {
            let idx = touched[rng.gen_range(0..touched.len())];
            let kind = if unit(&mut rng) < opts.delta_ratio {
                StreamEventKind::Repair {
                    delta_seed: rng.next_u64(),
                }
            } else {
                StreamEventKind::Solve
            };
            (idx, kind)
        } else {
            // Next untouched pool entry, wrapping to uniform once the pool
            // is saturated.
            let idx = if touched.len() < opts.pool {
                touched.len()
            } else {
                rng.gen_range(0..opts.pool)
            };
            (idx, StreamEventKind::Solve)
        };
        if !touched.contains(&pool_index) {
            touched.push(pool_index);
        }
        events.push(StreamEvent {
            at_us,
            pool_index,
            kind,
        });
    }
    events
}

/// Shrinks a failing spec: repeatedly tries to reduce one size knob at a
/// time (operations, extra edges, devices, grid side), keeping a reduction
/// only when `fails` still returns `true` for the reduced spec, until no
/// single reduction reproduces the failure. Returns the smallest failing
/// spec found and the number of accepted reduction steps.
///
/// `fails` should treat skipped instances (see [`instance`]) as *not*
/// failing. The descent is deterministic, so a shrunk repro is as
/// reproducible as the original seed.
pub fn shrink(
    spec: &SyntheticSpec,
    fails: impl Fn(&SyntheticSpec) -> bool,
) -> (SyntheticSpec, usize) {
    let mut best = spec.clone();
    let mut steps = 0usize;
    loop {
        let mut candidates: Vec<SyntheticSpec> = Vec::new();
        if best.ops > *OPS.start() {
            // Keep the edge/op ratio of the family when dropping an op.
            let ops = best.ops - 1;
            let base_edges = 2 * ops - ops / 2;
            let extra = best.edges.saturating_sub(2 * best.ops - best.ops / 2);
            candidates.push(SyntheticSpec {
                ops,
                edges: base_edges + extra,
                ..best.clone()
            });
        }
        if best.edges > 2 * best.ops - best.ops / 2 {
            candidates.push(SyntheticSpec {
                edges: best.edges - 1,
                ..best.clone()
            });
        }
        if best.devices > *DEVICES.start() {
            candidates.push(SyntheticSpec {
                devices: best.devices - 1,
                ..best.clone()
            });
        }
        if best.grid.0 > 11 && best.grid.1 > 11 {
            candidates.push(SyntheticSpec {
                grid: (best.grid.0 - 2, best.grid.1 - 2),
                ..best.clone()
            });
        }
        let Some(reduced) = candidates.into_iter().find(|c| fails(c)) else {
            return (best, steps);
        };
        best = reduced;
        steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_specs_are_deterministic_and_in_family() {
        for seed in 0..50 {
            let a = spec_from_seed(seed);
            let b = spec_from_seed(seed);
            assert_eq!(a, b);
            assert!(OPS.contains(&a.ops));
            assert!(DEVICES.contains(&a.devices));
            assert!(a.edges >= 2 * a.ops - a.ops / 2);
            assert!(a.edges <= 2 * a.ops - a.ops / 2 + EXTRA_EDGES.end());
        }
    }

    #[test]
    fn most_seeds_synthesize() {
        let mut ok = 0;
        for seed in 0..25 {
            if instance(&spec_from_seed(seed)).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 10, "only {ok}/25 seeds produced instances");
    }

    #[test]
    fn fault_injection_is_deterministic_and_preserves_the_base_schedule() {
        let mut damaged = 0;
        for seed in 0..20 {
            let Ok((_, s)) = instance(&spec_from_seed(seed)) else {
                continue;
            };
            let a = inject_faults(&s, seed);
            let b = inject_faults(&s, seed);
            assert_eq!(
                a.chip.faults(),
                b.chip.faults(),
                "seed {seed} not deterministic"
            );
            // The base schedule must remain valid on the damaged chip.
            for (_, t) in s.schedule.tasks() {
                a.chip
                    .validate_path(t.path())
                    .unwrap_or_else(|e| panic!("seed {seed}: base schedule broken: {e}"));
            }
            if !a.chip.faults().is_empty() {
                damaged += 1;
            }
        }
        assert!(damaged > 5, "only {damaged} seeds produced any damage");
    }

    #[test]
    fn different_fault_seeds_produce_different_damage() {
        let (_, s) = instance(&spec_from_seed(0)).expect("seed 0 synthesizes");
        let sets: Vec<_> = (0..8)
            .map(|fs| inject_faults(&s, fs).chip.faults().clone())
            .collect();
        let distinct: HashSet<_> = sets.iter().map(|f| format!("{f:?}")).collect();
        assert!(distinct.len() > 1, "all fault seeds collapsed to one set");
    }

    #[test]
    fn mega_instances_synthesize_deterministically_on_banded_chips() {
        let spec = mega_spec(61, 12, 3);
        assert_eq!(spec.grid, (61, 61));
        let (bench, s) = mega_instance(&spec).expect("mega seed 3 synthesizes");
        assert_eq!(bench.devices.len(), spec.devices);
        // One port pair per band.
        let bands = mega_bands(61) as usize;
        assert_eq!(s.chip.flow_ports().len(), bands);
        assert_eq!(s.chip.waste_ports().len(), bands);
        // Deterministic re-generation.
        let (_, s2) = mega_instance(&spec).unwrap();
        assert_eq!(s.chip.grid(), s2.chip.grid());
        assert_eq!(s.schedule, s2.schedule);
        // Fault injection composes with the mega family and keeps the base
        // schedule valid on the damaged chip.
        let faulted = inject_faults(&s, spec.seed);
        for (_, t) in faulted.schedule.tasks() {
            faulted.chip.validate_path(t.path()).unwrap();
        }
    }

    #[test]
    fn fault_deltas_are_deterministic_varied_and_schedule_preserving() {
        let (_, s) = instance(&spec_from_seed(0)).expect("seed 0 synthesizes");
        let mut kinds: HashSet<String> = HashSet::new();
        for seed in 0..20 {
            let a = fault_delta(&s, seed).expect("pristine demo-family chip has spares");
            let b = fault_delta(&s, seed).unwrap();
            assert_eq!(a, b, "seed {seed} not deterministic");
            kinds.insert(format!("{a}"));
            // A damage delta must keep the base schedule valid.
            let mut faults = s.chip.faults().clone();
            assert!(a.apply(&mut faults), "sampled delta must change the chip");
            let mutated = s.chip.with_faults(faults).unwrap();
            for (_, t) in s.schedule.tasks() {
                mutated
                    .validate_path(t.path())
                    .unwrap_or_else(|e| panic!("seed {seed}: base schedule broken: {e}"));
            }
        }
        assert!(kinds.len() > 3, "delta seeds collapsed: {kinds:?}");
    }

    #[test]
    fn fault_deltas_on_damaged_chips_include_healing() {
        // A faulted instance carries damage, so the sampler must sometimes
        // pick a healing (Unblock*/Enable*) delta.
        for seed in 0..20 {
            let Ok((_, s)) = faulted_instance(&spec_from_seed(seed)) else {
                continue;
            };
            if s.chip.faults().is_empty() {
                continue;
            }
            let healed = (0..30).filter_map(|ds| fault_delta(&s, ds)).any(|d| {
                matches!(
                    d,
                    FaultDelta::UnblockCell(_)
                        | FaultDelta::UnblockEdge(_, _)
                        | FaultDelta::EnableFlowPort(_)
                        | FaultDelta::EnableWastePort(_)
                )
            });
            assert!(healed, "seed {seed}: no healing delta in 30 draws");
            return;
        }
        panic!("no faulted instance found in 20 seeds");
    }

    #[test]
    fn shrink_reaches_a_local_minimum() {
        let start = spec_from_seed(1);
        // "Fails" whenever the instance synthesizes at all: shrinking must
        // walk down to a spec where no single further reduction works.
        let fails = |s: &SyntheticSpec| instance(s).is_ok();
        assert!(fails(&start), "pick a seed that synthesizes");
        let (small, steps) = shrink(&start, fails);
        assert!(fails(&small));
        assert!(steps > 0, "nothing was reduced");
        assert!(small.ops <= start.ops);
        // Re-running is deterministic.
        let (again, steps2) = shrink(&start, fails);
        assert_eq!(small, again);
        assert_eq!(steps, steps2);
    }

    #[test]
    fn request_streams_are_deterministic_and_monotone() {
        let opts = StreamOptions::default();
        let a = request_stream(&opts);
        let b = request_stream(&opts);
        assert_eq!(a, b);
        assert_eq!(a.len(), opts.requests);
        for w in a.windows(2) {
            assert!(w[0].at_us < w[1].at_us, "arrival times strictly increase");
        }
        assert!(a.iter().all(|e| e.pool_index < opts.pool));
        // A different seed produces different traffic.
        let c = request_stream(&StreamOptions {
            seed: 1,
            ..opts.clone()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn reuse_ratio_shapes_the_distinct_instance_count() {
        let base = StreamOptions {
            requests: 60,
            pool: 60,
            ..StreamOptions::default()
        };
        let distinct = |reuse: f64| {
            let evs = request_stream(&StreamOptions {
                reuse,
                ..base.clone()
            });
            evs.iter()
                .map(|e| e.pool_index)
                .collect::<HashSet<_>>()
                .len()
        };
        // Full reuse collapses onto one instance; zero reuse walks the pool.
        assert_eq!(distinct(1.0), 1);
        assert_eq!(distinct(0.0), base.pool);
        let mid = distinct(0.6);
        assert!(mid > 1 && mid < base.pool, "got {mid}");
    }

    #[test]
    fn delta_events_only_target_touched_instances() {
        let evs = request_stream(&StreamOptions {
            requests: 300,
            delta_ratio: 0.5,
            ..StreamOptions::default()
        });
        let mut touched: HashSet<usize> = HashSet::new();
        let mut deltas = 0;
        for e in &evs {
            if let StreamEventKind::Repair { .. } = e.kind {
                assert!(
                    touched.contains(&e.pool_index),
                    "repair before any solve of instance {}",
                    e.pool_index
                );
                deltas += 1;
            }
            touched.insert(e.pool_index);
        }
        assert!(deltas > 10, "only {deltas} repair events in 300");
        // The first event is always a fresh solve.
        assert_eq!(evs[0].kind, StreamEventKind::Solve);
    }

    #[test]
    fn shrink_keeps_failing_spec_when_nothing_reduces() {
        let start = spec_from_seed(2);
        let (same, steps) = shrink(&start, |_| false);
        assert_eq!(same, start);
        assert_eq!(steps, 0);
    }
}
