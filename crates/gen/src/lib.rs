//! Seeded random-instance generation and shrinking for verification.
//!
//! The differential verification harness (`pdw verify`, the `verify` bench
//! binary) and the `random_pipeline` property test all need the same thing:
//! a family of feasible random assay instances, reproducible from a single
//! `u64` seed, plus a way to *shrink* a failing instance to the smallest
//! spec that still fails. This crate is that shared module.
//!
//! - [`spec_strategy`] — the proptest strategy over [`SyntheticSpec`]s
//!   (promoted from the `random_pipeline` test so every consumer draws from
//!   the same distribution);
//! - [`spec_from_seed`] — the same distribution collapsed onto a single
//!   seed, for corpus-style iteration (`for seed in 0..n`);
//! - [`instance`] — spec → generated benchmark → synthesized chip/schedule,
//!   with structurally infeasible specs reported as [`Skip`] rather than
//!   errors;
//! - [`shrink`] — greedy descent over the spec's size knobs. The vendored
//!   proptest stand-in has no shrinking, so the harness shrinks at the spec
//!   level instead: ops, extra edges, devices, and grid are reduced one at
//!   a time while the caller's failure predicate keeps holding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pdw_assay::benchmarks::Benchmark;
use pdw_assay::synthetic::{generate, SyntheticSpec};
use pdw_synth::{synthesize, SynthError, Synthesis};
use proptest::Strategy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bounds of the random-instance family. Kept in one place so the strategy
/// and the seed-based generator cannot drift apart.
const OPS: std::ops::RangeInclusive<usize> = 4..=10;
const EXTRA_EDGES: std::ops::RangeInclusive<usize> = 0..=4;
const DEVICES: std::ops::RangeInclusive<usize> = 6..=9;
const GRID: (u16, u16) = (15, 15);

/// Builds the spec for the given size knobs.
///
/// `|E| = |O| + mixes + extra inputs + sinks`; the edge count keeps the
/// instance feasible around the generator's structural family.
fn spec(ops: usize, extra: usize, devices: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        name: format!("prop-{seed:x}"),
        ops,
        edges: 2 * ops - ops / 2 + extra,
        devices,
        seed,
        grid: GRID,
    }
}

/// The proptest strategy over synthetic specs used by the `random_pipeline`
/// property test.
pub fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (OPS, EXTRA_EDGES, DEVICES, proptest::any::<u64>())
        .prop_map(|(ops, extra, devices, seed)| spec(ops, extra, devices, seed))
}

/// Derives a spec deterministically from a single seed, drawing the size
/// knobs from the same ranges as [`spec_strategy`].
pub fn spec_from_seed(seed: u64) -> SyntheticSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let ops = rng.gen_range(OPS);
    let extra = rng.gen_range(EXTRA_EDGES);
    let devices = rng.gen_range(DEVICES);
    spec(ops, extra, devices, seed)
}

/// Why a spec produced no instance. Skips are expected — heavily chained
/// assays on a minimal device library can exceed what list scheduling
/// without result relocation supports — and are not verification failures.
#[derive(Debug, Clone)]
pub enum Skip {
    /// Synthesis deadlocked (`SynthError::Deadlock`): the instance is
    /// structurally under-provisioned, not wrong.
    Deadlock(String),
    /// Any other synthesis infeasibility (e.g. a shrunk grid too small for
    /// the device library). At the family's default grid this should not
    /// occur; the `random_pipeline` property test asserts as much.
    Infeasible(String),
}

impl std::fmt::Display for Skip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Skip::Deadlock(e) => write!(f, "skipped (synthesis deadlock): {e}"),
            Skip::Infeasible(e) => write!(f, "skipped (infeasible): {e}"),
        }
    }
}

/// Generates and synthesizes the instance described by `spec`.
///
/// # Errors
///
/// Returns [`Skip`] for infeasible specs; the call itself never fails.
pub fn instance(spec: &SyntheticSpec) -> Result<(Benchmark, Synthesis), Skip> {
    let bench = generate(spec);
    match synthesize(&bench) {
        Ok(s) => Ok((bench, s)),
        Err(e @ SynthError::Deadlock { .. }) => Err(Skip::Deadlock(e.to_string())),
        Err(e) => Err(Skip::Infeasible(e.to_string())),
    }
}

/// Shrinks a failing spec: repeatedly tries to reduce one size knob at a
/// time (operations, extra edges, devices, grid side), keeping a reduction
/// only when `fails` still returns `true` for the reduced spec, until no
/// single reduction reproduces the failure. Returns the smallest failing
/// spec found and the number of accepted reduction steps.
///
/// `fails` should treat skipped instances (see [`instance`]) as *not*
/// failing. The descent is deterministic, so a shrunk repro is as
/// reproducible as the original seed.
pub fn shrink(
    spec: &SyntheticSpec,
    fails: impl Fn(&SyntheticSpec) -> bool,
) -> (SyntheticSpec, usize) {
    let mut best = spec.clone();
    let mut steps = 0usize;
    loop {
        let mut candidates: Vec<SyntheticSpec> = Vec::new();
        if best.ops > *OPS.start() {
            // Keep the edge/op ratio of the family when dropping an op.
            let ops = best.ops - 1;
            let base_edges = 2 * ops - ops / 2;
            let extra = best.edges.saturating_sub(2 * best.ops - best.ops / 2);
            candidates.push(SyntheticSpec {
                ops,
                edges: base_edges + extra,
                ..best.clone()
            });
        }
        if best.edges > 2 * best.ops - best.ops / 2 {
            candidates.push(SyntheticSpec {
                edges: best.edges - 1,
                ..best.clone()
            });
        }
        if best.devices > *DEVICES.start() {
            candidates.push(SyntheticSpec {
                devices: best.devices - 1,
                ..best.clone()
            });
        }
        if best.grid.0 > 11 && best.grid.1 > 11 {
            candidates.push(SyntheticSpec {
                grid: (best.grid.0 - 2, best.grid.1 - 2),
                ..best.clone()
            });
        }
        let Some(reduced) = candidates.into_iter().find(|c| fails(c)) else {
            return (best, steps);
        };
        best = reduced;
        steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_specs_are_deterministic_and_in_family() {
        for seed in 0..50 {
            let a = spec_from_seed(seed);
            let b = spec_from_seed(seed);
            assert_eq!(a, b);
            assert!(OPS.contains(&a.ops));
            assert!(DEVICES.contains(&a.devices));
            assert!(a.edges >= 2 * a.ops - a.ops / 2);
            assert!(a.edges <= 2 * a.ops - a.ops / 2 + EXTRA_EDGES.end());
        }
    }

    #[test]
    fn most_seeds_synthesize() {
        let mut ok = 0;
        for seed in 0..25 {
            if instance(&spec_from_seed(seed)).is_ok() {
                ok += 1;
            }
        }
        assert!(ok > 10, "only {ok}/25 seeds produced instances");
    }

    #[test]
    fn shrink_reaches_a_local_minimum() {
        let start = spec_from_seed(1);
        // "Fails" whenever the instance synthesizes at all: shrinking must
        // walk down to a spec where no single further reduction works.
        let fails = |s: &SyntheticSpec| instance(s).is_ok();
        assert!(fails(&start), "pick a seed that synthesizes");
        let (small, steps) = shrink(&start, fails);
        assert!(fails(&small));
        assert!(steps > 0, "nothing was reduced");
        assert!(small.ops <= start.ops);
        // Re-running is deterministic.
        let (again, steps2) = shrink(&start, fails);
        assert_eq!(small, again);
        assert_eq!(steps, steps2);
    }

    #[test]
    fn shrink_keeps_failing_spec_when_nothing_reduces() {
        let start = spec_from_seed(2);
        let (same, steps) = shrink(&start, |_| false);
        assert_eq!(same, start);
        assert_eq!(steps, 0);
    }
}
