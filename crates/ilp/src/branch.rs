//! Parallel branch-and-bound over the integer variables.
//!
//! The search runs a pool of workers over a shared best-first frontier
//! (ordered by parent LP bound, ties broken by creation sequence so a
//! single-threaded run is fully reproducible). Each worker *dives*: after
//! branching it keeps the child nearer to the fractional LP value and pushes
//! the other onto the shared heap, which gives depth-first incumbent
//! discovery inside a best-first global ordering.
//!
//! Three things keep the per-node cost low:
//!
//! - **Copy-on-write bounds.** A node stores only its single branched bound
//!   as a [`BoundDelta`] linked to the parent's chain via `Arc`, instead of
//!   cloning full `lb`/`ub` vectors; workers materialize the chain into
//!   reusable scratch buffers.
//! - **Warm-started LPs.** Each node shares its optimal basis with both
//!   children ([`Basis`]), so a child LP restarts with the dual simplex
//!   instead of a cold two-phase solve. Numerical trouble falls back to the
//!   cold path (counted in [`SolverStats::warm_start_fallbacks`]).
//! - **Reused workspaces.** Every worker owns one [`Workspace`]; node
//!   solves are allocation-free apart from the two `Arc`s per branching.
//!
//! Pruning is conservative (`bound >= incumbent - 1e-9`, same as the
//! sequential version), so an exhausted search proves optimality and the
//! final objective is identical regardless of thread count.

use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::model::{Model, VarType};
use crate::presolve::{presolve_with_stats, PresolveStats, Presolved};
use crate::simplex::{solve_cold, solve_warm, Basis, LpOutcome, Prepared, Workspace};
use crate::INT_TOL;

/// Options controlling a MILP solve.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Wall-clock budget. On expiry the best incumbent found so far is
    /// returned with [`SolveStatus::Feasible`] (the paper runs Gurobi with a
    /// 15-minute budget and reports best-effort results the same way).
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes.
    pub node_limit: u64,
    /// A known-feasible starting assignment (e.g. from a heuristic). Its
    /// objective becomes the initial cutoff, guaranteeing the result is
    /// never worse than the warm start.
    pub warm_start: Option<Vec<f64>>,
    /// Worker threads for the tree search. `0` (the default) uses the
    /// machine's available parallelism. The objective is thread-count
    /// invariant; only wall-clock time changes.
    pub threads: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            time_limit: Duration::from_secs(10),
            node_limit: 2_000_000,
            warm_start: None,
            threads: 0,
        }
    }
}

/// How a returned solution should be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Proven optimal.
    Optimal,
    /// Feasible incumbent; optimality not proven (budget or node limit hit,
    /// or an LP relaxation stalled numerically).
    Feasible,
}

/// A point on the incumbent-improvement timeline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IncumbentEvent {
    /// Seconds since the solve started.
    pub at_s: f64,
    /// The new incumbent objective.
    pub objective: f64,
}

/// Observability counters for one MILP solve: where the time went and how
/// hard the search had to work. Serialized into benchmark reports.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SolverStats {
    /// Branch-and-bound nodes processed (LP relaxations solved).
    pub nodes: u64,
    /// Worker threads used for the tree search.
    pub threads: usize,
    /// Total wall-clock time of the solve, in seconds.
    pub wall_time_s: f64,
    /// Node throughput over the search phase.
    pub nodes_per_sec: f64,
    /// Simplex pivots across all node LPs (basis changes and bound flips).
    pub lp_pivots: u64,
    /// Node LPs solved warm from the parent basis (dual simplex restart).
    pub warm_lps: u64,
    /// Node LPs solved cold (two-phase from scratch).
    pub cold_lps: u64,
    /// Warm starts abandoned for the cold path (singular or stalled basis).
    pub warm_start_fallbacks: u64,
    /// Seconds spent in presolve.
    pub presolve_time_s: f64,
    /// Seconds spent in the tree search.
    pub search_time_s: f64,
    /// Seconds until the first feasible incumbent, if any was found.
    pub time_to_first_incumbent_s: Option<f64>,
    /// Every incumbent improvement, in order.
    pub incumbent_timeline: Vec<IncumbentEvent>,
    /// What presolve reduced before the search started.
    pub presolve: PresolveStats,
}

/// A feasible MILP solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value per variable, indexed by [`VarId`](crate::VarId). Integer
    /// variables are snapped to exact integers.
    pub values: Vec<f64>,
    /// Objective value `cᵀx`.
    pub objective: f64,
    /// Optimality status.
    pub status: SolveStatus,
    /// Number of branch-and-bound nodes processed.
    pub nodes: u64,
    /// Detailed counters and timings for this solve.
    pub stats: SolverStats,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: crate::VarId) -> f64 {
        self.values[var.0]
    }

    /// Value of a binary/integer variable as `i64`.
    pub fn int_value(&self, var: crate::VarId) -> i64 {
        self.values[var.0].round() as i64
    }

    /// Value of a binary variable as `bool`.
    pub fn bool_value(&self, var: crate::VarId) -> bool {
        self.values[var.0].round() as i64 != 0
    }
}

/// Failure modes of a MILP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MilpError {
    /// The model has no feasible assignment.
    Infeasible,
    /// The LP relaxation is unbounded below.
    Unbounded,
    /// The budget expired before any feasible assignment was found.
    NoSolutionFound,
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "model is infeasible"),
            MilpError::Unbounded => write!(f, "objective is unbounded below"),
            MilpError::NoSolutionFound => {
                write!(f, "budget expired before a feasible solution was found")
            }
        }
    }
}

impl std::error::Error for MilpError {}

/// One branched bound, chained to the parent node's chain. Materializing a
/// node's bounds walks the chain over the root bounds; branching only ever
/// tightens, so `max`/`min` make the walk order-independent.
struct BoundDelta {
    var: usize,
    /// `true` tightens the lower bound, `false` the upper.
    lower: bool,
    value: f64,
    parent: Option<Arc<BoundDelta>>,
}

struct Node {
    /// Parent LP objective: a lower bound on everything in this subtree.
    bound: f64,
    /// Creation sequence; `0` is the root. Deterministic heap tie-break.
    seq: u64,
    delta: Option<Arc<BoundDelta>>,
    basis: Option<Arc<Basis>>,
}

/// Max-heap wrapper inverted into "smallest bound pops first".
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .0
            .bound
            .total_cmp(&self.0.bound)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// Cap on the open-node frontier; beyond it, far children are dropped and
/// the solve reports [`SolveStatus::Feasible`] instead of exploding memory.
const MAX_OPEN: usize = 100_000;

struct Queue {
    heap: BinaryHeap<HeapNode>,
    /// Workers currently diving on a node (not waiting).
    active: usize,
    stop: bool,
}

struct Incumbent {
    values: Option<Vec<f64>>,
    objective: f64,
    timeline: Vec<IncumbentEvent>,
}

/// Shared search state; one instance per solve, borrowed by every worker.
struct Search<'a> {
    model: &'a Model,
    prep: Prepared,
    int_vars: Vec<usize>,
    root_lb: Vec<f64>,
    root_ub: Vec<f64>,
    start: Instant,
    deadline: Option<Instant>,
    time_limit: Duration,
    node_limit: u64,
    queue: Mutex<Queue>,
    cv: Condvar,
    incumbent: Mutex<Incumbent>,
    /// Bit pattern of the incumbent objective (`+inf` when none): lets the
    /// hot pruning path skip the mutex.
    inc_bits: AtomicU64,
    nodes: AtomicU64,
    next_seq: AtomicU64,
    pivots: AtomicU64,
    warm_lps: AtomicU64,
    cold_lps: AtomicU64,
    fallbacks: AtomicU64,
    any_stall: AtomicBool,
    truncated: AtomicBool,
    root_unbounded: AtomicBool,
}

/// Solves `model` to optimality or best effort within the budget.
///
/// # Errors
///
/// - [`MilpError::Infeasible`] if no assignment satisfies the constraints,
/// - [`MilpError::Unbounded`] if the relaxation is unbounded below,
/// - [`MilpError::NoSolutionFound`] if the budget expired with no incumbent.
pub fn solve(model: &Model, opts: &SolveOptions) -> Result<Solution, MilpError> {
    let start = Instant::now();
    // Cheap reductions first: fewer rows shrink every tableau quadratically.
    let (presolved, presolve_stats) = presolve_with_stats(model);
    let presolve_time = start.elapsed();
    let reduced = match presolved {
        Presolved::Reduced(m) => m,
        Presolved::Infeasible => return Err(MilpError::Infeasible),
    };
    let model = &reduced;
    let n = model.num_vars();
    let int_vars: Vec<usize> = (0..n)
        .filter(|&j| model.vars[j].vtype == VarType::Integer)
        .collect();

    let threads = match opts.threads {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        t => t,
    };

    let search = Search {
        model,
        prep: Prepared::new(model),
        int_vars,
        root_lb: (0..n).map(|j| model.vars[j].lb).collect(),
        root_ub: (0..n).map(|j| model.vars[j].ub).collect(),
        start,
        deadline: start.checked_add(opts.time_limit),
        time_limit: opts.time_limit,
        node_limit: opts.node_limit,
        queue: Mutex::new(Queue {
            heap: BinaryHeap::from([HeapNode(Node {
                bound: f64::NEG_INFINITY,
                seq: 0,
                delta: None,
                basis: None,
            })]),
            active: 0,
            stop: false,
        }),
        cv: Condvar::new(),
        incumbent: Mutex::new(Incumbent {
            values: None,
            objective: f64::INFINITY,
            timeline: Vec::new(),
        }),
        inc_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        nodes: AtomicU64::new(0),
        next_seq: AtomicU64::new(1),
        pivots: AtomicU64::new(0),
        warm_lps: AtomicU64::new(0),
        cold_lps: AtomicU64::new(0),
        fallbacks: AtomicU64::new(0),
        any_stall: AtomicBool::new(false),
        truncated: AtomicBool::new(false),
        root_unbounded: AtomicBool::new(false),
    };

    if let Some(ws) = &opts.warm_start {
        assert_eq!(ws.len(), n, "warm start has wrong dimension");
        if model.check_feasible(ws, 1e-6).is_ok() {
            let mut vals = ws.clone();
            snap_integers(&mut vals, &search.int_vars);
            let obj = model.objective_value(&vals);
            search.offer_incumbent(vals, obj);
        }
    }

    let search_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(&search));
        }
    });
    let search_time = search_start.elapsed();

    if search.root_unbounded.load(Ordering::Relaxed) {
        return Err(MilpError::Unbounded);
    }

    let nodes = search.nodes.load(Ordering::Relaxed);
    let exhausted = !search.truncated.load(Ordering::Relaxed);
    let any_stall = search.any_stall.load(Ordering::Relaxed);
    let incumbent = search.incumbent.into_inner().unwrap();

    let stats = SolverStats {
        nodes,
        threads,
        wall_time_s: start.elapsed().as_secs_f64(),
        nodes_per_sec: if search_time.as_secs_f64() > 0.0 {
            nodes as f64 / search_time.as_secs_f64()
        } else {
            0.0
        },
        lp_pivots: search.pivots.load(Ordering::Relaxed),
        warm_lps: search.warm_lps.load(Ordering::Relaxed),
        cold_lps: search.cold_lps.load(Ordering::Relaxed),
        warm_start_fallbacks: search.fallbacks.load(Ordering::Relaxed),
        presolve_time_s: presolve_time.as_secs_f64(),
        search_time_s: search_time.as_secs_f64(),
        time_to_first_incumbent_s: incumbent.timeline.first().map(|e| e.at_s),
        incumbent_timeline: incumbent.timeline,
        presolve: presolve_stats,
    };

    match incumbent.values {
        Some(values) => Ok(Solution {
            objective: incumbent.objective,
            values,
            status: if exhausted && !any_stall {
                SolveStatus::Optimal
            } else {
                SolveStatus::Feasible
            },
            nodes,
            stats,
        }),
        None => {
            if exhausted && !any_stall {
                Err(MilpError::Infeasible)
            } else {
                Err(MilpError::NoSolutionFound)
            }
        }
    }
}

impl Search<'_> {
    /// Pops the best open node, waiting while other workers might still
    /// produce children. Returns `None` when the search is over.
    fn next_node(&self) -> Option<Node> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if q.stop {
                return None;
            }
            if let Some(HeapNode(node)) = q.heap.pop() {
                q.active += 1;
                return Some(node);
            }
            if q.active == 0 {
                q.stop = true;
                self.cv.notify_all();
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    fn finish_dive(&self) {
        let mut q = self.queue.lock().unwrap();
        q.active -= 1;
        if q.active == 0 && q.heap.is_empty() {
            q.stop = true;
            self.cv.notify_all();
        }
    }

    fn stop_all(&self) {
        let mut q = self.queue.lock().unwrap();
        q.stop = true;
        self.cv.notify_all();
    }

    fn incumbent_objective(&self) -> f64 {
        f64::from_bits(self.inc_bits.load(Ordering::Relaxed))
    }

    /// Installs `values` as the incumbent if strictly better; at an equal
    /// objective the lexicographically smaller vector wins, which stabilizes
    /// the reported solution across thread interleavings.
    fn offer_incumbent(&self, values: Vec<f64>, objective: f64) {
        let mut inc = self.incumbent.lock().unwrap();
        if objective < inc.objective - 1e-9 {
            inc.objective = objective;
            inc.values = Some(values);
            inc.timeline.push(IncumbentEvent {
                at_s: self.start.elapsed().as_secs_f64(),
                objective,
            });
            self.inc_bits.store(objective.to_bits(), Ordering::Relaxed);
        } else if (objective - inc.objective).abs() <= 1e-9
            && inc.values.as_ref().is_some_and(|v| lex_less(&values, v))
        {
            inc.values = Some(values);
        }
    }
}

fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        if (x - y).abs() > 1e-9 {
            return x < y;
        }
    }
    false
}

/// Applies a node's delta chain over the root bounds into scratch buffers.
fn materialize_bounds(
    delta: &Option<Arc<BoundDelta>>,
    root_lb: &[f64],
    root_ub: &[f64],
    lb: &mut [f64],
    ub: &mut [f64],
) {
    lb.copy_from_slice(root_lb);
    ub.copy_from_slice(root_ub);
    let mut cur = delta.as_deref();
    while let Some(d) = cur {
        if d.lower {
            lb[d.var] = lb[d.var].max(d.value);
        } else {
            ub[d.var] = ub[d.var].min(d.value);
        }
        cur = d.parent.as_deref();
    }
}

/// One search worker: pops the globally best node, then dives down its
/// subtree keeping the nearer child in hand.
fn worker(s: &Search) {
    let mut ws = Workspace::new();
    let n = s.root_lb.len();
    let mut lb = vec![0.0; n];
    let mut ub = vec![0.0; n];

    while let Some(node) = s.next_node() {
        let mut cur = Some(node);
        while let Some(node) = cur.take() {
            if s.nodes.load(Ordering::Relaxed) >= s.node_limit || s.start.elapsed() >= s.time_limit
            {
                s.truncated.store(true, Ordering::Relaxed);
                s.stop_all();
                break;
            }
            // Bound-based pruning against the incumbent cutoff.
            if node.bound >= s.incumbent_objective() - 1e-9 {
                break;
            }
            s.nodes.fetch_add(1, Ordering::Relaxed);
            materialize_bounds(&node.delta, &s.root_lb, &s.root_ub, &mut lb, &mut ub);

            let outcome = match &node.basis {
                Some(basis) => match solve_warm(&s.prep, &mut ws, &lb, &ub, basis, s.deadline) {
                    Ok(o) => {
                        s.warm_lps.fetch_add(1, Ordering::Relaxed);
                        o
                    }
                    Err(_) => {
                        s.fallbacks.fetch_add(1, Ordering::Relaxed);
                        s.cold_lps.fetch_add(1, Ordering::Relaxed);
                        solve_cold(&s.prep, &mut ws, &lb, &ub, s.deadline)
                    }
                },
                None => {
                    s.cold_lps.fetch_add(1, Ordering::Relaxed);
                    solve_cold(&s.prep, &mut ws, &lb, &ub, s.deadline)
                }
            };

            let mut sol = match outcome {
                LpOutcome::Infeasible => break,
                LpOutcome::Unbounded => {
                    if node.seq == 0 {
                        s.root_unbounded.store(true, Ordering::Relaxed);
                        s.stop_all();
                    } else {
                        // A child cannot be unbounded if the root was
                        // bounded, but guard against numerical surprises:
                        // treat as unexplorable.
                        s.any_stall.store(true, Ordering::Relaxed);
                    }
                    break;
                }
                LpOutcome::Stalled => {
                    s.any_stall.store(true, Ordering::Relaxed);
                    break;
                }
                LpOutcome::Optimal(sol) => sol,
            };

            if sol.objective >= s.incumbent_objective() - 1e-9 {
                break;
            }

            // Find the most fractional integer variable.
            let mut branch: Option<(usize, f64)> = None;
            let mut best_frac = INT_TOL;
            for &j in &s.int_vars {
                let v = sol.values[j];
                let frac = (v - v.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch = Some((j, v));
                }
            }

            let Some((j, v)) = branch else {
                // Integral: candidate incumbent. Snap in place — the LP
                // values are not needed again on this path.
                snap_integers(&mut sol.values, &s.int_vars);
                if s.model.check_feasible(&sol.values, 1e-5).is_ok() {
                    let obj = s.model.objective_value(&sol.values);
                    s.offer_incumbent(sol.values, obj);
                }
                break;
            };

            let basis = Arc::new(ws.snapshot_basis());
            let floor = v.floor();
            let down = Node {
                bound: sol.objective,
                seq: s.next_seq.fetch_add(1, Ordering::Relaxed),
                delta: Some(Arc::new(BoundDelta {
                    var: j,
                    lower: false,
                    value: floor,
                    parent: node.delta.clone(),
                })),
                basis: Some(Arc::clone(&basis)),
            };
            let up = Node {
                bound: sol.objective,
                seq: s.next_seq.fetch_add(1, Ordering::Relaxed),
                delta: Some(Arc::new(BoundDelta {
                    var: j,
                    lower: true,
                    value: floor + 1.0,
                    parent: node.delta,
                })),
                basis: Some(basis),
            };
            // Dive toward the nearer integer; the far child goes to the heap.
            let (near, far) = if v - floor <= 0.5 {
                (down, up)
            } else {
                (up, down)
            };
            {
                let mut q = s.queue.lock().unwrap();
                if q.heap.len() >= MAX_OPEN {
                    // Dropping a child forfeits the optimality proof.
                    s.truncated.store(true, Ordering::Relaxed);
                } else {
                    q.heap.push(HeapNode(far));
                    s.cv.notify_one();
                }
            }
            cur = Some(near);
        }
        s.finish_dive();
    }
    s.pivots.fetch_add(ws.pivots, Ordering::Relaxed);
}

fn snap_integers(values: &mut [f64], int_vars: &[usize]) {
    for &j in int_vars {
        values[j] = values[j].round();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Relation};

    fn opts() -> SolveOptions {
        SolveOptions {
            time_limit: Duration::from_secs(30),
            ..SolveOptions::default()
        }
    }

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 10a + 13b + 7c  s.t.  4a + 5b + 3c <= 8  (binaries).
        // Optimum: b + c = 20 (weight 8).
        let mut m = Model::new("knap");
        let a = m.binary("a", -10.0);
        let b = m.binary("b", -13.0);
        let c = m.binary("c", -7.0);
        m.constraint([(a, 4.0), (b, 5.0), (c, 3.0)], Relation::Le, 8.0);
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!((s.objective + 20.0).abs() < 1e-6);
        assert!(!s.bool_value(a));
        assert!(s.bool_value(b));
        assert!(s.bool_value(c));
    }

    #[test]
    fn integer_rounding_is_not_assumed() {
        // min y  s.t.  y >= 1.5 x, y >= 3 (1 - x), x binary, y <= 10.
        // x=1 -> y=1.5 ; x=0 -> y=3. LP relaxation would pick x≈0.67.
        let mut m = Model::new("t");
        let x = m.binary("x", 0.0);
        let y = m.continuous("y", 0.0, 10.0, 1.0);
        m.constraint([(y, 1.0), (x, -1.5)], Relation::Ge, 0.0);
        m.constraint([(y, 1.0), (x, 3.0)], Relation::Ge, 3.0);
        let s = solve(&m, &opts()).unwrap();
        assert!(s.bool_value(x));
        assert!((s.objective - 1.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 2x = 3 with x integer: LP-feasible, IP-infeasible.
        let mut m = Model::new("t");
        let x = m.integer("x", 0.0, 10.0, 1.0);
        m.constraint([(x, 2.0)], Relation::Eq, 3.0);
        assert_eq!(solve(&m, &opts()).unwrap_err(), MilpError::Infeasible);
    }

    #[test]
    fn warm_start_bounds_the_result() {
        let mut m = Model::new("t");
        let x = m.binary("x", -1.0);
        let y = m.binary("y", -1.0);
        m.constraint([(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        // Feasible warm start: x=1, y=0, obj -1 (also optimal).
        let s = solve(
            &m,
            &SolveOptions {
                warm_start: Some(vec![1.0, 0.0]),
                ..opts()
            },
        )
        .unwrap();
        assert!((s.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_budget_returns_warm_start() {
        let mut m = Model::new("t");
        let x = m.binary("x", -1.0);
        m.constraint([(x, 1.0)], Relation::Le, 1.0);
        let s = solve(
            &m,
            &SolveOptions {
                time_limit: Duration::ZERO,
                warm_start: Some(vec![0.0]),
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert_eq!(s.status, SolveStatus::Feasible);
        assert_eq!(s.int_value(x), 0);
    }

    #[test]
    fn zero_time_budget_without_warm_start_fails() {
        let mut m = Model::new("t");
        let _x = m.binary("x", -1.0);
        let err = solve(
            &m,
            &SolveOptions {
                time_limit: Duration::ZERO,
                ..SolveOptions::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, MilpError::NoSolutionFound);
    }

    #[test]
    fn big_m_ordering_disjunction() {
        // Two unit jobs on one machine: either A before B or B before A.
        // min end = max completion; optimum 2.
        let mut m = Model::new("seq");
        const M: f64 = 100.0;
        let sa = m.continuous("sa", 0.0, 50.0, 0.0);
        let sb = m.continuous("sb", 0.0, 50.0, 0.0);
        let end = m.continuous("end", 0.0, 100.0, 1.0);
        let k = m.binary("k", 0.0);
        // sb >= sa + 1 - M(1-k)  and  sa >= sb + 1 - Mk
        m.constraint([(sb, 1.0), (sa, -1.0), (k, -M)], Relation::Ge, 1.0 - M);
        m.constraint([(sa, 1.0), (sb, -1.0), (k, M)], Relation::Ge, 1.0);
        m.constraint([(end, 1.0), (sa, -1.0)], Relation::Ge, 1.0);
        m.constraint([(end, 1.0), (sb, -1.0)], Relation::Ge, 1.0);
        let s = solve(&m, &opts()).unwrap();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(
            (s.objective - 2.0).abs() < 1e-5,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn general_integers_branch_correctly() {
        // max 3x + 4y  s.t.  2x + 3y <= 12, 2x + y <= 8, x,y int >= 0.
        // LP opt is fractional; IP opt is x=3, y=2 (obj 17).
        let mut m = Model::new("int");
        let x = m.integer("x", 0.0, 10.0, -3.0);
        let y = m.integer("y", 0.0, 10.0, -4.0);
        m.constraint([(x, 2.0), (y, 3.0)], Relation::Le, 12.0);
        m.constraint([(x, 2.0), (y, 1.0)], Relation::Le, 8.0);
        let s = solve(&m, &opts()).unwrap();
        assert!(
            (s.objective + 17.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert_eq!(s.int_value(x), 3);
        assert_eq!(s.int_value(y), 2);
    }

    /// A model whose LP relaxation is fractional enough to force real
    /// branching (several dozen nodes).
    fn branching_model() -> Model {
        let mut m = Model::new("branchy");
        let n = 8;
        let xs: Vec<_> = (0..n)
            .map(|i| m.binary(&format!("x{i}"), -((i % 5) as f64 + 3.0)))
            .collect();
        for w in xs.windows(3) {
            m.constraint([(w[0], 2.0), (w[1], 3.0), (w[2], 5.0)], Relation::Le, 7.0);
        }
        m.constraint(
            xs.iter().map(|&x| (x, 1.0)).collect::<Vec<_>>(),
            Relation::Le,
            n as f64 - 2.0,
        );
        m
    }

    #[test]
    fn objective_is_thread_count_invariant() {
        let m = branching_model();
        let reference = solve(
            &m,
            &SolveOptions {
                threads: 1,
                ..opts()
            },
        )
        .unwrap();
        assert_eq!(reference.status, SolveStatus::Optimal);
        for threads in [2, 4, 8] {
            let s = solve(&m, &SolveOptions { threads, ..opts() }).unwrap();
            assert_eq!(s.status, SolveStatus::Optimal, "threads={threads}");
            assert!(
                (s.objective - reference.objective).abs() < 1e-9,
                "threads={threads}: {} != {}",
                s.objective,
                reference.objective
            );
        }
    }

    #[test]
    fn stats_account_for_every_node() {
        let m = branching_model();
        let s = solve(
            &m,
            &SolveOptions {
                threads: 2,
                ..opts()
            },
        )
        .unwrap();
        let st = &s.stats;
        assert_eq!(st.nodes, s.nodes);
        assert!(st.nodes > 1, "expected branching, got {} nodes", st.nodes);
        // Every processed node solves exactly one LP, warm or cold.
        assert_eq!(st.warm_lps + st.cold_lps, st.nodes, "stats: {st:?}");
        assert!(st.warm_lps > 0, "child nodes should warm-start: {st:?}");
        assert!(st.lp_pivots > 0);
        assert!(st.threads == 2);
        assert!(st.nodes_per_sec > 0.0);
        assert!(st.time_to_first_incumbent_s.is_some());
        assert!(!st.incumbent_timeline.is_empty());
        // The timeline improves monotonically.
        for pair in st.incumbent_timeline.windows(2) {
            assert!(pair[1].objective < pair[0].objective + 1e-12);
            assert!(pair[1].at_s >= pair[0].at_s);
        }
    }

    #[test]
    fn stats_serialize_to_json() {
        let m = branching_model();
        let s = solve(&m, &opts()).unwrap();
        let json = serde_json::to_string(&s.stats).expect("stats serialize");
        assert!(json.contains("\"nodes\""), "json: {json}");
        assert!(json.contains("\"incumbent_timeline\""), "json: {json}");
        assert!(json.contains("\"presolve\""), "json: {json}");
    }
}
